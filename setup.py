"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .`` via pyproject only)
cannot build.  This shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` (and plain ``python setup.py develop``) work.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
