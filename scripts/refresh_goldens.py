#!/usr/bin/env python
"""Regenerate the committed golden corpora under ``tests/golden/``.

Replays every tier's seeded streams through the differential harness
(which already cross-checks engine vs oracle on every request) and
writes the resulting digests byte-deterministically.  Running this
script twice must produce identical files; CI regenerates the quick
corpus on every PR and fails if the committed bytes differ.

Usage:
    PYTHONPATH=src python scripts/refresh_goldens.py [--tier quick|deep|all]
        [--out tests/golden] [--verify]

``--verify`` regenerates in memory and compares against the committed
files instead of rewriting them (exit 1 on drift) -- the CI mode.

Exit status: 0 ok, 1 drift (--verify), 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.check import golden
from repro.check.differential import DifferentialHarness
from repro.check.runner import specs_for_tier
from repro.check.streams import generate_stream


def build_corpus(tier: str) -> dict:
    specs = specs_for_tier(tier)
    digests = []
    for spec in specs:
        harness = DifferentialHarness(spec.region_bytes, seed=spec.seed)
        harness.replay(generate_stream(spec))
        digests.append(golden.corpus_digest(harness))
        print(
            f"  {spec.name:16s} {len(harness.records):5d} requests  "
            f"records={digests[-1]['records'][:12]}  "
            f"state={digests[-1]['state'][:12]}"
        )
    return golden.make_corpus(tier, specs, digests)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tier", choices=("quick", "deep", "all"), default="all")
    parser.add_argument("--out", default=golden.DEFAULT_GOLDEN_DIR)
    parser.add_argument(
        "--verify",
        action="store_true",
        help="compare against committed corpora instead of rewriting",
    )
    args = parser.parse_args(argv)

    tiers = ("quick", "deep") if args.tier == "all" else (args.tier,)
    drift = False
    for tier in tiers:
        print(f"{tier} corpus:")
        corpus = build_corpus(tier)
        path = golden.corpus_path(args.out, tier)
        if args.verify:
            try:
                committed = golden.load_corpus(path)
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            problems = golden.diff_corpus(committed, corpus)
            if problems:
                drift = True
                for problem in problems:
                    print(f"DRIFT: {tier}: {problem}", file=sys.stderr)
            else:
                print(f"  {path} matches")
        else:
            golden.write_corpus(path, corpus)
            print(f"  wrote {path}")
    if drift:
        print(
            "golden corpora drifted; if the layout change is intended, "
            "rerun scripts/refresh_goldens.py and commit the result",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
