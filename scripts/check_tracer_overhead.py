#!/usr/bin/env python
"""CI gate: disabled tracing must stay effectively free.

Wall-clock baselines stored across machines flake (back-to-back runs on
one box already jitter by 10-20%), so this gate compares two
configurations measured *interleaved on the same machine*:

* the default, tracing-disabled simulate path, and
* the same scenario with an enabled :class:`TraceRecorder`.

The disabled path does strictly less work (one falsy check per
instrumented site), so its best-of-K wall time must not exceed the
enabled path's best-of-K by more than the tolerance.  A failure means
the "disabled" path stopped being disabled -- e.g. ``NULL_RECORDER``
became truthy, emit guards were removed, or the null recorder grew
per-event work.

Also asserts the structural invariants the zero-cost claim rests on:
``NULL_RECORDER`` is falsy, records nothing, and untraced runs carry
an empty trace.

Usage: PYTHONPATH=src python scripts/check_tracer_overhead.py
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.obs import NULL_RECORDER, ObsContext
from repro.sim.runner import run_scenario
from repro.sim.scenario import selected_scenario


def _measure(scenario, schemes, duration, seed, obs_factory=None):
    start = time.perf_counter()
    runs = run_scenario(
        scenario,
        schemes,
        duration_cycles=duration,
        seed=seed,
        obs_factory=obs_factory,
    )
    return time.perf_counter() - start, runs


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="cc1")
    parser.add_argument("--schemes", default="conventional,ours")
    parser.add_argument("--duration", type=float, default=1500.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="max allowed (disabled - enabled) / enabled min wall time",
    )
    args = parser.parse_args()

    failures = []

    # Structural invariants of the zero-cost disabled path.
    if NULL_RECORDER:
        failures.append("NULL_RECORDER is truthy; emit guards now fire")
    NULL_RECORDER.emit(None, cycle=0.0)
    if list(NULL_RECORDER.events()) or len(NULL_RECORDER):
        failures.append("NULL_RECORDER retained events; it must drop all")

    scenario = selected_scenario(args.scenario)
    schemes = [s for s in args.schemes.split(",") if s]

    disabled_walls = []
    enabled_walls = []
    untraced_runs = None
    # Interleave so drift (thermal, noisy neighbours) hits both paths.
    for rep in range(args.repeat):
        wall, untraced_runs = _measure(
            scenario, schemes, args.duration, args.seed
        )
        disabled_walls.append(wall)
        wall, _ = _measure(
            scenario,
            schemes,
            args.duration,
            args.seed,
            obs_factory=lambda: ObsContext.enabled(),
        )
        enabled_walls.append(wall)

    for run in untraced_runs.values():
        if run.trace:
            failures.append(
                f"untraced run for {run.scheme_name!r} carried "
                f"{len(run.trace)} trace events"
            )

    disabled_min = min(disabled_walls)
    enabled_min = min(enabled_walls)
    overhead = (disabled_min - enabled_min) / enabled_min
    print(
        f"disabled min {disabled_min * 1000:.1f}ms | "
        f"enabled min {enabled_min * 1000:.1f}ms | "
        f"disabled-vs-enabled {overhead:+.1%} (tolerance +{args.tolerance:.0%})"
    )
    if overhead > args.tolerance:
        failures.append(
            "disabled-tracing path is slower than the enabled path by "
            f"{overhead:.1%} (> {args.tolerance:.0%}); the no-op guard "
            "has regressed"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("tracer overhead gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
