"""Dev harness: scalar-vs-fast byte parity + speedup on one scenario.

Not part of the test suite (tests/integration/test_engine_parity.py is
the durable version); this is the quick inner-loop check used while
working on the fast engine.

    PYTHONPATH=src python scripts/parity_smoke.py [scheme ...]
"""

import dataclasses
import json
import sys
import time

from repro.common.config import SoCConfig
from repro.sim.runner import run_scenario
from repro.sim.scenario import selected_scenario

SCHEMES = sys.argv[1:] or [
    "unsecure", "mac_only", "conventional", "static_device", "ours",
    "multi_ctr_only",
]

scenario = selected_scenario("cc1")
base = SoCConfig()

t0 = time.perf_counter()
scalar = run_scenario(
    scenario, SCHEMES, config=base, duration_cycles=1500.0, jobs=1
)
t_scalar = time.perf_counter() - t0

t0 = time.perf_counter()
fast = run_scenario(
    scenario,
    SCHEMES,
    config=dataclasses.replace(base, sim_engine="fast"),
    duration_cycles=1500.0,
    jobs=1,
)
t_fast = time.perf_counter() - t0

ok = True
for name in SCHEMES:
    s = json.dumps(scalar[name].to_dict(), sort_keys=False, default=str)
    f = json.dumps(fast[name].to_dict(), sort_keys=False, default=str)
    engine = getattr(fast[name], "engine", "?")
    status = "OK " if s == f else "DIFF"
    if s != f:
        ok = False
    print(f"{status} {name:16s} engine={engine}")
    if s != f:
        sd = scalar[name].to_dict()
        fd = fast[name].to_dict()
        for key in sd:
            if json.dumps(sd[key], default=str) != json.dumps(
                fd[key], default=str
            ):
                print(f"  field {key} differs")
                if key == "metrics":
                    for mk in sd[key]:
                        if sd[key][mk] != fd[key].get(mk):
                            print(
                                f"    {mk}: scalar={sd[key][mk]!r} "
                                f"fast={fd[key].get(mk)!r}"
                            )
                elif key == "devices":
                    for ds, df in zip(sd[key], fd[key]):
                        if ds != df:
                            print(f"    scalar={ds}")
                            print(f"    fast  ={df}")
                else:
                    print(f"    scalar={sd[key]!r}")
                    print(f"    fast  ={fd[key]!r}")

print(f"scalar {t_scalar:.3f}s  fast {t_fast:.3f}s  "
      f"speedup {t_scalar / t_fast:.2f}x")
sys.exit(0 if ok else 1)
