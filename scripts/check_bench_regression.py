#!/usr/bin/env python
"""CI gate: the sweep must not get slower than the committed baseline.

Compares a freshly measured ``repro-bench/v1`` snapshot against a
baseline snapshot.  Two checks:

* **sweep wall time** -- the timed multi-scenario sweep slice (the
  ``sweep`` section) must not regress by more than the sweep
  tolerance (default 25%).  This is the number that tracks real
  figure-regeneration cost; it only compares when both snapshots
  measured the same sweep shape (scenarios / schemes / duration /
  jobs), otherwise it is skipped with a notice rather than producing
  an apples-to-oranges failure.
* **per-scheme wall time** -- the repeated single-scenario timings
  compare under their own (looser-than-review, CI-noise-tolerant)
  tolerance, default 50%.

Absolute wall times do not transfer between machines; this gate is
meant for snapshots produced *on the same runner in the same job*
(measure baseline-commit and head-commit back to back), or for
committed snapshots from the same machine class.  ``cpu_count`` is
recorded in every snapshot so a mismatch is at least visible.

A snapshot without a ``sweep`` section would make the sweep gate
silently vacuous, so it is treated as a usage error (exit 2) unless
``--allow-missing-sweep`` explicitly opts into per-scheme-only
comparison.  Schema-version mismatches and malformed JSON exit 2 with
a one-line error, never a traceback.

With ``--max-overhead`` the script instead acts as the *supervision
overhead* gate: baseline is a ``REPRO_EXEC=plain`` (bare ``pool.map``)
snapshot and current a default (supervised-executor) snapshot from the
same runner; the supervised sweep must cost at most ``1 + overhead``
times the plain sweep (the resilient layer promises <3% on a clean
run -- see docs/resilience.md).  Both snapshots must have measured the
same sweep shape; a mismatch is a usage error.

With ``--min-speedup`` the script instead acts as the *fast-engine*
gate: baseline is a ``--engine scalar`` snapshot and current a
``--engine fast`` snapshot measured back to back on the same runner;
the fast sweep must be at least ``FLOOR`` times faster than the scalar
sweep (baseline_min / current_min >= FLOOR).  Per-scheme speedups are
reported, and gated too when ``--min-scheme-speedup`` is given (they
are noisier: short single-scenario timings).  Both snapshots must have
measured the same sweep shape (the ``engine`` field is expected to
differ).

Usage:
    PYTHONPATH=src python scripts/check_bench_regression.py \
        BASELINE.json CURRENT.json [--sweep-tolerance 0.25] \
        [--scheme-tolerance 0.50] [--allow-missing-sweep] \
        [--max-overhead 0.03] [--min-speedup 2.0]

Exit status: 0 clean, 1 regression, 2 usage/schema error.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs import bench


#: Sweep-shape fields that must match for an overhead comparison to be
#: apples-to-apples.
_SWEEP_SHAPE_FIELDS = ("scenarios", "schemes", "duration_cycles", "jobs")


def check_overhead(baseline: dict, current: dict, max_overhead: float) -> int:
    """Supervision-overhead gate (``--max-overhead``).

    ``baseline`` must be a plain-executor snapshot and ``current`` a
    supervised one, measured back to back on the same runner with the
    same sweep shape.
    """
    base_sweep = baseline.get("sweep") or {}
    cur_sweep = current.get("sweep") or {}
    if not base_sweep or not cur_sweep:
        print(
            "error: --max-overhead needs a sweep section in both "
            "snapshots",
            file=sys.stderr,
        )
        return 2
    mismatched = [
        field
        for field in _SWEEP_SHAPE_FIELDS
        if base_sweep.get(field) != cur_sweep.get(field)
    ]
    if mismatched:
        print(
            "error: sweep shapes differ between snapshots "
            f"({', '.join(mismatched)}); measure both with identical "
            "--sweep-sample/--sweep-duration/--jobs",
            file=sys.stderr,
        )
        return 2
    base_min = base_sweep.get("wall_seconds", {}).get("min")
    cur_min = cur_sweep.get("wall_seconds", {}).get("min")
    if not base_min or cur_min is None:
        print("error: sweep wall_seconds.min missing", file=sys.stderr)
        return 2
    overhead = (cur_min - base_min) / base_min
    print(
        f"supervision overhead: plain {base_min:.4f}s -> supervised "
        f"{cur_min:.4f}s = {overhead:+.2%} (limit {max_overhead:.2%})"
    )
    if overhead > max_overhead:
        print(
            f"REGRESSION: supervised sweep costs {overhead:.2%} over the "
            f"plain executor (limit {max_overhead:.2%})",
            file=sys.stderr,
        )
        return 1
    return 0


def check_min_speedup(
    baseline: dict,
    current: dict,
    floor: float,
    scheme_floor=None,
) -> int:
    """Fast-engine gate (``--min-speedup``).

    ``baseline`` is a scalar-engine snapshot and ``current`` a
    fast-engine snapshot from the same runner with the same sweep
    shape; the sweep speedup (scalar min / fast min) must reach
    ``floor``.
    """
    base_sweep = baseline.get("sweep") or {}
    cur_sweep = current.get("sweep") or {}
    if not base_sweep or not cur_sweep:
        print(
            "error: --min-speedup needs a sweep section in both snapshots",
            file=sys.stderr,
        )
        return 2
    mismatched = [
        field
        for field in _SWEEP_SHAPE_FIELDS
        if base_sweep.get(field) != cur_sweep.get(field)
    ]
    if mismatched:
        print(
            "error: sweep shapes differ between snapshots "
            f"({', '.join(mismatched)}); measure both with identical "
            "--sweep-sample/--sweep-duration/--jobs",
            file=sys.stderr,
        )
        return 2
    base_min = base_sweep.get("wall_seconds", {}).get("min")
    cur_min = cur_sweep.get("wall_seconds", {}).get("min")
    if not base_min or not cur_min:
        print("error: sweep wall_seconds.min missing", file=sys.stderr)
        return 2
    status = 0
    speedup = base_min / cur_min
    print(
        f"sweep speedup: scalar {base_min:.4f}s / fast {cur_min:.4f}s "
        f"= {speedup:.2f}x (floor {floor:.2f}x)"
    )
    if speedup < floor:
        print(
            f"REGRESSION: fast sweep is only {speedup:.2f}x the scalar "
            f"sweep (floor {floor:.2f}x)",
            file=sys.stderr,
        )
        status = 1
    base_wall = baseline.get("wall_seconds", {})
    for scheme, timing in current.get("wall_seconds", {}).items():
        if scheme not in base_wall:
            continue
        old = float(base_wall[scheme]["min"])
        new = float(timing["min"])
        if new <= 0:
            continue
        scheme_speedup = old / new
        gated = f" (floor {scheme_floor:.2f}x)" if scheme_floor else ""
        print(f"scheme {scheme}: {scheme_speedup:.2f}x{gated}")
        if scheme_floor and scheme_speedup < scheme_floor:
            print(
                f"REGRESSION: scheme {scheme} fast speedup "
                f"{scheme_speedup:.2f}x under floor {scheme_floor:.2f}x",
                file=sys.stderr,
            )
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline repro-bench/v1 snapshot")
    parser.add_argument("current", help="freshly measured snapshot")
    parser.add_argument(
        "--sweep-tolerance", type=float, default=0.25,
        help="max allowed relative sweep slowdown (default 0.25)",
    )
    parser.add_argument(
        "--scheme-tolerance", type=float, default=0.50,
        help="max allowed relative per-scheme slowdown (default 0.50)",
    )
    parser.add_argument(
        "--allow-missing-sweep", action="store_true",
        help="tolerate snapshots without a sweep section (per-scheme "
        "gate only) instead of failing with exit 2",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=None, metavar="FRACTION",
        help="supervision-overhead gate: current (supervised) sweep may "
        "cost at most baseline (REPRO_EXEC=plain) * (1 + FRACTION); "
        "replaces the regression comparison",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="FLOOR",
        help="fast-engine gate: current (--engine fast) sweep must be at "
        "least FLOOR times faster than baseline (--engine scalar); "
        "replaces the regression comparison",
    )
    parser.add_argument(
        "--min-scheme-speedup", type=float, default=None, metavar="FLOOR",
        help="with --min-speedup: also gate every per-scheme timing at "
        "FLOOR (off by default; short timings are noisy)",
    )
    args = parser.parse_args(argv)
    if args.max_overhead is not None and args.min_speedup is not None:
        print(
            "error: --max-overhead and --min-speedup are mutually "
            "exclusive gates",
            file=sys.stderr,
        )
        return 2

    snapshots = {}
    for label, path in (("baseline", args.baseline), ("current", args.current)):
        try:
            snapshots[label] = bench.load_snapshot(path)
        except OSError as exc:
            print(f"error: cannot read {label} snapshot: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(
                f"error: {label} snapshot {path} is invalid: {exc}",
                file=sys.stderr,
            )
            return 2
    baseline = snapshots["baseline"]
    current = snapshots["current"]

    for label, snap in (("baseline", baseline), ("current", current)):
        plat = snap.get("platform", {})
        sweep = snap.get("sweep") or {}
        print(
            f"{label}: generated={snap['generated']} "
            f"cpu_count={plat.get('cpu_count', sweep.get('cpu_count', '?'))} "
            f"sweep_min={sweep.get('wall_seconds', {}).get('min', 'n/a')}"
        )

    missing = [
        label
        for label, snap in (("baseline", baseline), ("current", current))
        if not snap.get("sweep")
    ]
    if missing:
        where = " and ".join(missing)
        if not args.allow_missing_sweep:
            print(
                f"error: sweep section missing from {where} snapshot; the "
                "sweep gate would be vacuous.  Re-measure with the sweep "
                "enabled, or pass --allow-missing-sweep to compare "
                "per-scheme timings only.",
                file=sys.stderr,
            )
            return 2
        print(
            f"notice: sweep section missing from {where} snapshot; "
            "sweep gate skipped (--allow-missing-sweep)"
        )

    if args.max_overhead is not None:
        return check_overhead(baseline, current, args.max_overhead)

    if args.min_speedup is not None:
        return check_min_speedup(
            baseline, current, args.min_speedup, args.min_scheme_speedup
        )

    # Engine tiers time differently by construction (the fast sweep is
    # gated to be >=2x the scalar one), so a plain regression compare
    # across tiers -- e.g. a bench_*_scalar.json baseline against a
    # bench_*_fast.json head -- is always apples-to-oranges.
    base_engine = baseline.get("platform", {}).get("engine", "scalar")
    cur_engine = current.get("platform", {}).get("engine", "scalar")
    if base_engine != cur_engine:
        print(
            "error: snapshots were measured on different engines "
            f"(baseline {base_engine!r}, current {cur_engine!r}); the "
            "regression tolerances only apply within one tier.  Compare "
            "tiers with --min-speedup instead, or re-measure both "
            "snapshots with the same --engine.",
            file=sys.stderr,
        )
        return 2

    regressions = bench.compare_snapshots(
        baseline,
        current,
        tolerance=args.scheme_tolerance,
        sweep_tolerance=args.sweep_tolerance,
    )
    if regressions:
        for line in regressions:
            print(f"REGRESSION: {line}", file=sys.stderr)
        return 1
    print(
        f"no regressions (sweep tolerance {args.sweep_tolerance:.0%}, "
        f"scheme tolerance {args.scheme_tolerance:.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
