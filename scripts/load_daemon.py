#!/usr/bin/env python
"""Daemon load driver: spawn, flood, verify parity, shut down cleanly.

The CI ``daemon`` job's workhorse (and a developer tool for bigger
scales):

1. spawn ``python -m repro serve --socket PATH`` as a subprocess;
2. drive ``--tenants`` concurrent tenant sessions (mixed scalar/fast
   shards by default) over ``--connections`` multiplexed connections;
3. re-run every tenant's exact trace in-process and assert the
   daemon-served observable digests are byte-identical;
4. SIGTERM the daemon and assert a clean exit: status 0, socket
   unlinked, no orphan process.

Exit status: 0 all green, 1 parity/load failure, 2 daemon lifecycle
failure.  The ``repro-load/v1`` report lands at ``--output`` either
way (CI uploads it as an artifact).

Usage:
    PYTHONPATH=src python scripts/load_daemon.py \
        --tenants 64 --connections 8 --engines mixed \
        --duration 400 --output load_report.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import socket as socketlib
import subprocess
import sys
import tempfile
import time

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
sys.path.insert(0, REPO_SRC)

from repro.service.load import run_load  # noqa: E402


def wait_for_socket(path: str, proc, timeout: float = 30.0) -> None:
    """Block until the daemon accepts connections (or died trying)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon exited with {proc.returncode} before listening"
            )
        if os.path.exists(path):
            probe = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
            try:
                probe.connect(path)
                return
            except OSError:
                pass
            finally:
                probe.close()
        time.sleep(0.05)
    raise RuntimeError(f"daemon did not listen on {path} within {timeout}s")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tenants", type=int, default=64)
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument(
        "--engines", choices=["scalar", "fast", "mixed"], default="mixed"
    )
    parser.add_argument("--duration", type=float, default=400.0)
    parser.add_argument("--output", default="load_report.json")
    parser.add_argument(
        "--shutdown-timeout", type=float, default=30.0,
        help="seconds the daemon gets to exit after SIGTERM",
    )
    parser.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="run the daemon with durable tenant journals under DIR and "
        "gate shutdown on the graceful-drain line",
    )
    args = parser.parse_args(argv)

    # Unix socket paths are limited to ~104 bytes: keep it short.
    rundir = tempfile.mkdtemp(prefix="repro-load-", dir="/tmp")
    sock = os.path.join(rundir, "d.sock")

    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    serve_args = [sys.executable, "-m", "repro", "serve", "--socket", sock]
    if args.state_dir:
        serve_args += ["--state-dir", args.state_dir]
    proc = subprocess.Popen(
        serve_args,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    status = 0
    report = {}
    try:
        wait_for_socket(sock, proc)
        print(
            f"daemon up (pid {proc.pid}); driving {args.tenants} tenants "
            f"over {args.connections} connections ({args.engines} engines)"
        )
        report = asyncio.run(
            run_load(
                tenants=args.tenants,
                connections=args.connections,
                engines=args.engines,
                duration=args.duration,
                socket_path=sock,
                progress=lambda line: print(f"  {line}", flush=True),
            )
        )
        print(
            f"sessions {report['sessions_completed']}/{report['tenants']}, "
            f"requests {report['requests_served']}, engines "
            f"{report['engines']}, parity {report['parity_checked']} "
            f"checked, drive {report['drive_seconds']:.2f}s"
        )
        for line in report["failures"][:20]:
            print(f"FAIL {line}", file=sys.stderr)
        if not report["ok"]:
            status = 1
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        status = 2
    finally:
        # ---- clean-shutdown gate ----
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=args.shutdown_timeout)
            except subprocess.TimeoutExpired:
                print(
                    "error: daemon ignored SIGTERM (orphan process)",
                    file=sys.stderr,
                )
                proc.kill()
                proc.wait()
                status = max(status, 2)
        out = proc.stdout.read() if proc.stdout else ""
        if proc.returncode != 0:
            print(
                f"error: daemon exited {proc.returncode}; output:\n{out}",
                file=sys.stderr,
            )
            status = max(status, 2)
        elif "shut down cleanly" not in out:
            print(
                "error: daemon exited 0 without the clean-shutdown line",
                file=sys.stderr,
            )
            status = max(status, 2)
        elif args.state_dir and "drained" not in out:
            print(
                "error: daemon exited 0 without the graceful-drain line",
                file=sys.stderr,
            )
            status = max(status, 2)
        if os.path.exists(sock):
            print(
                f"error: socket {sock} still exists after shutdown",
                file=sys.stderr,
            )
            status = max(status, 2)
        else:
            try:
                os.rmdir(rundir)
            except OSError:
                pass

    report.setdefault("schema", "repro-load/v1")
    report["daemon_exit"] = proc.returncode
    report["clean_shutdown"] = status < 2
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
    print(f"load report -> {args.output}")
    print("PASS" if status == 0 else "FAIL")
    return status


if __name__ == "__main__":
    sys.exit(main())
