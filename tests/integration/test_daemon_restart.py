"""Daemon durability: restart rehydration, resync, torn tails, overload.

In-process counterpart of ``python -m repro chaos --mode daemon``:
two :class:`ServiceDaemon` instances share a ``--state-dir`` and the
first is torn down under a live client.  Because every journal append
is fsync'd *before* the response leaves the daemon, a graceful close
and a SIGKILL leave identical journal bytes -- so these tests exercise
the same rehydration code paths as the subprocess chaos harness, at
unit-test speed.
"""

import asyncio
import os
import tempfile
import uuid

import pytest

from repro.service import protocol
from repro.service.chaos import dedupe_rows
from repro.service.client import AsyncServiceClient, ServiceError
from repro.service.daemon import ServiceDaemon
from repro.service.load import inprocess_digest
from repro.service.store import TenantStore

DURATION = 300.0
SVC_KEY = b"svc-key"


def short_socket_path():
    return os.path.join(
        tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:10]}.sock"
    )


def make_daemon(path, state, **kwargs):
    return ServiceDaemon(
        socket_path=path, service_secret=SVC_KEY, state_dir=state, **kwargs
    )


def restart_story(coro):
    """Run ``coro(path, state)`` with socket + state-dir scaffolding."""
    path = short_socket_path()
    state = tempfile.mkdtemp(prefix="repro-restart-")
    try:
        return asyncio.run(coro(path, state))
    finally:
        assert not os.path.exists(path), "socket must be unlinked"


def counter(daemon, name):
    return daemon.obs.registry.snapshot().get(f"service.{name}", 0)


def params_for(seed, window):
    return {
        "scenario": "cc1", "scheme": "ours", "engine": "scalar",
        "duration": DURATION, "seed": seed, "window": window,
    }


async def open_tenant(client, tenant, secret, params):
    return await client.open(
        tenant, secret,
        scenario=params["scenario"], scheme=params["scheme"],
        engine=params["engine"], duration=params["duration"],
        seed=params["seed"],
    )


# ----------------------------------------------------------------------
# Rehydration + parity
# ----------------------------------------------------------------------

def test_restart_resumes_with_byte_identical_digests():
    async def scenario(path, state):
        params = params_for(seed=3, window=40)
        secret = b"k1"
        d1 = make_daemon(path, state)
        await d1.start()
        client = AsyncServiceClient(socket_path=path, retries=6)
        await client.connect()
        try:
            await open_tenant(client, "t1", secret, params)
            rows = []
            first = await client.step("t1", secret, requests=40)
            rows.extend(first["observables"])
            drained = await d1.close()  # journals survive the daemon
            assert drained == 1

            d2 = make_daemon(path, state)
            await d2.start()
            # Same client, same seq book: the step fails over, the
            # client reconnects, re-attaches, the daemon rehydrates.
            done, digest = False, None
            while not done:
                stepped = await client.step("t1", secret, requests=40)
                rows.extend(stepped["observables"])
                done, digest = stepped["done"], stepped["digest"]
            assert counter(d2, "sessions_rehydrated") == 1
            report = await client.report("t1", secret)
            await d2.close()

            clean_digest, clean_rows = inprocess_digest(
                params, "t1", secret
            )
            assert digest == clean_digest
            assert dedupe_rows(rows) == clean_rows
            assert protocol.verify_report(report, SVC_KEY)
            assert report["observables"]["sha256"] == clean_digest
        finally:
            await client.close_connection()

    restart_story(scenario)


def test_fresh_client_resyncs_at_the_daemon_watermark():
    async def scenario(path, state):
        params = params_for(seed=5, window=30)
        secret = b"k2"
        d1 = make_daemon(path, state)
        await d1.start()
        async with AsyncServiceClient(socket_path=path) as client:
            await open_tenant(client, "t2", secret, params)
            await client.step("t2", secret, requests=30)
        await d1.close()

        d2 = make_daemon(path, state)
        await d2.start()
        # A brand-new client (fresh seq book, e.g. a new process) must
        # resync through open: the reattach response carries the
        # persisted watermark and the restored issued count.
        async with AsyncServiceClient(socket_path=path) as client:
            attach = await client.open("t2", secret)
            assert attach["attached"] is True
            assert attach["rehydrated"] is True
            assert attach["snapshot"]["issued"] == 30
            assert client._seqs._seqs["t2"] >= attach["seq"]
            stepped = await client.step("t2", secret, requests=30)
            assert stepped["issued"] == 60
            assert stepped["observables"][0][0] == 30  # row seq continues
        await d2.close()

    restart_story(scenario)


def test_rehydration_rejects_the_wrong_key():
    async def scenario(path, state):
        params = params_for(seed=1, window=25)
        d1 = make_daemon(path, state)
        await d1.start()
        async with AsyncServiceClient(socket_path=path) as client:
            await open_tenant(client, "t3", b"right", params)
        await d1.close()

        d2 = make_daemon(path, state)
        await d2.start()
        async with AsyncServiceClient(socket_path=path) as client:
            with pytest.raises(ServiceError, match="another key"):
                await client.open("t3", b"wrong")
        await d2.close()

    restart_story(scenario)


# ----------------------------------------------------------------------
# Duplicate and stale envelopes across a restart
# ----------------------------------------------------------------------

def test_duplicate_step_after_restart_is_a_no_op():
    async def scenario(path, state):
        params = params_for(seed=7, window=20)
        secret = b"k3"
        d1 = make_daemon(path, state)
        await d1.start()
        client = AsyncServiceClient(socket_path=path, retries=6)
        await client.connect()
        try:
            await open_tenant(client, "t4", secret, params)
            first = await client.step("t4", secret, requests=20)
            await d1.close()

            d2 = make_daemon(path, state)
            await d2.start()
            # The retry of the final committed window: rewind the book
            # so the next envelope is byte-identical to the one whose
            # response "got lost" in the crash.
            client._seqs._seqs["t4"] -= 1
            again = await client.step("t4", secret, requests=20)
            assert again == first  # served from the rehydrated cache
            assert counter(d2, "duplicate_replays") == 1
            nxt = await client.step("t4", secret, requests=20)
            assert nxt["issued"] == 40  # applied exactly once
            await d2.close()
        finally:
            await client.close_connection()

    restart_story(scenario)


def test_stale_seq_after_restart_is_recoverable():
    async def scenario(path, state):
        params = params_for(seed=9, window=20)
        secret = b"k4"
        d1 = make_daemon(path, state)
        await d1.start()
        client = AsyncServiceClient(socket_path=path, retries=6)
        await client.connect()
        try:
            await open_tenant(client, "t5", secret, params)
            await client.step("t5", secret, requests=20)
            await d1.close()

            d2 = make_daemon(path, state)
            await d2.start()
            # A *different* envelope at the committed seq is a forgery,
            # not a retry: rejected recoverably, session intact.
            client._seqs._seqs["t5"] -= 1
            with pytest.raises(ServiceError, match="stale seq"):
                await client.step("t5", secret, requests=99)
            stepped = await client.step("t5", secret, requests=20)
            assert stepped["issued"] == 40
            await d2.close()
        finally:
            await client.close_connection()

    restart_story(scenario)


# ----------------------------------------------------------------------
# Torn journal tail
# ----------------------------------------------------------------------

def test_torn_tail_regresses_then_heals_with_parity():
    async def scenario(path, state):
        params = params_for(seed=11, window=25)
        secret = b"k5"
        d1 = make_daemon(path, state)
        await d1.start()
        client = AsyncServiceClient(socket_path=path, retries=6)
        await client.connect()
        try:
            await open_tenant(client, "t6", secret, params)
            rows = []
            for _ in range(2):
                stepped = await client.step("t6", secret, requests=25)
                rows.extend(stepped["observables"])
            await d1.close()

            # Tear the final committed entry mid-line (a kill inside
            # the append's write()).
            journal_path = TenantStore(state).path_for("t6")
            lines = journal_path.read_text(encoding="utf-8").splitlines(
                keepends=True
            )
            journal_path.write_text(
                "".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2],
                encoding="utf-8",
            )

            d2 = make_daemon(path, state)
            await d2.start()
            attach = await client.open("t6", secret)
            assert attach["rehydrated"] is True
            assert attach["dropped_entries"] == 1
            assert attach["snapshot"]["issued"] == 25  # regressed by one
            # Healed on disk: a clean prefix, nothing dropped.
            reloaded = TenantStore(state).load("t6")
            assert reloaded is not None and reloaded[0].dropped_entries == 0
            done, digest = False, None
            while not done:
                stepped = await client.step("t6", secret, requests=25)
                rows.extend(stepped["observables"])
                done, digest = stepped["done"], stepped["digest"]
            await d2.close()

            clean_digest, clean_rows = inprocess_digest(
                params, "t6", secret
            )
            assert digest == clean_digest
            assert dedupe_rows(rows) == clean_rows
        finally:
            await client.close_connection()

    restart_story(scenario)


def test_close_discards_persisted_state():
    async def scenario(path, state):
        params = params_for(seed=2, window=20)
        secret = b"k6"
        d1 = make_daemon(path, state)
        await d1.start()
        store = TenantStore(state)
        async with AsyncServiceClient(socket_path=path) as client:
            await open_tenant(client, "t7", secret, params)
            assert store.exists("t7")
            await client.close("t7", secret)
            assert not store.exists("t7")
        await d1.close()

        d2 = make_daemon(path, state)
        await d2.start()
        async with AsyncServiceClient(socket_path=path) as client:
            # The name is free again: open creates a *fresh* session.
            opened = await open_tenant(client, "t7", secret, params)
            assert opened["attached"] is False
        await d2.close()

    restart_story(scenario)


# ----------------------------------------------------------------------
# Overload protection
# ----------------------------------------------------------------------

def test_max_tenants_sheds_typed_and_retryable():
    async def scenario(path, state):
        d = make_daemon(path, state, max_tenants=2)
        await d.start()
        params = params_for(seed=0, window=20)
        async with AsyncServiceClient(socket_path=path) as client:
            await open_tenant(client, "a", b"s", params)
            await open_tenant(client, "b", b"s", params)
            with pytest.raises(ServiceError) as excinfo:
                await open_tenant(client, "c", b"s", params)
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.retry_after > 0
            # Shedding is not fatal: existing tenants keep working and
            # a freed slot admits the retry.
            await client.close("a", b"s")
            opened = await open_tenant(client, "c", b"s", params)
            assert opened["attached"] is False
        assert counter(d, "shed_requests") == 1
        await d.close()

    restart_story(scenario)


def test_step_byte_budget_sheds_oversized_windows():
    async def scenario(path, state):
        d = make_daemon(path, state, max_step_bytes=64 * 32)  # ~32 rows
        await d.start()
        params = params_for(seed=0, window=20)
        async with AsyncServiceClient(socket_path=path) as client:
            await open_tenant(client, "a", b"s", params)
            with pytest.raises(ServiceError) as excinfo:
                await client.step("a", b"s", requests=100)
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.retry_after is not None
            # A whole-run drain (no window) must also be bounded.
            with pytest.raises(ServiceError, match="budget"):
                await client.step("a", b"s")
            stepped = await client.step("a", b"s", requests=30)
            assert stepped["issued"] == 30
        assert counter(d, "shed_requests") == 2
        await d.close()

    restart_story(scenario)


def test_max_inflight_sheds_at_the_connection_loop():
    async def scenario(path, state):
        d = make_daemon(path, state, max_inflight=1)
        await d.start()
        params = params_for(seed=0, window=20)
        async with AsyncServiceClient(socket_path=path) as client:
            await open_tenant(client, "a", b"s", params)
            # Deterministic saturation: pin the gauge rather than racing
            # real concurrent requests.
            d._inflight = 1
            with pytest.raises(ServiceError) as excinfo:
                await client.step("a", b"s", requests=20)
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.retry_after > 0
            d._inflight = 0
            stepped = await client.step("a", b"s", requests=20)
            assert stepped["issued"] == 20
        assert counter(d, "shed_requests") == 1
        await d.close()

    restart_story(scenario)

    # And the stats surface reports the limits + gauge.
    async def stats_scenario(path, state):
        d = make_daemon(path, state, max_inflight=7, max_tenants=9)
        await d.start()
        async with AsyncServiceClient(socket_path=path) as client:
            stats = await client.request("stats")
        assert stats["limits"]["max_inflight"] == 7
        assert stats["limits"]["max_tenants"] == 9
        assert stats["persisted_tenants"] == 0
        await d.close()

    restart_story(stats_scenario)
