"""The paper's im2col misprediction scenario (Sec. 4.4, handler note).

"As for convolution operations, the access patterns of tensors can
vary significantly depending on where the im2col operation (either in
CPU or NPU) is performed."  We stage exactly that: a tensor region is
first streamed coarsely by the NPU (promoted), then the CPU takes over
im2col and accesses it with a strided, sparse pattern -- the stored
granularity is now wrong, the misprediction handler must pay once and
scale the region down, and data must stay correct throughout (checked
on the functional layer).
"""

import pytest

from repro.common.config import SoCConfig
from repro.common.constants import CHUNK_BYTES, GRANULARITIES
from repro.common.types import AccessType, MemoryRequest
from repro.crypto.keys import KeySet
from repro.mem.channel import MemoryChannel
from repro.schemes.multigran import MultiGranularScheme
from repro.secure_memory import SecureMemory

REGION = 1 << 20


def npu_phase(memory_like_write):
    """NPU writes the tensor as one coarse stream."""
    for line in range(512):
        memory_like_write(line * 64)


def cpu_im2col_lines():
    """Strided column gather: every 9th line, repeatedly."""
    return [((line * 9) % 512) * 64 for line in range(80)]


class TestFunctionalIm2col:
    def test_data_survives_the_pattern_change(self, keys):
        memory = SecureMemory(REGION, keys=keys, policy="multigranular")
        tensor = bytes(range(256)) * (CHUNK_BYTES // 256)
        memory.write(0, tensor)  # NPU streams the tensor
        assert memory.granularity_of(0) == GRANULARITIES[3]

        # CPU im2col: strided sparse reads + occasional patch writes,
        # with enough idle time between batches for re-detection.
        for batch in range(3):
            memory.advance(20_000)
            for addr in cpu_im2col_lines():
                expected = tensor[addr : addr + 64]
                assert memory.read(addr, 64) == expected
            memory.write(64 * 9, b"!" * 64)
            tensor = tensor[: 64 * 9] + b"!" * 64 + tensor[64 * 10 :]

        # All data is still exactly right after every re-keying.
        assert memory.read(0, CHUNK_BYTES) == tensor

    def test_region_demotes_under_sparse_reuse(self, keys):
        memory = SecureMemory(REGION, keys=keys, policy="multigranular")
        memory.write(0, bytes(CHUNK_BYTES))
        assert memory.granularity_of(0) == GRANULARITIES[3]
        for _ in range(4):
            memory.advance(20_000)
            for addr in cpu_im2col_lines():
                memory.read(addr, 64)
        # Sparse windows re-detect finer: no longer whole-chunk.
        assert memory.granularity_of(0) < GRANULARITIES[3]

    def test_switches_were_paid_not_free(self, keys):
        memory = SecureMemory(REGION, keys=keys, policy="multigranular")
        memory.write(0, bytes(CHUNK_BYTES))
        for _ in range(3):
            memory.advance(20_000)
            for addr in cpu_im2col_lines():
                memory.read(addr, 64)
        assert memory.switching.total_switches >= 2
        assert "coarse_to_fine" in memory.switching.events_by_category


class TestTimingIm2col:
    def test_handler_contains_the_damage(self):
        """After the one-time scale-down, sparse reads stop paying
        region-sized debts: the second im2col batch moves less data
        than the first."""
        config = SoCConfig()
        scheme = MultiGranularScheme(config, REGION)
        channel = MemoryChannel(config.memory)
        cycle = 0.0

        def go(addr, is_write, gap=2.0):
            nonlocal cycle
            cycle += gap
            req = MemoryRequest(
                int(cycle), addr, 64,
                AccessType.WRITE if is_write else AccessType.READ,
            )
            scheme.process(req, cycle, channel)

        for line in range(512):  # NPU stream (write role)
            go(line * 64, True, gap=1.0)
        for line in range(512):  # re-stream -> promoted
            go(line * 64, True, gap=1.0)

        def batch_bytes():
            before = scheme.stats.traffic.total_bytes
            for addr in cpu_im2col_lines():
                go(addr, False, gap=30.0)
            return scheme.stats.traffic.total_bytes - before

        cycle += 20_000
        first = batch_bytes()
        cycle += 20_000
        second = batch_bytes()
        cycle += 20_000
        third = batch_bytes()
        assert min(second, third) <= first
