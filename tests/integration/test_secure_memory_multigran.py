"""Multi-granular functional behaviour: promotion, demotion, merged MACs."""

import pytest

from repro.common.constants import CHUNK_BYTES, GRANULARITIES
from repro.common.errors import SecurityError
from repro.crypto.keys import KeySet
from repro.secure_memory import SecureMemory

REGION = 1 << 20
CHUNK_DATA = bytes(range(256)) * (CHUNK_BYTES // 256)


@pytest.fixture()
def memory(keys):
    return SecureMemory(REGION, keys=keys, policy="multigranular")


def stream_chunk(memory, base=0, data=CHUNK_DATA):
    memory.write(base, data)


class TestPromotion:
    def test_full_stream_promotes_to_chunk_granularity(self, memory):
        stream_chunk(memory)
        assert memory.granularity_of(0) == GRANULARITIES[3]

    def test_promoted_data_survives(self, memory):
        stream_chunk(memory)
        assert memory.read(0, CHUNK_BYTES) == CHUNK_DATA

    def test_promotion_is_per_chunk(self, memory):
        stream_chunk(memory, base=0)
        assert memory.granularity_of(CHUNK_BYTES) == GRANULARITIES[0]

    def test_partition_stream_promotes_to_512(self, memory):
        base = 2 * CHUNK_BYTES
        # Stream one 512B partition repeatedly within the window.
        for _ in range(3):
            memory.write(base, b"p" * 512)
        memory.advance(20_000)  # expire the tracker entry
        memory.write(base + CHUNK_BYTES, b"x" * 64)  # unrelated access
        memory.write(base, b"q" * 512)
        assert memory.granularity_of(base) in (
            GRANULARITIES[1],
            GRANULARITIES[2],
        )
        assert memory.read(base, 512) == b"q" * 512

    def test_rewrite_of_promoted_chunk_still_roundtrips(self, memory):
        stream_chunk(memory)
        stream_chunk(memory, data=bytes(reversed(CHUNK_DATA)))
        assert memory.read(0, CHUNK_BYTES) == bytes(reversed(CHUNK_DATA))

    def test_partial_write_into_promoted_chunk(self, memory):
        stream_chunk(memory)
        memory.write(64, b"!" * 64)
        expected = CHUNK_DATA[:64] + b"!" * 64 + CHUNK_DATA[128:]
        assert memory.read(0, CHUNK_BYTES) == expected


class TestMergedMacSecurity:
    def test_tamper_any_line_of_promoted_chunk_detected(self, memory):
        stream_chunk(memory)
        assert memory.granularity_of(0) == GRANULARITIES[3]
        memory.tamper_data(64 * 300)
        with pytest.raises(SecurityError):
            memory.read(0, 64)  # any read verifies the merged MAC

    def test_tamper_merged_mac_detected(self, memory):
        stream_chunk(memory)
        memory.tamper_mac(0)
        with pytest.raises(SecurityError):
            memory.read(0, 64)

    def test_replay_of_promoted_region_line_detected(self, memory):
        stream_chunk(memory)
        old_line = memory.dram.snapshot_line(0)
        stream_chunk(memory, data=bytes(reversed(CHUNK_DATA)))
        memory.dram.replay_line(0, old_line)
        with pytest.raises(SecurityError):
            memory.read(0, 64)

    def test_shared_counter_used_by_whole_region(self, memory):
        stream_chunk(memory)
        level = GRANULARITIES.index(memory.granularity_of(0))
        shared = memory.tree.read_counter(0, level=level)
        assert shared > 0


class TestSwitchAccounting:
    def test_switch_events_recorded(self, memory):
        stream_chunk(memory)
        assert memory.switches >= 1
        assert memory.switching.total_switches == memory.switches

    def test_correct_prediction_dominates(self, memory):
        stream_chunk(memory)
        stream_chunk(memory)
        ratios = memory.switching.ratios()
        assert ratios["correct_prediction"] > 0.9

    def test_fixed_policy_never_switches(self, keys):
        memory = SecureMemory(REGION, keys=keys, policy="fixed")
        memory.write(0, CHUNK_DATA)
        assert memory.switches == 0
        assert memory.granularity_of(0) == GRANULARITIES[0]


class TestPolicyValidation:
    def test_unknown_policy_rejected(self, keys):
        with pytest.raises(ValueError):
            SecureMemory(REGION, keys=keys, policy="magic")
