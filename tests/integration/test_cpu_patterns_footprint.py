"""CPU pattern walkers + functional metadata-footprint accounting."""

import pytest

from repro.common.config import SoCConfig
from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES, GRANULARITIES
from repro.common.errors import ConfigError
from repro.common.types import DeviceKind
from repro.crypto.keys import KeySet
from repro.schemes.registry import build_scheme
from repro.secure_memory import SecureMemory
from repro.sim.soc import simulate
from repro.workloads.cpu_patterns import (
    CPU_PATTERNS,
    bvh_traversal,
    generate_pattern_trace,
    pointer_chase,
    stream_triad,
)

SMALL = {
    "bw": {"array_bytes": 1 << 19, "iterations": 1},
    "mcf": {"nodes": 4096, "hops": 800},
    "ray": {"leaves": 1024, "rays": 120},
    "xal": {"text_bytes": 1 << 19, "symbols": 4096},
    "gcc": {"text_bytes": 1 << 19, "symbols": 4096},
    "sc": {"points": 2000, "centers": 64},
}


class TestCpuPatterns:
    def test_registry_covers_cpu_suite(self):
        assert {"bw", "mcf", "ray", "xal", "gcc", "sc"} <= set(CPU_PATTERNS)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigError):
            generate_pattern_trace("spice")

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_patterns_generate_valid_cpu_traces(self, name):
        trace = generate_pattern_trace(name, **SMALL[name])
        assert len(trace) > 50
        assert trace.spec.kind is DeviceKind.CPU
        assert all(a % CACHELINE_BYTES == 0 for _, a, _ in trace.entries)
        assert trace.max_addr <= trace.base_addr + trace.spec.footprint_bytes

    def test_triad_is_three_marching_streams(self):
        trace = stream_triad(array_bytes=1 << 18, iterations=1)
        # Exactly one write per two reads, in a regular cadence.
        writes = sum(1 for _, _, w in trace.entries if w)
        assert writes * 3 == len(trace)

    def test_pointer_chase_is_irregular(self):
        trace = pointer_chase(nodes=4096, hops=500)
        addresses = [a for _, a, w in trace.entries if not w]
        strides = {y - x for x, y in zip(addresses, addresses[1:])}
        assert len(strides) > 100

    def test_bvh_descent_reuses_top_levels(self):
        trace = bvh_traversal(leaves=1024, rays=100)
        reads = [a for _, a, w in trace.entries if not w]
        # The root node is read once per ray.
        root_reads = sum(1 for a in reads if a == 64)
        assert root_reads >= 100

    def test_patterns_run_through_schemes(self):
        config = SoCConfig()
        trace = generate_pattern_trace("mcf", **SMALL["mcf"])
        result = simulate([trace], build_scheme("ours", config), config)
        assert result.devices[0].requests == len(trace)


class TestMetadataFootprint:
    def test_promotion_shrinks_stored_metadata(self):
        data = bytes(CHUNK_BYTES)
        footprints = {}
        for policy in ("fixed", "multigranular"):
            memory = SecureMemory(
                1 << 20, keys=KeySet.from_seed(b"fp"), policy=policy
            )
            memory.write(0, data)
            memory.write(0, data)  # re-stream -> promote (dynamic)
            assert memory.read(0, CHUNK_BYTES) == data
            footprints[policy] = memory.metadata_footprint()

        fixed = footprints["fixed"]
        multi = footprints["multigranular"]
        # One chunk fine: 512 MACs (4KB) + 64 leaf nodes + uppers.
        assert fixed["mac_bytes"] == 512 * 8
        assert multi["mac_bytes"] < fixed["mac_bytes"] / 100
        assert multi["tree_node_bytes"] < fixed["tree_node_bytes"] / 10
        assert multi["coverage_by_granularity"].get(GRANULARITIES[3]) == (
            CHUNK_BYTES
        )

    def test_pruned_subtree_nodes_are_reclaimed(self):
        memory = SecureMemory(
            1 << 20, keys=KeySet.from_seed(b"prune"), policy="multigranular"
        )
        memory.write(0, bytes(CHUNK_BYTES))
        assert memory.granularity_of(0) == GRANULARITIES[3]
        # Every node strictly below the promotion level inside the
        # chunk is gone; reads still verify.
        for level in range(3):
            span = memory.geometry.span_of_level(level)
            for node in range(CHUNK_BYTES // span):
                assert (level, node) not in memory.tree._payloads
        assert memory.read(0, 64) == bytes(64)

    def test_scale_down_restores_fine_metadata(self):
        memory = SecureMemory(
            1 << 20, keys=KeySet.from_seed(b"down"), policy="multigranular"
        )
        memory.write(0, bytes(CHUNK_BYTES))
        promoted = memory.metadata_footprint()["total_bytes"]
        # Sparse touches demote via detection: expire the window, then
        # touch a single line repeatedly across windows.
        for _ in range(4):
            memory.advance(20_000)
            memory.write(64, b"!" * 64)
        demoted = memory.metadata_footprint()["total_bytes"]
        assert demoted >= promoted  # finer coverage stores more again
        assert memory.read(64, 64) == b"!" * 64
