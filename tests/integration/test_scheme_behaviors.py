"""Scheme-specific behavioural tests: the mechanisms behind the numbers."""

import pytest

from repro.common.config import SoCConfig
from repro.common.constants import CHUNK_BYTES, GRANULARITIES
from repro.common.types import AccessType, MemoryRequest, MetadataKind
from repro.mem.channel import MemoryChannel
from repro.schemes.adaptive import AdaptiveMacScheme
from repro.schemes.common_counters import CommonCountersScheme
from repro.schemes.conventional import ConventionalScheme
from repro.schemes.multigran import MultiGranularScheme
from repro.subtree.bmf import SubtreeRootCache

REGION = 64 << 20


@pytest.fixture()
def config():
    return SoCConfig()


def drive(scheme, config, accesses, start=0.0, step=1.0):
    channel = MemoryChannel(config.memory)
    cycle = start
    for addr, is_write in accesses:
        cycle += step
        req = MemoryRequest(
            int(cycle), addr, 64,
            AccessType.WRITE if is_write else AccessType.READ,
        )
        scheme.process(req, cycle, channel)
    return channel


def stream_chunk(chunk_index, write=False):
    base = chunk_index * CHUNK_BYTES
    return [(base + line * 64, write) for line in range(512)]


class TestPromotionMechanics:
    def test_restream_costs_far_less_metadata(self, config):
        scheme = MultiGranularScheme(config, REGION)
        drive(scheme, config, stream_chunk(0))
        first_ctr = scheme.stats.traffic.bytes_by_kind[MetadataKind.COUNTER]
        first_mac = scheme.stats.traffic.bytes_by_kind[MetadataKind.MAC]
        scheme.reset_stats()
        drive(scheme, config, stream_chunk(0), start=100_000)
        second_ctr = scheme.stats.traffic.bytes_by_kind[MetadataKind.COUNTER]
        second_mac = scheme.stats.traffic.bytes_by_kind[MetadataKind.MAC]
        assert second_ctr < first_ctr / 4
        assert second_mac < first_mac / 4

    def test_conventional_restream_pays_again(self, config):
        scheme = ConventionalScheme(config, REGION)
        drive(scheme, config, stream_chunk(0))
        first = scheme.stats.traffic.metadata_bytes
        scheme.reset_stats()
        # Thrash the metadata cache in between so re-streaming misses.
        drive(
            scheme, config,
            [(CHUNK_BYTES * (2 + i), False) for i in range(2000)],
            start=50_000,
        )
        scheme.reset_stats()
        drive(scheme, config, stream_chunk(0), start=200_000)
        again = scheme.stats.traffic.metadata_bytes
        assert again > first / 2  # no learning: pays the full fine cost

    def test_promoted_walk_is_shorter(self, config):
        # Thrash the metadata cache between streams so the re-stream
        # must refetch: ours refetches one promoted node, conventional
        # refetches the chunk's 64 leaf lines (plus uppers).
        thrash = [(CHUNK_BYTES * (4 + i), False) for i in range(2000)]

        def fetches(scheme):
            drive(scheme, config, stream_chunk(0))
            drive(scheme, config, thrash, start=50_000)
            scheme.stats.serialized_level_fetches = 0
            drive(scheme, config, stream_chunk(0), start=300_000)
            return scheme.stats.serialized_level_fetches

        promoted = fetches(MultiGranularScheme(config, REGION))
        baseline = fetches(ConventionalScheme(config, REGION))
        assert promoted < baseline / 4


class TestSubtreeRootCacheEffect:
    def test_cached_roots_shorten_walks(self, config):
        plain = ConventionalScheme(config, REGION)
        forest = ConventionalScheme(
            config, REGION, subtree=SubtreeRootCache(entries=64, level=2)
        )
        pattern = stream_chunk(0) + stream_chunk(0)
        drive(plain, config, pattern)
        drive(forest, config, pattern)
        assert forest.subtree.hits > 0
        assert (
            forest.stats.serialized_level_fetches
            <= plain.stats.serialized_level_fetches
        )

    def test_write_walk_stops_at_cached_root(self, config):
        forest = ConventionalScheme(
            config, REGION, subtree=SubtreeRootCache(entries=4, level=2)
        )
        drive(forest, config, stream_chunk(0, write=True))
        writes_dirty = forest.metadata_cache.stats()["writebacks"]
        drive(forest, config, stream_chunk(0, write=True), start=50_000)
        assert forest.subtree.hits > 0
        assert forest.metadata_cache.stats()["writebacks"] >= writes_dirty


class TestCommonCountersMechanics:
    def test_shared_chunk_skips_counter_traffic(self, config):
        scheme = CommonCountersScheme(config, REGION)
        drive(scheme, config, stream_chunk(0))  # detect + admit
        scheme.reset_stats()
        drive(scheme, config, stream_chunk(0), start=100_000)
        ctr_bytes = scheme.stats.traffic.bytes_by_kind[MetadataKind.COUNTER]
        # Re-streaming a shared chunk needs no counter fetches beyond
        # the admission scans of newly detected chunks.
        assert scheme.shared_hits >= 512
        assert ctr_bytes < 100 * 64

    def test_capacity_churn_with_many_chunks(self, config):
        scheme = CommonCountersScheme(config, REGION, shared_counters=4)
        for chunk in range(8):
            drive(scheme, config, stream_chunk(chunk), start=chunk * 10_000)
        # More streamed chunks than slots -> repeated scans (the
        # paper's scalability critique of the 16-entry design).
        assert scheme.scans >= 8

    def test_macs_stay_fine_grained(self, config):
        scheme = CommonCountersScheme(config, REGION)
        drive(scheme, config, stream_chunk(0))
        hist = scheme.stats.granularity_hist.buckets
        # Counters may be shared (32KB) but the scheme's MAC path is
        # untouched; its granularity histogram tracks counters only.
        assert set(hist) <= {GRANULARITIES[0], GRANULARITIES[3]}


class TestAdaptiveMechanics:
    def test_dual_mac_promotes_to_page_only(self, config):
        scheme = AdaptiveMacScheme(config, REGION)
        drive(scheme, config, stream_chunk(0))
        drive(scheme, config, stream_chunk(0), start=100_000)
        hist = scheme.stats.granularity_hist.buckets
        assert hist.get(GRANULARITIES[2], 0) > 0  # 4KB pages appear
        assert hist.get(GRANULARITIES[3], 0) == 0  # never 32KB
        assert hist.get(GRANULARITIES[1], 0) == 0  # never 512B

    def test_counters_never_promoted(self, config):
        scheme = AdaptiveMacScheme(config, REGION)
        drive(scheme, config, stream_chunk(0))
        drive(scheme, config, stream_chunk(0), start=100_000)
        # Counter traffic stays fine-grained: the walk always starts at
        # level 0, so level-0 nodes keep getting fetched on re-streams.
        assert scheme.stats.traffic.bytes_by_kind[MetadataKind.COUNTER] > 0

    def test_coarse_macs_live_in_their_own_region(self, config):
        scheme = AdaptiveMacScheme(config, REGION)
        fine_line = scheme._mac_line_of(0, GRANULARITIES[0])
        coarse_line = scheme._mac_line_of(0, GRANULARITIES[2])
        assert coarse_line >= scheme.coarse_mac_base
        assert fine_line < scheme.coarse_mac_base
