"""Functional-layer edge cases: overflow, boundaries, interleavings."""

import pytest

from repro.common.constants import CHUNK_BYTES, GRANULARITIES
from repro.common.errors import CounterOverflowError, SecurityError
from repro.crypto.keys import KeySet
from repro.secure_memory import SecureMemory
from repro.tree.geometry import TreeGeometry
from repro.tree.integrity_tree import CounterTree

REGION = 1 << 20


@pytest.fixture()
def memory(keys):
    return SecureMemory(REGION, keys=keys, policy="multigranular")


class TestBoundaries:
    def test_write_spanning_chunk_boundary(self, memory):
        base = CHUNK_BYTES - 128
        data = bytes(range(256))
        memory.write(base, data)
        assert memory.read(base, 256) == data

    def test_read_spanning_promoted_and_fine_chunks(self, memory):
        memory.write(0, bytes(CHUNK_BYTES))          # chunk 0 -> promoted
        memory.write(CHUNK_BYTES, b"f" * 64)          # chunk 1 stays fine
        assert memory.granularity_of(0) == GRANULARITIES[3]
        assert memory.granularity_of(CHUNK_BYTES) == GRANULARITIES[0]
        combined = memory.read(CHUNK_BYTES - 64, 128)
        assert combined == bytes(64) + b"f" * 64

    def test_last_line_of_region(self, memory):
        memory.write(REGION - 64, b"z" * 64)
        assert memory.read(REGION - 64, 64) == b"z" * 64

    def test_unaligned_write_across_promoted_region(self, memory):
        memory.write(0, bytes(CHUNK_BYTES))
        memory.write_bytes(100, b"patch")
        assert memory.read_bytes(100, 5) == b"patch"
        assert memory.read_bytes(99, 1) == b"\0"

    def test_empty_unaligned_ops(self, memory):
        memory.write_bytes(10, b"")
        assert memory.read_bytes(10, 0) == b""


class TestInterleavings:
    def test_alternating_writes_between_two_chunks(self, memory):
        for i in range(20):
            memory.write(0, bytes([i]) * 64)
            memory.write(CHUNK_BYTES, bytes([255 - i]) * 64)
        assert memory.read(0, 64) == bytes([19]) * 64
        assert memory.read(CHUNK_BYTES, 64) == bytes([236]) * 64

    def test_promotion_of_one_chunk_does_not_disturb_another(self, memory):
        memory.write(2 * CHUNK_BYTES, b"q" * 64)
        memory.write(0, bytes(CHUNK_BYTES))  # promote chunk 0
        assert memory.read(2 * CHUNK_BYTES, 64) == b"q" * 64

    def test_many_small_writes_then_tamper_each(self, keys):
        memory = SecureMemory(REGION, keys=keys, policy="multigranular")
        lines = [64 * i * 7 for i in range(1, 12)]
        for addr in lines:
            memory.write(addr, addr.to_bytes(8, "little") * 8)
        for addr in lines:
            assert memory.read(addr, 64) == addr.to_bytes(8, "little") * 8
        memory.tamper_data(lines[5])
        with pytest.raises(SecurityError):
            memory.read(lines[5], 64)


class TestCounterOverflow:
    def test_overflow_raises_rather_than_wrapping(self, keys):
        tree = CounterTree(TreeGeometry.build(REGION), keys)
        tree.increment_counter(0)
        # Force the counter to the limit off-chip would be tampering;
        # instead seal it legitimately at the limit via set_counter.
        tree.set_counter(0, 0, 2**64 - 1)
        with pytest.raises(CounterOverflowError):
            tree.increment_counter(0)

    def test_freshness_overflow_raises(self, keys):
        tree = CounterTree(TreeGeometry.build(REGION), keys)
        tree.increment_counter(0)
        # The root is trusted on-chip state; pin its first freshness
        # slot at the limit -- the next update climbing through it must
        # refuse rather than wrap (a wrap would repeat node seals).
        tree._root[0] = 2**64 - 1
        with pytest.raises(CounterOverflowError):
            tree.increment_counter(0)


class TestSwitchAccountingExposure:
    def test_ratios_visible_after_mixed_run(self, memory):
        memory.write(0, bytes(CHUNK_BYTES))
        memory.advance(20_000)
        memory.write(64, b"x" * 64)
        ratios = memory.switching.ratios()
        assert 0.9 <= sum(ratios.values()) <= 1.0 + 1e-9
        assert memory.switching.misprediction_rate >= 0.0
