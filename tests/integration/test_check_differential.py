"""Differential harness end-to-end: clean replays, seeded bugs, goldens.

These tests prove the ``repro check`` safety net actually works: a
clean engine replays divergence-free, while deliberately broken layout
or detection code is caught and reported with the first mismatching
request named.
"""

import os

import pytest

from repro.check import golden, metamorphic
from repro.check.differential import DifferentialHarness, Divergence, DivergenceError
from repro.check.runner import inject_layout_bug, quick_specs
from repro.check.streams import StreamSpec, generate_stream

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "golden")


def _spec(profile, seed, ops, chunks=8):
    return StreamSpec(f"t-{profile}", profile, seed, ops, region_chunks=chunks)


def test_mixed_stream_replays_divergence_free():
    spec = _spec("mixed", seed=5, ops=250)
    harness = DifferentialHarness(spec.region_bytes, seed=spec.seed)
    harness.replay(generate_stream(spec))
    assert len(harness.records) == 250
    # The stream must actually exercise the multi-granular machinery.
    assert any(r["granularity"] > 64 for r in harness.records if "granularity" in r)


def test_injected_mac_layout_bug_is_caught_and_named():
    spec = _spec("mixed", seed=5, ops=250)
    ops = generate_stream(spec)
    with inject_layout_bug():
        harness = DifferentialHarness(spec.region_bytes, seed=spec.seed)
        with pytest.raises(DivergenceError) as excinfo:
            harness.replay(ops)
    message = str(excinfo.value)
    assert "first divergence at request #" in message
    assert "mac" in message


def test_broken_merge_detection_is_caught():
    import repro.secure_memory.engine as engine_mod

    spec = _spec("mixed", seed=5, ops=300)
    ops = generate_stream(spec)
    original = engine_mod.merge_detection

    def broken(previous_bits, access_bits, censored=False):
        # Drop all detection evidence: promotions silently never happen.
        return 0

    engine_mod.merge_detection = broken
    try:
        harness = DifferentialHarness(spec.region_bytes, seed=spec.seed)
        with pytest.raises(DivergenceError) as excinfo:
            harness.replay(ops)
    finally:
        engine_mod.merge_detection = original
    assert "first divergence at request #" in str(excinfo.value)


def test_divergence_report_format():
    report = Divergence(42, "write", 0x1A40, "mac.index", 3, 2).describe()
    assert "request #42" in report
    assert "write" in report
    assert "0x1a40" in report
    assert "mac.index" in report


def test_permutation_metamorphic_relation_holds():
    metamorphic.check_permutation(_spec("permute", seed=29, ops=260, chunks=4))


def test_read_idempotence_holds():
    metamorphic.check_read_idempotence(_spec("sparse", seed=11, ops=150), samples=8)


def test_committed_quick_golden_matches_fresh_replay():
    corpus = golden.load_corpus(golden.corpus_path(GOLDEN_DIR, "quick"))
    assert corpus["schema"] == golden.CORPUS_SCHEMA
    entry = corpus["streams"][0]
    spec = StreamSpec(**entry["spec"])
    harness = DifferentialHarness(spec.region_bytes, seed=spec.seed)
    harness.replay(generate_stream(spec))
    digest = golden.corpus_digest(harness)
    assert digest["records"] == entry["records"]
    assert digest["state"] == entry["state"]


def test_quick_specs_cover_every_profile():
    profiles = {spec.profile for spec in quick_specs()}
    assert profiles == {"stream", "sparse", "mixed", "boundary", "phase", "permute"}
