"""Scalar-vs-fast engine parity: bit-for-bit identical observables.

The fast engine's contract is not "approximately the same" -- it is
byte equality of every payload the repo publishes: ``RunResult.
to_dict()`` (devices, channel, metrics snapshot), golden-corpus
digests, and the differential harness's observation records.  These
tests skip cleanly on a stdlib-only install (numpy is the ``[fast]``
extra, not a requirement).
"""

import dataclasses
import json

import pytest

from repro import engine_fast
from repro.common.config import SoCConfig
from repro.sim.runner import run_scenario
from repro.sim.scenario import selected_scenario

needs_numpy = pytest.mark.skipif(
    not engine_fast.fast_engine_available(), reason="needs numpy ([fast])"
)

#: Every scheme the fast engine supports, including both multigranular
#: variants (full Ours and the counter-only ablation).
PARITY_SCHEMES = (
    "unsecure",
    "mac_only",
    "conventional",
    "static_device",
    "ours",
    "multi_ctr_only",
)


def _payload(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True, default=str)


@needs_numpy
class TestScenarioParity:
    @pytest.fixture(scope="class")
    def both_runs(self):
        scenario = selected_scenario("cc1")
        scalar = run_scenario(
            scenario, PARITY_SCHEMES, config=SoCConfig(),
            duration_cycles=1200.0, jobs=1,
        )
        fast = run_scenario(
            scenario, PARITY_SCHEMES,
            config=SoCConfig(sim_engine="fast"),
            duration_cycles=1200.0, jobs=1,
        )
        return scalar, fast

    @pytest.mark.parametrize("scheme", PARITY_SCHEMES)
    def test_payloads_byte_identical(self, both_runs, scheme):
        scalar, fast = both_runs
        assert _payload(scalar[scheme]) == _payload(fast[scheme])

    @pytest.mark.parametrize("scheme", PARITY_SCHEMES)
    def test_fast_engine_actually_engaged(self, both_runs, scheme):
        scalar, fast = both_runs
        assert scalar[scheme].engine == "scalar"
        assert fast[scheme].engine == "fast"

    @pytest.mark.parametrize("scheme", PARITY_SCHEMES)
    def test_metrics_snapshots_equal(self, both_runs, scheme):
        scalar, fast = both_runs
        assert scalar[scheme].metrics == fast[scheme].metrics

    def test_conventional_with_subtrees_falls_back(self):
        # Subtree-filtered runs are outside the fast engine's supported
        # envelope; a fast request silently degrades to scalar and the
        # result is (trivially) identical.
        from repro.schemes.registry import build_scheme
        from repro.sim.soc import simulate

        scenario = selected_scenario("cc1")
        traces, footprint = scenario.build_traces(400.0, 0)
        config = SoCConfig(sim_engine="fast")
        scheme = build_scheme(
            "bmf_unused", config, footprint_bytes=footprint
        )
        if scheme.subtree is None:
            pytest.skip("bmf_unused built without a subtree filter")
        result = simulate(traces, scheme, config)
        assert result.engine == "scalar"


@needs_numpy
class TestDifferentialParity:
    """The six quick stream profiles through ``--engine fast``."""

    def test_records_and_digests_match_scalar(self):
        from repro.check.differential import DifferentialHarness
        from repro.check.runner import quick_specs
        from repro.check.streams import generate_stream

        specs = quick_specs()
        assert len(specs) == 6
        profiles = {spec.profile for spec in specs}
        assert profiles == {
            "stream", "sparse", "mixed", "boundary", "phase", "permute"
        }
        for spec in specs[:3]:  # full record comparison on a subset
            ops = generate_stream(spec)
            scalar = DifferentialHarness(spec.region_bytes, seed=spec.seed)
            scalar.replay(ops)
            fast = DifferentialHarness(
                spec.region_bytes, seed=spec.seed, engine_mode="fast"
            )
            fast.replay(ops)
            assert scalar.records == fast.records
            assert scalar.record_digest() == fast.record_digest()

    def test_golden_corpus_digests_under_fast(self):
        # The committed corpus was produced by the scalar harness; the
        # fast harness must reproduce the exact digests.
        from repro.check import golden as golden_mod
        from repro.check.differential import DifferentialHarness
        from repro.check.runner import quick_specs
        from repro.check.streams import generate_stream

        committed = golden_mod.load_corpus(
            golden_mod.corpus_path("tests/golden", "quick")
        )
        specs = quick_specs()
        digests = []
        for spec in specs:
            harness = DifferentialHarness(
                spec.region_bytes, seed=spec.seed, engine_mode="fast"
            )
            harness.replay(generate_stream(spec))
            digests.append(golden_mod.corpus_digest(harness))
        actual = golden_mod.make_corpus("quick", specs, digests)
        assert golden_mod.diff_corpus(committed, actual) == []

    def test_injected_layout_bug_caught_under_fast(self):
        from repro.check.differential import DivergenceError
        from repro.check.runner import inject_layout_bug, quick_specs
        from repro.check.streams import generate_stream

        spec = quick_specs()[0]
        ops = generate_stream(spec)[:80]
        with inject_layout_bug():
            from repro.check.differential import DifferentialHarness

            harness = DifferentialHarness(
                spec.region_bytes, seed=spec.seed, engine_mode="fast"
            )
            with pytest.raises(DivergenceError):
                harness.replay(ops)

    def test_fast_harness_requires_numpy(self, monkeypatch):
        from repro.check.differential import DifferentialHarness

        monkeypatch.setenv(engine_fast.FORCE_NO_NUMPY_ENV, "1")
        with pytest.raises(ValueError, match="requires numpy"):
            DifferentialHarness(1 << 20, engine_mode="fast")

    def test_run_check_fast_degrades_without_numpy(self, monkeypatch):
        from repro.check.runner import run_check

        monkeypatch.setenv(engine_fast.FORCE_NO_NUMPY_ENV, "1")
        notices = []
        with pytest.warns(RuntimeWarning, match="falling back"):
            report = run_check(
                "quick", golden_dir=None, echo=notices.append,
                engine="fast",
            )
        assert report.passed
        assert any("numpy unavailable" in n for n in notices)
        diff = [s for s in report.sections if s.name == "differential"][0]
        assert "engine=scalar" in diff.detail


@needs_numpy
class TestBenchBothEngines:
    def test_side_by_side_snapshot(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "bench_both.json"
        code = main(
            [
                "bench", "cc1", "--engine", "both",
                "--schemes", "unsecure,ours",
                "--duration", "400", "--repeat", "1", "--no-sweep",
                "-o", str(out), "--jobs", "1",
            ]
        )
        assert code == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["platform"]["engine"] == "both"
        engines = snapshot["engines"]
        assert set(engines) == {"scalar", "fast", "speedup"}
        assert "ours" in engines["speedup"]
        for tier in ("scalar", "fast"):
            assert "ours" in engines[tier]["wall_seconds"]


class TestSimEnginePropagation:
    def test_slim_result_carries_engine(self):
        from repro.sim.parallel import slim_result

        scenario = selected_scenario("cc1")
        engine = (
            "fast" if engine_fast.fast_engine_available() else "scalar"
        )
        runs = run_scenario(
            scenario, ("unsecure",),
            config=SoCConfig(sim_engine=engine)
            if engine == "fast" else SoCConfig(),
            duration_cycles=300.0, jobs=1,
        )
        slim = slim_result(runs["unsecure"])
        assert slim.engine == engine

    def test_replace_roundtrip(self):
        config = SoCConfig()
        fast = dataclasses.replace(config, sim_engine="fast")
        assert fast.sim_engine == "fast"
        back = dataclasses.replace(fast, sim_engine="scalar")
        assert back == config
