"""Scenario assembly and runners: 250-sweep structure, allocation, seeds."""

import pytest

from repro.common.constants import CHUNK_BYTES
from repro.common.errors import ConfigError
from repro.sim.runner import (
    best_static_granularities,
    run_many,
    run_scenario,
    sweep_scenarios,
)
from repro.sim.scenario import (
    REALWORLD_SCENARIOS,
    SELECTED_GROUPS,
    SELECTED_SCENARIOS,
    Scenario,
    all_scenarios,
    make_scenario,
    selected_scenario,
)

DURATION = 3000.0


class TestScenarioEnumeration:
    def test_sweep_has_exactly_250_scenarios(self):
        assert len(all_scenarios()) == 250

    def test_sweep_names_are_unique(self):
        names = [s.name for s in all_scenarios()]
        assert len(set(names)) == 250

    def test_selected_scenarios_match_table4(self):
        byname = {s.name: s for s in SELECTED_SCENARIOS}
        assert byname["cc1"].workload_names == ("xal", "mm", "alex", "dlrm")
        assert byname["ff1"].workload_names == ("bw", "syr2k", "ncf", "dlrm")
        assert byname["c3"].workload_names == ("mcf", "sten", "sfrnn", "sfrnn")

    def test_groups_cover_all_selected(self):
        grouped = [name for names in SELECTED_GROUPS.values() for name in names]
        assert sorted(grouped) == sorted(s.name for s in SELECTED_SCENARIOS)

    def test_unknown_selected_scenario(self):
        with pytest.raises(ConfigError):
            selected_scenario("zz9")

    def test_subsample_is_deterministic_and_sized(self):
        scenarios = all_scenarios()
        sample = sweep_scenarios(scenarios, 10)
        assert len(sample) == 10
        assert sample == sweep_scenarios(scenarios, 10)

    def test_subsample_none_returns_all(self):
        assert len(sweep_scenarios(all_scenarios(), None)) == 250


class TestAllocation:
    def test_device_slices_do_not_overlap(self):
        scenario = make_scenario("t", "bw", "mm", "alex", "dlrm")
        traces, footprint = scenario.build_traces(DURATION, seed=0)
        spans = []
        for trace in traces:
            spans.append((trace.base_addr, trace.base_addr + trace.spec.footprint_bytes))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end
        assert footprint <= spans[-1][1] + CHUNK_BYTES

    def test_pipeline_overlap_shares_chunks(self):
        scenario = REALWORLD_SCENARIOS[0]
        traces, _ = scenario.build_traces(DURATION, seed=0)
        producer, consumer = traces[0], traces[1]
        producer_end = producer.base_addr + producer.spec.footprint_bytes
        assert consumer.base_addr < producer_end  # slices overlap

    def test_bad_overlap_order_rejected(self):
        scenario = Scenario(
            name="bad",
            workload_names=("bw", "mm"),
            overlaps=((1, 0, 1024),),
        )
        with pytest.raises(ConfigError):
            scenario.build_traces(DURATION)

    def test_traces_are_seed_stable(self):
        scenario = selected_scenario("cc1")
        a, _ = scenario.build_traces(DURATION, seed=5)
        b, _ = scenario.build_traces(DURATION, seed=5)
        assert all(x.entries == y.entries for x, y in zip(a, b))


class TestRunners:
    def test_run_scenario_returns_all_schemes(self):
        runs = run_scenario(
            selected_scenario("cc1"),
            ("unsecure", "conventional", "ours"),
            duration_cycles=DURATION,
        )
        assert set(runs) == {"unsecure", "conventional", "ours"}
        base = runs["unsecure"]
        assert runs["conventional"].mean_normalized_exec_time(base) >= 1.0

    def test_run_many(self):
        results = run_many(
            SELECTED_SCENARIOS[:2], ("unsecure",), duration_cycles=DURATION
        )
        assert len(results) == 2
        assert all("unsecure" in runs for _, runs in results)

    def test_static_best_granularities_are_supported_sizes(self):
        traces, _ = selected_scenario("cc1").build_traces(DURATION)
        grans = best_static_granularities(traces)
        assert set(grans) == {0, 1, 2, 3}
        assert all(g in (64, 512, 4096, 32768) for g in grans.values())

    def test_static_scheme_runs_in_scenario(self):
        runs = run_scenario(
            selected_scenario("cc2"),
            ("unsecure", "static_device"),
            duration_cycles=DURATION,
        )
        assert runs["static_device"].finish_cycle > 0

    def test_realworld_scenarios_run_with_three_devices(self):
        runs = run_scenario(
            REALWORLD_SCENARIOS[1], ("unsecure", "ours"), duration_cycles=DURATION
        )
        assert len(runs["unsecure"].devices) == 3
