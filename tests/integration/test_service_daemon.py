"""Live-daemon integration: lifecycle, parity, robustness matrix.

Boots a real :class:`ServiceDaemon` on a Unix socket (or TCP port)
inside ``asyncio.run`` and drives it through real connections.  The
robustness half is the ISSUE's fuzz matrix: truncated frames,
oversized lengths, garbage JSON and mid-session disconnects must never
crash the daemon or leak a session, and must tick the
``service.rejected_frames`` counter.
"""

import asyncio
import os
import struct
import tempfile
import uuid

import pytest

from repro.secure_memory.session import EngineSession
from repro.service import protocol
from repro.service.client import AsyncServiceClient, ServiceError
from repro.service.daemon import ServiceDaemon
from repro.service.load import run_load

DURATION = 300.0


def short_socket_path():
    # Unix socket paths cap at ~104 bytes; pytest tmp_path is too deep.
    return os.path.join(
        tempfile.gettempdir(), f"repro-{uuid.uuid4().hex[:10]}.sock"
    )


def with_daemon(coro):
    """Run ``coro(daemon, path)`` against a started unix-socket daemon."""
    path = short_socket_path()

    async def body():
        daemon = ServiceDaemon(socket_path=path, service_secret=b"svc-key")
        await daemon.start()
        try:
            return await coro(daemon, path)
        finally:
            await daemon.close()

    try:
        return asyncio.run(body())
    finally:
        assert not os.path.exists(path), "socket must be unlinked"


def counter(daemon, name):
    return daemon.obs.registry.snapshot().get(f"service.{name}", 0)


# ----------------------------------------------------------------------
# Lifecycle + parity
# ----------------------------------------------------------------------

def test_open_step_report_close_with_parity():
    async def scenario(daemon, path):
        async with AsyncServiceClient(socket_path=path) as client:
            secret = b"tenant-key"
            opened = await client.open(
                "t1", secret, scenario="cc1", scheme="ours",
                duration=DURATION, seed=5,
            )
            assert opened["attached"] is False
            rows = []
            done = False
            while not done:
                step = await client.step("t1", secret, requests=37)
                rows.extend(step["observables"])
                done = step["done"]
            report = await client.report("t1", secret)
            closed = await client.close("t1", secret)

        local = EngineSession.from_params(
            scenario="cc1", scheme="ours", duration=DURATION, seed=5
        )
        local_rows = []
        while not local.done:
            local_rows.extend(local.step(37))
        assert rows == local_rows
        assert closed["digest"] == local.observable_digest()
        assert report["observables"]["sha256"] == local.observable_digest()
        assert protocol.verify_report(report, b"svc-key")
        assert not protocol.verify_report(report, b"not-the-key")
        assert len(daemon.tenants) == 0

    with_daemon(scenario)


def test_sessions_survive_reconnect():
    async def scenario(daemon, path):
        secret = b"k1"
        async with AsyncServiceClient(socket_path=path) as client:
            await client.open("t1", secret, duration=DURATION)
            first = await client.step("t1", secret, requests=10)
        # New connection, same tenant: re-attach and keep stepping.
        async with AsyncServiceClient(socket_path=path) as client:
            again = await client.open("t1", secret)
            assert again["attached"] is True
            assert again["snapshot"]["issued"] == 10
            nxt = await client.step("t1", secret, requests=10)
            assert nxt["observables"][0][0] == 10  # seq continues
            assert nxt["issued"] == 20
        assert len(daemon.tenants) == 1
        return first

    with_daemon(scenario)


def test_reattach_with_wrong_key_rejected():
    async def scenario(daemon, path):
        async with AsyncServiceClient(socket_path=path) as client:
            await client.open("t1", b"right", duration=DURATION)
        async with AsyncServiceClient(socket_path=path) as client:
            with pytest.raises(ServiceError, match="another key"):
                await client.open("t1", b"wrong")
        assert len(daemon.tenants) == 1

    with_daemon(scenario)


def test_replayed_seq_is_idempotent_but_stale_seq_rejected():
    async def scenario(daemon, path):
        secret = b"k"
        async with AsyncServiceClient(socket_path=path) as client:
            await client.open("t1", secret, duration=DURATION)
            first = await client.step("t1", secret, requests=5)
            # A byte-identical replay of the committed envelope (a
            # client retry after a lost response) answers from the
            # duplicate cache -- same body, no double-apply.
            client._seqs._seqs["t1"] -= 1
            again = await client.step("t1", secret, requests=5)
            assert again == first
            assert again["issued"] == 5  # engine did NOT advance twice
            assert counter(daemon, "duplicate_replays") == 1
            # A *different* envelope at a stale/equal seq is a true
            # replay forgery: rejected recoverably, stream survives.
            client._seqs._seqs["t1"] -= 1
            with pytest.raises(ServiceError, match="stale seq"):
                await client.step("t1", secret, requests=7)
            nxt = await client.step("t1", secret, requests=5)
            assert nxt["issued"] == 10

    with_daemon(scenario)


def test_unknown_tenant_and_bad_op_errors():
    async def scenario(daemon, path):
        async with AsyncServiceClient(socket_path=path) as client:
            with pytest.raises(ServiceError, match="no open session"):
                await client.step("ghost", b"k", requests=1)
            with pytest.raises(ServiceError, match="secret_hex"):
                await client.request("open", {}, tenant="t", secret=b"")
            with pytest.raises(ServiceError, match="duration"):
                await client.open("t", b"k", duration=-5.0)
            pong = await client.request("ping")
            assert pong["pong"] is True

    with_daemon(scenario)


def test_tcp_transport():
    async def scenario():
        daemon = ServiceDaemon(port=0)
        await daemon.start()
        try:
            async with AsyncServiceClient(port=daemon.port) as client:
                await client.open("t1", b"k", duration=DURATION)
                step = await client.step("t1", b"k")
                assert step["done"]
        finally:
            await daemon.close()

    asyncio.run(scenario())


def test_concurrent_smoke_with_mixed_engines():
    """In-loop miniature of the CI daemon job (parity across tenants)."""
    path = short_socket_path()

    async def body():
        daemon = ServiceDaemon(socket_path=path)
        return await run_load(
            tenants=16,
            connections=4,
            engines="mixed",
            duration=DURATION,
            daemon=daemon,
        )

    report = asyncio.run(body())
    assert report["ok"], report["failures"]
    assert report["sessions_completed"] == 16
    assert report["parity_checked"] == 16
    assert not os.path.exists(path)


# ----------------------------------------------------------------------
# Robustness matrix (fuzz over a live socket)
# ----------------------------------------------------------------------

async def _raw(path, payload: bytes, expect_reply: bool):
    reader, writer = await asyncio.open_unix_connection(path)
    writer.write(payload)
    await writer.drain()
    reply = None
    if expect_reply:
        frame = await asyncio.wait_for(protocol.read_frame(reader), 5)
        reply = frame[1] if frame else None
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return reply


def test_frame_damage_counts_rejected_frames_without_crashing():
    async def scenario(daemon, path):
        # 1. oversized declared length
        reply = await _raw(
            path, struct.pack(">I", protocol.MAX_FRAME_BYTES + 1), True
        )
        assert reply is not None and reply["ok"] is False
        # 2. zero length
        await _raw(path, struct.pack(">I", 0), True)
        # 3. truncated body (header promises more than is sent)
        await _raw(path, struct.pack(">I", 100) + b"short", False)
        # 4. truncated header
        await _raw(path, b"\x00\x01", False)
        # 5. garbage JSON of honest length (recoverable: same
        #    connection must still answer a valid ping)
        garbage = b"\xff\xfe\xfdnot json"
        reader, writer = await asyncio.open_unix_connection(path)
        writer.write(struct.pack(">I", len(garbage)) + garbage)
        ping = protocol.make_request(1, "ping")
        writer.write(protocol.encode_frame(ping))
        await writer.drain()
        first = await asyncio.wait_for(protocol.read_frame(reader), 5)
        second = await asyncio.wait_for(protocol.read_frame(reader), 5)
        assert first[1]["ok"] is False
        assert second[1]["ok"] is True and second[1]["body"]["pong"]
        writer.close()
        await writer.wait_closed()

        # let half-open connections finish tearing down
        await asyncio.sleep(0.05)
        assert counter(daemon, "rejected_frames") >= 5
        # the daemon still serves full sessions afterwards
        async with AsyncServiceClient(socket_path=path) as client:
            await client.open("alive", b"k", duration=DURATION)
            step = await client.step("alive", b"k")
            assert step["done"]
        assert len(daemon.tenants) == 1

    with_daemon(scenario)


def test_mid_session_disconnect_leaks_nothing():
    async def scenario(daemon, path):
        secret = b"k"
        async with AsyncServiceClient(socket_path=path) as client:
            await client.open("t1", secret, duration=DURATION)
            await client.step("t1", secret, requests=3)
        # Abrupt: open a connection, send half an envelope, vanish.
        env = protocol.encode_frame(
            protocol.make_request(
                9, "step", {"requests": 1}, tenant="t1", seq=99,
                secret=secret,
            )
        )
        await _raw(path, env[: len(env) // 2], False)
        await asyncio.sleep(0.05)
        assert counter(daemon, "rejected_frames") >= 1
        # Session neither leaked nor lost: re-attach and finish it.
        async with AsyncServiceClient(socket_path=path) as client:
            again = await client.open("t1", secret)
            assert again["snapshot"]["issued"] == 3
            step = await client.step("t1", secret)
            assert step["done"]
            await client.close("t1", secret)
        assert len(daemon.tenants) == 0
        snap = daemon.obs.registry.snapshot()
        assert (
            snap["service.sessions_opened"]
            == snap["service.sessions_closed"]
        )

    with_daemon(scenario)


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_random_bytes_then_valid_session(seed):
    """Random garbage streams never take the daemon down."""
    import random

    rng = random.Random(seed)

    async def scenario(daemon, path):
        for _ in range(8):
            blob = bytes(
                rng.randrange(256) for _ in range(rng.randrange(1, 64))
            )
            try:
                await _raw(path, blob, False)
            except (ConnectionError, asyncio.TimeoutError):
                pass
        async with AsyncServiceClient(socket_path=path) as client:
            await client.open("ok", b"k", duration=DURATION)
            step = await client.step("ok", b"k")
            assert step["done"]

    with_daemon(scenario)


def test_engine_errors_stay_per_request():
    async def scenario(daemon, path):
        async with AsyncServiceClient(socket_path=path) as client:
            await client.open(
                "t1", b"k", duration=DURATION, data_bytes=1 << 16
            )
            # Unaligned put: engine raises, daemon answers an error.
            with pytest.raises(ServiceError):
                await client.request(
                    "put", {"addr": 3, "data_hex": "ab"},
                    tenant="t1", secret=b"k",
                )
            # Same session still healthy.
            await client.request(
                "put", {"addr": 0, "data_hex": "ab" * 64},
                tenant="t1", secret=b"k",
            )
            got = await client.request(
                "get", {"addr": 0, "size": 64}, tenant="t1", secret=b"k"
            )
            assert got["data_hex"] == "ab" * 64

    with_daemon(scenario)
