"""Report generator: composition and CLI wiring."""

from repro.cli import main
from repro.experiments.report import REPORT_ORDER, generate_report


class TestReportGeneration:
    def test_small_report_contains_all_requested_sections(self):
        text = generate_report(
            duration_cycles=1200,
            sample=2,
            experiments=("tab_hw", "fig06", "fig15"),
        )
        assert "# repro — full reproduction report" in text
        assert "Hardware overhead" in text
        assert "Per-device vs per-partition" in text
        assert "prior studies" in text
        assert "Regeneration times" in text

    def test_progress_callback_fires_per_experiment(self):
        seen = []
        generate_report(
            duration_cycles=1200,
            experiments=("tab_hw",),
            progress=seen.append,
        )
        assert seen == ["tab_hw"]

    def test_order_covers_every_experiment(self):
        from repro.experiments import ALL_EXPERIMENTS

        assert set(REPORT_ORDER) == set(ALL_EXPERIMENTS)

    def test_fig19_panels_all_rendered(self):
        text = generate_report(duration_cycles=1200, experiments=("fig19",))
        assert "Fig. 19 (a)" in text
        assert "Fig. 19 (b)" in text
        assert "Fig. 19 (c)" in text


class TestReportCli:
    def test_cli_writes_file(self, tmp_path, capsys, monkeypatch):
        out = tmp_path / "report.md"
        # Patch the order down so the CLI test stays fast.
        import repro.cli as cli_module
        import repro.experiments.report as report_module

        original = report_module.generate_report

        def fast(**kwargs):
            kwargs["experiments"] = ("tab_hw",)
            return original(**kwargs)

        monkeypatch.setattr(report_module, "generate_report", fast)
        code = main(["report", "-o", str(out), "--duration", "1200"])
        assert code == 0
        assert out.exists()
        assert "Hardware overhead" in out.read_text()
