"""Distributed-fabric acceptance: byte-parity, SIGKILL survival, and
warm-store reuse (the tentpole's three contract points).

A 3-worker leased campaign must produce the byte-identical JSON a
serial run produces; a run whose workers are killed mid-lease (both
``os._exit`` inside the worker and a real coordinator-side SIGKILL)
must reclaim the stale leases and still match; and an identical re-run
against the warm content-addressed store must reuse >= 90% of its
cells without executing anything.
"""

from __future__ import annotations

import pytest

from repro.experiments.sweep import canonical_payloads
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.faults.exec_chaos import FabricChaosSpec
from repro.sim.resilient import Supervisor, supervision
from repro.sim.runner import clear_static_best_cache, run_many, sweep_scenarios
from repro.sim.scenario import all_scenarios

WORKERS = 3
TTL = 6.0
WALL_TIMEOUT = 240.0
CONFIG = CampaignConfig(
    seed=0, trials=1, attacks=("data_bitflip", "counter_tamper")
)


def _fabric_supervisor(runs_dir, chaos=None):
    return Supervisor(
        runs_dir=runs_dir,
        fabric_workers=WORKERS,
        lease_ttl=TTL,
        fabric_wall_timeout=WALL_TIMEOUT,
        chaos=chaos,
    )


def _campaign_json(jobs=1):
    return run_campaign(CONFIG, jobs=jobs).to_json()


@pytest.fixture(scope="module")
def clean_serial():
    return _campaign_json(jobs=1)


class TestFabricCampaignParity:
    def test_three_worker_campaign_byte_identical(
        self, tmp_path, clean_serial
    ):
        supervisor = _fabric_supervisor(tmp_path)
        with supervision(supervisor):
            fabric_json = _campaign_json(jobs=WORKERS)
        assert fabric_json == clean_serial
        stats = supervisor.report
        assert stats.lease_claims > 0  # every cell went through a lease
        assert stats.result_reuses == 0  # cold store: nothing was warm

    def test_sigkill_mid_lease_reclaims_and_matches(
        self, tmp_path, clean_serial
    ):
        # Workers die holding leases two ways: seeded os._exit(9)
        # between claim and commit, and one real coordinator-side
        # SIGKILL of a live worker.  Survivors must steal the stale
        # leases and converge on identical bytes.
        chaos = FabricChaosSpec(
            seed=0, die_rate=0.3, fault_attempts=2, kill_worker_after=2
        )
        supervisor = _fabric_supervisor(tmp_path, chaos=chaos)
        with supervision(supervisor):
            survived_json = _campaign_json(jobs=WORKERS)
        assert survived_json == clean_serial
        stats = supervisor.report
        assert stats.worker_deaths >= 1
        assert stats.lease_steals >= 1  # automatic lease reclamation
        assert stats.worker_respawns >= 1

    def test_warm_store_rerun_reuses_90_percent(self, tmp_path, clean_serial):
        first = _fabric_supervisor(tmp_path)
        with supervision(first):
            _campaign_json(jobs=WORKERS)
        # Fresh supervisor, fresh run id -- only the store is shared.
        second = _fabric_supervisor(tmp_path)
        assert second.run_id != first.run_id
        with supervision(second):
            warm_json = _campaign_json(jobs=WORKERS)
        assert warm_json == clean_serial
        stats = second.report
        total = stats.result_reuses + stats.completed
        assert total > 0
        assert stats.result_reuses / total >= 0.9
        assert stats.lease_claims == 0  # nothing needed a lease at all


class TestFabricSweepParity:
    def test_sweep_through_fabric_matches_serial(self, tmp_path):
        schemes = ("conventional", "ours")

        def payloads(jobs, supervisor=None):
            clear_static_best_cache()
            scenarios = sweep_scenarios(all_scenarios(), 3)
            if supervisor is None:
                results = run_many(
                    scenarios, schemes, duration_cycles=400.0, seed=0,
                    jobs=jobs,
                )
            else:
                with supervision(supervisor):
                    results = run_many(
                        scenarios, schemes, duration_cycles=400.0, seed=0,
                        jobs=jobs,
                    )
            return canonical_payloads(results, schemes)

        clean = payloads(jobs=1)
        supervisor = _fabric_supervisor(tmp_path)
        fabric = payloads(jobs=WORKERS, supervisor=supervisor)
        assert fabric == clean
        assert supervisor.report.lease_claims > 0
