"""Event-driven SoC simulation: device windows, contention, warmup."""

import pytest

from repro.common.config import DeviceConfig, SoCConfig
from repro.common.types import DeviceKind
from repro.schemes.registry import build_scheme
from repro.sim.soc import DeviceResult, RunResult, device_config_for, simulate
from repro.workloads.generator import Trace, generate_trace
from repro.workloads.registry import get_workload
from repro.workloads.spec import WorkloadSpec

DURATION = 3000.0


def make_trace(name="bw", duration=DURATION, base=0, seed=0):
    return generate_trace(get_workload(name), duration, base_addr=base, seed=seed)


class TestSingleDevice:
    def test_execution_time_at_least_compute_time(self, soc_config):
        trace = make_trace()
        result = simulate([trace], build_scheme("unsecure", soc_config), soc_config)
        assert result.devices[0].finish_cycle >= 0.9 * trace.compute_cycles

    def test_protection_never_speeds_up_a_device(self, soc_config):
        trace = make_trace("mcf")
        unsec = simulate([trace], build_scheme("unsecure", soc_config), soc_config)
        conv = simulate(
            [trace], build_scheme("conventional", soc_config), soc_config
        )
        assert conv.devices[0].finish_cycle >= unsec.devices[0].finish_cycle

    def test_device_result_fields(self, soc_config):
        trace = make_trace()
        result = simulate([trace], build_scheme("unsecure", soc_config), soc_config)
        device = result.devices[0]
        assert device.workload == "bw"
        assert device.requests == len(trace)
        assert device.stall_cycles >= 0.0


class TestContention:
    def test_added_devices_slow_each_other(self, soc_config):
        cpu = make_trace("mcf")
        alone = simulate([cpu], build_scheme("unsecure", soc_config), soc_config)
        npus = [
            make_trace("sfrnn", base=(64 << 20) * (i + 1), seed=i)
            for i in range(3)
        ]
        together = simulate(
            [cpu] + npus, build_scheme("unsecure", soc_config), soc_config
        )
        assert (
            together.devices[0].finish_cycle >= alone.devices[0].finish_cycle
        )

    def test_mlp_window_limits_throughput(self):
        # Same trace, but a 1-deep window must be slower than a deep one.
        trace = make_trace("sten")
        config = SoCConfig()
        shallow = simulate(
            [trace],
            build_scheme("unsecure", config),
            config,
            device_configs=[DeviceConfig("d", max_outstanding=1)],
        )
        deep = simulate(
            [trace],
            build_scheme("unsecure", config),
            config,
            device_configs=[DeviceConfig("d", max_outstanding=64)],
        )
        assert shallow.devices[0].finish_cycle > deep.devices[0].finish_cycle

    def test_device_config_count_must_match(self, soc_config):
        with pytest.raises(ValueError):
            simulate(
                [make_trace()],
                build_scheme("unsecure", soc_config),
                soc_config,
                device_configs=[],
            )


class TestNormalization:
    def test_self_normalization_is_one(self, soc_config):
        trace = make_trace()
        result = simulate([trace], build_scheme("unsecure", soc_config), soc_config)
        assert result.mean_normalized_exec_time(result) == pytest.approx(1.0)

    def test_mismatched_scenarios_rejected(self, soc_config):
        a = simulate([make_trace()], build_scheme("unsecure", soc_config), soc_config)
        b = simulate(
            [make_trace(), make_trace("alex", base=64 << 20)],
            build_scheme("unsecure", soc_config),
            soc_config,
        )
        with pytest.raises(ValueError):
            a.normalized_exec_times(b)


class TestWarmup:
    def test_warmup_reduces_dynamic_scheme_cold_misses(self, soc_config):
        trace = make_trace("alex", duration=6000)
        cold = build_scheme("ours", soc_config)
        cold_result = simulate([trace], cold, soc_config, warmup=False)
        warm = build_scheme("ours", soc_config)
        warm_result = simulate([trace], warm, soc_config, warmup=True)
        assert (
            warm_result.security_cache_misses
            <= cold_result.security_cache_misses
        )

    def test_warmup_does_not_change_request_counts(self, soc_config):
        trace = make_trace()
        result = simulate(
            [trace], build_scheme("unsecure", soc_config), soc_config, warmup=True
        )
        assert result.devices[0].requests == len(trace)


class TestDeviceConfigFor:
    def test_kinds_map_to_expected_windows(self):
        cpu = device_config_for(DeviceKind.CPU, "c")
        gpu = device_config_for(DeviceKind.GPU, "g")
        npu = device_config_for(DeviceKind.NPU, "n")
        assert cpu.max_outstanding < npu.max_outstanding < gpu.max_outstanding
