"""GPU kernel walkers and trace file I/O."""

import pytest

from repro.common.config import SoCConfig
from repro.common.constants import CACHELINE_BYTES, GRANULARITIES
from repro.common.errors import ConfigError
from repro.common.types import DeviceKind
from repro.schemes.registry import build_scheme
from repro.sim.soc import simulate
from repro.workloads.kernels import (
    GPU_KERNELS,
    csr_pagerank,
    generate_kernel_trace,
    stencil2d,
    tiled_gemm,
)
from repro.workloads.trace_io import load_trace, save_trace


class TestKernelRegistry:
    def test_all_paper_gpu_workloads_have_kernels(self):
        assert set(GPU_KERNELS) == {"mm", "sten", "pr", "syr2k", "floyd"}

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigError):
            generate_kernel_trace("raytrace")

    @pytest.mark.parametrize("name", sorted(GPU_KERNELS))
    def test_every_kernel_generates_a_valid_trace(self, name):
        kwargs = {
            "mm": {"n": 128, "tile": 32},
            "sten": {"n": 256, "sweeps": 1},
            "pr": {"nodes": 4096, "iterations": 1},
            "syr2k": {"n": 128, "k": 32},
            "floyd": {"n": 128, "phases": 4},
        }[name]
        trace = generate_kernel_trace(name, **kwargs)
        assert len(trace) > 100
        assert trace.spec.kind is DeviceKind.GPU
        assert all(addr % CACHELINE_BYTES == 0 for _, addr, _ in trace.entries)
        assert trace.max_addr <= trace.base_addr + trace.spec.footprint_bytes


class TestKernelCharacter:
    def test_gemm_restreams_tiles(self):
        trace = tiled_gemm(n=128, tile=32)
        addresses = [a for _, a, _ in trace.entries]
        # A-tiles are revisited across tj loops: repeated addresses.
        assert len(set(addresses)) < len(addresses)

    def test_stencil_rows_reread(self):
        trace = stencil2d(n=256, sweeps=1)
        reads = [a for _, a, w in trace.entries if not w]
        assert len(set(reads)) < len(reads)  # each row read ~3x

    def test_pagerank_has_irregular_gathers(self):
        trace = csr_pagerank(nodes=4096, iterations=1)
        addresses = [a for _, a, _ in trace.entries]
        strides = {y - x for x, y in zip(addresses, addresses[1:])}
        assert len(strides) > 10  # not a pure stream

    def test_gemm_promotes_under_ours(self):
        config = SoCConfig()
        trace = tiled_gemm(n=128, tile=32)
        scheme = build_scheme("ours", config)
        simulate([trace], scheme, config, warmup=True)
        hist = scheme.stats.granularity_hist
        coarse = sum(
            hist.buckets.get(g, 0) for g in GRANULARITIES[1:]
        )
        assert coarse > 0


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        original = tiled_gemm(n=64, tile=32)
        path = tmp_path / "mm.trace.gz"
        save_trace(original, path)
        loaded = load_trace(path)
        assert len(loaded) == len(original)
        assert [a for _, a, _ in loaded.entries] == [
            a for _, a, _ in original.entries
        ]
        assert [w for _, _, w in loaded.entries] == [
            w for _, _, w in original.entries
        ]
        assert loaded.spec.kind is DeviceKind.GPU

    def test_loaded_trace_simulates(self, tmp_path):
        path = tmp_path / "t.gz"
        save_trace(stencil2d(n=128, sweeps=1), path)
        loaded = load_trace(path)
        config = SoCConfig()
        result = simulate([loaded], build_scheme("ours", config), config)
        assert result.devices[0].requests == len(loaded)

    def test_foreign_addresses_get_line_aligned(self, tmp_path):
        import gzip

        path = tmp_path / "foreign.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("# name foreign\n# kind npu\n")
            handle.write("1.0 7f R\n2.0 1000 W\n")
        trace = load_trace(path)
        assert trace.entries[0][1] == 0x40
        assert trace.spec.kind is DeviceKind.NPU

    def test_malformed_line_rejected(self, tmp_path):
        import gzip

        path = tmp_path / "bad.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("1.0 abc\n")
        with pytest.raises(ConfigError):
            load_trace(path)

    def test_empty_trace_rejected(self, tmp_path):
        import gzip

        path = tmp_path / "empty.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("# name x\n")
        with pytest.raises(ConfigError):
            load_trace(path)
