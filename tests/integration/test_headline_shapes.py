"""Headline result shapes from DESIGN.md's acceptance criteria.

These run a small but meaningful configuration (three contrasting
scenarios at a moderate duration) and assert the *orderings* the paper
reports -- not absolute numbers.  They are the repository's regression
guard for the reproduction itself.
"""

import pytest

from repro.sim.runner import run_scenario
from repro.sim.scenario import selected_scenario

DURATION = 20_000.0
SCHEMES = (
    "unsecure",
    "conventional",
    "adaptive",
    "common_ctr",
    "multi_ctr_only",
    "ours",
    "bmf_unused",
    "bmf_unused_ours",
)


@pytest.fixture(scope="module")
def results():
    out = {}
    for name in ("ff1", "c1", "cc1", "cc2"):
        out[name] = run_scenario(
            selected_scenario(name), SCHEMES, duration_cycles=DURATION
        )
    return out


def norm(results, scenario, scheme):
    runs = results[scenario]
    return runs[scheme].mean_normalized_exec_time(runs["unsecure"])


def mean_norm(results, scheme):
    return sum(norm(results, s, scheme) for s in results) / len(results)


class TestProtectionCostsExist:
    def test_every_scheme_is_slower_than_unsecure(self, results):
        for scenario in results:
            for scheme in SCHEMES[1:]:
                assert norm(results, scenario, scheme) > 1.0

    def test_conventional_overhead_is_substantial(self, results):
        # Paper Sec. 5.3: ~34% average overhead; accept a broad band.
        overhead = mean_norm(results, "conventional") - 1.0
        assert 0.15 < overhead < 1.2


class TestOursWins:
    def test_ours_beats_conventional_on_average(self, results):
        assert mean_norm(results, "ours") < mean_norm(results, "conventional")

    def test_ours_beats_conventional_in_coarse_scenarios(self, results):
        assert norm(results, "cc1", "ours") < norm(results, "cc1", "conventional")
        assert norm(results, "cc2", "ours") < norm(results, "cc2", "conventional")
        assert norm(results, "c1", "ours") < norm(results, "c1", "conventional")

    def test_coarse_scenarios_gain_more_than_fine(self, results):
        def gain(scenario):
            conv = norm(results, scenario, "conventional")
            ours = norm(results, scenario, "ours")
            return (conv - ours) / conv

        assert gain("cc2") > gain("ff1")

    def test_ours_beats_prior_dual_granularity_schemes(self, results):
        assert mean_norm(results, "ours") < mean_norm(results, "adaptive")
        assert mean_norm(results, "ours") < mean_norm(results, "common_ctr")

    def test_full_scheme_beats_counter_only_ablation(self, results):
        # Paper: optimizing both counters and MACs beats counters alone.
        assert mean_norm(results, "ours") <= mean_norm(
            results, "multi_ctr_only"
        ) + 0.01


class TestSubtreeCombination:
    def test_combined_scheme_beats_ours_alone(self, results):
        assert mean_norm(results, "bmf_unused_ours") < mean_norm(results, "ours")

    def test_combined_scheme_beats_subtrees_alone(self, results):
        assert mean_norm(results, "bmf_unused_ours") < mean_norm(
            results, "bmf_unused"
        )

    def test_combined_is_best_overall(self, results):
        combined = mean_norm(results, "bmf_unused_ours")
        for scheme in SCHEMES[1:-1]:
            assert combined <= mean_norm(results, scheme) + 1e-9


class TestTrafficShapes:
    def test_ours_reduces_metadata_traffic_in_coarse_scenario(self, results):
        runs = results["cc2"]
        conv = runs["conventional"].scheme.stats.traffic.metadata_bytes
        ours = runs["ours"].scheme.stats.traffic.metadata_bytes
        assert ours < conv

    def test_ours_reduces_security_cache_misses(self, results):
        runs = results["cc2"]
        assert (
            runs["ours"].security_cache_misses
            < runs["conventional"].security_cache_misses
        )
