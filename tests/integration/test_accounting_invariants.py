"""Conservation invariants between scheme, channel and device accounting."""

import pytest

from repro.common.config import SoCConfig
from repro.schemes.registry import SCHEME_NAMES, build_scheme
from repro.sim.soc import simulate
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_workload

DURATION = 2500.0


@pytest.fixture(scope="module")
def traces():
    return [
        generate_trace(get_workload("xal"), DURATION, base_addr=0, seed=0),
        generate_trace(
            get_workload("alex"), DURATION, base_addr=64 << 20, seed=1
        ),
    ]


def build(name, config):
    grans = {0: 512, 1: 512} if name == "static_device" else None
    return build_scheme(
        name, config, footprint_bytes=128 << 20, device_granularities=grans
    )


class TestConservation:
    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_scheme_traffic_equals_channel_bytes(self, name, traces):
        """Every byte the scheme accounts for crossed the channel, and
        nothing crossed the channel unaccounted."""
        config = SoCConfig()
        result = simulate(traces, build(name, config), config)
        assert (
            result.scheme.stats.traffic.total_bytes
            == result.channel.bytes_transferred
        )

    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_request_counts_match_traces(self, name, traces):
        config = SoCConfig()
        result = simulate(traces, build(name, config), config)
        assert result.scheme.stats.requests == sum(len(t) for t in traces)
        assert result.scheme.stats.reads + result.scheme.stats.writes == (
            result.scheme.stats.requests
        )

    @pytest.mark.parametrize("name", ("conventional", "ours", "bmf_unused_ours"))
    def test_data_bytes_at_least_one_line_per_request(self, name, traces):
        config = SoCConfig()
        result = simulate(traces, build(name, config), config)
        assert result.scheme.stats.traffic.data_bytes >= (
            result.scheme.stats.requests * 64
        )

    @pytest.mark.parametrize("name", ("conventional", "ours"))
    def test_finish_cycles_cover_compute(self, name, traces):
        config = SoCConfig()
        result = simulate(traces, build(name, config), config)
        for device in result.devices:
            assert device.finish_cycle >= 0.9 * device.compute_cycles

    def test_warmup_pass_does_not_leak_into_measured_stats(self, traces):
        config = SoCConfig()
        once = simulate(traces, build("ours", config), config, warmup=False)
        warm = simulate(traces, build("ours", config), config, warmup=True)
        # The measured pass alone cannot have MORE requests than the
        # single-pass run (same trace), and its traffic accounting must
        # still balance with its own channel.
        assert warm.scheme.stats.requests == once.scheme.stats.requests
        assert (
            warm.scheme.stats.traffic.total_bytes
            == warm.channel.bytes_transferred
        )
