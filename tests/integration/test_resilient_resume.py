"""Checkpoint/resume parity: an interrupted run, resumed, must be
byte-identical to an uninterrupted one (satellite 3 of the resilient
executor).

Uses the chaos ``abort_after`` hook to kill a supervised sweep and a
supervised campaign mid-flight, then resumes from the journal and
asserts (a) only unfinished tasks re-execute (journal entry counts)
and (b) the final payloads match clean serial and clean parallel runs
exactly.
"""

from __future__ import annotations

import pytest

from repro.experiments.sweep import canonical_payloads
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.faults.exec_chaos import ChaosSpec
from repro.secure_memory.failure import FAILURE_MODES
from repro.sim.parallel import sweep_task_keys
from repro.sim.resilient import (
    ExecutionAborted,
    ResiliencePolicy,
    Supervisor,
    count_journal_entries,
    supervision,
)
from repro.sim.runner import clear_static_best_cache, run_many, sweep_scenarios
from repro.sim.scenario import all_scenarios

DURATION = 400.0
SAMPLE = 3
SCHEMES = ("conventional", "ours")
JOBS = 2
POLICY = ResiliencePolicy(timeout_seconds=60.0, seed=0)


def _scenarios():
    return sweep_scenarios(all_scenarios(), SAMPLE)


def _sweep_payloads(jobs):
    clear_static_best_cache()
    results = run_many(
        _scenarios(), SCHEMES, duration_cycles=DURATION, seed=0, jobs=jobs
    )
    return canonical_payloads(results, SCHEMES)


def _journal_entries(run_dir):
    return sum(
        count_journal_entries(path) for path in sorted(run_dir.glob("*.jsonl"))
    )


class TestSweepResumeParity:
    def test_interrupted_sweep_resumes_byte_identical(self, tmp_path):
        clean_serial = _sweep_payloads(jobs=1)
        clean_parallel = _sweep_payloads(jobs=4)
        assert clean_parallel == clean_serial  # supervised-parallel parity

        keys = sweep_task_keys(_scenarios(), SCHEMES, jobs=JOBS)
        total = len(keys)
        abort_after = max(1, total // 3)

        killer = Supervisor(
            policy=POLICY, run_id="resume-test", runs_dir=tmp_path,
            chaos=ChaosSpec(seed=0, abort_after=abort_after),
        )
        with pytest.raises(ExecutionAborted):
            with supervision(killer):
                _sweep_payloads(jobs=JOBS)

        run_dir = tmp_path / "resume-test"
        done_before = _journal_entries(run_dir)
        assert 0 < done_before < total  # genuinely interrupted mid-run

        resumer = Supervisor(
            policy=POLICY, run_id="resume-test", runs_dir=tmp_path,
            resume=True,
        )
        with supervision(resumer):
            resumed = _sweep_payloads(jobs=JOBS)

        # Only unfinished tasks re-executed ...
        assert resumer.report.resume_skips == done_before
        assert resumer.report.completed == total - done_before
        # ... and the journal now holds every task exactly once.
        assert _journal_entries(run_dir) == total
        # Byte-parity against both uninterrupted runs.
        assert resumed == clean_serial
        assert resumed == clean_parallel

    def test_full_resume_executes_nothing(self, tmp_path):
        clean = _sweep_payloads(jobs=1)
        first = Supervisor(
            policy=POLICY, run_id="full", runs_dir=tmp_path,
        )
        with supervision(first):
            _sweep_payloads(jobs=JOBS)

        again = Supervisor(
            policy=POLICY, run_id="full", runs_dir=tmp_path, resume=True,
        )
        with supervision(again):
            replayed = _sweep_payloads(jobs=JOBS)
        assert replayed == clean
        assert again.report.attempts == 0
        assert again.report.resume_skips == len(
            sweep_task_keys(_scenarios(), SCHEMES, jobs=JOBS)
        )


CAMPAIGN = CampaignConfig(
    seed=0,
    trials=1,
    attacks=("data_bitflip", "counter_tamper"),
    failure_modes=(FAILURE_MODES[0],),
)


class TestCampaignResumeParity:
    def test_interrupted_campaign_resumes_byte_identical(self, tmp_path):
        clean_serial = run_campaign(CAMPAIGN, jobs=1).to_json()
        clean_parallel = run_campaign(CAMPAIGN, jobs=4).to_json()
        assert clean_parallel == clean_serial

        killer = Supervisor(
            policy=POLICY, run_id="camp", runs_dir=tmp_path,
            chaos=ChaosSpec(seed=0, abort_after=2),
        )
        with pytest.raises(ExecutionAborted):
            with supervision(killer):
                run_campaign(CAMPAIGN, jobs=JOBS)

        run_dir = tmp_path / "camp"
        done_before = _journal_entries(run_dir)
        assert done_before >= 2

        # Campaign keys name (attack, policy, mode, granularity) cells,
        # independent of the worker count -- resuming at a *different*
        # jobs value must work.
        resumer = Supervisor(
            policy=POLICY, run_id="camp", runs_dir=tmp_path, resume=True,
        )
        with supervision(resumer):
            resumed = run_campaign(CAMPAIGN, jobs=4)
        assert resumer.report.resume_skips == done_before
        assert resumed.to_json() == clean_serial
