"""End-to-end functional secure memory: both policies, full attack matrix."""

import pytest

from repro.common.constants import CHUNK_BYTES, GRANULARITIES
from repro.common.errors import (
    AddressError,
    IntegrityError,
    ReplayError,
    SecurityError,
)
from repro.crypto.keys import KeySet
from repro.secure_memory import SecureMemory

REGION = 1 << 20


@pytest.fixture(params=["fixed", "multigranular"])
def memory(request, keys):
    return SecureMemory(REGION, keys=keys, policy=request.param)


class TestRoundtrips:
    def test_single_line(self, memory):
        memory.write(0, b"A" * 64)
        assert memory.read(0, 64) == b"A" * 64

    def test_multi_line(self, memory):
        data = bytes(range(256))
        memory.write(512, data)
        assert memory.read(512, 256) == data

    def test_overwrite(self, memory):
        memory.write(0, b"1" * 64)
        memory.write(0, b"2" * 64)
        assert memory.read(0, 64) == b"2" * 64

    def test_pristine_memory_reads_zero(self, memory):
        assert memory.read(4096, 128) == bytes(128)

    def test_sparse_writes_do_not_interfere(self, memory):
        memory.write(0, b"a" * 64)
        memory.write(64 * 100, b"b" * 64)
        assert memory.read(0, 64) == b"a" * 64
        assert memory.read(64 * 100, 64) == b"b" * 64

    def test_ciphertext_differs_from_plaintext(self, memory):
        memory.write(0, b"secret-data!" + bytes(52))
        stored = memory.dram.read_line(0)
        assert b"secret-data!" not in stored

    def test_same_plaintext_two_addresses_distinct_ciphertext(self, memory):
        memory.write(0, b"x" * 64)
        memory.write(64, b"x" * 64)
        assert memory.dram.read_line(0) != memory.dram.read_line(64)

    def test_rewrite_changes_ciphertext(self, memory):
        memory.write(0, b"x" * 64)
        first = memory.dram.read_line(0)
        memory.write(0, b"x" * 64)
        assert memory.dram.read_line(0) != first  # fresh counter -> fresh pad

    def test_unaligned_helpers(self, memory):
        memory.write_bytes(100, b"hello")
        assert memory.read_bytes(100, 5) == b"hello"
        assert memory.read_bytes(99, 1) == b"\0"

    def test_alignment_enforced(self, memory):
        with pytest.raises(AddressError):
            memory.write(1, b"x" * 64)
        with pytest.raises(AddressError):
            memory.read(0, 65)

    def test_out_of_region_rejected(self, memory):
        with pytest.raises(AddressError):
            memory.write(REGION, b"x" * 64)


class TestAttackMatrix:
    def test_data_tamper_detected(self, memory):
        memory.write(0, b"v" * 64)
        memory.tamper_data(0)
        with pytest.raises(IntegrityError):
            memory.read(0, 64)

    def test_mac_tamper_detected(self, memory):
        memory.write(0, b"v" * 64)
        memory.tamper_mac(0)
        with pytest.raises(IntegrityError):
            memory.read(0, 64)

    def test_replay_detected(self, memory):
        memory.write(0, b"v1" * 32)
        snapshot = memory.snapshot(0)
        memory.write(0, b"v2" * 32)
        memory.replay(0, snapshot)
        with pytest.raises(SecurityError):
            memory.read(0, 64)

    def test_counter_tamper_detected(self, memory):
        memory.write(0, b"v" * 64)
        memory.tree.tamper_counter(0)
        memory.tree.drop_trust_cache()
        with pytest.raises(SecurityError):
            memory.read(0, 64)

    def test_relocation_attack_detected(self, memory):
        # Move a valid ciphertext line to a different address.
        memory.write(0, b"v" * 64)
        memory.write(64, b"w" * 64)
        stolen = memory.dram.read_line(0)
        memory.dram.write_line(64, stolen)
        with pytest.raises(SecurityError):
            memory.read(64, 64)

    def test_tamper_untouched_line_of_written_region(self, memory):
        memory.write(0, b"v" * 128)
        memory.tamper_data(64, flip_mask=0xFF)
        with pytest.raises(SecurityError):
            memory.read(64, 64)


class TestKeyIsolation:
    def test_distinct_keys_produce_distinct_ciphertext(self):
        a = SecureMemory(REGION, keys=KeySet.from_seed(b"a"), policy="fixed")
        b = SecureMemory(REGION, keys=KeySet.from_seed(b"b"), policy="fixed")
        a.write(0, b"same" * 16)
        b.write(0, b"same" * 16)
        assert a.dram.read_line(0) != b.dram.read_line(0)


class TestCounters:
    def test_write_counter_advances(self, memory):
        memory.write(0, b"x" * 64)
        if memory.policy == "fixed":
            assert memory.tree.read_counter(0) == 1
            memory.write(0, b"y" * 64)
            assert memory.tree.read_counter(0) == 2

    def test_reads_do_not_advance_counters(self, memory):
        memory.write(0, b"x" * 64)
        before = memory.tree.verifications
        memory.read(0, 64)
        memory.read(0, 64)
        assert memory.tree.verifications >= before
        if memory.policy == "fixed":
            assert memory.tree.read_counter(0) == 1

    def test_stats_count_accesses(self, memory):
        memory.write(0, b"x" * 128)
        memory.read(0, 128)
        assert memory.writes == 2
        assert memory.reads == 2
