"""Campaign runner, failure policies and graceful degradation.

Covers the acceptance criteria of the robustness work: the seeded
campaign reports zero silent-corruption cells, quarantine demonstrably
keeps untouched chunks readable after a tamper, mid-switch tamper is
detected, and the partial-switch MAC relocation (compaction indices
shifting for regions *outside* a switched span) is regression-tested.
"""

import pytest

from repro.cli import main
from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES, GRANULARITIES
from repro.common.errors import (
    IntegrityError,
    QuarantineError,
    ReplayError,
    SecurityError,
)
from repro.crypto.keys import KeySet
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.faults.injector import ATTACKS
from repro.secure_memory import SecureMemory

KEYS = KeySet.from_seed(b"campaign-test")
REGION = 256 * 1024


def small_config(**overrides):
    base = dict(
        seed=7,
        trials=1,
        attacks=("data_bitflip", "data_rollback", "mid_switch_tamper"),
        failure_modes=("raise", "quarantine"),
    )
    base.update(overrides)
    return CampaignConfig(**base)


class TestCampaign:
    def test_smoke_campaign_is_clean(self):
        result = run_campaign(small_config())
        assert result.clean
        totals = result.totals()
        assert totals["silent_corruption"] == 0
        assert totals["containment_failures"] == 0
        assert totals["detected"] == totals["trials"]

    def test_full_catalog_covers_mid_switch(self):
        config = CampaignConfig(trials=1, failure_modes=("quarantine",))
        names = {a.name for a in config.selected_attacks()}
        assert "mid_switch_tamper" in names
        result = run_campaign(config)
        assert result.clean
        cells = [c for c in result.cells if c.attack == "mid_switch_tamper"]
        # Mid-switch tamper runs at every granularity (promotion from
        # the three finer ones, demotion from 32KB), multigranular only.
        assert {c.granularity for c in cells} == set(GRANULARITIES)
        assert all(c.policy == "multigranular" for c in cells)
        assert all(c.detected == c.trials for c in cells)

    def test_campaign_is_deterministic(self):
        a = run_campaign(small_config())
        b = run_campaign(small_config())
        assert a.to_json() == b.to_json()
        c = run_campaign(small_config(seed=8))
        assert c.to_json() != a.to_json()

    def test_table_and_json_render(self):
        result = run_campaign(small_config())
        table = result.format_table()
        assert "data_rollback" in table
        assert "CLEAN" in table
        assert '"silent_corruption": 0' in result.to_json()

    def test_cli_smoke_exits_zero(self, capsys):
        assert main(["faults", "--smoke", "--attacks", "data_bitflip,mac_delete"]) == 0
        out = capsys.readouterr().out
        assert "campaign CLEAN" in out

    def test_catalog_expectations_are_security_errors(self):
        for attack in ATTACKS:
            for exc in attack.expected:
                assert issubclass(exc, SecurityError)


class TestQuarantineContainment:
    def test_quarantine_keeps_bystanders_serving(self):
        mem = SecureMemory(REGION, keys=KEYS, failure_policy="quarantine")
        mem.write(0, b"\x11" * CHUNK_BYTES)          # chunk 0, promoted
        mem.write(CHUNK_BYTES, b"\x22" * 512)        # chunk 1, fine
        assert mem.granularity_of(0) == CHUNK_BYTES
        mem.tamper_data(1024)
        with pytest.raises(QuarantineError):
            mem.read(1024, CACHELINE_BYTES)
        # The whole poisoned region fails closed...
        with pytest.raises(QuarantineError):
            mem.read(0, CACHELINE_BYTES)
        assert mem.is_quarantined(1024)
        # ...but the untouched chunk still serves.
        assert mem.read(CHUNK_BYTES, 512) == b"\x22" * 512

    def test_quarantined_region_demotes_and_heals(self):
        mem = SecureMemory(REGION, keys=KEYS, failure_policy="quarantine")
        mem.write(0, b"\x33" * 4096)
        assert mem.force_granularity(0, 4096) == 4096
        mem.tamper_data(128)
        with pytest.raises(QuarantineError):
            mem.read(128, CACHELINE_BYTES)
        # Demoted back to fine so healing is line-granular.
        assert mem.granularity_of(0) == GRANULARITIES[0]
        assert len(mem.quarantined_lines()) == 4096 // CACHELINE_BYTES
        # Fresh writes heal line by line.
        mem.write(128, b"\x44" * CACHELINE_BYTES)
        assert mem.read(128, CACHELINE_BYTES) == b"\x44" * CACHELINE_BYTES
        assert not mem.is_quarantined(128)
        # Unhealed lines stay closed.
        with pytest.raises(QuarantineError):
            mem.read(192, CACHELINE_BYTES)
        assert mem.events.get("healed_lines") == 1

    def test_quarantined_partitions_resist_repromotion(self):
        mem = SecureMemory(REGION, keys=KEYS, failure_policy="quarantine")
        mem.write(0, b"\x55" * 512)
        assert mem.force_granularity(0, 512) == 512
        mem.tamper_data(0)
        with pytest.raises(QuarantineError):
            mem.read(0, CACHELINE_BYTES)
        # Staging a promotion over the poisoned partition must be
        # clamped by the resolver, not re-seal unverifiable data.
        mem.table.entry(0).next = 0xFF
        mem.write(4096, b"\x66" * CACHELINE_BYTES)
        assert mem.granularity_of(0) == GRANULARITIES[0]
        with pytest.raises(QuarantineError):
            mem.read(64, CACHELINE_BYTES)

    def test_raise_policy_keeps_paper_semantics(self):
        mem = SecureMemory(REGION, keys=KEYS)  # default: raise
        mem.write(0, b"\x77" * CACHELINE_BYTES)
        mem.tamper_data(0)
        with pytest.raises(IntegrityError):
            mem.read(0, CACHELINE_BYTES)
        assert not mem.is_quarantined(0)
        # Detection is repeatable, not absorbed.
        with pytest.raises(IntegrityError):
            mem.read(0, CACHELINE_BYTES)

    def test_retry_policy_absorbs_transient_glitch(self):
        mem = SecureMemory(
            REGION, keys=KEYS, failure_policy="retry-then-quarantine"
        )
        mem.write(0, b"\x88" * CACHELINE_BYTES)
        mem.tamper_data_transient(0)
        assert mem.read(0, CACHELINE_BYTES) == b"\x88" * CACHELINE_BYTES
        assert not mem.is_quarantined(0)
        assert mem.events.get("retry_recoveries") == 1
        assert len(mem.integrity_log) == 1
        event = mem.integrity_log.events[0]
        assert event.recovered and event.kind == "read-failure"

    def test_retry_policy_still_quarantines_persistent_tamper(self):
        mem = SecureMemory(
            REGION, keys=KEYS, failure_policy="retry-then-quarantine"
        )
        mem.write(0, b"\x99" * CACHELINE_BYTES)
        mem.tamper_data(0)
        with pytest.raises(QuarantineError) as exc_info:
            mem.read(0, CACHELINE_BYTES)
        assert isinstance(exc_info.value.__cause__, IntegrityError)
        assert mem.is_quarantined(0)

    def test_replay_detection_survives_quarantine_wrapping(self):
        mem = SecureMemory(REGION, keys=KEYS, failure_policy="quarantine")
        mem.write(0, b"\xaa" * CACHELINE_BYTES)
        stale = mem.snapshot(0)
        mem.write(0, b"\xbb" * CACHELINE_BYTES)
        mem.replay(0, stale)
        with pytest.raises(QuarantineError) as exc_info:
            mem.read(0, CACHELINE_BYTES)
        assert isinstance(exc_info.value.__cause__, ReplayError)

    def test_hard_quarantine_when_tree_unrecoverable(self):
        mem = SecureMemory(REGION, keys=KEYS, failure_policy="quarantine")
        mem.write(0, b"\xcc" * 512)
        assert mem.force_granularity(0, 512) == 512
        # Corrupt the promoted counter itself: the demotion cannot read
        # a trustworthy shared value, so the region fails closed hard.
        mem.tree.tamper_counter(0, level=1, delta=3)
        mem.tree.drop_trust_cache()
        with pytest.raises(QuarantineError):
            mem.read(0, CACHELINE_BYTES)
        assert mem.events.get("hard_quarantines") == 1
        with pytest.raises(QuarantineError):
            mem.write(0, b"\xdd" * CACHELINE_BYTES)  # no heal for hard


class TestSwitchIntegrity:
    def test_outside_span_macs_relocate_on_partial_switch(self):
        """Regression: promoting one 4KB group must not orphan the
        compacted MACs of other sealed regions in the same chunk."""
        mem = SecureMemory(REGION, keys=KEYS)
        mem.write(4096, b"\xaa" * CACHELINE_BYTES)   # group 1, fine
        mem.table.entry(0).next = 0xFF               # stream group 0
        mem.write(0, b"\xbb" * 4096)                 # triggers the switch
        assert mem.granularity_of(0) == 4096
        # The group-1 line's MAC moved with the chunk bitmap; its data
        # must still verify.
        assert mem.read(4096, CACHELINE_BYTES) == b"\xaa" * CACHELINE_BYTES
        assert mem.read(0, CACHELINE_BYTES) == b"\xbb" * CACHELINE_BYTES

    def test_demotion_relocates_outside_macs_too(self):
        mem = SecureMemory(REGION, keys=KEYS)
        mem.write(4096, b"\xcc" * CACHELINE_BYTES)
        mem.write(0, b"\xdd" * 512)
        assert mem.force_granularity(0, 512) == 512
        assert mem.force_granularity(0, 64) == 64
        assert mem.read(4096, CACHELINE_BYTES) == b"\xcc" * CACHELINE_BYTES
        assert mem.read(0, 512) == b"\xdd" * 512

    def test_mid_switch_tamper_contained(self):
        mem = SecureMemory(REGION, keys=KEYS, failure_policy="quarantine")
        mem.write(CHUNK_BYTES, b"\xee" * CACHELINE_BYTES)  # bystander
        mem.write(0, b"\xff" * 512)
        assert mem.force_granularity(0, 512) == 512
        # Stage a promotion, then corrupt inside the lazy window.
        mem.table.entry(0).next |= 0xFF
        mem.tamper_data(64)
        with pytest.raises(QuarantineError):
            mem.read(0, 512)
        assert mem.events.get("switch_failures") == 1
        # Bystander chunk unaffected; poisoned span failed closed.
        assert mem.read(CHUNK_BYTES, CACHELINE_BYTES) == b"\xee" * CACHELINE_BYTES
        assert mem.is_quarantined(64)

    def test_mid_switch_tamper_raises_under_paper_semantics(self):
        mem = SecureMemory(REGION, keys=KEYS)
        mem.write(0, b"\x12" * 512)
        assert mem.force_granularity(0, 512) == 512
        mem.table.entry(0).next |= 0xFF
        mem.tamper_data(64)
        with pytest.raises((IntegrityError, ReplayError)):
            mem.read(0, 512)
