"""Per-device integrity metrics and the bounded static-best memo."""

from dataclasses import replace

from repro.common.config import SoCConfig
from repro.sim import runner
from repro.sim.runner import (
    _STATIC_BEST_CACHE_MAX,
    best_static_granularity,
    clear_static_best_cache,
    run_scenario,
)
from repro.sim.scenario import SELECTED_SCENARIOS


class TestPerDeviceIntegrityEvents:
    def test_devices_report_integrity_work(self):
        runs = run_scenario(
            SELECTED_SCENARIOS[0], ["unsecure", "ours"], duration_cycles=2000.0
        )
        for dev in runs["ours"].devices:
            events = dev.integrity_events
            assert events["requests"] == events.get("reads", 0) + events.get(
                "writes", 0
            )
            assert events.get("mac_verifications", 0) > 0
        # Scheme-level totals match the per-device attribution.
        stats = runs["ours"].scheme.stats
        assert stats.requests == sum(
            d.integrity_events.get("requests", 0) for d in runs["ours"].devices
        )

    def test_unsecure_devices_report_no_mac_work(self):
        runs = run_scenario(
            SELECTED_SCENARIOS[0], ["unsecure"], duration_cycles=1000.0
        )
        for dev in runs["unsecure"].devices:
            assert dev.integrity_events.get("mac_verifications", 0) == 0


class TestStaticBestCacheBound:
    def test_cache_is_bounded_and_clearable(self):
        clear_static_best_cache()
        config = SoCConfig()
        scenario = SELECTED_SCENARIOS[0]
        traces, _ = scenario.build_traces(500.0, seed=0)
        best_static_granularity(traces[0], config)
        assert 0 < len(runner._static_best_cache) <= _STATIC_BEST_CACHE_MAX
        # Memoized: a second call must not grow the cache.
        size = len(runner._static_best_cache)
        best_static_granularity(traces[0], config)
        assert len(runner._static_best_cache) == size
        clear_static_best_cache()
        assert len(runner._static_best_cache) == 0

    def test_memo_key_distinguishes_configs(self):
        """A result found under one SoCConfig must not serve another.

        Regression test: the memo key used to omit the config, so a
        sweep that varied channel bandwidth or engine latency silently
        reused the first config's search result for every other config.
        """
        clear_static_best_cache()
        config = SoCConfig()
        # Starve the channel: the traffic term of the search's cost
        # function blows up, which can legitimately flip the winner --
        # and must at minimum be recomputed, not served from cache.
        starved = replace(
            config,
            memory=replace(
                config.memory,
                bytes_per_cycle=config.memory.bytes_per_cycle / 64.0,
            ),
        )
        scenario = SELECTED_SCENARIOS[0]
        traces, _ = scenario.build_traces(500.0, seed=0)
        first = best_static_granularity(traces[0], config)
        assert len(runner._static_best_cache) == 1
        second = best_static_granularity(traces[0], starved)
        # One entry per config: the second call computed, not reused.
        assert len(runner._static_best_cache) == 2
        # Both answers match a fresh computation under their config.
        clear_static_best_cache()
        assert best_static_granularity(traces[0], starved) == second
        clear_static_best_cache()
        assert best_static_granularity(traces[0], config) == first
        clear_static_best_cache()

    def test_lru_eviction_keeps_newest(self):
        clear_static_best_cache()
        # Synthesize entries beyond the cap; only the newest survive.
        for i in range(_STATIC_BEST_CACHE_MAX + 10):
            runner._static_best_cache[(f"w{i}", 0.0, i)] = 64
            while len(runner._static_best_cache) > _STATIC_BEST_CACHE_MAX:
                runner._static_best_cache.popitem(last=False)
        assert len(runner._static_best_cache) == _STATIC_BEST_CACHE_MAX
        assert (f"w{_STATIC_BEST_CACHE_MAX + 9}", 0.0, _STATIC_BEST_CACHE_MAX + 9) in (
            runner._static_best_cache
        )
        assert ("w0", 0.0, 0) not in runner._static_best_cache
        clear_static_best_cache()
