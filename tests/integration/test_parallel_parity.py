"""Parallel execution must be bit-identical to serial execution.

The parallel engine (``repro.sim.parallel``) re-runs the exact same
pure simulation functions in worker processes and reduces results in
submission order, so every figure, table and JSON payload must come
out byte-for-byte the same at any ``jobs`` value.  These tests pin
that contract on a sweep sample, a fault-campaign slice and a seeded
warmup scenario.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import sweep
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.sim.parallel import (
    SlimRunResult,
    default_jobs,
    map_ordered,
    resolve_jobs,
    run_scenarios,
    slim_result,
)
from repro.sim.runner import clear_static_best_cache, run_many, run_scenario
from repro.sim.scenario import REALWORLD_SCENARIOS, selected_scenario
from repro.sim.soc import RunResult

DURATION = 1200.0
SCHEMES = ("unsecure", "conventional", "static_device", "ours")


def _payloads(pairs):
    """Canonical JSON rendering of run_many-style output."""
    out = []
    for scenario, runs in pairs:
        base = runs["unsecure"]
        out.append(
            {
                "scenario": scenario.name,
                "schemes": {
                    name: run.to_dict(baseline=base)
                    for name, run in runs.items()
                },
            }
        )
    return json.dumps(out, sort_keys=True)


class TestScenarioParity:
    def test_run_scenario_schemes_identical(self):
        scenario = selected_scenario("cc1")
        clear_static_best_cache()
        serial = run_scenario(scenario, SCHEMES, None, DURATION, seed=3)
        clear_static_best_cache()
        parallel = run_scenario(
            scenario, SCHEMES, None, DURATION, seed=3, jobs=4
        )
        assert _payloads([(scenario, serial)]) == _payloads(
            [(scenario, parallel)]
        )

    def test_parallel_results_are_slim(self):
        scenario = selected_scenario("cc1")
        runs = run_scenario(scenario, SCHEMES, None, DURATION, seed=0, jobs=4)
        assert all(isinstance(r, SlimRunResult) for r in runs.values())

    def test_serial_results_stay_live(self):
        scenario = selected_scenario("cc1")
        runs = run_scenario(scenario, SCHEMES, None, DURATION, seed=0, jobs=1)
        assert all(isinstance(r, RunResult) for r in runs.values())
        assert runs["ours"].scheme is not None

    def test_per_device_finish_cycles_and_traffic(self):
        scenario = selected_scenario("f1")
        serial = run_scenario(scenario, SCHEMES, None, DURATION, seed=7)
        parallel = run_scenario(
            scenario, SCHEMES, None, DURATION, seed=7, jobs=3
        )
        for name in SCHEMES:
            s, p = serial[name], parallel[name]
            assert [d.finish_cycle for d in s.devices] == [
                d.finish_cycle for d in p.devices
            ]
            assert s.total_traffic_bytes == p.total_traffic_bytes
            assert s.security_cache_misses == p.security_cache_misses
            assert s.metrics == p.metrics

    def test_warmup_off_parity(self):
        scenario = selected_scenario("cc1")
        serial = run_scenario(
            scenario, SCHEMES, None, DURATION, seed=5, warmup=False
        )
        parallel = run_scenario(
            scenario, SCHEMES, None, DURATION, seed=5, warmup=False, jobs=4
        )
        assert _payloads([(scenario, serial)]) == _payloads(
            [(scenario, parallel)]
        )

    def test_obs_factory_forces_serial(self):
        from repro.obs import ObsContext

        scenario = selected_scenario("cc1")
        obs = []

        def factory():
            ctx = ObsContext.enabled(capacity=1024)
            obs.append(ctx)
            return ctx

        runs = run_scenario(
            scenario, ("ours",), None, DURATION, obs_factory=factory, jobs=8
        )
        # Live tracing cannot cross a process boundary: the run must
        # have happened in this process, against our contexts.
        assert obs and isinstance(runs["ours"], RunResult)
        assert runs["ours"].trace


class TestSweepParity:
    def test_run_many_cross_product_identical(self):
        scenarios = list(REALWORLD_SCENARIOS)
        serial = run_many(scenarios, SCHEMES, None, DURATION, seed=1)
        parallel = run_many(scenarios, SCHEMES, None, DURATION, seed=1, jobs=4)
        assert _payloads(serial) == _payloads(parallel)

    def test_run_scenarios_matches_run_many_order(self):
        scenarios = list(REALWORLD_SCENARIOS)
        parallel = run_scenarios(
            scenarios, SCHEMES, None, DURATION, seed=2, jobs=4
        )
        assert [s.name for s, _ in parallel] == [s.name for s in scenarios]
        for _, runs in parallel:
            assert list(runs) == list(SCHEMES)

    def test_sweep_results_parity(self):
        sweep.clear_cache()
        serial = sweep.sweep_results(3, DURATION, seed=0, schemes=SCHEMES)
        sweep.clear_cache()
        parallel = sweep.sweep_results(
            3, DURATION, seed=0, schemes=SCHEMES, jobs=4
        )
        sweep.clear_cache()
        assert _payloads(serial) == _payloads(parallel)


class TestCampaignParity:
    def test_campaign_matrix_identical(self):
        config = CampaignConfig(
            trials=1, attacks=("data_bitflip", "node_rollback", "data_rollback")
        )
        serial = run_campaign(config)
        parallel = run_campaign(config, jobs=4)
        assert serial.to_json() == parallel.to_json()
        assert serial.format_table() == parallel.format_table()


class TestPlumbing:
    def test_map_ordered_preserves_order(self):
        assert map_ordered(abs, [-3, 1, -2], jobs=2) == [3, 1, 2]

    def test_map_ordered_falls_back_on_unpicklable(self):
        # A lambda cannot be pickled; the pool attempt fails and the
        # serial fallback must still produce the right answer.
        fn = lambda x: x * 2  # noqa: E731
        assert map_ordered(fn, [1, 2, 3], jobs=2) == [2, 4, 6]

    def test_resolve_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(0) == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3
        assert default_jobs() == 3

    def test_slim_result_idempotent(self):
        scenario = selected_scenario("cc1")
        runs = run_scenario(scenario, ("ours",), None, DURATION)
        slim = slim_result(runs["ours"])
        assert slim_result(slim) is slim
        assert slim.to_dict() == runs["ours"].to_dict()


@pytest.fixture(autouse=True)
def _no_env_jobs(monkeypatch):
    """Parity assertions assume jobs=None means serial."""
    monkeypatch.delenv("REPRO_JOBS", raising=False)
