"""Every experiment regenerates with sane structure at small scale."""

import pytest

from repro.common.constants import GRANULARITIES
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import ExperimentResult, label
from repro.experiments import sweep

DURATION = 4000.0
SAMPLE = 3


@pytest.fixture(autouse=True, scope="module")
def _fresh_sweep_cache():
    sweep.clear_cache()
    yield
    sweep.clear_cache()


class TestFig04:
    @pytest.fixture(scope="class")
    def result(self):
        return ALL_EXPERIMENTS["fig04"].run(duration_cycles=DURATION)

    def test_all_14_workloads_present(self, result):
        assert len(result.rows) == 14

    def test_ratios_sum_to_one(self, result):
        for row in result.rows:
            total = row["64B"] + row["512B"] + row["4KB"] + row["32KB"]
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_cpu_is_fine_dominated(self, result):
        for row in result.rows:
            if row["device"] == "cpu":
                assert row["64B"] > 0.5

    def test_alex_is_chunk_dominated(self, result):
        alex = next(r for r in result.rows if r["workload"] == "alex")
        assert alex["32KB"] > 0.5

    def test_table_renders(self, result):
        text = result.format_table()
        assert "alex" in text and "Fig. 4" in text


class TestFig05:
    @pytest.fixture(scope="class")
    def result(self):
        return ALL_EXPERIMENTS["fig05"].run(duration_cycles=DURATION)

    def test_four_device_classes(self, result):
        assert [row["class"] for row in result.rows] == [
            "cpu", "gpu", "npu", "hetero",
        ]

    def test_overheads_are_nonnegative(self, result):
        for row in result.rows:
            assert row["total_overhead"] >= -0.01
            assert row["traffic_increase"] >= 0.0

    def test_breakdown_sums(self, result):
        for row in result.rows:
            assert row["mac_overhead"] + row["counter_overhead"] == (
                pytest.approx(row["total_overhead"], abs=1e-6)
            )


class TestFig06:
    def test_rows_cover_both_workloads(self):
        result = ALL_EXPERIMENTS["fig06"].run(duration_cycles=DURATION)
        assert {row["workload"] for row in result.rows} == {"alex", "sfrnn"}
        assert len(result.rows) == 4


class TestTab02:
    def test_ratios_sum_to_one(self):
        result = ALL_EXPERIMENTS["tab02"].run(duration_cycles=DURATION)
        total = sum(row["ratio"] for row in result.rows)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_correct_prediction_dominates(self):
        result = ALL_EXPERIMENTS["tab02"].run(duration_cycles=DURATION)
        correct = next(
            r for r in result.rows if r["category"] == "correct_prediction"
        )
        assert correct["ratio"] > 0.5


class TestSweepFigures:
    @pytest.fixture(scope="class")
    def fig15(self):
        return ALL_EXPERIMENTS["fig15"].run(sample=SAMPLE, duration_cycles=DURATION)

    def test_fig15_percentiles_are_ordered(self, fig15):
        for row in fig15.rows:
            assert row["p25"] <= row["p50"] <= row["p75"] <= row["p90"]

    def test_fig15_all_schemes_slower_than_unsecure(self, fig15):
        for row in fig15.rows:
            assert row["mean"] >= 1.0

    def test_fig16_normalizes_to_ours(self):
        result = ALL_EXPERIMENTS["fig16"].run(
            sample=SAMPLE, duration_cycles=DURATION
        )
        ours = next(r for r in result.rows if r["scheme"] == label("ours"))
        assert ours["traffic_vs_ours"] == pytest.approx(1.0)
        assert ours["misses_vs_ours"] == pytest.approx(1.0)

    def test_fig17_contains_breakdown_schemes(self):
        result = ALL_EXPERIMENTS["fig17"].run(
            sample=SAMPLE, duration_cycles=DURATION
        )
        schemes = {row["scheme"] for row in result.rows}
        assert label("conventional") in schemes
        assert label("ours") in schemes

    def test_fig18_traffic_vs_unsecure_above_one(self):
        result = ALL_EXPERIMENTS["fig18"].run(
            sample=SAMPLE, duration_cycles=DURATION
        )
        for row in result.rows:
            assert row["traffic_vs_unsecure"] >= 1.0

    def test_sweep_cache_is_reused(self):
        before = len(sweep._cache)
        ALL_EXPERIMENTS["fig15"].run(sample=SAMPLE, duration_cycles=DURATION)
        ALL_EXPERIMENTS["fig16"].run(sample=SAMPLE, duration_cycles=DURATION)
        assert len(sweep._cache) == max(1, before)

    def test_sweep_cache_keyed_on_environment(self, monkeypatch):
        """A cached sweep must not survive env-knob changes.

        ``sweep_scenarios`` reads REPRO_FULL_SWEEP and the default
        duration comes from REPRO_SIM_DURATION, so the memo key
        carries both; flipping either must miss the cache.
        """
        monkeypatch.delenv("REPRO_SIM_DURATION", raising=False)
        sweep.clear_cache()
        schemes = ("unsecure", "ours")
        sweep.sweep_results(2, 300.0, schemes=schemes)
        assert len(sweep._cache) == 1
        # Same signature, same env: served from cache.
        sweep.sweep_results(2, 300.0, schemes=schemes)
        assert len(sweep._cache) == 1
        # Env changed: the old entry must not be served.
        monkeypatch.setenv("REPRO_SIM_DURATION", "250")
        sweep.sweep_results(2, 300.0, schemes=schemes)
        assert len(sweep._cache) == 2
        sweep.clear_cache()

    def test_sweep_cache_is_lru_bounded(self):
        sweep.clear_cache()
        for i in range(sweep._CACHE_MAX):
            sweep._cache[("fake", i)] = []
        schemes = ("unsecure", "ours")
        sweep.sweep_results(2, 300.0, schemes=schemes)
        assert len(sweep._cache) <= sweep._CACHE_MAX
        # The oldest synthetic entry was evicted, the real one kept.
        assert ("fake", 0) not in sweep._cache
        assert sweep.sweep_results(2, 300.0, schemes=schemes) is not None
        sweep.clear_cache()


class TestFig19:
    @pytest.fixture(scope="class")
    def panels(self):
        return ALL_EXPERIMENTS["fig19"].run(duration_cycles=DURATION)

    def test_three_panels(self, panels):
        assert set(panels) == {"a", "b", "c"}

    def test_panel_a_has_all_11_scenarios(self, panels):
        assert len(panels["a"].rows) == 11

    def test_panel_b_distributions_sum_to_one(self, panels):
        for row in panels["b"].rows:
            total = row["64B"] + row["512B"] + row["4KB"] + row["32KB"]
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_panel_c_has_four_devices_per_scenario(self, panels):
        assert len(panels["c"].rows) == 44


class TestFig20:
    def test_mean_row_appended(self):
        result = ALL_EXPERIMENTS["fig20"].run(duration_cycles=DURATION)
        assert result.rows[-1]["scenario"] == "MEAN"
        assert len(result.rows) == 12

    def test_no_switch_never_slower_than_ours(self):
        result = ALL_EXPERIMENTS["fig20"].run(duration_cycles=DURATION)
        mean_row = result.rows[-1]
        assert mean_row["ours_no_switch"] <= mean_row["ours"] + 0.02


class TestFig21:
    def test_both_pipelines_and_all_schemes(self):
        result = ALL_EXPERIMENTS["fig21"].run(duration_cycles=DURATION)
        assert {row["pipeline"] for row in result.rows} == {
            "finance", "autodrive",
        }
        assert len(result.rows) == 8

    def test_overhead_matches_norm(self):
        result = ALL_EXPERIMENTS["fig21"].run(duration_cycles=DURATION)
        for row in result.rows:
            assert row["overhead"] == pytest.approx(row["norm_exec"] - 1.0)


class TestTab04:
    def test_all_16_workloads_classified(self):
        result = ALL_EXPERIMENTS["tab04"].run(duration_cycles=DURATION)
        assert len(result.rows) == 16

    def test_result_type(self):
        result = ALL_EXPERIMENTS["tab04"].run(duration_cycles=DURATION)
        assert isinstance(result, ExperimentResult)
        assert result.column_values("workload")
