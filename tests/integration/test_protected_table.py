"""Protected granularity-table storage (paper Sec. 4.4 table region)."""

import pytest

from repro.common.constants import CHUNK_BYTES, GRANULARITIES
from repro.common.errors import SecurityError
from repro.core.gran_table import GranularityTable
from repro.core.stream_part import FULL_MASK
from repro.crypto.keys import KeySet
from repro.secure_memory import ProtectedTableStore, SecureMemory


@pytest.fixture()
def store(keys):
    return ProtectedTableStore(chunks=64, keys=keys)


class TestEntryLifecycle:
    def test_store_load_roundtrip(self, store):
        store.store(3, FULL_MASK, 0xFF)
        assert store.load(3) == (FULL_MASK, 0xFF)

    def test_unwritten_entries_read_empty(self, store):
        assert store.load(10) == (0, 0)

    def test_bounds_checked(self, store):
        with pytest.raises(IndexError):
            store.load(64)
        with pytest.raises(IndexError):
            store.store(-1, 0, 0)

    def test_invalid_size_rejected(self, keys):
        with pytest.raises(ValueError):
            ProtectedTableStore(chunks=0, keys=keys)


class TestCheckpointRestore:
    def test_working_table_survives_a_power_cycle(self, store):
        table = GranularityTable()
        table.record_detection(0, FULL_MASK)
        table.resolve(0, is_write=False)  # apply -> current = FULL
        table.record_detection(5, 0xFF)
        assert store.checkpoint(table) == 2

        fresh = GranularityTable()
        store.restore(fresh)
        assert fresh.peek_granularity(0) == GRANULARITIES[3]
        assert fresh.entry_by_chunk(5).next == 0xFF

    def test_checkpoint_skips_empty_entries(self, store):
        table = GranularityTable()
        table.resolve(7 * CHUNK_BYTES, is_write=False)  # entry exists, empty
        assert store.checkpoint(table) == 0


class TestTableAttackSurface:
    def test_forged_entry_is_detected_on_load(self, store):
        store.store(3, FULL_MASK, FULL_MASK)
        store.tamper_entry(3)
        with pytest.raises(SecurityError):
            store.load(3)

    def test_restore_fails_closed_on_tampered_region(self, store):
        table = GranularityTable()
        table.record_detection(2, FULL_MASK)
        store.checkpoint(table)
        store.tamper_entry(2)
        with pytest.raises(SecurityError):
            store.restore(GranularityTable())

    def test_replaying_a_stale_entry_is_detected(self, store):
        store.store(4, 0, 0xFF)
        stale = store._memory.snapshot(4 * 16)
        store.store(4, FULL_MASK, FULL_MASK)
        store._memory.replay(4 * 16, stale)
        with pytest.raises(SecurityError):
            store.load(4)

    def test_independent_keys_isolate_tables(self):
        a = ProtectedTableStore(chunks=8, keys=KeySet.from_seed(b"a"))
        b = ProtectedTableStore(chunks=8, keys=KeySet.from_seed(b"b"))
        a.store(0, 1, 2)
        # Graft A's sealed region onto B: every load must fail.
        b._memory.dram = a._memory.dram
        b._memory._macs = a._memory._macs
        b._memory.tree = a._memory.tree
        with pytest.raises(SecurityError):
            b.load(0)
