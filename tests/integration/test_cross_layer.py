"""Cross-layer consistency: functional engine vs timing scheme.

Both layers run the same tracker -> detector -> table pipeline from
``repro.core``; replaying one access sequence through each must yield
the same learned granularities.  This pins the two layers together: a
change to detection semantics cannot silently diverge them.
"""

import pytest

from repro.common.config import SoCConfig
from repro.common.constants import CHUNK_BYTES, GRANULARITIES
from repro.common.types import AccessType, MemoryRequest
from repro.crypto.keys import KeySet
from repro.mem.channel import MemoryChannel
from repro.schemes.multigran import MultiGranularScheme
from repro.secure_memory import SecureMemory

REGION = 512 * 1024


def access_sequence():
    """A deterministic mixed pattern: one streamed chunk, one 4KB group,
    scattered fine lines in a third chunk."""
    seq = []
    for line in range(512):  # chunk 0: full stream (promote to 32KB)
        seq.append((line * 64, True))
    base = CHUNK_BYTES
    for line in range(64):  # chunk 1: one 4KB group
        seq.append((base + line * 64, False))
    base = 2 * CHUNK_BYTES
    for line in (0, 77, 300, 413):  # chunk 2: scattered
        seq.append((base + line * 64, False))
    # Revisit everything so lazy switches apply.
    seq += [(0, False), (CHUNK_BYTES, False), (2 * CHUNK_BYTES, False)]
    return seq


#: Request spacing (cycles).  Small enough that a 512-line stream fits
#: one 16K-cycle tracker window; the long pause before the final
#: revisits expires lingering entries so detections bank in both layers.
SPACING = 10.0
PAUSE_BEFORE_REVISITS = 20_000


@pytest.fixture(scope="module")
def functional():
    memory = SecureMemory(REGION, keys=KeySet.from_seed(b"xlayer"))
    sequence = access_sequence()
    for index, (addr, is_write) in enumerate(sequence):
        if index == len(sequence) - 3:
            memory.advance(PAUSE_BEFORE_REVISITS)
        if is_write:
            memory.write(addr, b"w" * 64)
        else:
            memory.read(addr, 64)
        memory.advance(int(SPACING) - 1)  # the engine adds 1 per access
    return memory


@pytest.fixture(scope="module")
def timing():
    config = SoCConfig()
    scheme = MultiGranularScheme(config, REGION)
    channel = MemoryChannel(config.memory)
    cycle = 0.0
    sequence = access_sequence()
    for index, (addr, is_write) in enumerate(sequence):
        if index == len(sequence) - 3:
            cycle += PAUSE_BEFORE_REVISITS
        cycle += SPACING
        req = MemoryRequest(
            int(cycle), addr, 64,
            AccessType.WRITE if is_write else AccessType.READ,
        )
        scheme.process(req, cycle, channel)
    return scheme


class TestLayersAgree:
    def test_streamed_chunk_promoted_in_both(self, functional, timing):
        assert functional.granularity_of(0) == GRANULARITIES[3]
        assert timing.table.peek_granularity(0) == GRANULARITIES[3]

    def test_group_chunk_agrees(self, functional, timing):
        f = functional.granularity_of(CHUNK_BYTES)
        t = timing.table.peek_granularity(CHUNK_BYTES)
        assert f == t
        # The long pause expired the group's tracker entry, so it was
        # classified before the revisit.
        assert functional.table.entry_by_chunk(1).next != 0

    def test_scattered_chunk_stays_fine_in_both(self, functional, timing):
        assert functional.granularity_of(2 * CHUNK_BYTES) == GRANULARITIES[0]
        assert timing.table.peek_granularity(2 * CHUNK_BYTES) == GRANULARITIES[0]

    def test_detected_bitmaps_match(self, functional, timing):
        for chunk in range(3):
            f_bits = functional.table.entry_by_chunk(chunk).next
            t_bits = timing.table.entry_by_chunk(chunk).next
            assert f_bits == t_bits, f"chunk {chunk} diverged"

    def test_functional_data_still_correct_after_everything(self, functional):
        assert functional.read(0, 64) == b"w" * 64
        assert functional.read(2 * CHUNK_BYTES, 64) == bytes(64)
