"""Phased trace generation."""

import pytest

from repro.common.errors import ConfigError
from repro.workloads.phases import generate_phased_trace
from repro.workloads.registry import get_workload


class TestPhasedTraces:
    def test_phases_concatenate(self):
        alex = get_workload("alex")
        one = generate_phased_trace([alex], 2000, phases=1)
        two = generate_phased_trace([alex], 2000, phases=2)
        assert len(two) > len(one)

    def test_alternation_changes_character(self):
        alex, mcf = get_workload("alex"), get_workload("mcf")
        trace = generate_phased_trace([alex, mcf], 2000, phases=2)
        # Phase 0 (alex) is bursty sequential; phase 1 (mcf) scattered.
        assert trace.spec.name.startswith("phased(")
        assert trace.spec.pattern_label == "phased"

    def test_shared_footprint_is_the_maximum(self):
        alex, mcf = get_workload("alex"), get_workload("mcf")
        trace = generate_phased_trace([alex, mcf], 1000, phases=2)
        assert trace.spec.footprint_bytes == max(
            alex.footprint_bytes, mcf.footprint_bytes
        )

    def test_addresses_stay_in_range(self):
        alex, mcf = get_workload("alex"), get_workload("mcf")
        trace = generate_phased_trace(
            [alex, mcf], 1500, phases=3, base_addr=1 << 20
        )
        for _, addr, _ in trace.entries:
            assert (1 << 20) <= addr < (1 << 20) + trace.spec.footprint_bytes

    def test_validation(self):
        with pytest.raises(ConfigError):
            generate_phased_trace([], 1000, phases=1)
        with pytest.raises(ConfigError):
            generate_phased_trace([get_workload("bw")], 0, phases=1)
