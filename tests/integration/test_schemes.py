"""Timing-layer schemes: per-scheme invariants over small traces."""

import pytest

from repro.common.config import SoCConfig
from repro.common.constants import GRANULARITIES
from repro.common.errors import ConfigError
from repro.common.types import AccessType, MemoryRequest, MetadataKind
from repro.mem.channel import MemoryChannel
from repro.schemes.registry import SCHEME_NAMES, build_scheme
from repro.sim.soc import simulate
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_workload

DURATION = 4000.0


@pytest.fixture(scope="module")
def config():
    return SoCConfig()


@pytest.fixture(scope="module")
def alex_trace():
    return generate_trace(get_workload("alex"), DURATION, seed=1)


@pytest.fixture(scope="module")
def bw_trace():
    return generate_trace(get_workload("bw"), DURATION, seed=1)


def build(name, config, footprint=64 << 20):
    grans = {0: 512} if name == "static_device" else None
    return build_scheme(
        name, config, footprint_bytes=footprint, device_granularities=grans
    )


class TestRegistry:
    def test_all_names_build(self, config):
        for name in SCHEME_NAMES:
            scheme = build(name, config)
            assert scheme.process is not None

    def test_unknown_name_raises(self, config):
        with pytest.raises(ConfigError):
            build_scheme("bogus", config)

    def test_static_requires_granularities(self, config):
        with pytest.raises(ConfigError):
            build_scheme("static_device", config)

    def test_bmf_schemes_prune_tree_to_footprint(self, config):
        pruned = build_scheme("bmf_unused", config, footprint_bytes=1 << 20)
        full = build_scheme("conventional", config)
        assert pruned.geometry.num_levels < full.geometry.num_levels


class TestSchemeInvariants:
    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_completions_are_causal(self, name, config, alex_trace, bw_trace):
        scheme = build(name, config)
        channel = MemoryChannel(config.memory)
        cycle = 0.0
        for gap, addr, is_write in alex_trace.entries[:600]:
            cycle += gap
            req = MemoryRequest(
                int(cycle), addr, 64,
                AccessType.WRITE if is_write else AccessType.READ,
            )
            done = scheme.process(req, cycle, channel)
            assert done >= cycle
        scheme.finish(channel)
        assert scheme.stats.requests == 600

    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_every_request_moves_its_data(self, name, config, alex_trace):
        scheme = build(name, config)
        channel = MemoryChannel(config.memory)
        cycle = 0.0
        n = 500
        for gap, addr, is_write in alex_trace.entries[:n]:
            cycle += gap
            req = MemoryRequest(
                int(cycle), addr, 64,
                AccessType.WRITE if is_write else AccessType.READ,
            )
            scheme.process(req, cycle, channel)
        data_bytes = scheme.stats.traffic.bytes_by_kind[MetadataKind.DATA]
        assert data_bytes >= n * 64  # own line always transfers

    def test_unsecure_has_zero_metadata(self, config, alex_trace):
        scheme = build("unsecure", config)
        result = simulate([alex_trace], scheme, config)
        assert result.scheme.stats.traffic.metadata_bytes == 0
        assert result.security_cache_misses == 0

    def test_conventional_adds_counter_and_mac_traffic(self, config, bw_trace):
        result = simulate([bw_trace], build("conventional", config), config)
        kinds = result.scheme.stats.traffic.bytes_by_kind
        assert kinds[MetadataKind.COUNTER] > 0
        assert kinds[MetadataKind.MAC] > 0
        assert kinds[MetadataKind.GRAN_TABLE] == 0

    def test_ours_uses_granularity_table(self, config, alex_trace):
        result = simulate([alex_trace], build("ours", config), config)
        kinds = result.scheme.stats.traffic.bytes_by_kind
        assert kinds[MetadataKind.GRAN_TABLE] > 0

    def test_ours_detects_coarse_granularities(self, config, alex_trace):
        scheme = build("ours", config)
        simulate([alex_trace], scheme, config, warmup=True)
        hist = scheme.stats.granularity_hist.buckets
        coarse = sum(
            hist.get(granularity, 0) for granularity in GRANULARITIES[1:]
        )
        assert coarse > 0

    def test_multi_ctr_only_keeps_fine_macs(self, config, alex_trace):
        scheme = build("multi_ctr_only", config)
        simulate([alex_trace], scheme, config, warmup=True)
        # Counter promotion happens, but all MAC lines come from the
        # fine-grained MAC array.
        assert scheme.stats.granularity_hist.buckets.get(32768, 0) > 0

    def test_dual_ablation_never_uses_middle_granularities(
        self, config, alex_trace
    ):
        scheme = build("ours_dual", config)
        simulate([alex_trace], scheme, config, warmup=True)
        hist = scheme.stats.granularity_hist.buckets
        assert hist.get(GRANULARITIES[1], 0) == 0
        assert hist.get(GRANULARITIES[2], 0) == 0

    def test_no_switch_ablation_records_but_does_not_charge(
        self, config, alex_trace
    ):
        scheme = build("ours_no_switch", config)
        simulate([alex_trace], scheme, config, warmup=True)
        kinds = scheme.stats.traffic.bytes_by_kind
        assert kinds[MetadataKind.SWITCH] == 0

    def test_common_ctr_admits_shared_chunks(self, config, alex_trace):
        scheme = build("common_ctr", config)
        simulate([alex_trace], scheme, config, warmup=True)
        assert scheme.scans > 0
        assert scheme.shared_hits > 0

    def test_adaptive_resolves_dual_mac_granularity(self, config, alex_trace):
        scheme = build("adaptive", config)
        simulate([alex_trace], scheme, config, warmup=True)
        hist = scheme.stats.granularity_hist.buckets
        assert set(hist) <= {GRANULARITIES[0], GRANULARITIES[2]}

    def test_subtree_cache_gets_hits(self, config, alex_trace):
        scheme = build_scheme(
            "bmf_unused", config, footprint_bytes=alex_trace.max_addr
        )
        simulate([alex_trace], scheme, config, warmup=True)
        assert scheme.subtree.hits > 0

    def test_static_rejects_bad_granularity(self, config):
        from repro.schemes.static import StaticGranularScheme

        with pytest.raises(ConfigError):
            StaticGranularScheme(config, {0: 128})

    def test_reset_stats_clears_counters_keeps_state(self, config, alex_trace):
        scheme = build("ours", config)
        simulate([alex_trace], scheme, config)  # no warmup, one pass
        table_len = len(scheme.table)
        scheme.reset_stats()
        assert scheme.stats.requests == 0
        assert scheme.metadata_cache.misses == 0
        assert len(scheme.table) >= table_len  # learned state survives
