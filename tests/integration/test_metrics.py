"""Aggregation metrics over real simulation results."""

import pytest

from repro.common.types import DeviceKind
from repro.sim import metrics
from repro.sim.runner import run_many, run_scenario
from repro.sim.scenario import SELECTED_SCENARIOS, selected_scenario

DURATION = 3000.0
SCHEMES = ("unsecure", "conventional", "ours")


@pytest.fixture(scope="module")
def cc1_runs():
    return run_scenario(
        selected_scenario("cc1"), SCHEMES, duration_cycles=DURATION
    )


class TestScalarMetrics:
    def test_normalized_of_unsecure_is_one(self, cc1_runs):
        assert metrics.normalized(cc1_runs, "unsecure") == pytest.approx(1.0)

    def test_overhead_is_norm_minus_one(self, cc1_runs):
        assert metrics.overhead(cc1_runs, "conventional") == pytest.approx(
            metrics.normalized(cc1_runs, "conventional") - 1.0
        )

    def test_gain_is_symmetric_zero_against_self(self, cc1_runs):
        assert metrics.gain(cc1_runs, "ours", "ours") == pytest.approx(0.0)

    def test_gain_sign_matches_ordering(self, cc1_runs):
        value = metrics.gain(cc1_runs, "ours", "conventional")
        conv = metrics.normalized(cc1_runs, "conventional")
        ours = metrics.normalized(cc1_runs, "ours")
        assert (value > 0) == (ours < conv)


class TestGrouping:
    def test_scenario_groups(self):
        assert metrics.scenario_group(selected_scenario("cc1")) == "cc"
        assert metrics.scenario_group(selected_scenario("ff2")) == "ff"

    def test_group_gains_over_two_groups(self):
        results = run_many(
            [selected_scenario("ff1"), selected_scenario("cc1")],
            SCHEMES,
            duration_cycles=DURATION,
        )
        gains = metrics.group_gains(results)
        assert set(gains) == {"ff", "cc"}

    def test_device_class_breakdown_covers_all_kinds(self, cc1_runs):
        by_kind = metrics.device_class_normalized(cc1_runs, "conventional")
        assert set(by_kind) == {DeviceKind.CPU, DeviceKind.GPU, DeviceKind.NPU}
        assert all(value >= 1.0 for value in by_kind.values())


class TestSweepSummary:
    def test_summary_fields(self):
        results = run_many(
            SELECTED_SCENARIOS[:2], SCHEMES, duration_cycles=DURATION
        )
        summary = metrics.sweep_summary(results, SCHEMES)
        for scheme in SCHEMES:
            row = summary[scheme]
            assert row["geomean"] <= row["mean"] + 1e-9
            assert row["traffic_vs_unsecure"] >= 1.0 or scheme == "unsecure"
        assert summary["unsecure"]["mean"] == pytest.approx(1.0)
