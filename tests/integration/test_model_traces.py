"""Model-driven NPU traces: network zoo, tensor layout, detection."""

import pytest

from repro.common.config import SoCConfig
from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES, GRANULARITIES
from repro.common.errors import ConfigError
from repro.schemes.registry import build_scheme
from repro.sim.soc import simulate
from repro.workloads.models import (
    NETWORKS,
    generate_model_trace,
    network_summary,
    plan_tensors,
    scale_network,
)


class TestNetworkZoo:
    def test_paper_networks_present(self):
        assert set(NETWORKS) == {"alexnet", "yolo_tiny", "dlrm", "ncf", "sfrnn"}

    def test_alexnet_conv1_shape(self):
        conv1 = NETWORKS["alexnet"][0]
        assert conv1.weight_bytes == 96 * 3 * 11 * 11
        assert conv1.out_size == 55
        assert conv1.macs == 55 * 55 * 96 * 3 * 11 * 11

    def test_fc_layer_arithmetic(self):
        fc = NETWORKS["alexnet"][5]
        assert fc.weight_bytes == 9216 * 4096
        assert fc.macs == 9216 * 4096

    def test_embedding_row_bytes_at_least_one_line(self):
        emb = NETWORKS["dlrm"][0]
        assert emb.row_bytes >= CACHELINE_BYTES

    def test_scale_network_shrinks_weights(self):
        full = NETWORKS["alexnet"]
        small = scale_network(full, 4)
        assert sum(l.weight_bytes for l in small) < sum(
            l.weight_bytes for l in full
        )
        assert [l.name for l in small] == [l.name for l in full]

    def test_network_summary(self):
        rows = network_summary("ncf")
        assert len(rows) == len(NETWORKS["ncf"])
        assert all(row["macs"] > 0 for row in rows)


class TestTensorPlanning:
    def test_tensors_are_chunk_aligned_and_disjoint(self):
        tensors = plan_tensors(NETWORKS["alexnet"], base_addr=0)
        bases = sorted(
            list(tensors.weight_base.values())
            + list(tensors.activation_base.values())
        )
        assert all(base % CHUNK_BYTES == 0 for base in bases)
        assert len(set(bases)) == len(bases)

    def test_total_bytes_covers_all_tensors(self):
        layers = NETWORKS["yolo_tiny"]
        tensors = plan_tensors(layers, base_addr=0)
        used = sum(l.weight_bytes for l in layers) + sum(
            max(64, l.output_bytes) for l in layers
        )
        assert tensors.total_bytes >= used


class TestGeneratedModelTraces:
    def test_unknown_network_rejected(self):
        with pytest.raises(ConfigError):
            generate_model_trace("resnet9000")

    def test_trace_is_deterministic(self):
        a = generate_model_trace("ncf", batches=1, seed=4, scale=4)
        b = generate_model_trace("ncf", batches=1, seed=4, scale=4)
        assert a.entries == b.entries

    def test_batches_rescan_weights(self):
        one = generate_model_trace("sfrnn", batches=1, scale=4)
        two = generate_model_trace("sfrnn", batches=2, scale=4)
        assert len(two) == 2 * len(one)

    def test_addresses_line_aligned(self):
        trace = generate_model_trace("ncf", batches=1, scale=4)
        assert all(addr % CACHELINE_BYTES == 0 for _, addr, _ in trace.entries)

    def test_trace_mixes_reads_and_writes(self):
        trace = generate_model_trace("alexnet", batches=1, scale=8)
        kinds = {is_write for _, _, is_write in trace.entries}
        assert kinds == {True, False}

    def test_embedding_networks_have_fine_gathers(self):
        trace = generate_model_trace("dlrm", batches=1, scale=4)
        # Gathers are scattered: consecutive addresses rarely adjacent.
        addresses = [a for _, a, _ in trace.entries[:256]]
        adjacent = sum(
            1
            for x, y in zip(addresses, addresses[1:])
            if y == x + CACHELINE_BYTES
        )
        assert adjacent < len(addresses) * 0.9


class TestDetectionOnModelTraces:
    def test_alexnet_weights_get_promoted(self):
        """The detector promotes re-streamed weight tensors to coarse."""
        config = SoCConfig()
        trace = generate_model_trace("alexnet", batches=2, scale=8)
        scheme = build_scheme("ours", config)
        simulate([trace], scheme, config, warmup=True)
        hist = scheme.stats.granularity_hist.buckets
        coarse = sum(hist.get(g, 0) for g in GRANULARITIES[2:])
        assert coarse > hist.get(GRANULARITIES[0], 0)

    def test_dlrm_stays_finer_than_alexnet(self):
        """Embedding gathers resist promotion (paper: ncf/dlrm are the
        fine-leaning NPU workloads despite coarse bursts elsewhere)."""
        config = SoCConfig()

        def coarse_fraction(network):
            trace = generate_model_trace(network, batches=2, scale=8)
            scheme = build_scheme("ours", config)
            simulate([trace], scheme, config, warmup=True)
            hist = scheme.stats.granularity_hist
            total = max(1, hist.total)
            return sum(
                hist.buckets.get(g, 0) for g in GRANULARITIES[1:]
            ) / total

        assert coarse_fraction("dlrm") < coarse_fraction("alexnet")

    def test_ours_beats_conventional_on_alexnet_trace(self):
        config = SoCConfig()
        trace = generate_model_trace("alexnet", batches=2, scale=8)
        conv = simulate(
            [trace], build_scheme("conventional", config), config, warmup=True
        )
        ours = simulate(
            [trace], build_scheme("ours", config), config, warmup=True
        )
        assert (
            ours.scheme.stats.traffic.metadata_bytes
            < conv.scheme.stats.traffic.metadata_bytes
        )
