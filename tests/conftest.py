"""Shared fixtures: small deterministic configs, keys, traces."""

from __future__ import annotations

import pytest

from repro.common.config import (
    CacheConfig,
    EngineConfig,
    MemoryConfig,
    SoCConfig,
    TrackerConfig,
)
from repro.crypto.keys import KeySet
from repro.tree.geometry import TreeGeometry


@pytest.fixture(scope="session")
def keys() -> KeySet:
    return KeySet.from_seed(b"repro-test-keys")


@pytest.fixture()
def small_geometry() -> TreeGeometry:
    """1MB region: 3 tree levels above the leaves, cheap to walk."""
    return TreeGeometry.build(1 << 20)


@pytest.fixture()
def soc_config() -> SoCConfig:
    """Default Orin-like config used by the timing layer."""
    return SoCConfig()


@pytest.fixture()
def tiny_engine_config() -> EngineConfig:
    """Small caches so eviction paths are exercised quickly."""
    return EngineConfig(
        metadata_cache=CacheConfig(1024),
        mac_cache=CacheConfig(512),
        table_cache=CacheConfig(512),
        tracker=TrackerConfig(entries=4, lifetime_cycles=2048),
    )


@pytest.fixture()
def tiny_soc_config(tiny_engine_config) -> SoCConfig:
    return SoCConfig(
        memory=MemoryConfig(protected_bytes=64 << 20),
        engine=tiny_engine_config,
    )
