"""CLI: listing, simulation and experiment commands."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_defaults_to_all(self):
        args = build_parser().parse_args(["list"])
        assert args.what == "all"

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scenario == "cc1"
        assert "ours" in args.schemes


class TestListCommand:
    def test_list_workloads(self, capsys):
        assert main(["list", "workloads"]) == 0
        out = capsys.readouterr().out
        assert "alex" in out and "mcf" in out

    def test_list_scenarios(self, capsys):
        assert main(["list", "scenarios"]) == 0
        out = capsys.readouterr().out
        assert "cc1" in out and "finance" in out and "250" in out

    def test_list_schemes(self, capsys):
        assert main(["list", "schemes"]) == 0
        assert "bmf_unused_ours" in capsys.readouterr().out

    def test_list_experiments(self, capsys):
        assert main(["list", "experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out and "tab_hw" in out


class TestSimulateCommand:
    def test_simulate_selected_scenario(self, capsys):
        code = main(
            [
                "simulate",
                "--scenario", "cc3",
                "--schemes", "conventional,ours",
                "--duration", "1500",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Conventional" in out and "Ours" in out

    def test_simulate_custom_workloads(self, capsys):
        code = main(
            [
                "simulate",
                "--workloads", "bw+mm+alex+ncf",
                "--schemes", "ours",
                "--duration", "1200",
            ]
        )
        assert code == 0
        assert "custom" in capsys.readouterr().out

    def test_simulate_bad_workload_combo(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--workloads", "bw+mm"])

    def test_simulate_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--scenario", "nope"])


class TestExperimentCommand:
    def test_tab_hw_is_analytic_and_fast(self, capsys):
        assert main(["experiment", "tab_hw"]) == 0
        assert "842B" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_tab02_with_duration(self, capsys):
        assert main(["experiment", "tab02", "--duration", "1200"]) == 0
        assert "correct_prediction" in capsys.readouterr().out


class TestResilienceFlags:
    def test_flags_parse_on_every_fanout_command(self):
        for command in (["simulate"], ["experiment", "fig15"],
                        ["report"], ["faults"]):
            args = build_parser().parse_args(
                command + [
                    "--timeout", "30", "--retries", "2",
                    "--run-id", "r1", "--runs-dir", "/tmp/runs",
                ]
            )
            assert args.timeout == 30.0
            assert args.retries == 2
            assert args.run_id == "r1"
            assert args.runs_dir == "/tmp/runs"
            assert args.resume is None

    def test_no_flags_means_no_explicit_supervisor(self):
        from repro.cli import _supervisor

        args = build_parser().parse_args(["simulate"])
        assert _supervisor(args) is None

    def test_run_id_builds_journaling_supervisor(self, tmp_path):
        from repro.cli import _supervisor

        args = build_parser().parse_args(
            ["simulate", "--run-id", "r9", "--runs-dir", str(tmp_path)]
        )
        supervisor = _supervisor(args)
        assert supervisor is not None
        assert supervisor.journaling
        assert supervisor.run_id == "r9"
        assert not supervisor.resume

    def test_resume_flag_sets_resume_mode(self, tmp_path):
        from repro.cli import _supervisor

        args = build_parser().parse_args(
            ["simulate", "--resume", "r9", "--runs-dir", str(tmp_path)]
        )
        supervisor = _supervisor(args)
        assert supervisor.run_id == "r9" and supervisor.resume

    def test_timeout_alone_supervises_without_journal(self):
        from repro.cli import _supervisor

        args = build_parser().parse_args(["simulate", "--timeout", "5"])
        supervisor = _supervisor(args)
        assert supervisor is not None
        assert not supervisor.journaling
        assert supervisor.policy.timeout_seconds == 5.0

    def test_supervised_simulate_runs(self, capsys, tmp_path):
        code = main(
            [
                "simulate",
                "--scenario", "cc3",
                "--schemes", "conventional,ours",
                "--duration", "1200",
                "--run-id", "cli-test",
                "--runs-dir", str(tmp_path),
                "--jobs", "1",
            ]
        )
        assert code == 0
        assert (tmp_path / "cli-test").is_dir()
        journals = list((tmp_path / "cli-test").glob("*.jsonl"))
        assert journals, "journal was not written"


class TestChaosCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.sample == 6
        assert args.duration == 800.0
        assert args.crash_rate == 0.2
        assert args.lost_rate == 0.0
        assert args.timeout == 15.0
        assert args.schemes == "conventional,ours"
        assert not args.skip_sweep and not args.skip_campaign

    def test_probe_only_run(self, capsys):
        # Hang-detection probe only: proves the command wiring without
        # paying for the full sweep/campaign chaos story.
        code = main(["chaos", "--skip-sweep", "--skip-campaign"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[PASS] hang detection" in out
        assert "chaos CLEAN" in out


class TestPlotFlag:
    def test_fig17_plot_renders_cdf(self, capsys):
        code = main(
            [
                "experiment", "fig17",
                "--plot", "--sample", "2", "--duration", "1500",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "normalized execution time" in out
        assert "o=" in out  # legend glyphs
