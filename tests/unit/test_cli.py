"""CLI: listing, simulation and experiment commands."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_defaults_to_all(self):
        args = build_parser().parse_args(["list"])
        assert args.what == "all"

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scenario == "cc1"
        assert "ours" in args.schemes


class TestListCommand:
    def test_list_workloads(self, capsys):
        assert main(["list", "workloads"]) == 0
        out = capsys.readouterr().out
        assert "alex" in out and "mcf" in out

    def test_list_scenarios(self, capsys):
        assert main(["list", "scenarios"]) == 0
        out = capsys.readouterr().out
        assert "cc1" in out and "finance" in out and "250" in out

    def test_list_schemes(self, capsys):
        assert main(["list", "schemes"]) == 0
        assert "bmf_unused_ours" in capsys.readouterr().out

    def test_list_experiments(self, capsys):
        assert main(["list", "experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out and "tab_hw" in out


class TestSimulateCommand:
    def test_simulate_selected_scenario(self, capsys):
        code = main(
            [
                "simulate",
                "--scenario", "cc3",
                "--schemes", "conventional,ours",
                "--duration", "1500",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Conventional" in out and "Ours" in out

    def test_simulate_custom_workloads(self, capsys):
        code = main(
            [
                "simulate",
                "--workloads", "bw+mm+alex+ncf",
                "--schemes", "ours",
                "--duration", "1200",
            ]
        )
        assert code == 0
        assert "custom" in capsys.readouterr().out

    def test_simulate_bad_workload_combo(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--workloads", "bw+mm"])

    def test_simulate_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--scenario", "nope"])


class TestExperimentCommand:
    def test_tab_hw_is_analytic_and_fast(self, capsys):
        assert main(["experiment", "tab_hw"]) == 0
        assert "842B" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_tab02_with_duration(self, capsys):
        assert main(["experiment", "tab02", "--duration", "1200"]) == 0
        assert "correct_prediction" in capsys.readouterr().out


class TestPlotFlag:
    def test_fig17_plot_renders_cdf(self, capsys):
        code = main(
            [
                "experiment", "fig17",
                "--plot", "--sample", "2", "--duration", "1500",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "normalized execution time" in out
        assert "o=" in out  # legend glyphs
