"""Eqs. 1-4: counter promotion and merged-MAC compaction arithmetic."""

import pytest

from repro.common.constants import CHUNK_BYTES, GRANULARITIES, MAC_BYTES
from repro.core import addressing, stream_part
from repro.tree.geometry import TreeGeometry


@pytest.fixture(scope="module")
def geometry():
    return TreeGeometry.build(1 << 20)


class TestEquation2And3:
    def test_num_parents_matches_levels(self):
        assert addressing.num_parents(64) == 0
        assert addressing.num_parents(512) == 1
        assert addressing.num_parents(4096) == 2
        assert addressing.num_parents(32768) == 3

    def test_ancestor_index(self):
        assert addressing.ancestor_index(100, 0) == 100
        assert addressing.ancestor_index(100, 1) == 12
        assert addressing.ancestor_index(100, 2) == 1
        assert addressing.ancestor_index(511, 3) == 0


class TestLocateCounter:
    def test_fine_counter_at_level0(self, geometry):
        loc = addressing.locate_counter(geometry, 64 * 10, 64)
        assert loc.level == 0
        assert (loc.node_index, loc.slot) == (1, 2)

    def test_promoted_counter_moves_up(self, geometry):
        fine = addressing.locate_counter(geometry, 0, 64)
        part = addressing.locate_counter(geometry, 0, 512)
        chunk = addressing.locate_counter(geometry, 0, 32768)
        assert (fine.level, part.level, chunk.level) == (0, 1, 3)

    def test_same_region_shares_counter(self, geometry):
        locs = {
            addressing.locate_counter(geometry, addr, 512).node_addr
            for addr in range(0, 512, 64)
        }
        slots = {
            addressing.locate_counter(geometry, addr, 512).slot
            for addr in range(0, 512, 64)
        }
        assert len(locs) == 1 and len(slots) == 1

    def test_adjacent_regions_use_adjacent_slots(self, geometry):
        a = addressing.locate_counter(geometry, 0, 512)
        b = addressing.locate_counter(geometry, 512, 512)
        assert a.node_index == b.node_index
        assert b.slot == a.slot + 1


class TestMacIndexCompaction:
    def test_all_fine_is_identity_layout(self):
        for addr in (0, 64, 512, 4096, 32704):
            assert addressing.mac_index_in_chunk(0, addr) == addr // 64

    def test_full_chunk_single_mac(self):
        assert addressing.mac_index_in_chunk(stream_part.FULL_MASK, 12345) == 0

    def test_single_stream_partition_compacts(self):
        bits = 1 << 0  # partition 0 merged
        assert addressing.mac_index_in_chunk(bits, 0) == 0
        assert addressing.mac_index_in_chunk(bits, 300) == 0  # same region
        # Partition 1 starts right after the single merged MAC.
        assert addressing.mac_index_in_chunk(bits, 512) == 1
        assert addressing.mac_index_in_chunk(bits, 512 + 64) == 2

    def test_paper_figure9_example(self):
        # Fig. 9: blocks 0-7 and 8-15 merged -> two coarse MACs at
        # compacted positions 0 and 1.
        bits = 0b11
        assert addressing.mac_index_in_chunk(bits, 0) == 0
        assert addressing.mac_index_in_chunk(bits, 512) == 1
        assert addressing.mac_index_in_chunk(bits, 1024) == 2  # fine resumes

    def test_full_group_counts_one(self):
        bits = 0xFF
        assert addressing.mac_index_in_chunk(bits, 0) == 0
        assert addressing.mac_index_in_chunk(bits, 4096) == 1

    def test_macs_per_chunk(self):
        assert addressing.macs_per_chunk(0) == 512
        assert addressing.macs_per_chunk(stream_part.FULL_MASK) == 1
        assert addressing.macs_per_chunk(0xFF) == 1 + 56 * 8
        assert addressing.macs_per_chunk(1) == 1 + 63 * 8

    def test_compaction_never_exceeds_fine_layout(self):
        for bits in (0, 1, 0xFF, 0xF0F0, stream_part.FULL_MASK):
            addressing.sanity_check_chunk_mac_space(bits)

    def test_max_granularity_cap(self):
        bits = stream_part.FULL_MASK
        # Capped at 4KB: 8 group MACs instead of 1 chunk MAC.
        assert addressing.macs_per_chunk(bits, 4096) == 8
        assert addressing.mac_index_in_chunk(bits, 4096, 4096) == 1
        # Capped at 512B: one MAC per partition.
        assert addressing.macs_per_chunk(bits, 512) == 64
        assert addressing.mac_index_in_chunk(bits, 512, 512) == 1


class TestMacAddresses:
    def test_chunks_own_fixed_windows(self, geometry):
        # Eq. 1 note: previous chunks assumed finest-grained.
        a = addressing.mac_addr(geometry, stream_part.FULL_MASK, 0)
        b = addressing.mac_addr(geometry, 0, CHUNK_BYTES)
        assert a == geometry.mac_base
        assert b == geometry.mac_base + addressing.MAC_BYTES_PER_CHUNK

    def test_mac_addr_uses_8_byte_slots(self, geometry):
        assert addressing.mac_addr(geometry, 0, 64) - addressing.mac_addr(
            geometry, 0, 0
        ) == MAC_BYTES

    def test_mac_line_addr_is_aligned(self, geometry):
        for addr in (0, 64, 512, 4096, CHUNK_BYTES + 320):
            line = addressing.mac_line_addr(geometry, 0, addr)
            assert line % 64 == 0

    def test_merged_region_shares_mac_line(self, geometry):
        bits = stream_part.FULL_MASK
        lines = {
            addressing.mac_line_addr(geometry, bits, addr)
            for addr in range(0, CHUNK_BYTES, 64)
        }
        assert len(lines) == 1

    def test_fine_region_spreads_mac_lines(self, geometry):
        lines = {
            addressing.mac_line_addr(geometry, 0, addr)
            for addr in range(0, CHUNK_BYTES, 64)
        }
        assert len(lines) == 64  # 512 MACs / 8 per line


class TestFineLines:
    def test_fine_lines_of_region(self):
        lines = addressing.fine_lines_of_region(512 + 64, 512)
        assert list(lines) == [8, 9, 10, 11, 12, 13, 14, 15]
