"""Trace recorder ring buffer, null recorder, and event helpers."""

import json

from repro.obs import (
    NULL_RECORDER,
    EventType,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
    filter_events,
)
from repro.obs.export import (
    read_trace_jsonl,
    trace_to_jsonl_lines,
    write_trace_jsonl,
)


class TestTraceRecorder:
    def test_emit_records_in_order(self):
        rec = TraceRecorder(capacity=16)
        rec.emit(EventType.SWITCH, cycle=10.0, device=1, chunk=2, old=512, new=4096)
        rec.emit(EventType.TREE_WALK, cycle=11.0, levels=3)
        events = list(rec.events())
        assert [e.etype for e in events] == [EventType.SWITCH, EventType.TREE_WALK]
        assert events[0].payload["old"] == 512
        assert events[0].device == 1
        assert len(rec) == 2
        assert rec.dropped == 0

    def test_ring_drops_oldest(self):
        rec = TraceRecorder(capacity=4)
        for i in range(10):
            rec.emit(EventType.CACHE_HIT, cycle=float(i))
        events = list(rec.events())
        assert len(events) == 4
        assert [e.cycle for e in events] == [6.0, 7.0, 8.0, 9.0]
        assert rec.emitted == 10
        assert rec.dropped == 6

    def test_counts_by_type(self):
        rec = TraceRecorder(capacity=16)
        rec.emit(EventType.CACHE_HIT, cycle=0.0)
        rec.emit(EventType.CACHE_HIT, cycle=1.0)
        rec.emit(EventType.QUARANTINE, cycle=2.0)
        counts = rec.counts_by_type()
        assert counts["cache_hit"] == 2
        assert counts["quarantine"] == 1

    def test_clear_resets_everything(self):
        rec = TraceRecorder(capacity=2)
        for i in range(5):
            rec.emit(EventType.CACHE_MISS, cycle=float(i))
        rec.clear()
        assert len(rec) == 0
        assert rec.emitted == 0
        assert rec.dropped == 0

    def test_recorder_is_truthy(self):
        assert TraceRecorder(capacity=1)


class TestNullRecorder:
    def test_falsy_so_emit_sites_are_skipped(self):
        assert not NullRecorder()
        assert not NULL_RECORDER

    def test_emit_is_a_no_op(self):
        rec = NullRecorder()
        rec.emit(EventType.SWITCH, cycle=1.0, anything="goes")
        assert list(rec.events()) == []
        assert len(rec) == 0
        assert rec.dropped == 0
        rec.clear()  # also a no-op


class TestFilterAndExport:
    def _events(self):
        return [
            TraceEvent(cycle=0.0, etype=EventType.SWITCH, device=0),
            TraceEvent(cycle=1.0, etype=EventType.SWITCH, device=1),
            TraceEvent(cycle=2.0, etype=EventType.TREE_WALK, device=0),
        ]

    def test_filter_by_type_and_device(self):
        events = self._events()
        assert len(list(filter_events(events, etype=EventType.SWITCH))) == 2
        assert len(list(filter_events(events, device=0))) == 2
        only = list(filter_events(events, etype=EventType.SWITCH, device=1))
        assert len(only) == 1
        assert only[0].cycle == 1.0

    def test_jsonl_lines_are_valid_json(self):
        lines = list(trace_to_jsonl_lines(self._events()))
        assert len(lines) == 3
        first = json.loads(lines[0])
        assert first["type"] == "switch"
        assert first["cycle"] == 0.0

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = write_trace_jsonl(self._events(), path, extra={"scenario": "cc1"})
        assert count == 3
        rows = read_trace_jsonl(path)
        assert [r["type"] for r in rows] == ["switch", "switch", "tree_walk"]
