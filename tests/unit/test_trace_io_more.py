"""Trace I/O: header handling and format tolerance."""

import gzip

import pytest

from repro.common.errors import ConfigError
from repro.common.types import DeviceKind
from repro.workloads.trace_io import load_trace, save_trace
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_workload


def write_gz(path, text):
    with gzip.open(path, "wt") as handle:
        handle.write(text)


class TestHeaders:
    def test_metadata_roundtrips(self, tmp_path):
        trace = generate_trace(get_workload("alex"), 1500, base_addr=32768)
        path = tmp_path / "alex.gz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.spec.name == "alex"
        assert loaded.spec.kind is DeviceKind.NPU
        assert loaded.base_addr == 32768

    def test_missing_headers_use_defaults(self, tmp_path):
        path = tmp_path / "bare.gz"
        write_gz(path, "1.0 40 R\n")
        trace = load_trace(path)
        assert trace.spec.name == "bare.trace" or trace.spec.name == "bare"
        assert trace.spec.kind is DeviceKind.CPU

    def test_unknown_header_keys_ignored(self, tmp_path):
        path = tmp_path / "extra.gz"
        write_gz(path, "# flavour vanilla\n# kind gpu\n2.5 80 W\n")
        trace = load_trace(path)
        assert trace.spec.kind is DeviceKind.GPU
        assert trace.entries[0][2] is True

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.gz"
        write_gz(path, "\n1.0 40 R\n\n2.0 80 W\n")
        assert len(load_trace(path)) == 2

    def test_footprint_grows_to_cover_addresses(self, tmp_path):
        path = tmp_path / "big.gz"
        write_gz(path, f"1.0 {0x100000:x} R\n")
        trace = load_trace(path)
        assert trace.spec.footprint_bytes >= 0x100000 + 64


class TestRejection:
    @pytest.mark.parametrize(
        "line", ["1.0 40", "x 40 R", "1.0 zz R", "1.0 40 Q", "-1 40 R"]
    )
    def test_malformed_lines(self, tmp_path, line):
        path = tmp_path / "bad.gz"
        write_gz(path, line + "\n")
        with pytest.raises((ConfigError, ValueError)):
            load_trace(path)
