"""``repro-tenant/v1`` journal semantics: prefix replay, torn tails, heal.

The tenant store is an *ordered* event log (unlike the latest-wins
task journal of PR 5): state after entry N depends on every entry
before it, so damage anywhere ends the usable prefix.  These tests pin
that discipline file-by-file, without a daemon in the loop.
"""

import json

import pytest

from repro.service.store import (
    TENANT_SCHEMA,
    TenantJournal,
    TenantStore,
    TenantStoreError,
    canonical,
)

PARAMS = {
    "scenario": "cc1", "scheme": "ours", "engine": "scalar",
    "duration": 300.0, "seed": 7, "warmup": False, "data_bytes": 0,
}


def make_journal(tmp_path, entries=3):
    store = TenantStore(tmp_path)
    journal = store.create("tenant-a", "kid-1", PARAMS)
    journal.record_open(1, {"issued": 0})
    for index in range(entries):
        journal.record_step(
            2 + index, f"tag-{index}", (index + 1) * 50, f"digest-{index}"
        )
    journal.close()
    return store, journal.path


def test_roundtrip_header_and_entries(tmp_path):
    store, path = make_journal(tmp_path)
    journal, entries = store.load("tenant-a")
    assert journal.header["schema"] == TENANT_SCHEMA
    assert journal.header["tenant"] == "tenant-a"
    assert journal.header["kid"] == "kid-1"
    assert journal.header["params"] == PARAMS
    assert [e["type"] for e in entries] == ["open", "step", "step", "step"]
    assert entries[-1] == {
        "type": "step", "seq": 4, "tag": "tag-2",
        "issued": 150, "digest": "digest-2",
    }
    assert journal.dropped_entries == 0
    assert store.count() == 1


def test_torn_tail_drops_only_final_entry(tmp_path):
    store, path = make_journal(tmp_path)
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines(keepends=True)
    path.write_text(
        "".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2].rstrip("\n"),
        encoding="utf-8",
    )
    journal, entries = store.load("tenant-a")
    assert [e["seq"] for e in entries] == [1, 2, 3]
    assert journal.dropped_entries == 1


def test_corrupt_middle_entry_ends_the_prefix(tmp_path):
    store, path = make_journal(tmp_path)
    lines = path.read_text(encoding="utf-8").splitlines()
    # Flip one payload byte in the second entry: digest mismatch.
    lines[2] = lines[2].replace("digest-0", "digest-X")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    journal, entries = store.load("tenant-a")
    assert [e["seq"] for e in entries] == [1]  # open only
    assert journal.dropped_entries == 3  # damaged line + whole suffix


def test_truncate_to_heals_atomically(tmp_path):
    store, path = make_journal(tmp_path)
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    path.write_text("".join(lines[:-1]) + '{"torn', encoding="utf-8")
    journal, entries = store.load("tenant-a")
    assert journal.dropped_entries == 1
    journal.truncate_to(entries)
    # Healed: clean reload, nothing dropped, appends still work.
    journal2, entries2 = store.load("tenant-a")
    assert entries2 == entries
    assert journal2.dropped_entries == 0
    journal2.record_step(9, "tag-9", 500, "digest-9")
    journal2.close()
    _, entries3 = store.load("tenant-a")
    assert entries3[-1]["seq"] == 9


def test_header_damage_discards_the_file(tmp_path):
    store, path = make_journal(tmp_path)
    lines = path.read_text(encoding="utf-8").splitlines()
    header = json.loads(lines[0])
    header["schema"] = "repro-tenant/v999"
    lines[0] = canonical(header)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    assert store.load("tenant-a") is None
    assert not path.exists()  # untrusted identity: fall back to fresh
    with pytest.raises(TenantStoreError, match="header"):
        TenantJournal.attach(path)


def test_create_replaces_and_discard_unlinks(tmp_path):
    store, path = make_journal(tmp_path)
    journal = store.create("tenant-a", "kid-2", PARAMS)
    journal.close()
    reloaded, entries = store.load("tenant-a")
    assert reloaded.header["kid"] == "kid-2"
    assert entries == []
    assert store.exists("tenant-a")
    store.discard("tenant-a")
    assert not store.exists("tenant-a")
    assert store.load("tenant-a") is None
    assert store.count() == 0


def test_names_are_hashed_out_of_the_filesystem(tmp_path):
    store = TenantStore(tmp_path)
    hostile = "../../../etc/passwd\n; rm -rf /"
    path = store.path_for(hostile)
    assert path.parent == store.tenants_dir
    journal = store.create(hostile, "kid-1", PARAMS)
    journal.close()
    _, entries = store.load(hostile)
    assert entries == []
    assert store.load("some-other-name") is None
