"""Counter-overflow reachability and key-epoch recovery.

The default 64-bit counters never overflow in practice, so these tests
configure *narrow* counters to make exhaustion reachable and check
both halves of the contract: the tree refuses to wrap (pad safety),
and the engine recovers by re-encrypting the chunk under a fresh key
epoch instead of dying.
"""

import pytest

from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES
from repro.common.errors import CounterOverflowError, SecurityError
from repro.crypto.keys import KeySet
from repro.secure_memory import FailurePolicy, SecureMemory
from repro.tree.geometry import TreeGeometry
from repro.tree.integrity_tree import CounterTree

REGION = 256 * 1024


class TestTreeOverflow:
    def test_narrow_limit_overflow_raises(self, keys):
        tree = CounterTree(TreeGeometry.build(REGION), keys, counter_limit=3)
        for expected in (1, 2, 3):
            assert tree.increment_counter(0, level=0) == expected
        with pytest.raises(CounterOverflowError):
            tree.increment_counter(0, level=0)

    def test_overflow_does_not_corrupt_state(self, keys):
        tree = CounterTree(TreeGeometry.build(REGION), keys, counter_limit=2)
        tree.increment_counter(0, level=0)
        tree.increment_counter(0, level=0)
        with pytest.raises(CounterOverflowError):
            tree.increment_counter(0, level=0)
        # The failed increment must not have moved the counter.
        assert tree.read_counter(0, level=0) == 2

    @pytest.mark.parametrize("limit", [0, 1, 2**64])
    def test_limit_validation(self, keys, limit):
        with pytest.raises(ValueError):
            CounterTree(TreeGeometry.build(REGION), keys, counter_limit=limit)


class TestEngineOverflowRecovery:
    def test_counter_bits_validation(self, keys):
        with pytest.raises(ValueError):
            SecureMemory(REGION, keys=keys, counter_bits=1)
        with pytest.raises(ValueError):
            SecureMemory(REGION, keys=keys, counter_bits=65)

    def test_fine_writes_survive_exhaustion(self, keys):
        mem = SecureMemory(REGION, keys=keys, counter_bits=3)  # limit 7
        for i in range(20):
            mem.write(0, bytes([i + 1]) * CACHELINE_BYTES)
        assert mem.read(0, CACHELINE_BYTES) == bytes([20]) * CACHELINE_BYTES
        assert mem.key_epoch(0) >= 2
        assert mem.events.get("chunk_reencryptions") >= 2

    def test_reencryption_preserves_chunk_neighbours(self, keys):
        mem = SecureMemory(REGION, keys=keys, counter_bits=3)
        mem.write(512, b"\x5a" * CACHELINE_BYTES)
        for i in range(10):  # exhausts line 0's counter twice
            mem.write(0, bytes([i + 1]) * CACHELINE_BYTES)
        assert mem.read(512, CACHELINE_BYTES) == b"\x5a" * CACHELINE_BYTES
        # The neighbour was re-sealed under the same (new) chunk epoch.
        assert mem.key_epoch(512) == mem.key_epoch(0) >= 1

    def test_other_chunks_keep_epoch_zero(self, keys):
        mem = SecureMemory(REGION, keys=keys, counter_bits=3)
        mem.write(CHUNK_BYTES, b"\x77" * CACHELINE_BYTES)
        for i in range(10):
            mem.write(0, bytes([i + 1]) * CACHELINE_BYTES)
        assert mem.key_epoch(0) >= 1
        assert mem.key_epoch(CHUNK_BYTES) == 0
        assert mem.read(CHUNK_BYTES, CACHELINE_BYTES) == b"\x77" * CACHELINE_BYTES

    def test_coarse_region_overflow(self, keys):
        mem = SecureMemory(REGION, keys=keys, counter_bits=3)
        mem.write(0, b"\x11" * 512)
        assert mem.force_granularity(0, 512) == 512
        for i in range(12):  # shared counter exhausts under writes
            mem.write(0, bytes([i + 1]) * CACHELINE_BYTES)
        assert mem.read(0, CACHELINE_BYTES) == bytes([12]) * CACHELINE_BYTES
        assert mem.read(64, CACHELINE_BYTES) == b"\x11" * CACHELINE_BYTES
        assert mem.key_epoch(0) >= 1

    def test_scale_up_at_exhausted_counter(self, keys):
        mem = SecureMemory(REGION, keys=keys, counter_bits=3)  # limit 7
        for i in range(7):
            mem.write(0, bytes([i + 1]) * CACHELINE_BYTES)
        mem.write(64, b"\x22" * (512 - CACHELINE_BYTES))
        # Promotion wants shared = max + 1 = 8 > limit: must rotate the
        # key epoch and reseal at counter 1 instead of wrapping.
        assert mem.force_granularity(0, 512) == 512
        assert mem.key_epoch(0) >= 1
        assert mem.read(0, CACHELINE_BYTES) == bytes([7]) * CACHELINE_BYTES
        assert mem.read(64, CACHELINE_BYTES) == b"\x22" * CACHELINE_BYTES

    def test_pads_never_repeat_across_epochs(self, keys):
        """Same plaintext, same address, repeating counter values:
        every stored ciphertext must still be unique (fresh pads)."""
        mem = SecureMemory(REGION, keys=keys, counter_bits=2)  # limit 3
        payload = b"\xab" * CACHELINE_BYTES
        ciphertexts = set()
        for _ in range(20):
            mem.write(0, payload)
            ciphertexts.add(mem.dram.snapshot_line(0))
        assert len(ciphertexts) == 20

    def test_detection_still_works_after_reencryption(self, keys):
        mem = SecureMemory(REGION, keys=keys, counter_bits=3)
        for i in range(10):
            mem.write(0, bytes([i + 1]) * CACHELINE_BYTES)
        mem.tamper_data(0)
        with pytest.raises(SecurityError):
            mem.read(0, CACHELINE_BYTES)


class TestFailurePolicyConfig:
    def test_coerce(self):
        assert FailurePolicy.coerce(None).mode == "raise"
        assert FailurePolicy.coerce("quarantine").quarantines
        policy = FailurePolicy(mode="retry-then-quarantine", retries=2)
        assert FailurePolicy.coerce(policy) is policy
        assert policy.retries_first

    def test_invalid(self):
        with pytest.raises(ValueError):
            FailurePolicy(mode="explode")
        with pytest.raises(ValueError):
            FailurePolicy(retries=-1)
        with pytest.raises(TypeError):
            FailurePolicy.coerce(42)
