"""EngineSession: the run loop decoupled from the driver.

The refactor's load-bearing guarantees:

* a drained session's RunResult is byte-identical to ``simulate()`` /
  ``run_scenario()`` over the same traces (same ``finalize_run``);
* bounded-window stepping is byte-identical to one whole-run step
  (inter-request state lives on engine objects, never the stack);
* the fast tier serves whole-run steps bit-identically to scalar;
* observables/digests, snapshots and attestation bodies are stable,
  JSON-serializable payloads.
"""

import json

import pytest

from repro.secure_memory.session import (
    EngineSession,
    OBSERVABLE_FIELDS,
    canonical_json,
)
from repro.sim.runner import run_scenario
from repro.sim.scenario import selected_scenario
from repro.sim.soc import SessionCore

DURATION = 900.0


def _session(**kw):
    kw.setdefault("scenario", "cc1")
    kw.setdefault("scheme", "ours")
    kw.setdefault("duration", DURATION)
    kw.setdefault("seed", 11)
    return EngineSession.from_params(**kw)


def _canonical_result(session):
    return canonical_json(session.result().to_dict())


def test_run_matches_run_scenario_byte_for_byte():
    session = _session()
    result = session.run()
    baseline = run_scenario(
        selected_scenario("cc1"),
        ("ours",),
        duration_cycles=DURATION,
        seed=11,
        warmup=False,
        jobs=1,
    )["ours"]
    assert canonical_json(result.to_dict()) == canonical_json(
        baseline.to_dict()
    )


def test_warmup_matches_run_scenario_default():
    session = _session(warmup=True)
    session.run()
    baseline = run_scenario(
        selected_scenario("cc1"),
        ("ours",),
        duration_cycles=DURATION,
        seed=11,
        jobs=1,
    )["ours"]
    assert _canonical_result(session) == canonical_json(baseline.to_dict())


@pytest.mark.parametrize("window", [1, 7, 64, 1000])
def test_windowed_stepping_is_byte_identical(window):
    whole = _session()
    whole.run()
    stepped = _session()
    windows = 0
    while not stepped.done:
        got = stepped.step(window)
        assert 0 < len(got) <= window
        windows += 1
    assert windows >= stepped.total_requests // window
    assert stepped.observable_digest() == whole.observable_digest()
    assert _canonical_result(stepped) == _canonical_result(whole)


def test_observable_rows_are_well_formed():
    session = _session()
    rows = session.step(50)
    assert len(rows) == 50
    assert len(OBSERVABLE_FIELDS) == 6
    for seq, row in enumerate(rows):
        assert row[0] == seq
        assert isinstance(row[1], int)  # device
        assert isinstance(row[2], int)  # addr
        assert row[3] in ("R", "W")
        assert isinstance(row[4], float) and isinstance(row[5], float)
        assert row[5] >= row[4] or row[3] == "W"
    json.dumps(rows)  # wire-safe


def test_step_after_drain_returns_empty():
    session = _session()
    session.run()
    assert session.done
    assert session.step(10) == []
    assert session.step() == []


def test_result_before_drain_raises():
    session = _session()
    session.step(5)
    with pytest.raises(ValueError, match="not drained"):
        session.result()


def test_fast_engine_digest_matches_scalar():
    pytest.importorskip("numpy")
    scalar = _session(engine="scalar")
    scalar.run()
    fast = _session(engine="fast")
    fast.run()
    assert fast.engine == "fast"
    assert fast.observable_digest() == scalar.observable_digest()
    assert _canonical_result(fast) == _canonical_result(scalar)


def test_fast_session_with_bounded_window_falls_back_to_scalar_steps():
    pytest.importorskip("numpy")
    fast = _session(engine="fast")
    while not fast.done:
        fast.step(61)
    scalar = _session(engine="scalar")
    scalar.run()
    assert fast.observable_digest() == scalar.observable_digest()


def test_snapshot_shape_and_determinism():
    session = _session(tenant="tx")
    session.step(20)
    snap = session.snapshot()
    assert snap["schema"] == "repro-session/v1"
    assert snap["tenant"] == "tx"
    assert snap["issued"] == 20
    assert not snap["done"]
    assert sum(snap["cursors"]) == 20
    assert snap == session.snapshot()  # no side effects
    json.dumps(snap)


def test_report_live_and_drained():
    session = _session(tenant="tr", secret=b"s", data_bytes=1 << 16)
    live = session.report()
    assert live["schema"] == "repro-attest/v1"
    assert "devices" not in live
    assert "integrity" in live
    session.put(0, b"\x5a" * 64)
    assert session.get(0, 64) == b"\x5a" * 64
    session.run()
    done = session.report()
    assert done["observables"]["sha256"] == session.observable_digest()
    assert done["observables"]["count"] == session.total_requests
    assert len(done["devices"]) == len(session.states)
    assert done["session"]["data"]["writes"] == 1
    json.dumps(done)


def test_data_shard_requires_data_bytes():
    session = _session()
    with pytest.raises(ValueError, match="data shard"):
        session.put(0, b"\x00" * 64)
    with pytest.raises(ValueError, match="data shard"):
        session.get(0, 64)


def test_tenant_keys_are_derived_from_secret():
    a = _session(tenant="a", secret=b"s1", data_bytes=1 << 16)
    b = _session(tenant="a", secret=b"s2", data_bytes=1 << 16)
    assert a.memory.keys.encryption_key != b.memory.keys.encryption_key


def test_sessioncore_limit_counts_and_done():
    session = _session()
    core = session._core
    assert isinstance(core, SessionCore)
    assert core.step(limit=13) == 13
    assert core.issued == 13
    assert not core.done
    rest = core.step()
    assert core.done
    assert 13 + rest == session.total_requests


def test_distinct_seeds_diverge():
    one = _session(seed=1)
    two = _session(seed=2)
    one.run()
    two.run()
    assert one.observable_digest() != two.observable_digest()
