"""Naive reference model vs optimized layout functions.

The oracle in :mod:`repro.check.oracle` re-derives the paper's layout
math (Eqs. 1-4, Alg. 1, Fig. 9) from first principles; these tests
cross-check it against the optimized implementations over randomized
and adversarial inputs.  ``python -m repro check`` runs a larger sweep
of the same comparisons; this file keeps a fast always-on slice in the
tier-1 suite.
"""

import random

from repro.check import oracle as ref
from repro.common.constants import (
    CACHELINE_BYTES,
    CHUNK_BYTES,
    GRANULARITIES,
    LINES_PER_CHUNK,
    MAC_BYTES,
    PARTITIONS_PER_CHUNK,
)
from repro.core import addressing, detector, stream_part
from repro.tree.geometry import TreeGeometry

RNG_SEED = 20260806


def _bitmaps(rng, count):
    """Structured + random partition bitmaps (the adversarial corners)."""
    out = [0, stream_part.FULL_MASK]
    for group in range(PARTITIONS_PER_CHUNK // ref.PARTS_PER_GROUP):
        first = group * ref.PARTS_PER_GROUP
        mask = 0
        for part in range(first, first + ref.PARTS_PER_GROUP):
            mask |= 1 << part
        out.append(mask)
        out.append(stream_part.FULL_MASK & ~mask)
    out.append(stream_part.FULL_MASK & ~1)
    out.append(stream_part.FULL_MASK & ~(1 << (PARTITIONS_PER_CHUNK - 1)))
    while len(out) < count:
        out.append(rng.getrandbits(PARTITIONS_PER_CHUNK))
    return out


def test_mac_index_and_count_match_naive():
    rng = random.Random(RNG_SEED)
    for bits in _bitmaps(rng, 48):
        assert addressing.macs_per_chunk(bits) == ref.ref_macs_per_chunk(bits)
        for _ in range(8):
            addr = rng.randrange(CHUNK_BYTES) // CACHELINE_BYTES * CACHELINE_BYTES
            assert addressing.mac_index_in_chunk(bits, addr) == ref.ref_mac_index(
                bits, addr
            ), f"bits={bits:#x} addr={addr:#x}"


def test_mac_addr_matches_naive_across_chunks():
    rng = random.Random(RNG_SEED + 1)
    region_bytes = 8 * CHUNK_BYTES
    geometry = TreeGeometry.build(region_bytes)
    for bits in _bitmaps(rng, 24):
        chunk = rng.randrange(8)
        line = rng.randrange(LINES_PER_CHUNK)
        addr = chunk * CHUNK_BYTES + line * CACHELINE_BYTES
        assert addressing.mac_addr(geometry, bits, addr) == ref.ref_mac_addr(
            region_bytes, bits, addr
        )


def test_granularity_resolution_matches_naive():
    rng = random.Random(RNG_SEED + 2)
    for bits in _bitmaps(rng, 48):
        addr = rng.randrange(CHUNK_BYTES) // CACHELINE_BYTES * CACHELINE_BYTES
        for max_g in GRANULARITIES[1:]:
            assert stream_part.resolve_granularity(
                bits, addr, max_g
            ) == ref.ref_resolve_granularity(bits, addr, max_g)
        for min_coarse in GRANULARITIES[1:]:
            assert stream_part.quantize_bits(bits, min_coarse) == ref.ref_quantize_bits(
                bits, min_coarse
            )


def test_detection_and_merge_match_naive():
    rng = random.Random(RNG_SEED + 3)
    for _ in range(64):
        vector = rng.getrandbits(LINES_PER_CHUNK)
        got = detector.detect_stream_partitions(vector)
        assert got == ref.ref_detect_stream_partitions(vector)
        previous = rng.getrandbits(PARTITIONS_PER_CHUNK)
        for censored in (False, True):
            assert detector.merge_detection(
                previous, vector, censored
            ) == ref.ref_merge_detection(previous, vector, censored)


def test_promotion_arithmetic_matches_naive():
    for granularity in GRANULARITIES:
        parents = addressing.num_parents(granularity)
        assert parents == ref.ref_num_parents(granularity)
        for leaf in (0, 1, 7, 8, 63, 64, 511, 4095):
            assert addressing.ancestor_index(leaf, parents) == ref.ref_ancestor_index(
                leaf, parents
            )


def test_tree_geometry_matches_naive():
    rng = random.Random(RNG_SEED + 4)
    for chunks in (1, 8, 32):
        region = chunks * CHUNK_BYTES
        opt = TreeGeometry.build(region)
        naive = ref.RefGeometry(region)
        assert opt.level_counts == naive.level_counts
        assert opt.mac_base == naive.mac_base
        assert opt.tree_base == naive.tree_base
        assert opt.table_base == naive.table_base
        for _ in range(16):
            addr = rng.randrange(region) // CACHELINE_BYTES * CACHELINE_BYTES
            level = rng.randrange(naive.root_level + 1)
            assert opt.counter_slot(addr, level) == naive.counter_slot(addr, level)
            node, _slot = naive.counter_slot(addr, level)
            assert opt.node_addr(level, node) == naive.node_addr(level, node)
        line = rng.randrange(region // CACHELINE_BYTES)
        assert opt.fine_mac_addr(line) == naive.mac_base + line * MAC_BYTES


def test_metadata_windows_classify_consistently():
    region = 8 * CHUNK_BYTES
    opt = TreeGeometry.build(region)
    naive = ref.RefGeometry(region)
    bounds = opt.metadata_bounds()
    assert set(bounds) == {"data", "mac", "tree", "table"}
    rng = random.Random(RNG_SEED + 5)
    probes = [0, region - 1, region, opt.tree_base, opt.table_base]
    probes += [rng.randrange(opt.table_base + 4 * CHUNK_BYTES) for _ in range(64)]
    for addr in probes:
        assert opt.classify_addr(addr) == naive.classify(addr), f"addr={addr:#x}"
