"""Client resilience: typed unavailability, deterministic backoff.

No daemon here -- these tests point the clients at endpoints that
refuse, vanish or never existed and pin the *client-side* contract:
raw ``ConnectionRefusedError`` / ``socket.timeout`` never leak, the
typed :class:`ServiceUnavailableError` names the endpoint and attempt
count, and the reconnect backoff schedule is a pure function of
``(endpoint, attempt)``.
"""

import asyncio
import os
import tempfile
import uuid

import pytest

from repro.service.client import (
    AsyncServiceClient,
    ServiceClient,
    ServiceError,
    ServiceUnavailableError,
    reconnect_delay,
)


def dead_socket_path():
    return os.path.join(
        tempfile.gettempdir(), f"repro-dead-{uuid.uuid4().hex[:10]}.sock"
    )


def test_sync_connect_raises_typed_error_naming_endpoint():
    path = dead_socket_path()
    client = ServiceClient(socket_path=path, retries=1)
    with pytest.raises(ServiceUnavailableError) as excinfo:
        client.connect()
    err = excinfo.value
    assert err.endpoint == path
    assert err.attempts == 2
    assert path in str(err)
    assert "2 attempt(s)" in str(err)
    assert isinstance(err.cause, OSError)
    assert err.code == "service-unavailable"


def test_sync_request_raises_typed_error_not_oserror():
    client = ServiceClient(socket_path=dead_socket_path(), retries=0)
    with pytest.raises(ServiceUnavailableError):
        client.ping()


def test_async_request_raises_typed_error():
    async def scenario():
        client = AsyncServiceClient(
            socket_path=dead_socket_path(), retries=1
        )
        with pytest.raises(ServiceUnavailableError) as excinfo:
            await client.request("ping")
        assert excinfo.value.attempts == 2
        await client.close_connection()

    asyncio.run(scenario())


def test_backoff_is_deterministic_capped_and_jittered():
    sched = [reconnect_delay("ep", attempt) for attempt in range(8)]
    assert sched == [reconnect_delay("ep", a) for a in range(8)]  # pure
    assert all(0 < d <= 1.5 for d in sched)  # capped at 1.5 * cap
    # Exponential growth dominates the jitter across two doublings.
    assert sched[4] > sched[2] > sched[0]
    # Distinct endpoints desynchronize.
    assert sched != [reconnect_delay("other", a) for a in range(8)]


def test_service_error_carries_retry_after():
    err = ServiceError("overloaded", "busy", retry_after=0.25)
    assert err.code == "overloaded"
    assert err.retry_after == 0.25
    assert ServiceError("auth-error", "nope").retry_after is None
