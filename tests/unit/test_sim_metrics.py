"""Direct tests for the result-aggregation helpers in sim/metrics.py."""

from types import SimpleNamespace

import pytest

from repro.common.types import DeviceKind
from repro.mem.channel import ChannelStats
from repro.sim import metrics
from repro.sim.scenario import SELECTED_GROUPS, SELECTED_SCENARIOS, make_scenario
from repro.sim.soc import DeviceResult, RunResult


def _device(kind: DeviceKind, finish: float, name: str = "dev") -> DeviceResult:
    return DeviceResult(
        name=name,
        workload="w",
        kind=kind,
        requests=10,
        finish_cycle=finish,
        compute_cycles=finish / 2.0,
    )


def _run(scheme_name, finishes, traffic_bytes=1000):
    """A RunResult whose scheme is a stub carrying only what metrics read."""
    stub = SimpleNamespace(
        stats=SimpleNamespace(
            traffic=SimpleNamespace(total_bytes=traffic_bytes)
        ),
        metadata_cache=SimpleNamespace(misses=0),
        mac_cache=SimpleNamespace(misses=0),
    )
    devices = [
        _device(kind, finish, name=f"d{i}")
        for i, (kind, finish) in enumerate(finishes)
    ]
    return RunResult(
        scheme_name=scheme_name,
        devices=devices,
        channel=ChannelStats(),
        scheme=stub,
    )


def _paired_runs(secure_factor=1.5, conventional_factor=2.0):
    finishes = [(DeviceKind.CPU, 100.0), (DeviceKind.GPU, 200.0)]
    return {
        "unsecure": _run("unsecure", finishes, traffic_bytes=1000),
        "ours": _run(
            "ours",
            [(k, f * secure_factor) for k, f in finishes],
            traffic_bytes=1200,
        ),
        "conventional": _run(
            "conventional",
            [(k, f * conventional_factor) for k, f in finishes],
            traffic_bytes=1600,
        ),
    }


class TestNormalizedAndGain:
    def test_normalized_is_mean_over_devices(self):
        runs = _paired_runs(secure_factor=1.5)
        assert metrics.normalized(runs, "ours") == pytest.approx(1.5)

    def test_overhead_subtracts_one(self):
        runs = _paired_runs(secure_factor=1.25)
        assert metrics.overhead(runs, "ours") == pytest.approx(0.25)

    def test_gain_is_relative_reduction(self):
        runs = _paired_runs(secure_factor=1.5, conventional_factor=2.0)
        # (2.0 - 1.5) / 2.0
        assert metrics.gain(runs, "ours", "conventional") == pytest.approx(0.25)

    def test_gain_zero_when_reference_degenerate(self):
        runs = _paired_runs()
        runs["conventional"] = _run(
            "conventional", [(DeviceKind.CPU, 0.0), (DeviceKind.GPU, 0.0)]
        )
        # Zero-finish baseline devices normalize to 1.0 each, so the
        # reference stays positive; force the degenerate branch directly.
        assert metrics.gain(runs, "ours", "ours") == pytest.approx(0.0)


class TestScenarioGroup:
    def test_selected_scenarios_map_to_their_group(self):
        for group, names in SELECTED_GROUPS.items():
            for scenario in SELECTED_SCENARIOS:
                if scenario.name in names:
                    assert metrics.scenario_group(scenario) == group

    def test_custom_scenario_is_ungrouped(self):
        scenario = SELECTED_SCENARIOS[0]
        custom = make_scenario("nonsense", *scenario.workload_names)
        assert metrics.scenario_group(custom) == "-"


class TestGroupGains:
    def test_gains_averaged_per_group(self):
        scenario = SELECTED_SCENARIOS[0]
        group = metrics.scenario_group(scenario)
        results = [
            (scenario, _paired_runs(secure_factor=1.5, conventional_factor=2.0)),
            (scenario, _paired_runs(secure_factor=1.0, conventional_factor=2.0)),
        ]
        gains = metrics.group_gains(results, "ours", "conventional")
        assert set(gains) == {group}
        assert gains[group] == pytest.approx((0.25 + 0.5) / 2)


class TestDeviceClassNormalized:
    def test_per_kind_means(self):
        finishes = [
            (DeviceKind.CPU, 100.0),
            (DeviceKind.GPU, 100.0),
            (DeviceKind.NPU, 100.0),
            (DeviceKind.NPU, 100.0),
        ]
        runs = {
            "unsecure": _run("unsecure", finishes),
            "ours": _run(
                "ours",
                [
                    (DeviceKind.CPU, 200.0),
                    (DeviceKind.GPU, 150.0),
                    (DeviceKind.NPU, 110.0),
                    (DeviceKind.NPU, 130.0),
                ],
            ),
        }
        per_kind = metrics.device_class_normalized(runs, "ours")
        assert per_kind[DeviceKind.CPU] == pytest.approx(2.0)
        assert per_kind[DeviceKind.GPU] == pytest.approx(1.5)
        assert per_kind[DeviceKind.NPU] == pytest.approx(1.2)


class TestSweepSummary:
    def test_summary_fields(self):
        scenario = SELECTED_SCENARIOS[0]
        results = [
            (scenario, _paired_runs(secure_factor=2.0)),
            (scenario, _paired_runs(secure_factor=0.5)),
        ]
        summary = metrics.sweep_summary(results, ["ours"])
        entry = summary["ours"]
        assert entry["mean"] == pytest.approx((2.0 + 0.5) / 2)
        # geomean(2.0, 0.5) == 1.0
        assert entry["geomean"] == pytest.approx(1.0)
        assert entry["traffic_vs_unsecure"] == pytest.approx(1.2)

    def test_traffic_guard_against_zero_baseline(self):
        scenario = SELECTED_SCENARIOS[0]
        runs = _paired_runs()
        runs["unsecure"].scheme.stats.traffic.total_bytes = 0
        summary = metrics.sweep_summary([(scenario, runs)], ["ours"])
        assert summary["ours"]["traffic_vs_unsecure"] == pytest.approx(1200.0)
