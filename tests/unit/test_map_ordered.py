"""Failure classification in the legacy parallel map (satellite of the
resilient-executor work).

``map_ordered`` used to catch *every* pool exception and silently rerun
the whole map serially in the parent — so a deterministic bug in the
task function re-executed every side effect in-process and surfaced as
a slow pass (or a second, confusing traceback).  It must now fail fast
on task errors and reserve the serial fallback for infrastructure
failures only.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.sim.parallel import _infrastructure_failure, map_ordered

_PID_DIR_ENV = "MAP_ORDERED_TEST_DIR"


def _record_pid_and_fail(x):
    """Touch a per-pid marker, then raise: proves where execution ran."""
    marker_dir = os.environ[_PID_DIR_ENV]
    with open(os.path.join(marker_dir, str(os.getpid())), "a") as fh:
        fh.write(f"{x}\n")
    raise RuntimeError(f"deterministic task bug on {x}")


def _ok(x):
    return x + 10


class TestTaskErrorFailsFast:
    def test_raising_fn_raises_under_jobs4(self, tmp_path, monkeypatch):
        """Regression: a deterministic task error must NOT be replayed
        serially in the parent."""
        monkeypatch.setenv(_PID_DIR_ENV, str(tmp_path))
        with pytest.raises(RuntimeError, match="deterministic task bug"):
            map_ordered(_record_pid_and_fail, [1, 2, 3, 4], jobs=4)
        executed_pids = {int(name) for name in os.listdir(tmp_path)}
        assert executed_pids, "task never ran anywhere"
        # The parent process must never have executed the task body —
        # the old blanket-except fallback would rerun all four items
        # here and leave the parent pid in the marker directory.
        assert os.getpid() not in executed_pids

    def test_raising_fn_raises_serially_too(self):
        with pytest.raises(RuntimeError, match="deterministic task bug"):
            map_ordered(_boom_no_markers, [1], jobs=1)


def _boom_no_markers(x):
    raise RuntimeError(f"deterministic task bug on {x}")


class TestInfrastructureFallback:
    def test_unpicklable_fn_falls_back_with_warning(self, caplog):
        fn = lambda x: x * 3  # noqa: E731 -- lambdas cannot be pickled
        with caplog.at_level("WARNING", logger="repro.parallel"):
            assert map_ordered(fn, [1, 2], jobs=2) == [3, 6]
        assert any(
            "rerunning" in record.getMessage() for record in caplog.records
        )

    def test_classifier(self):
        assert _infrastructure_failure(BrokenProcessPool("dead"))
        assert _infrastructure_failure(OSError("fork refused"))
        assert _infrastructure_failure(pickle.PicklingError("no"))
        assert _infrastructure_failure(TypeError("cannot pickle '_thread.lock'"))
        assert _infrastructure_failure(
            AttributeError("Can't pickle local object 'f.<locals>.<lambda>'")
        )
        assert not _infrastructure_failure(TypeError("bad operand"))
        assert not _infrastructure_failure(AttributeError("no such attr"))
        assert not _infrastructure_failure(RuntimeError("task bug"))
        assert not _infrastructure_failure(ValueError("task bug"))

    def test_clean_parallel_path_untouched(self):
        assert map_ordered(_ok, [1, 2, 3], jobs=2) == [11, 12, 13]
