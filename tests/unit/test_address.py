"""Address algebra: chunk/partition/line decomposition."""

import pytest

from repro.common import address
from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES, PARTITION_BYTES
from repro.common.errors import AddressError


class TestAlignment:
    @pytest.mark.parametrize(
        "addr,granularity,expected",
        [
            (0, 64, 0),
            (63, 64, 0),
            (64, 64, 64),
            (100, 64, 64),
            (32767, 32768, 0),
            (32768, 32768, 32768),
            (5000, 512, 4608),
        ],
    )
    def test_align_down(self, addr, granularity, expected):
        assert address.align_down(addr, granularity) == expected

    @pytest.mark.parametrize(
        "addr,granularity,expected",
        [(0, 64, 0), (1, 64, 64), (64, 64, 64), (65, 512, 512)],
    )
    def test_align_up(self, addr, granularity, expected):
        assert address.align_up(addr, granularity) == expected

    def test_is_aligned(self):
        assert address.is_aligned(128, 64)
        assert not address.is_aligned(100, 64)


class TestChunkDecomposition:
    def test_chunk_index_shifts_15_bits(self):
        assert address.chunk_index(0) == 0
        assert address.chunk_index(CHUNK_BYTES - 1) == 0
        assert address.chunk_index(CHUNK_BYTES) == 1
        assert address.chunk_index(5 * CHUNK_BYTES + 123) == 5

    def test_chunk_base_plus_offset_reconstructs(self):
        for addr in (0, 1, 64, 32767, 32768, 987654):
            assert (
                address.chunk_base(addr) + address.chunk_offset(addr) == addr
            )

    def test_cacheline_in_chunk_range(self):
        assert address.cacheline_in_chunk(0) == 0
        assert address.cacheline_in_chunk(CHUNK_BYTES - 1) == 511
        assert address.cacheline_in_chunk(CHUNK_BYTES + 64) == 1

    def test_partition_in_chunk_range(self):
        assert address.partition_in_chunk(0) == 0
        assert address.partition_in_chunk(PARTITION_BYTES) == 1
        assert address.partition_in_chunk(CHUNK_BYTES - 1) == 63

    def test_line_in_partition(self):
        assert address.line_in_partition(0) == 0
        assert address.line_in_partition(64) == 1
        assert address.line_in_partition(PARTITION_BYTES - 1) == 7
        assert address.line_in_partition(PARTITION_BYTES) == 0

    def test_partitions_of_chunk(self):
        parts = address.partitions_of_chunk(2)
        assert parts.start == 128 and parts.stop == 192


class TestIterLines:
    def test_single_line(self):
        assert list(address.iter_lines(0, 64)) == [0]

    def test_unaligned_range_covers_both_lines(self):
        assert list(address.iter_lines(60, 8)) == [0, 1]

    def test_multi_line(self):
        assert list(address.iter_lines(128, 192)) == [2, 3, 4]

    def test_zero_size_rejected(self):
        with pytest.raises(AddressError):
            list(address.iter_lines(0, 0))


class TestCheckRange:
    def test_in_range_passes(self):
        address.check_range(0, 64, 1024)
        address.check_range(960, 64, 1024)

    @pytest.mark.parametrize(
        "addr,size", [(-64, 64), (0, 0), (1024, 64), (1000, 64)]
    )
    def test_out_of_range_rejected(self, addr, size):
        with pytest.raises(AddressError):
            address.check_range(addr, size, 1024)


class TestLineHelpers:
    def test_line_index_and_base(self):
        assert address.line_index(130) == 2
        assert address.line_base(130) == 128
        assert address.line_base(128) == 128

    def test_partition_index_global(self):
        assert address.partition_index(PARTITION_BYTES * 7 + 3) == 7
