"""Counter-tree geometry: levels, spans, node addressing."""

import pytest

from repro.common.constants import CACHELINE_BYTES
from repro.common.errors import ConfigError
from repro.tree.geometry import TreeGeometry


class TestLevelStructure:
    def test_1mb_region_levels(self):
        geometry = TreeGeometry.build(1 << 20)
        # 1MB / 512B = 2048 leaf nodes; /8 -> 256, 32, 4, 1.
        assert geometry.level_counts == (2048, 256, 32, 4, 1)
        assert geometry.root_level == 4

    def test_4gb_region_has_eight_upper_levels(self):
        geometry = TreeGeometry.build(4 << 30)
        assert geometry.level_counts[0] == (4 << 30) // 512
        assert geometry.level_counts[-1] == 1
        assert geometry.root_level == 8

    def test_non_power_of_arity_region(self):
        geometry = TreeGeometry.build(3 << 20)  # 3MB
        assert geometry.level_counts[0] == (3 << 20) // 512
        assert geometry.level_counts[-1] == 1
        # every level is ceil(previous / 8)
        for prev, cur in zip(geometry.level_counts, geometry.level_counts[1:]):
            assert cur == -(-prev // 8)

    def test_rejects_tiny_region(self):
        with pytest.raises(ConfigError):
            TreeGeometry.build(256)

    def test_rejects_unaligned_region(self):
        with pytest.raises(ConfigError):
            TreeGeometry.build((1 << 20) + 32)

    def test_span_of_level(self, small_geometry):
        assert small_geometry.span_of_level(0) == 512
        assert small_geometry.span_of_level(1) == 4096
        assert small_geometry.span_of_level(2) == 32768
        assert small_geometry.span_of_level(3) == 262144


class TestCounterSlots:
    def test_leaf_counter_slot(self, small_geometry):
        node, slot = small_geometry.counter_slot(64 * 9, level=0)
        assert (node, slot) == (1, 1)  # line 9 -> node 1, slot 1

    def test_promoted_slot_level1(self, small_geometry):
        # 512B region index 9 -> node 1, slot 1 at level 1.
        node, slot = small_geometry.counter_slot(512 * 9, level=1)
        assert (node, slot) == (1, 1)

    def test_promoted_slot_level3(self, small_geometry):
        node, slot = small_geometry.counter_slot(32768 * 3, level=3)
        assert (node, slot) == (0, 3)

    def test_parent_and_child_slot(self, small_geometry):
        assert small_geometry.parent(0, 13) == (1, 1)
        assert small_geometry.child_slot(0, 13) == 5

    def test_leaf_counter_index(self, small_geometry):
        assert small_geometry.leaf_counter_index(640) == 10


class TestAddressLayout:
    def test_metadata_regions_do_not_overlap_data(self, small_geometry):
        assert small_geometry.mac_base == small_geometry.region_bytes
        assert small_geometry.tree_base > small_geometry.mac_base
        assert small_geometry.table_base > small_geometry.tree_base

    def test_node_addrs_unique_across_levels(self, small_geometry):
        seen = set()
        for level, count in enumerate(small_geometry.level_counts):
            for node in range(count):
                addr = small_geometry.node_addr(level, node)
                assert addr not in seen
                assert addr % CACHELINE_BYTES == 0
                seen.add(addr)

    def test_node_addr_bounds_checked(self, small_geometry):
        with pytest.raises(ConfigError):
            small_geometry.node_addr(0, small_geometry.level_counts[0])
        with pytest.raises(ConfigError):
            small_geometry.node_addr(99, 0)

    def test_fine_mac_addressing(self, small_geometry):
        assert small_geometry.fine_mac_addr(0) == small_geometry.mac_base
        assert small_geometry.fine_mac_addr(1) == small_geometry.mac_base + 8
        line0 = small_geometry.fine_mac_line_addr(0)
        assert line0 == small_geometry.mac_base
        assert small_geometry.fine_mac_line_addr(7) == line0
        assert small_geometry.fine_mac_line_addr(8) == line0 + 64


class TestPathToRoot:
    def test_path_reaches_root(self, small_geometry):
        path = list(small_geometry.path_to_root(0))
        assert path[0] == (0, 0)
        assert path[-1] == (small_geometry.root_level, 0)
        assert len(path) == small_geometry.num_levels

    def test_path_node_indices_divide_by_arity(self, small_geometry):
        addr = 512 * 777
        path = list(small_geometry.path_to_root(addr))
        for (_, node), (_, parent) in zip(path, path[1:]):
            assert parent == node // 8

    def test_path_from_promoted_level(self, small_geometry):
        path = list(small_geometry.path_to_root(32768 * 3, start_level=2))
        assert path[0] == (2, 3)
        assert len(path) == small_geometry.num_levels - 2

    def test_counters_at_level(self, small_geometry):
        assert small_geometry.counters_at_level(0) == 2048 * 8
