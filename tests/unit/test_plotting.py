"""ASCII plotting helpers."""

from repro.experiments.plotting import ascii_bars, ascii_cdf


class TestAsciiCdf:
    def test_empty_series(self):
        assert ascii_cdf({}) == "(no data)"

    def test_glyphs_and_legend(self):
        text = ascii_cdf({"a": [1.0, 2.0], "b": [1.5, 2.5]}, width=20, height=6)
        assert "o=a" in text and "x=b" in text
        assert "o" in text and "x" in text

    def test_axis_labels_span_data(self):
        text = ascii_cdf({"a": [1.0, 3.0]}, width=30, height=5)
        assert "1.000" in text and "3.000" in text

    def test_single_value_series(self):
        text = ascii_cdf({"a": [2.0]}, width=10, height=4)
        assert "o" in text


class TestAsciiBars:
    def test_empty(self):
        assert ascii_bars([]) == "(no data)"

    def test_bars_scale_with_values(self):
        text = ascii_bars([("big", 2.0), ("small", 1.5)], width=20, baseline=1.0)
        big_line, small_line = text.splitlines()
        assert big_line.count("#") > small_line.count("#")
        assert "2.000" in big_line

    def test_baseline_clamps_to_zero(self):
        text = ascii_bars([("below", 0.5)], width=10, baseline=1.0)
        assert "#" not in text
