"""Unit tests for the fast-engine plumbing that works without numpy.

The parity suites live in ``tests/integration/test_engine_parity.py``
and ``tests/property/test_prop_engine_parity.py``; this file covers
the availability gate, the scalar-fallback warning, the bounded layout
cache and the bench/platform surface -- all of which must behave on a
stdlib-only install (CI's no-numpy leg runs this file too).
"""

import dataclasses
import warnings

import pytest

from repro import engine_fast
from repro.common.config import ConfigError, MemoryConfig, SoCConfig
from repro.common.constants import GRANULARITIES
from repro.core import addressing, stream_part


@pytest.fixture
def no_numpy(monkeypatch):
    monkeypatch.setenv(engine_fast.FORCE_NO_NUMPY_ENV, "1")


class TestAvailabilityGate:
    def test_force_disable_wins_over_import(self, no_numpy):
        assert engine_fast.numpy_or_none() is None
        assert not engine_fast.numpy_available()
        assert not engine_fast.fast_engine_available()
        assert engine_fast.numpy_version() is None

    def test_zero_means_enabled(self, monkeypatch):
        monkeypatch.setenv(engine_fast.FORCE_NO_NUMPY_ENV, "0")
        # "0" does not force-disable; availability now reflects the
        # real import result, whatever it is on this machine.
        assert engine_fast.numpy_available() == (
            engine_fast.numpy_or_none() is not None
        )

    def test_version_matches_module(self):
        np = engine_fast.numpy_or_none()
        if np is None:
            assert engine_fast.numpy_version() is None
        else:
            assert engine_fast.numpy_version() == np.__version__


class TestConfigValidation:
    def test_default_is_scalar(self):
        assert SoCConfig().sim_engine == "scalar"

    def test_fast_accepted(self):
        assert SoCConfig(sim_engine="fast").sim_engine == "fast"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            SoCConfig(sim_engine="turbo")


class TestScalarFallback:
    def _tiny_run(self, config):
        from repro.schemes.registry import build_scheme
        from repro.sim.scenario import selected_scenario
        from repro.sim.soc import simulate

        traces, footprint = selected_scenario("cc1").build_traces(300.0, 3)
        scheme = build_scheme("ours", config, footprint_bytes=footprint)
        return simulate(traces, scheme, config)

    def test_missing_numpy_warns_and_matches_scalar(self, no_numpy):
        fast_cfg = SoCConfig(sim_engine="fast")
        with pytest.warns(RuntimeWarning, match="falling back to the scalar"):
            degraded = self._tiny_run(fast_cfg)
        assert degraded.engine == "scalar"
        scalar = self._tiny_run(SoCConfig())
        assert degraded.to_dict() == scalar.to_dict()

    def test_banked_channel_falls_back_silently(self):
        if not engine_fast.fast_engine_available():
            pytest.skip("needs numpy")
        banked = dataclasses.replace(
            SoCConfig(sim_engine="fast"),
            memory=MemoryConfig(banks=2),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no fallback warning expected
            result = self._tiny_run(banked)
        assert result.engine == "scalar"

    def test_scalar_engine_never_imports_fast_core(self):
        # The scalar tier must stay importable/pure-stdlib: the simulate
        # dispatch only imports engine_fast.core when fast is requested.
        result = self._tiny_run(SoCConfig())
        assert result.engine == "scalar"


class TestLayoutCache:
    def setup_method(self):
        addressing.clear_layout_cache()

    def teardown_method(self):
        addressing.clear_layout_cache()

    def test_stats_count_hits_misses(self):
        stats = addressing.layout_cache_stats()
        assert stats["entries"] == 0
        assert stats["capacity"] == addressing.LAYOUT_CACHE_CAPACITY
        base = (stats["hits"], stats["misses"])
        addressing.mac_index_in_chunk(0x5, 0, GRANULARITIES[3])
        after_miss = addressing.layout_cache_stats()
        assert after_miss["misses"] == base[1] + 1
        assert after_miss["entries"] == 1
        addressing.mac_index_in_chunk(0x5, 64, GRANULARITIES[3])
        after_hit = addressing.layout_cache_stats()
        assert after_hit["hits"] == base[0] + 1
        assert after_hit["entries"] == 1

    def test_capacity_bound_evicts(self, monkeypatch):
        monkeypatch.setattr(addressing, "LAYOUT_CACHE_CAPACITY", 4)
        addressing.clear_layout_cache()
        for bits in range(1, 8):
            addressing.mac_index_in_chunk(bits, 0, GRANULARITIES[3])
        stats = addressing.layout_cache_stats()
        assert stats["entries"] <= 4
        assert stats["evictions"] >= 3

    def test_obs_binding_is_tracer_gated(self):
        from repro.obs.context import ObsContext
        from repro.schemes.registry import build_scheme

        config = SoCConfig()
        silent = build_scheme("ours", config)
        silent.attach_obs(ObsContext.disabled())
        snap = silent.obs.registry.snapshot()
        assert not any(k.startswith("engine.layout_cache.") for k in snap)

        traced = build_scheme("ours", config)
        traced.attach_obs(ObsContext.enabled())
        snap = traced.obs.registry.snapshot()
        assert "engine.layout_cache.hits" in snap
        assert snap["engine.layout_cache.capacity"] == (
            addressing.LAYOUT_CACHE_CAPACITY
        )


class TestVectorizedLayout:
    """The numpy cumulative-sum derivation vs the scalar walk."""

    def test_layout_arrays_match_scalar_memo(self):
        if not engine_fast.fast_engine_available():
            pytest.skip("needs numpy")
        from repro.engine_fast import tables

        bitmaps = [
            0,
            1,
            stream_part.FULL_MASK,
            stream_part.FULL_MASK & ~1,
            0x00FF,
            0xFF00_0000_0000_00FF & stream_part.FULL_MASK,
            0x0F0F_0F0F_0F0F_0F0F & stream_part.FULL_MASK,
        ]
        for bits in bitmaps:
            for max_g in GRANULARITIES[1:]:
                s_index, s_merged, s_total = addressing._chunk_mac_layout(
                    bits, max_g
                )
                f_index, f_merged, f_total = tables.mac_layout_arrays(
                    bits, max_g
                )
                assert list(f_index) == list(s_index), (bits, max_g)
                assert [bool(m) for m in f_merged] == list(s_merged)
                assert f_total == s_total


class TestBenchSurface:
    def test_platform_block_records_engine_and_numpy(self):
        from repro.obs import bench

        sim = {"schema": bench.SIM_SCHEMA, "scenario": "x", "schemes": {}}
        snap = bench.make_snapshot(
            sim, {"ours": {"runs": [0.1], "min": 0.1, "mean": 0.1}}, 1,
            engine="fast",
        )
        plat = snap["platform"]
        assert plat["engine"] == "fast"
        assert plat["fast_available"] == engine_fast.fast_engine_available()
        assert plat["numpy"] == engine_fast.numpy_version()

    def test_snapshot_path_engine_suffix(self):
        from repro.obs import bench

        assert bench.snapshot_path(generated="2026-08-08") == (
            "BENCH_2026-08-08.json"
        )
        assert bench.snapshot_path(
            generated="2026-08-08", engine="fast"
        ) == "BENCH_2026-08-08_fast.json"
        assert bench.snapshot_path(
            generated="2026-08-08", engine="both"
        ) == "BENCH_2026-08-08.json"

    def test_engines_comparison_speedups(self):
        from repro.obs import bench

        section = bench.engines_comparison(
            {
                "scalar": {"ours": {"runs": [0.4], "min": 0.4, "mean": 0.4}},
                "fast": {"ours": {"runs": [0.1], "min": 0.1, "mean": 0.1}},
            },
            {
                "scalar": {"wall_seconds": {"min": 2.0}},
                "fast": {"wall_seconds": {"min": 0.5}},
            },
        )
        assert section["speedup"]["ours"] == pytest.approx(4.0)
        assert section["speedup"]["sweep"] == pytest.approx(4.0)
        assert section["scalar"]["wall_seconds"]["ours"]["min"] == 0.4


class TestMinSpeedupGate:
    def _snapshot(self, sweep_min, scheme_min, engine):
        from repro.obs import bench

        return {
            "schema": bench.BENCH_SCHEMA,
            "generated": "2026-08-08",
            "platform": {"engine": engine},
            "repeat": 1,
            "wall_seconds": {
                "ours": {"runs": [scheme_min], "min": scheme_min,
                         "mean": scheme_min},
            },
            "sim": {"schema": bench.SIM_SCHEMA, "scenario": "cc1",
                    "schemes": {}},
            "sweep": {
                "wall_seconds": {"runs": [sweep_min], "min": sweep_min,
                                 "mean": sweep_min},
                "scenarios": 6, "schemes": ["ours"],
                "duration_cycles": 800.0, "jobs": 1, "engine": engine,
            },
        }

    @pytest.fixture(scope="class")
    def gate(self):
        import importlib.util
        import os

        script = os.path.join(
            os.path.dirname(__file__), "..", "..", "scripts",
            "check_bench_regression.py",
        )
        spec = importlib.util.spec_from_file_location(
            "check_bench_regression_speedup", script
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_floor_met_and_missed(self, gate, tmp_path, capsys):
        import json

        base = tmp_path / "scalar.json"
        cur = tmp_path / "fast.json"
        base.write_text(json.dumps(self._snapshot(3.0, 0.3, "scalar")))
        cur.write_text(json.dumps(self._snapshot(1.0, 0.1, "fast")))
        argv = [str(base), str(cur), "--min-speedup"]
        assert gate.main(argv + ["2.0"]) == 0
        assert "3.00x" in capsys.readouterr().out
        assert gate.main(argv + ["5.0"]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_scheme_floor_gates_when_requested(self, gate, tmp_path, capsys):
        import json

        base = tmp_path / "scalar.json"
        cur = tmp_path / "fast.json"
        # Sweep speeds up 3x but the scheme only 1.5x.
        base.write_text(json.dumps(self._snapshot(3.0, 0.3, "scalar")))
        cur.write_text(json.dumps(self._snapshot(1.0, 0.2, "fast")))
        argv = [str(base), str(cur), "--min-speedup", "2.0"]
        assert gate.main(argv) == 0  # schemes report-only by default
        capsys.readouterr()
        assert gate.main(argv + ["--min-scheme-speedup", "2.0"]) == 1
        assert "scheme ours" in capsys.readouterr().err

    def test_shape_mismatch_is_usage_error(self, gate, tmp_path, capsys):
        import json

        base_snap = self._snapshot(3.0, 0.3, "scalar")
        cur_snap = self._snapshot(1.0, 0.1, "fast")
        cur_snap["sweep"]["scenarios"] = 11
        base = tmp_path / "scalar.json"
        cur = tmp_path / "fast.json"
        base.write_text(json.dumps(base_snap))
        cur.write_text(json.dumps(cur_snap))
        assert gate.main([str(base), str(cur), "--min-speedup", "2.0"]) == 2
        assert "sweep shapes differ" in capsys.readouterr().err
