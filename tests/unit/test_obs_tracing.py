"""End-to-end tracing: traced simulations and the traced fault slice."""

import pytest

from repro.faults.campaign import traced_fault_slice
from repro.obs import EventType, ObsContext
from repro.obs.timeline import build_timeline, format_timeline
from repro.sim.runner import run_scenario
from repro.sim.scenario import selected_scenario


@pytest.fixture(scope="module")
def traced_run():
    obs = ObsContext.enabled(capacity=1 << 16)
    scenario = selected_scenario("cc1")
    runs = run_scenario(
        scenario,
        ["ours"],
        duration_cycles=1500.0,
        seed=7,
        obs_factory=lambda: obs,
    )
    return runs["ours"]


class TestTracedSimulation:
    def test_trace_captures_timing_event_types(self, traced_run):
        kinds = {event.etype for event in traced_run.trace}
        assert EventType.TREE_WALK in kinds
        assert EventType.REQUEST in kinds
        assert EventType.CHANNEL_SAMPLE in kinds
        assert EventType.CACHE_MISS in kinds

    def test_metrics_snapshot_on_result(self, traced_run):
        metrics = traced_run.metrics
        assert metrics["scheme.requests"] > 0
        assert metrics["channel.transactions"] > 0
        assert "tree.walk.serialized_fetches" in metrics
        assert any(name.startswith("sched.device.") for name in metrics)

    def test_trace_events_carry_cycles_in_order_per_device(self, traced_run):
        requests = [e for e in traced_run.trace if e.etype == EventType.REQUEST]
        assert requests, "expected per-request events"
        by_device = {}
        for event in requests:
            prev = by_device.get(event.device, -1.0)
            assert event.cycle >= prev
            by_device[event.device] = event.cycle

    def test_untraced_run_keeps_trace_empty(self):
        scenario = selected_scenario("cc1")
        runs = run_scenario(scenario, ["ours"], duration_cycles=500.0, seed=7)
        run = runs["ours"]
        assert run.trace == []
        # Metrics are still populated via the scheme's default registry.
        assert run.metrics["scheme.requests"] > 0

    def test_timeline_buckets_cover_the_run(self, traced_run):
        rows = build_timeline(traced_run.trace, buckets=8)
        assert 0 < len(rows) <= 8
        assert rows[0]["start"] <= rows[-1]["end"]
        rendered = format_timeline(rows)
        assert "cycle" in rendered.splitlines()[0]


class TestTracedFaultSlice:
    def test_fault_slice_emits_functional_event_types(self):
        obs = ObsContext.enabled(capacity=1 << 14)
        traced_fault_slice(obs, seed=3)
        kinds = {event.etype for event in obs.tracer.events()}
        assert EventType.QUARANTINE in kinds
        assert EventType.COUNTER_OVERFLOW in kinds
        assert EventType.EPOCH_BUMP in kinds
        assert EventType.INTEGRITY_FAILURE in kinds
        assert EventType.HEAL in kinds

    def test_fault_slice_populates_engine_counters(self):
        obs = ObsContext.enabled(capacity=1 << 14)
        mem = traced_fault_slice(obs, seed=3)
        assert mem.events.get("quarantined_regions") >= 1
        snapshot = obs.registry.snapshot(prefix="engine.events")
        assert snapshot["engine.events.quarantined_regions"] >= 1
