"""Experiment infrastructure: result formatting, labels, sweep helpers."""

import pytest

from repro.common.errors import (
    AddressError,
    ConfigError,
    CounterOverflowError,
    IntegrityError,
    ReplayError,
    ReproError,
    SecurityError,
)
from repro.experiments.common import (
    ExperimentResult,
    default_sweep_sample,
    label,
    mean,
)


class TestExperimentResult:
    @pytest.fixture()
    def result(self):
        return ExperimentResult(
            experiment="t",
            title="Title",
            columns=["a", "b"],
            rows=[{"a": "x", "b": 1.23456}, {"a": "yy", "b": 2.0}],
            notes=["note"],
        )

    def test_format_table_contains_everything(self, result):
        text = result.format_table()
        assert "Title" in text
        assert "1.235" in text  # floats render at 3 decimals
        assert "note" in text
        assert "yy" in text

    def test_column_values(self, result):
        assert result.column_values("a") == ["x", "yy"]
        assert result.column_values("missing") == [None, None]

    def test_empty_rows_render(self):
        empty = ExperimentResult("t", "T", ["a"], [])
        assert "T" in empty.format_table()


class TestHelpers:
    def test_label_known_and_unknown(self):
        assert label("ours") == "Ours"
        assert label("made_up") == "made_up"

    def test_mean(self):
        assert mean([1.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_default_sweep_sample_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_SAMPLE", raising=False)
        assert default_sweep_sample(7) == 7
        monkeypatch.setenv("REPRO_SWEEP_SAMPLE", "3")
        assert default_sweep_sample(7) == 3


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (
            ConfigError, AddressError, SecurityError,
            IntegrityError, ReplayError, CounterOverflowError,
        ):
            assert issubclass(exc, ReproError)

    def test_security_branch(self):
        for exc in (IntegrityError, ReplayError, CounterOverflowError):
            assert issubclass(exc, SecurityError)
        assert not issubclass(ConfigError, SecurityError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise IntegrityError("x")
