"""Top-level package surface."""

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_headline_exports(self):
        for name in (
            "SecureMemory", "SoCConfig", "run_scenario", "simulate",
            "SCHEME_NAMES", "build_scheme", "SELECTED_SCENARIOS",
            "REALWORLD_SCENARIOS", "all_scenarios", "WORKLOADS",
            "generate_trace", "get_workload",
        ):
            assert hasattr(repro, name), name

    def test_all_is_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_every_registry_name_builds(self):
        from repro.schemes.registry import SCHEME_NAMES, build_scheme
        from repro.schemes.base import ProtectionScheme
        from repro.common.config import SoCConfig

        config = SoCConfig()
        for name in SCHEME_NAMES:
            grans = {0: 64} if name == "static_device" else None
            scheme = build_scheme(
                name, config, footprint_bytes=1 << 20,
                device_granularities=grans,
            )
            assert isinstance(scheme, ProtectionScheme)
