"""stream_part bitmap algebra: resolution, quantization, histograms."""

import pytest

from repro.core import stream_part
from repro.common.constants import GRANULARITIES


class TestResolveGranularity:
    def test_empty_bitmap_is_fine(self):
        assert stream_part.resolve_granularity(0, 0) == 64
        assert stream_part.resolve_granularity(0, 32000) == 64

    def test_full_bitmap_is_chunk(self):
        for addr in (0, 512, 4096, 32767):
            assert (
                stream_part.resolve_granularity(stream_part.FULL_MASK, addr)
                == 32768
            )

    def test_single_partition_bit(self):
        bits = 1 << 5  # partition 5 = bytes [2560, 3072)
        assert stream_part.resolve_granularity(bits, 5 * 512) == 512
        assert stream_part.resolve_granularity(bits, 5 * 512 + 511) == 512
        assert stream_part.resolve_granularity(bits, 4 * 512) == 64

    def test_full_group_is_4kb(self):
        bits = 0xFF  # partitions 0..7 = first 4KB group
        assert stream_part.resolve_granularity(bits, 0) == 4096
        assert stream_part.resolve_granularity(bits, 4095) == 4096
        assert stream_part.resolve_granularity(bits, 4096) == 64

    def test_partial_group_resolves_per_partition(self):
        bits = 0x7F  # partitions 0..6 set, 7 clear
        assert stream_part.resolve_granularity(bits, 0) == 512
        assert stream_part.resolve_granularity(bits, 7 * 512) == 64

    def test_max_granularity_caps_chunk(self):
        bits = stream_part.FULL_MASK
        assert stream_part.resolve_granularity(bits, 0, 4096) == 4096
        assert stream_part.resolve_granularity(bits, 0, 512) == 512
        assert stream_part.resolve_granularity(bits, 0, 64) == 64


class TestQuantizeBits:
    def test_min_512_is_identity(self):
        assert stream_part.quantize_bits(0x1234, 512) == 0x1234

    def test_min_4096_keeps_only_full_groups(self):
        bits = 0xFF | (1 << 10)  # full group 0 + lone partition 10
        assert stream_part.quantize_bits(bits, 4096) == 0xFF

    def test_min_32768_requires_full_mask(self):
        assert stream_part.quantize_bits(stream_part.FULL_MASK, 32768) == (
            stream_part.FULL_MASK
        )
        assert stream_part.quantize_bits(stream_part.FULL_MASK - 1, 32768) == 0

    def test_quantize_is_idempotent(self):
        for min_coarse in (512, 4096, 32768):
            bits = 0xFF00FF
            once = stream_part.quantize_bits(bits, min_coarse)
            assert stream_part.quantize_bits(once, min_coarse) == once

    def test_rejects_bad_min(self):
        with pytest.raises(ValueError):
            stream_part.quantize_bits(0, 1024)


class TestHistogram:
    def test_full_mask_histogram(self):
        sizes = stream_part.granularity_histogram(stream_part.FULL_MASK)
        assert sizes[32768] == 32768
        assert sizes[64] == sizes[512] == sizes[4096] == 0

    def test_empty_histogram_is_all_fine(self):
        sizes = stream_part.granularity_histogram(0)
        assert sizes[64] == 32768

    def test_mixed_histogram_covers_chunk(self):
        bits = 0xFF | (1 << 9)  # group 0 at 4KB, partition 9 at 512B
        sizes = stream_part.granularity_histogram(bits)
        assert sizes[4096] == 4096
        assert sizes[512] == 512
        assert sum(sizes.values()) == 32768


class TestEncodingHelpers:
    def test_partition_flags_roundtrip(self):
        bits = (1 << 0) | (1 << 13) | (1 << 63)
        flags = stream_part.partitions_as_list(bits)
        assert flags[0] and flags[13] and flags[63]
        assert stream_part.from_partition_flags(flags) == bits

    def test_from_partition_flags_length_checked(self):
        with pytest.raises(ValueError):
            stream_part.from_partition_flags([True] * 10)

    def test_algorithm1_encoding_is_bit_reverse(self):
        bits = 0b1011
        encoded = stream_part.algorithm1_encoding(bits)
        # partition 0 lands in the MSB of the 64-bit field.
        assert encoded >> 63 == 1
        assert stream_part.algorithm1_encoding(encoded) == bits

    def test_region_base_and_size(self):
        bits = 0xFF
        base, size = stream_part.region_base_and_size(bits, 100, 0)
        assert (base, size) == (0, 4096)
        base, size = stream_part.region_base_and_size(0, 100, 0)
        assert (base, size) == (64, 64)

    def test_mac_count_of_partition(self):
        assert stream_part.mac_count_of_partition(1, 0) == 1
        assert stream_part.mac_count_of_partition(0, 0) == 8
        # A capped scheme never merges at partition level.
        assert stream_part.mac_count_of_partition(1, 0, max_granularity=64) == 8
