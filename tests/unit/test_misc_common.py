"""Stats helpers, RNG derivation, configs, value types, backing store."""

import pytest

from repro.common import stats
from repro.common.config import (
    DeviceConfig,
    MemoryConfig,
    SoCConfig,
    default_cpu_config,
    default_gpu_config,
    default_npu_config,
)
from repro.common.errors import ConfigError
from repro.common.rng import rng_for, seed_from_label
from repro.common.types import (
    AccessType,
    MemoryRequest,
    MetadataKind,
    TrafficBreakdown,
)
from repro.mem.backing_store import BackingStore


class TestStats:
    def test_mean_and_geomean(self):
        assert stats.mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert stats.geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert stats.mean([]) == 0.0
        assert stats.geomean([]) == 0.0

    def test_geomean_skips_non_positive_values(self):
        # Zeros and negatives carry no multiplicative information and
        # must not crash math.log.
        assert stats.geomean([0.0, 1.0, 4.0]) == pytest.approx(2.0)
        assert stats.geomean([-3.0, 1.0, 4.0]) == pytest.approx(2.0)
        assert stats.geomean([0.0]) == 0.0
        assert stats.geomean([-1.0, -2.0]) == 0.0

    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert stats.percentile(values, 0) == 1.0
        assert stats.percentile(values, 100) == 4.0
        assert stats.percentile(values, 50) == pytest.approx(2.5)
        assert stats.percentile([7.0], 90) == 7.0

    def test_percentile_clamps_out_of_range_q(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert stats.percentile(values, -10) == 1.0
        assert stats.percentile(values, 150) == 4.0
        assert stats.percentile([], 50) == 0.0

    def test_cdf_points(self):
        points = stats.cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]

    def test_counter_stats(self):
        cs = stats.CounterStats()
        cs.bump("a")
        cs.bump("a", 2)
        assert cs.get("a") == 3
        assert cs.ratio("a", "missing") == 0.0
        other = stats.CounterStats()
        other.bump("a")
        cs.merge(other)
        assert cs.as_dict()["a"] == 4

    def test_running_mean(self):
        rm = stats.RunningMean()
        assert rm.value == 0.0
        rm.add(2.0)
        rm.add(4.0)
        assert rm.value == pytest.approx(3.0)

    def test_histogram_fractions(self):
        hist = stats.Histogram()
        hist.add(64, 3)
        hist.add(512, 1)
        assert hist.total == 4
        assert hist.fraction(64) == pytest.approx(0.75)
        assert hist.fractions()[512] == pytest.approx(0.25)
        assert stats.Histogram().fraction(64) == 0.0


class TestRng:
    def test_seed_is_stable(self):
        assert seed_from_label("x", 1) == seed_from_label("x", 1)

    def test_labels_decorrelate(self):
        assert seed_from_label("x") != seed_from_label("y")
        assert seed_from_label("x", 0) != seed_from_label("x", 1)

    def test_rng_streams_reproduce(self):
        assert rng_for("lbl").random() == rng_for("lbl").random()


class TestConfigs:
    def test_device_defaults_reflect_mlp_hierarchy(self):
        cpu, gpu, npu = (
            default_cpu_config(),
            default_gpu_config(),
            default_npu_config(),
        )
        assert cpu.max_outstanding < npu.max_outstanding < gpu.max_outstanding
        assert cpu.clock_ratio == pytest.approx(2.2)

    def test_invalid_device_config(self):
        with pytest.raises(ConfigError):
            DeviceConfig(name="x", max_outstanding=0)

    def test_invalid_memory_config(self):
        with pytest.raises(ConfigError):
            MemoryConfig(bytes_per_cycle=0.0)

    def test_soc_rejects_duplicate_device_names(self):
        with pytest.raises(ConfigError):
            SoCConfig(devices=(default_cpu_config("a"), default_gpu_config("a")))

    def test_default_soc_is_orin_shaped(self):
        soc = SoCConfig()
        kinds = [d.name for d in soc.devices]
        assert kinds == ["cpu", "gpu", "npu0", "npu1"]


class TestTypes:
    def test_access_type(self):
        assert AccessType.WRITE.is_write
        assert not AccessType.READ.is_write

    def test_memory_request_is_frozen(self):
        req = MemoryRequest(0, 0, 64, AccessType.READ)
        with pytest.raises(AttributeError):
            req.addr = 1

    def test_traffic_breakdown(self):
        traffic = TrafficBreakdown()
        traffic.add(MetadataKind.DATA, 64)
        traffic.add(MetadataKind.MAC, 64)
        assert traffic.total_bytes == 128
        assert traffic.data_bytes == 64
        assert traffic.metadata_bytes == 64
        merged = traffic.merged_with(traffic)
        assert merged.total_bytes == 256


class TestBackingStore:
    def test_unwritten_lines_read_zero(self):
        store = BackingStore()
        assert store.read_line(0) == bytes(64)
        assert store.populated_lines == 0

    def test_write_read_roundtrip(self):
        store = BackingStore()
        store.write_line(64, b"x" * 64)
        assert store.read_line(64) == b"x" * 64

    def test_alignment_enforced(self):
        store = BackingStore()
        with pytest.raises(ValueError):
            store.read_line(1)
        with pytest.raises(ValueError):
            store.write_line(0, b"short")

    def test_corrupt_flips_bits(self):
        store = BackingStore()
        store.write_line(0, bytes(64))
        store.corrupt(0, offset=3, flip_mask=0x80)
        assert store.read_line(0)[3] == 0x80

    def test_snapshot_and_replay(self):
        store = BackingStore()
        store.write_line(0, b"v1" * 32)
        old = store.snapshot_line(0)
        store.write_line(0, b"v2" * 32)
        store.replay_line(0, old)
        assert store.read_line(0) == b"v1" * 32

    def test_lines_iterates_sorted(self):
        store = BackingStore()
        store.write_line(128, b"b" * 64)
        store.write_line(0, b"a" * 64)
        assert [addr for addr, _ in store.lines()] == [0, 128]
