"""Granularity table: lazy switching, quantization, entry addressing."""

import pytest

from repro.common.constants import CHUNK_BYTES
from repro.core import stream_part
from repro.core.gran_table import GranularityTable, TABLE_ENTRY_BYTES


@pytest.fixture()
def table():
    return GranularityTable(table_base=1 << 30)


class TestEntryAddressing:
    def test_entry_is_16_bytes(self):
        assert TABLE_ENTRY_BYTES == 16

    def test_entry_addr_per_chunk(self, table):
        assert table.entry_addr(0) == 1 << 30
        assert table.entry_addr(CHUNK_BYTES) == (1 << 30) + 16
        assert table.entry_addr(CHUNK_BYTES + 5) == (1 << 30) + 16

    def test_four_entries_per_line(self, table):
        lines = {table.entry_line_addr(i * CHUNK_BYTES) for i in range(4)}
        assert len(lines) == 1
        assert table.entry_line_addr(4 * CHUNK_BYTES) != table.entry_line_addr(0)


class TestDetectionRecording:
    def test_record_sets_next_only(self, table):
        assert table.record_detection(0, 0b1)
        entry = table.entry_by_chunk(0)
        assert entry.next == 0b1
        assert entry.current == 0

    def test_duplicate_detection_reports_unchanged(self, table):
        table.record_detection(0, 0b1)
        assert not table.record_detection(0, 0b1)

    def test_min_coarse_quantizes(self):
        table = GranularityTable(min_coarse=4096)
        table.record_detection(0, 0xFF | (1 << 20))
        assert table.entry_by_chunk(0).next == 0xFF

    def test_demote_hold_blocks_promotion(self, table):
        entry = table.entry_by_chunk(0)
        entry.next = 0b1
        entry.demote_hold = 1
        table.record_detection(0, 0b11)  # would promote partition 1
        assert entry.next == 0b1  # held
        table.record_detection(0, 0b11)  # hold expired
        assert entry.next == 0b11

    def test_demote_hold_still_allows_demotion(self, table):
        entry = table.entry_by_chunk(0)
        entry.next = 0b11
        entry.demote_hold = 2
        table.record_detection(0, 0b01)
        assert entry.next == 0b01


class TestLazyResolve:
    def test_unknown_chunk_is_fine(self, table):
        granularity, event = table.resolve(0, is_write=False)
        assert granularity == 64
        assert event is None

    def test_switch_fires_on_first_touch_after_detection(self, table):
        table.record_detection(0, stream_part.FULL_MASK)
        granularity, event = table.resolve(100, is_write=False)
        assert granularity == 32768
        assert event is not None
        assert event.scale_up
        assert event.old_granularity == 64
        assert event.new_granularity == 32768

    def test_second_touch_does_not_switch_again(self, table):
        table.record_detection(0, stream_part.FULL_MASK)
        table.resolve(100, is_write=False)
        granularity, event = table.resolve(200, is_write=False)
        assert granularity == 32768
        assert event is None

    def test_switch_is_lazy_per_region(self, table):
        # Two separate partitions detected: touching one must not
        # switch the other.
        table.record_detection(0, 0b1 | (1 << 9))
        table.resolve(0, is_write=False)
        entry = table.entry_by_chunk(0)
        assert entry.current == 0b1  # partition 9 still pending
        assert entry.pending_switch

    def test_scale_down_event(self, table):
        table.record_detection(0, stream_part.FULL_MASK)
        table.resolve(0, is_write=True)
        table.record_detection(0, 0)
        granularity, event = table.resolve(64, is_write=False)
        assert granularity == 64
        assert event is not None and not event.scale_up
        assert event.old_granularity == 32768

    def test_event_records_read_write_history(self, table):
        table.resolve(0, is_write=True)  # chunk becomes written
        table.record_detection(0, stream_part.FULL_MASK)
        _, event = table.resolve(0, is_write=False)
        assert event.prev_was_write
        assert not event.is_write
        assert not event.read_only

    def test_read_only_flag(self, table):
        table.record_detection(0, stream_part.FULL_MASK)
        _, event = table.resolve(0, is_write=False)
        assert event.read_only

    def test_event_carries_old_and_new_bits(self, table):
        table.record_detection(0, stream_part.FULL_MASK)
        _, event = table.resolve(0, is_write=False)
        assert event.old_bits == 0
        assert event.new_bits == stream_part.FULL_MASK

    def test_peek_has_no_side_effects(self, table):
        table.record_detection(0, stream_part.FULL_MASK)
        assert table.peek_granularity(0) == 64  # current still fine
        entry = table.entry_by_chunk(0)
        assert entry.current == 0

    def test_max_granularity_respected(self):
        table = GranularityTable(min_coarse=4096, max_granularity=4096)
        table.record_detection(0, stream_part.FULL_MASK)
        granularity, _ = table.resolve(0, is_write=False)
        assert granularity == 4096

    def test_len_counts_chunks(self, table):
        table.resolve(0, False)
        table.resolve(CHUNK_BYTES, False)
        assert len(table) == 2
