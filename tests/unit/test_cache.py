"""Set-associative LRU cache model."""

import pytest

from repro.common.config import CacheConfig
from repro.common.errors import ConfigError
from repro.mem.cache import SetAssociativeCache


def make_cache(capacity=512, ways=2, line=64):
    return SetAssociativeCache(CacheConfig(capacity, line, ways))


class TestBasicBehaviour:
    def test_first_access_misses(self):
        cache = make_cache()
        assert not cache.access(0).hit
        assert cache.misses == 1

    def test_second_access_hits(self):
        cache = make_cache()
        cache.access(0)
        assert cache.access(0).hit
        assert cache.hits == 1

    def test_same_line_different_offsets_hit(self):
        cache = make_cache()
        cache.access(0)
        assert cache.access(63).hit

    def test_adjacent_lines_are_distinct(self):
        cache = make_cache()
        cache.access(0)
        assert not cache.access(64).hit

    def test_probe_has_no_side_effects(self):
        cache = make_cache()
        assert not cache.probe(0)
        assert cache.misses == 0
        cache.access(0)
        assert cache.probe(0)


class TestLRUEviction:
    def test_lru_victim_is_oldest(self):
        # 2-way cache, 4 sets of 64B lines; set stride = 4 * 64 = 256.
        cache = make_cache(capacity=512, ways=2)
        cache.access(0)      # set 0
        cache.access(256)    # set 0
        cache.access(0)      # refresh line 0 -> 256 becomes LRU
        cache.access(512)    # set 0, evicts 256
        assert cache.access(0).hit
        assert not cache.access(256).hit

    def test_clean_eviction_has_no_writeback(self):
        cache = make_cache(capacity=512, ways=2)
        cache.access(0)
        cache.access(256)
        result = cache.access(512)
        assert result.writeback_addr is None
        assert cache.writebacks == 0

    def test_dirty_eviction_reports_writeback(self):
        cache = make_cache(capacity=512, ways=2)
        cache.access(0, write=True)
        cache.access(256)
        result = cache.access(512)
        assert result.writeback_addr == 0
        assert cache.writebacks == 1

    def test_read_after_write_keeps_dirty(self):
        cache = make_cache(capacity=512, ways=2)
        cache.access(0, write=True)
        cache.access(0)  # read hit must not clear dirtiness
        cache.access(256)
        result = cache.access(512)
        assert result.writeback_addr == 0


class TestMaintenance:
    def test_invalidate(self):
        cache = make_cache()
        cache.access(0)
        assert cache.invalidate(0)
        assert not cache.probe(0)
        assert not cache.invalidate(0)

    def test_flush_counts_dirty_lines(self):
        cache = make_cache()
        cache.access(0, write=True)
        cache.access(64, write=True)
        cache.access(128)
        assert cache.flush() == 2
        assert not cache.probe(0)

    def test_touch_dirty_marks_existing_line(self):
        cache = make_cache(capacity=512, ways=2)
        cache.access(0)
        cache.touch_dirty(0)
        cache.access(256)
        assert cache.access(512).writeback_addr == 0

    def test_reset_stats_preserves_contents(self):
        cache = make_cache()
        cache.access(0)
        cache.reset_stats()
        assert cache.misses == 0
        assert cache.access(0).hit  # contents survived

    def test_miss_rate(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == pytest.approx(0.5)

    def test_stats_dict(self):
        cache = make_cache()
        cache.access(0)
        assert cache.stats() == {"hits": 0, "misses": 1, "writebacks": 0}


class TestConfigValidation:
    def test_rejects_non_divisible_ways(self):
        with pytest.raises(ConfigError):
            CacheConfig(capacity_bytes=512, line_bytes=64, ways=3)

    def test_rejects_sub_line_capacity(self):
        with pytest.raises(ConfigError):
            CacheConfig(capacity_bytes=32, line_bytes=64, ways=1)

    def test_geometry_properties(self):
        config = CacheConfig(1024, 64, 4)
        assert config.num_lines == 16
        assert config.num_sets == 4
