"""Table-2 switching categories and cost accounting."""

import pytest

from repro.core.gran_table import SwitchEvent
from repro.core.switching import SwitchAccounting, categorize, cost_of


def event(old, new, prev_write=False, is_write=False, read_only=False):
    return SwitchEvent(
        addr=0,
        old_granularity=old,
        new_granularity=new,
        prev_was_write=prev_write,
        is_write=is_write,
        read_only=read_only,
    )


class TestCategorize:
    def test_scale_down_category(self):
        assert categorize(event(32768, 64)) == "coarse_to_fine"

    @pytest.mark.parametrize(
        "prev,cur,expected",
        [
            (False, False, "fine_to_coarse_RAR"),
            (True, False, "fine_to_coarse_RAW"),
            (False, True, "fine_to_coarse_WAR"),
            (True, True, "fine_to_coarse_WAW"),
        ],
    )
    def test_scale_up_categories(self, prev, cur, expected):
        assert categorize(event(64, 512, prev_write=prev, is_write=cur)) == (
            expected
        )


class TestCosts:
    def test_scale_up_write_is_free(self):
        cost = cost_of(event(64, 32768, is_write=True))
        assert not cost.tree_fetch_to_root
        assert cost.extra_mac_lines == 0
        assert cost.extra_data_lines == 0

    def test_scale_up_read_seals_to_root(self):
        cost = cost_of(event(64, 32768, is_write=False))
        assert cost.tree_fetch_to_root
        # Merged MAC folds the stored fine MACs: 64 MAC lines per 32KB.
        assert cost.extra_mac_lines == 64
        assert cost.extra_data_lines == 0

    def test_scale_up_read_512(self):
        cost = cost_of(event(64, 512, is_write=False))
        assert cost.extra_mac_lines == 1

    def test_scale_down_read_only_uses_retained_fine_macs(self):
        cost = cost_of(event(32768, 64, read_only=True))
        assert cost.extra_data_lines == 0
        assert cost.extra_mac_lines == 64
        assert cost.recrypt_lines == 0

    def test_scale_down_written_fetches_data_chunk(self):
        cost = cost_of(event(32768, 64, read_only=False))
        assert cost.extra_data_lines == 512
        assert cost.recrypt_lines == 512

    def test_scale_down_smaller_region(self):
        cost = cost_of(event(512, 64, read_only=False))
        assert cost.extra_data_lines == 8


class TestAccounting:
    def test_ratios_sum_to_one(self):
        accounting = SwitchAccounting()
        for _ in range(90):
            accounting.record_resolution(switched=False)
        for _ in range(10):
            accounting.record_resolution(switched=True)
            accounting.record_event(event(64, 512))
        ratios = accounting.ratios()
        assert ratios["correct_prediction"] == pytest.approx(0.9)
        assert ratios["fine_to_coarse_RAR"] == pytest.approx(0.1)
        assert sum(ratios.values()) == pytest.approx(1.0)

    def test_misprediction_rate(self):
        accounting = SwitchAccounting()
        accounting.record_resolution(switched=True)
        accounting.record_event(event(64, 512))
        accounting.record_resolution(switched=False)
        assert accounting.misprediction_rate == pytest.approx(0.5)

    def test_empty_accounting(self):
        accounting = SwitchAccounting()
        assert accounting.ratios() == {}
        assert accounting.misprediction_rate == 0.0
        assert accounting.total_switches == 0
