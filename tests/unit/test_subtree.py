"""BMF-style subtree root cache."""

import pytest

from repro.subtree.bmf import SubtreeRootCache


class TestTrustedStops:
    def test_empty_cache_trusts_nothing(self):
        cache = SubtreeRootCache(entries=4, level=2)
        assert not cache.trusted(2, 0)

    def test_admitted_node_is_trusted_at_its_level(self):
        cache = SubtreeRootCache(entries=4, level=2)
        cache.admit(7)
        assert cache.trusted(2, 7)
        assert cache.hits == 1

    def test_other_levels_never_trusted(self):
        cache = SubtreeRootCache(entries=4, level=2)
        cache.admit(7)
        assert not cache.trusted(1, 7)
        assert not cache.trusted(3, 7)

    def test_lru_eviction(self):
        cache = SubtreeRootCache(entries=2, level=2)
        cache.admit(1)
        cache.admit(2)
        cache.admit(1)  # refresh
        cache.admit(3)  # evicts 2
        assert cache.trusted(2, 1)
        assert not cache.trusted(2, 2)
        assert cache.trusted(2, 3)
        assert cache.evictions == 1

    def test_trusted_refreshes_lru(self):
        cache = SubtreeRootCache(entries=2, level=2)
        cache.admit(1)
        cache.admit(2)
        cache.trusted(2, 1)
        cache.admit(3)
        assert cache.trusted(2, 1)
        assert not cache.trusted(2, 2)

    def test_readmission_is_not_counted_twice(self):
        cache = SubtreeRootCache(entries=4, level=2)
        cache.admit(1)
        cache.admit(1)
        assert cache.admissions == 1
        assert len(cache) == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SubtreeRootCache(entries=0)
