"""Region buffer: coverage tracking, debts, dirty draining."""

from repro.schemes.base import RegionBuffer


def full_coverage(buffer, base, granularity, is_write=False, read_only=True):
    victims = []
    for offset in range(granularity // 64):
        _, v = buffer.touch(base, granularity, offset, read_only, is_write)
        victims += v
    return victims


class TestCoverage:
    def test_streamed_region_owes_nothing(self):
        buffer = RegionBuffer()
        full_coverage(buffer, 0, 4096)
        victims = buffer.flush()
        assert len(victims) == 1
        assert RegionBuffer.eviction_penalty(victims[0]) == (0, 0)

    def test_partial_written_region_owes_missing_lines(self):
        buffer = RegionBuffer()
        buffer.touch(0, 4096, 0, read_only=False, is_write=True)
        buffer.touch(0, 4096, 1, read_only=False, is_write=True)
        (victim,) = buffer.flush()
        data, mac = RegionBuffer.eviction_penalty(victim)
        assert data == 62
        assert mac == 0

    def test_partial_read_only_region_owes_fine_mac_fallback(self):
        buffer = RegionBuffer()
        for offset in range(16):
            buffer.touch(0, 4096, offset, read_only=True, is_write=False)
        (victim,) = buffer.flush()
        data, mac = RegionBuffer.eviction_penalty(victim)
        assert data == 0
        assert mac == 2  # 16 covered lines -> 2 fine-MAC lines

    def test_write_makes_chunk_non_read_only(self):
        buffer = RegionBuffer()
        buffer.touch(0, 4096, 0, read_only=True, is_write=False)
        buffer.touch(0, 4096, 1, read_only=False, is_write=True)
        (victim,) = buffer.flush()
        data, _ = RegionBuffer.eviction_penalty(victim)
        assert data == 62

    def test_reopen_after_flush_starts_clean(self):
        buffer = RegionBuffer()
        full_coverage(buffer, 0, 512)
        buffer.flush()
        was_open, _ = buffer.touch(0, 512, 0, read_only=True, is_write=False)
        assert not was_open


class TestCapacity:
    def test_capacity_evicts_lru(self):
        buffer = RegionBuffer(capacity_lines=128)  # two 4KB regions
        buffer.touch(0, 4096, 0, read_only=True, is_write=False)
        buffer.touch(8192, 4096, 0, read_only=True, is_write=False)
        _, victims = buffer.touch(16384, 4096, 0, read_only=True, is_write=False)
        assert len(victims) == 1
        assert victims[0]["base"] == 0

    def test_touch_refreshes_lru(self):
        buffer = RegionBuffer(capacity_lines=128)
        buffer.touch(0, 4096, 0, read_only=True, is_write=False)
        buffer.touch(8192, 4096, 0, read_only=True, is_write=False)
        buffer.touch(0, 4096, 1, read_only=True, is_write=False)
        _, victims = buffer.touch(16384, 4096, 0, read_only=True, is_write=False)
        assert victims[0]["base"] == 8192


class TestDirtyDrain:
    def test_dirty_cap_drains_oldest_written(self):
        buffer = RegionBuffer(max_dirty_regions=2)
        buffer.touch(0, 512, 0, read_only=False, is_write=True)
        buffer.touch(512, 512, 0, read_only=False, is_write=True)
        _, victims = buffer.touch(1024, 512, 0, read_only=False, is_write=True)
        assert len(victims) == 1
        assert victims[0]["base"] == 0

    def test_active_write_stream_is_protected(self):
        buffer = RegionBuffer(max_dirty_regions=1)
        # The region being written right now must never drain itself.
        _, victims = buffer.touch(0, 512, 0, read_only=False, is_write=True)
        assert victims == []
        _, victims = buffer.touch(0, 512, 1, read_only=False, is_write=True)
        assert victims == []

    def test_reads_do_not_consume_dirty_slots(self):
        buffer = RegionBuffer(max_dirty_regions=1)
        buffer.touch(0, 512, 0, read_only=True, is_write=False)
        buffer.touch(512, 512, 0, read_only=True, is_write=False)
        _, victims = buffer.touch(1024, 512, 0, read_only=False, is_write=True)
        assert victims == []

    def test_drained_region_pays_rmw(self):
        buffer = RegionBuffer(max_dirty_regions=1)
        buffer.touch(0, 512, 0, read_only=False, is_write=True)
        _, victims = buffer.touch(512, 512, 0, read_only=False, is_write=True)
        (victim,) = victims
        data, mac = RegionBuffer.eviction_penalty(victim)
        assert data == 7  # 8 lines - 1 covered

    def test_flush_resets_dirty_count(self):
        buffer = RegionBuffer(max_dirty_regions=1)
        buffer.touch(0, 512, 0, read_only=False, is_write=True)
        buffer.flush()
        _, victims = buffer.touch(512, 512, 0, read_only=False, is_write=True)
        assert victims == []
