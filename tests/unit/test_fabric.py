"""Unit tests of the distributed fabric's building blocks.

Covers the content-addressed :class:`ResultStore` (at-most-once
commit, torn-blob healing), the :class:`LeaseQueue` protocol (claim /
steal / requeue / heartbeat), the status helpers, the fabric chaos
spec, and the ``repro gc`` collector.  The multi-process stories live
in ``tests/integration/test_fabric_parity.py``.
"""

import json
import os
import time

import pytest

from repro.faults.exec_chaos import FabricChaosSpec
from repro.sim.fabric import (
    FabricError,
    LeaseQueue,
    ResultStore,
    default_store_dir,
    fabric_map,
    fabric_queues,
    format_status,
    queue_status,
    task_digest,
)
from repro.sim.store_gc import collect_garbage


def probe(x):
    return x * 10


def digest_for(key="k0"):
    return task_digest("unit", "ctx", key, probe)


class TestResultStore:
    def test_commit_and_load_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = digest_for()
        assert store.commit(digest, "k0", {"v": 1}, worker="w1")
        value, error = store.load(digest)
        assert value == {"v": 1} and error is None
        assert store.has(digest)

    def test_second_commit_loses_and_preserves_first(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = digest_for()
        assert store.commit(digest, "k0", "first", worker="w1")
        assert not store.commit(digest, "k0", "second", worker="w2")
        value, _ = store.load(digest)
        assert value == "first"
        assert store.read_envelope(digest)["worker"] == "w1"

    def test_torn_blob_reads_as_absent_and_heals(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = digest_for()
        store.commit(digest, "k0", "good")
        path = store.path(digest)
        raw = path.read_text(encoding="utf-8")
        path.write_text(raw[: len(raw) // 2], encoding="utf-8")
        assert not store.has(digest)
        with pytest.raises(FabricError):
            store.load(digest)
        # A later committer heals the torn occupant and wins.
        assert store.commit(digest, "k0", "healed")
        assert store.load(digest)[0] == "healed"

    def test_wrong_task_or_payload_digest_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = digest_for()
        store.commit(digest, "k0", "v")
        env = json.loads(store.path(digest).read_text(encoding="utf-8"))
        env["payload"] = env["payload"][:-4] + "AAA="
        store.path(digest).write_text(
            json.dumps(env, sort_keys=True), encoding="utf-8"
        )
        assert store.read_envelope(digest) is None
        assert store.discard_invalid(digest)
        assert not store.path(digest).exists()

    def test_error_envelope_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        digest = digest_for()
        info = {"class": "ValueError", "message": "boom",
                "traceback_digest": "ab" * 32}
        store.commit(digest, "k0", None, error=info)
        value, error = store.load(digest)
        assert value is None and error == info


def spool(tmp_path, keys=("k0", "k1"), ttl=30.0, chaos=None):
    tasks = [
        (key, task_digest("unit", "ctx", key, probe), probe, i)
        for i, key in enumerate(keys)
    ]
    return LeaseQueue.create(
        tmp_path / "q", "unit", "ctx", tasks, ttl=ttl, chaos=chaos
    )


class TestLeaseQueue:
    def test_claim_is_exclusive(self, tmp_path):
        queue = spool(tmp_path)
        digest = queue.tasks()[0].digest
        token, attempt, stolen = queue.claim(digest, "w1")
        assert attempt == 1 and not stolen
        assert queue.claim(digest, "w2") is None  # live lease blocks

    def test_expired_lease_is_stolen_with_attempt_bump(self, tmp_path):
        queue = spool(tmp_path, ttl=0.05)
        digest = queue.tasks()[0].digest
        queue.claim(digest, "w1")
        time.sleep(0.1)
        claim = queue.claim(digest, "w2")
        assert claim is not None
        token, attempt, stolen = claim
        assert stolen and attempt == 2
        assert queue.read_lease(digest).worker == "w2"

    def test_requeue_preserves_attempt_history(self, tmp_path):
        queue = spool(tmp_path)
        digest = queue.tasks()[0].digest
        token, attempt, _ = queue.claim(digest, "w1")
        queue.requeue(digest, token, attempt)
        lease = queue.read_lease(digest)
        assert lease.expired and lease.attempt == 1
        # Immediately claimable, at attempt 2 -- chaos decisions seeded
        # on (key, attempt) therefore never replay attempt 1.
        token2, attempt2, stolen = queue.claim(digest, "w2")
        assert stolen and attempt2 == 2

    def test_release_resets_claim_state(self, tmp_path):
        queue = spool(tmp_path)
        digest = queue.tasks()[0].digest
        token, _, _ = queue.claim(digest, "w1")
        queue.release(digest, token)
        token2, attempt2, stolen = queue.claim(digest, "w2")
        assert not stolen and attempt2 == 1

    def test_heartbeat_extends_and_detects_steal(self, tmp_path):
        queue = spool(tmp_path, ttl=0.2)
        digest = queue.tasks()[0].digest
        token, attempt, _ = queue.claim(digest, "w1")
        assert queue.heartbeat(digest, "w1", token, attempt)
        time.sleep(0.3)
        queue.claim(digest, "w2")  # steal the expired lease
        assert not queue.heartbeat(digest, "w1", token, attempt)

    def test_torn_lease_counts_as_expired(self, tmp_path):
        queue = spool(tmp_path)
        digest = queue.tasks()[0].digest
        queue.claim(digest, "w1")
        queue._lease_path(digest).write_text('{"worker": "w1', encoding="utf-8")
        claim = queue.claim(digest, "w2")
        assert claim is not None and claim[2]  # stolen

    def test_drain_expired_frees_and_journals(self, tmp_path):
        queue = spool(tmp_path, ttl=0.05)
        digest = queue.tasks()[0].digest
        queue.claim(digest, "w1")
        time.sleep(0.1)
        assert queue.drain_expired() == [digest]
        events = [e["event"] for e in queue.journal_events()]
        assert "lease_expire" in events

    def test_attach_rejects_wrong_schema(self, tmp_path):
        queue = spool(tmp_path)
        manifest = json.loads(
            (queue.root / "manifest.json").read_text(encoding="utf-8")
        )
        manifest["schema"] = "repro-lease/v0"
        (queue.root / "manifest.json").write_text(
            json.dumps(manifest), encoding="utf-8"
        )
        with pytest.raises(FabricError):
            LeaseQueue.attach(queue.root)

    def test_chaos_spec_roundtrips_through_manifest(self, tmp_path):
        chaos = FabricChaosSpec(seed=7, die_rate=0.5)
        queue = spool(tmp_path, chaos=chaos)
        assert LeaseQueue.attach(queue.root).chaos_spec() == chaos


class TestStatus:
    def test_queue_status_counts(self, tmp_path):
        queue = spool(tmp_path, keys=("k0", "k1", "k2"))
        store = ResultStore(tmp_path / "store")
        tasks = queue.tasks()
        store.commit(tasks[0].digest, tasks[0].key, 1)
        queue.claim(tasks[1].digest, "w1")
        status = queue_status(queue, store)
        assert status["done"] == 1 and status["total"] == 3
        assert len(status["leases"]) == 1
        text = format_status([status])
        assert "1/3 done" in text and "worker=w1" in text

    def test_fabric_queues_discovery(self, tmp_path):
        run_dir = tmp_path / "runs" / "r1"
        out = fabric_map(
            probe, [1, 2], keys=["a", "b"], kind="disc", context="ctx",
            run_dir=run_dir, store_dir=tmp_path / "runs" / "store",
            workers=1,
        )
        assert out == [10, 20]
        queues = fabric_queues(run_dir)
        assert len(queues) == 1
        assert queues[0].manifest()["kind"] == "disc"


class TestFabricChaosSpec:
    def test_deterministic_and_bounded(self):
        chaos = FabricChaosSpec(seed=3, die_rate=0.5, stall_rate=0.3,
                                tear_rate=0.2, fault_attempts=2)
        first = [chaos.decide_fabric("key", a) for a in (1, 2, 3, 4)]
        second = [chaos.decide_fabric("key", a) for a in (1, 2, 3, 4)]
        assert first == second
        # Beyond the fault budget every decision is honest -- the
        # convergence guarantee behind byte-parity assertions.
        assert first[2] is None and first[3] is None

    def test_rates_partition_the_roll(self):
        everything = FabricChaosSpec(seed=0, die_rate=1.0)
        assert everything.decide_fabric("any", 1) == "die_after_claim"
        stall = FabricChaosSpec(seed=0, stall_rate=1.0)
        assert stall.decide_fabric("any", 1) == "stall"
        tear = FabricChaosSpec(seed=0, tear_rate=1.0)
        assert tear.decide_fabric("any", 1) == "tear_result"
        honest = FabricChaosSpec(seed=0)
        assert honest.decide_fabric("any", 1) is None


class TestGc:
    def _run(self, runs, name, age=0.0):
        path = runs / name
        path.mkdir(parents=True)
        (path / "journal.jsonl").write_text("x\n", encoding="utf-8")
        if age:
            stamp = time.time() - age
            os.utime(path, (stamp, stamp))
        return path

    def test_keeps_newest_and_prunes_rest(self, tmp_path):
        runs = tmp_path / "runs"
        self._run(runs, "old", age=3600)
        self._run(runs, "mid", age=1800)
        new = self._run(runs, "new")
        report = collect_garbage(runs, keep=1)
        assert report.runs_kept == ["new"]
        assert sorted(report.runs_removed) == ["mid", "old"]
        assert new.exists()
        assert not (runs / "old").exists()

    def test_store_pruning_classes(self, tmp_path):
        runs = tmp_path / "runs"
        self._run(runs, "live")
        store = ResultStore(default_store_dir(runs))
        fresh, stale, torn = digest_for("a"), digest_for("b"), digest_for("c")
        store.commit(fresh, "a", 1)
        store.commit(stale, "b", 2)
        old = time.time() - 7200
        os.utime(store.path(stale), (old, old))
        store.commit(torn, "c", 3)
        raw = store.path(torn).read_text(encoding="utf-8")
        store.path(torn).write_text(raw[:20], encoding="utf-8")
        (store.path(fresh).parent / ".litter.tmp").write_text("x")
        report = collect_garbage(runs, keep=5)
        assert report.blobs_removed == 1      # stale: older than kept runs
        assert report.invalid_blobs_removed == 1
        assert report.tmp_removed == 1
        assert store.has(fresh)
        assert not store.path(stale).exists()

    def test_dry_run_touches_nothing(self, tmp_path):
        runs = tmp_path / "runs"
        self._run(runs, "old", age=3600)
        self._run(runs, "new")
        report = collect_garbage(runs, keep=1, dry_run=True)
        assert report.runs_removed == ["old"]
        assert (runs / "old").exists()

    def test_missing_runs_dir_is_a_noop(self, tmp_path):
        report = collect_garbage(tmp_path / "absent", keep=1)
        assert report.runs_kept == [] and report.runs_removed == []

    def test_store_max_age_overrides_run_anchor(self, tmp_path):
        runs = tmp_path / "runs"
        self._run(runs, "live", age=7200)
        store = ResultStore(default_store_dir(runs))
        digest = digest_for("x")
        store.commit(digest, "x", 1)
        old = time.time() - 3600
        os.utime(store.path(digest), (old, old))
        # Anchored on the (older) run dir the blob survives ...
        assert collect_garbage(runs, keep=5, dry_run=True).blobs_removed == 0
        # ... but an explicit max age prunes it.
        report = collect_garbage(runs, keep=5, store_max_age_seconds=60.0)
        assert report.blobs_removed == 1


class TestFabricMapSerial:
    def test_map_orders_and_reuses(self, tmp_path):
        store_dir = tmp_path / "store"
        kwargs = dict(
            keys=["a", "b", "c"], kind="map", context="ctx",
            store_dir=store_dir, workers=1,
        )
        out = fabric_map(probe, [3, 1, 2], run_dir=tmp_path / "r1", **kwargs)
        assert out == [30, 10, 20]
        from repro.sim.fabric import FabricReport

        report = FabricReport()
        again = fabric_map(
            probe, [3, 1, 2], run_dir=tmp_path / "r2", report=report, **kwargs
        )
        assert again == [30, 10, 20]
        assert report.reused == 3 and report.lease_claims == 0

    def test_duplicate_keys_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            fabric_map(
                probe, [1, 2], keys=["a", "a"], kind="map", context="ctx",
                run_dir=tmp_path / "r", store_dir=tmp_path / "store",
                workers=1,
            )
