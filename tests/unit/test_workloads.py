"""Workload specs, trace generation, and the Table-4 registry."""

import pytest

from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES
from repro.common.errors import ConfigError
from repro.common.types import DeviceKind
from repro.workloads.generator import generate_trace
from repro.workloads.registry import (
    CPU_WORKLOADS,
    GPU_WORKLOADS,
    NPU_WORKLOADS,
    WORKLOADS,
    get_workload,
    workloads_for,
)
from repro.workloads.spec import WorkloadSpec


class TestRegistry:
    def test_paper_suite_sizes(self):
        assert len(CPU_WORKLOADS) == 5
        assert len(GPU_WORKLOADS) == 5
        assert len(NPU_WORKLOADS) == 4

    def test_extras_for_realworld_pipelines(self):
        assert "yt" in WORKLOADS and WORKLOADS["yt"].kind is DeviceKind.NPU
        assert "sc" in WORKLOADS and WORKLOADS["sc"].kind is DeviceKind.CPU

    def test_kinds_are_consistent(self):
        for name in CPU_WORKLOADS:
            assert WORKLOADS[name].kind is DeviceKind.CPU
        for name in GPU_WORKLOADS:
            assert WORKLOADS[name].kind is DeviceKind.GPU
        for name in NPU_WORKLOADS:
            assert WORKLOADS[name].kind is DeviceKind.NPU

    def test_unknown_workload_raises(self):
        with pytest.raises(ConfigError):
            get_workload("nope")

    def test_workloads_for(self):
        assert {w.name for w in workloads_for(DeviceKind.NPU)} == set(
            NPU_WORKLOADS
        )

    def test_alex_is_coarsest_npu(self):
        # Table 4 / Fig. 4: alex has the highest 32KB share.
        alex32 = WORKLOADS["alex"].class_mix.get(32768, 0)
        for other in NPU_WORKLOADS:
            assert alex32 >= WORKLOADS[other].class_mix.get(32768, 0)

    def test_cpu_workloads_are_fine_dominated(self):
        for name in CPU_WORKLOADS:
            assert WORKLOADS[name].class_mix.get(64, 0) >= 0.5


class TestSpecValidation:
    def _spec(self, **overrides):
        params = dict(
            name="t",
            kind=DeviceKind.CPU,
            footprint_bytes=1 << 20,
            class_mix={64: 1.0},
            write_fraction=0.5,
            gap_fine=10.0,
            gap_burst=1.0,
            gap_between_bursts=100.0,
        )
        params.update(overrides)
        return WorkloadSpec(**params)

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            self._spec(class_mix={64: 0.5})

    def test_mix_granularities_validated(self):
        with pytest.raises(ConfigError):
            self._spec(class_mix={128: 1.0})

    def test_footprint_must_hold_a_chunk(self):
        with pytest.raises(ConfigError):
            self._spec(footprint_bytes=1024)

    def test_write_fraction_bounds(self):
        with pytest.raises(ConfigError):
            self._spec(write_fraction=1.5)

    def test_burst_weights_normalize_by_burst_length(self):
        spec = self._spec(class_mix={64: 0.5, 32768: 0.5})
        weights = spec.burst_weights()
        assert weights[64] == pytest.approx(0.5)
        assert weights[32768] == pytest.approx(0.5 / 512)

    def test_dominant_granularity(self):
        spec = self._spec(class_mix={64: 0.3, 32768: 0.7})
        assert spec.dominant_granularity == 32768

    def test_coarse_fraction(self):
        spec = self._spec(class_mix={64: 0.3, 4096: 0.3, 32768: 0.4})
        assert spec.coarse_fraction == pytest.approx(0.7)


class TestGeneratedTraces:
    def test_trace_is_deterministic(self):
        spec = get_workload("alex")
        a = generate_trace(spec, 5000, seed=3)
        b = generate_trace(spec, 5000, seed=3)
        assert a.entries == b.entries

    def test_different_seeds_differ(self):
        spec = get_workload("alex")
        assert generate_trace(spec, 5000, seed=1).entries != generate_trace(
            spec, 5000, seed=2
        ).entries

    def test_addresses_are_line_aligned_and_in_footprint(self):
        spec = get_workload("mm")
        trace = generate_trace(spec, 5000, base_addr=1 << 20, seed=0)
        for _, addr, _ in trace.entries:
            assert addr % CACHELINE_BYTES == 0
            assert (1 << 20) <= addr < (1 << 20) + spec.footprint_bytes

    def test_duration_is_covered(self):
        trace = generate_trace(get_workload("bw"), 10_000, seed=0)
        assert trace.compute_cycles >= 10_000

    def test_max_requests_cap(self):
        trace = generate_trace(
            get_workload("sten"), 1e9, seed=0, max_requests=100
        )
        assert len(trace) <= 100 + 512  # cap + at most one burst overshoot

    def test_coarse_workload_emits_chunk_streams(self):
        trace = generate_trace(get_workload("alex"), 30_000, seed=0)
        # Find at least one full consecutive 32KB run.
        addresses = [addr for _, addr, _ in trace.entries]
        runs = 0
        run_len = 1
        for prev, cur in zip(addresses, addresses[1:]):
            if cur == prev + CACHELINE_BYTES:
                run_len += 1
                if run_len == CHUNK_BYTES // CACHELINE_BYTES:
                    runs += 1
                    run_len = 1
            else:
                run_len = 1
        assert runs >= 1

    def test_region_roles_are_sticky(self):
        # A region is either read-streamed or write-streamed; re-streams
        # keep the role, so per-region write flags must be consistent.
        trace = generate_trace(get_workload("alex"), 30_000, seed=0)
        roles = {}
        # Only inspect full-burst starts (chunk-aligned runs).
        for _, addr, is_write in trace.entries:
            base = addr - addr % CHUNK_BYTES
            roles.setdefault(base, set())
        assert roles  # smoke: footprint touched

    def test_max_addr_property(self):
        trace = generate_trace(get_workload("bw"), 2000, base_addr=0, seed=0)
        assert trace.max_addr == max(a for _, a, _ in trace.entries) + 64
