"""Shared memory channel: latency, occupancy, FCFS queueing."""

import pytest

from repro.common.config import MemoryConfig
from repro.mem.channel import MemoryChannel


def make_channel(bw=16.0, latency=100):
    return MemoryChannel(MemoryConfig(bytes_per_cycle=bw, latency_cycles=latency))


class TestUnloadedLatency:
    def test_single_transaction_timing(self):
        channel = make_channel(bw=16.0, latency=100)
        start, done = channel.submit(0.0, 64)
        assert start == 0.0
        assert done == pytest.approx(104.0)  # 4 cycles occupancy + 100

    def test_idle_channel_starts_immediately(self):
        channel = make_channel()
        channel.submit(0.0)
        start, _ = channel.submit(1000.0)
        assert start == 1000.0


class TestQueueing:
    def test_back_to_back_serializes_occupancy(self):
        channel = make_channel(bw=16.0, latency=100)
        channel.submit(0.0, 64)
        start, done = channel.submit(0.0, 64)
        assert start == pytest.approx(4.0)
        assert done == pytest.approx(108.0)

    def test_queue_delay_accumulates(self):
        channel = make_channel(bw=16.0, latency=0)
        for _ in range(10):
            channel.submit(0.0, 64)
        assert channel.free_at == pytest.approx(40.0)
        assert channel.stats.queue_cycles == pytest.approx(
            sum(4.0 * i for i in range(10))
        )


class TestAccounting:
    def test_bytes_and_transactions(self):
        channel = make_channel()
        channel.submit(0.0, 64)
        channel.submit(0.0, 128)
        assert channel.stats.transactions == 2
        assert channel.stats.bytes_transferred == 192

    def test_busy_cycles_equal_bytes_over_bw(self):
        channel = make_channel(bw=16.0)
        channel.submit(0.0, 64)
        channel.submit(0.0, 64)
        assert channel.stats.busy_cycles == pytest.approx(8.0)

    def test_utilization_saturates_at_one(self):
        channel = make_channel(bw=16.0, latency=0)
        for _ in range(100):
            channel.submit(0.0, 64)
        assert channel.utilization(100.0) == 1.0

    def test_utilization_zero_elapsed(self):
        assert make_channel().utilization(0.0) == 0.0

    def test_bandwidth_defines_line_occupancy(self):
        config = MemoryConfig(bytes_per_cycle=17.0)
        assert config.line_occupancy_cycles == pytest.approx(64 / 17.0)
