"""Functional counter tree: increments, verification, attack detection."""

import pytest

from repro.common.errors import IntegrityError, ReplayError, SecurityError
from repro.crypto.keys import KeySet
from repro.tree.geometry import TreeGeometry
from repro.tree.integrity_tree import CounterTree


@pytest.fixture()
def tree(keys):
    return CounterTree(TreeGeometry.build(1 << 20), keys)


class TestCounterLifecycle:
    def test_fresh_counters_are_zero(self, tree):
        assert tree.read_counter(0) == 0
        assert tree.read_counter(512 * 100) == 0

    def test_increment_returns_new_value(self, tree):
        assert tree.increment_counter(0) == 1
        assert tree.increment_counter(0) == 2
        assert tree.read_counter(0) == 2

    def test_counters_are_independent(self, tree):
        tree.increment_counter(0)
        assert tree.read_counter(64) == 0
        assert tree.read_counter(0) == 1

    def test_promoted_counter_levels_are_independent(self, tree):
        tree.increment_counter(0, level=0)
        # The level-1 slot of the same address is a different counter
        # (it is the freshness counter of the leaf node, which the
        # increment bumped exactly once).
        tree.increment_counter(4096, level=1)
        assert tree.read_counter(4096, level=1) == 1

    def test_set_counter(self, tree):
        tree.set_counter(0, 1, 42)
        assert tree.read_counter(0, level=1) == 42

    def test_set_counter_scale_down_pattern(self, tree):
        # Fig. 13 (b): children inherit the parent's value.  The
        # children were pruned while promoted, so they are *revived*
        # (their freshness counters advanced past any old seal).
        tree.set_counter(0, 1, 7)
        for off in range(0, 512, 64):
            tree.set_counter(off, 0, 7, revive=True)
            assert tree.read_counter(off, level=0) == 7

    def test_scale_down_without_revive_rejects_pruned_child(self, tree):
        tree.set_counter(0, 1, 7)
        with pytest.raises(SecurityError):
            tree.set_counter(0, 0, 7)

    def test_revive_preserves_currently_sealed_nodes(self, tree):
        tree.increment_counter(64)  # seals leaf node 0 under fresh chain
        tree.set_counter(0, 0, 5, revive=True)
        assert tree.read_counter(64) == 1  # sibling slot survived


class TestFreshnessChain:
    def test_increment_bumps_ancestors(self, tree):
        tree.increment_counter(0)
        # The leaf node changed, so its freshness counter (slot 0 of
        # its parent) must have advanced.
        parent_counter = tree.read_counter(0, level=1)
        assert parent_counter >= 1

    def test_trust_cache_can_be_dropped(self, tree):
        tree.increment_counter(0)
        tree.drop_trust_cache()
        assert tree.read_counter(0) == 1  # re-verified from off-chip state

    def test_verification_counts_grow(self, tree):
        before = tree.verifications
        tree.drop_trust_cache()
        tree.read_counter(0)
        assert tree.verifications > before


class TestTamperDetection:
    def test_tampered_counter_detected(self, tree):
        tree.increment_counter(0)
        tree.tamper_counter(0)
        with pytest.raises(SecurityError):
            tree.read_counter(0)

    def test_tampered_counter_on_untouched_node_detected(self, tree):
        tree.increment_counter(0)
        tree.tamper_counter(64 * 3)  # same leaf node, other slot
        with pytest.raises(SecurityError):
            tree.read_counter(64 * 3)

    def test_tampered_mac_detected(self, tree):
        tree.increment_counter(0)
        tree.drop_trust_cache()
        tree.tamper_node_mac(0)
        with pytest.raises(IntegrityError):
            tree.read_counter(0)

    def test_tampered_intermediate_level_detected(self, tree):
        tree.increment_counter(0)
        tree.drop_trust_cache()
        tree.tamper_counter(0, level=2)
        with pytest.raises(SecurityError):
            tree.read_counter(0)

    def test_pristine_node_with_fabricated_payload_detected(self, tree):
        tree.tamper_counter(0, delta=5)
        with pytest.raises(ReplayError):
            tree.read_counter(0)


class TestReplayDetection:
    def test_replayed_node_detected_as_replay(self, tree):
        tree.increment_counter(0)
        snapshot = tree.snapshot_node(0)
        tree.increment_counter(0)
        tree.replay_node(0, snapshot)
        tree.drop_trust_cache()
        with pytest.raises(ReplayError):
            tree.read_counter(0)

    def test_replay_to_pristine_state_detected(self, tree):
        snapshot = tree.snapshot_node(0)  # all-zero, no MAC
        tree.increment_counter(0)
        tree.replay_node(0, snapshot)
        tree.drop_trust_cache()
        with pytest.raises(SecurityError):
            tree.read_counter(0)

    def test_replay_without_intervening_write_is_harmless(self, tree):
        tree.increment_counter(0)
        snapshot = tree.snapshot_node(0)
        tree.replay_node(0, snapshot)
        tree.drop_trust_cache()
        assert tree.read_counter(0) == 1  # same state, still valid


class TestCrossKeyIsolation:
    def test_trees_with_different_keys_reject_each_other(self, keys):
        geometry = TreeGeometry.build(1 << 20)
        tree_a = CounterTree(geometry, keys)
        tree_b = CounterTree(geometry, KeySet.from_seed(b"other"))
        tree_a.increment_counter(0)
        # Graft A's off-chip state onto B (attacker swaps DIMM contents).
        tree_b._payloads = tree_a._payloads
        tree_b._macs = tree_a._macs
        tree_b._root = list(tree_a._root)
        with pytest.raises(SecurityError):
            tree_b.read_counter(0)


class TestRender:
    def test_render_shows_all_levels(self, tree):
        out = tree.render()
        for level in range(tree.geometry.num_levels):
            assert f"L{level}:" in out
        assert "R" in out

    def test_render_marks_stored_and_pruned_nodes(self, tree):
        tree.increment_counter(0)
        assert "#" in tree.render()
        tree.prune_subtree(0, level=3)
        top = tree.render().splitlines()
        l0_row = next(line for line in top if line.startswith("L0:"))
        assert "#" not in l0_row
