"""Exit-status contract of ``scripts/check_bench_regression.py``.

The script is a CI gate, so its failure modes must be clean: malformed
or schema-mismatched snapshots and missing sweep sections exit 2 with
a one-line error (never a traceback), regressions exit 1, and
``--allow-missing-sweep`` opts into per-scheme-only comparison.
"""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(__file__), "..", "..", "scripts", "check_bench_regression.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _snapshot(
    sweep=True,
    schema="repro-bench/v1",
    scheme_min=1.0,
    sweep_min=10.0,
    engine="scalar",
):
    snap = {
        "schema": schema,
        "generated": "2026-08-06",
        "platform": {
            "python": "3.12",
            "implementation": "CPython",
            "cpu_count": 4,
            "engine": engine,
        },
        "repeat": 2,
        "wall_seconds": {
            "ours": {"min": scheme_min, "runs": [scheme_min, scheme_min * 1.1]}
        },
        "sim": {"schema": "repro-sim/v1"},
    }
    if sweep:
        snap["sweep"] = {
            "cpu_count": 4,
            "duration_cycles": 1500.0,
            "jobs": 1,
            "scenarios": ["cc1"],
            "schemes": ["ours"],
            "wall_seconds": {"min": sweep_min},
        }
    return snap


def _write(tmp_path, name, snap):
    path = tmp_path / name
    path.write_text(json.dumps(snap))
    return str(path)


def test_clean_comparison_exits_zero(gate, tmp_path, capsys):
    base = _write(tmp_path, "base.json", _snapshot())
    cur = _write(tmp_path, "cur.json", _snapshot())
    assert gate.main([base, cur]) == 0
    assert "no regressions" in capsys.readouterr().out


def test_missing_sweep_is_a_usage_error(gate, tmp_path, capsys):
    base = _write(tmp_path, "base.json", _snapshot())
    cur = _write(tmp_path, "cur.json", _snapshot(sweep=False))
    assert gate.main([base, cur]) == 2
    err = capsys.readouterr().err
    assert "sweep section missing from current" in err
    assert "--allow-missing-sweep" in err


def test_missing_sweep_in_both_names_both(gate, tmp_path, capsys):
    base = _write(tmp_path, "base.json", _snapshot(sweep=False))
    cur = _write(tmp_path, "cur.json", _snapshot(sweep=False))
    assert gate.main([base, cur]) == 2
    assert "baseline and current" in capsys.readouterr().err


def test_allow_missing_sweep_opts_into_scheme_gate(gate, tmp_path, capsys):
    base = _write(tmp_path, "base.json", _snapshot(sweep=False))
    cur = _write(tmp_path, "cur.json", _snapshot(sweep=False))
    assert gate.main([base, cur, "--allow-missing-sweep"]) == 0
    assert "sweep gate skipped" in capsys.readouterr().out


def test_schema_mismatch_exits_two_without_traceback(gate, tmp_path, capsys):
    base = _write(tmp_path, "base.json", _snapshot())
    cur = _write(tmp_path, "cur.json", _snapshot(schema="repro-bench/v999"))
    assert gate.main([base, cur]) == 2
    err = capsys.readouterr().err
    assert "current snapshot" in err
    assert "Traceback" not in err


def test_non_object_json_exits_two(gate, tmp_path, capsys):
    base = _write(tmp_path, "base.json", _snapshot())
    cur = tmp_path / "cur.json"
    cur.write_text(json.dumps([1, 2, 3]))
    assert gate.main([base, str(cur)]) == 2
    assert "JSON object" in capsys.readouterr().err


def test_unreadable_snapshot_exits_two(gate, tmp_path, capsys):
    base = _write(tmp_path, "base.json", _snapshot())
    assert gate.main([base, str(tmp_path / "missing.json")]) == 2
    assert "cannot read current snapshot" in capsys.readouterr().err


def test_scheme_regression_exits_one(gate, tmp_path, capsys):
    base = _write(tmp_path, "base.json", _snapshot(scheme_min=1.0))
    cur = _write(tmp_path, "cur.json", _snapshot(scheme_min=2.0))
    assert gate.main([base, cur]) == 1
    assert "REGRESSION: ours" in capsys.readouterr().err


def test_sweep_regression_exits_one(gate, tmp_path, capsys):
    base = _write(tmp_path, "base.json", _snapshot(sweep_min=10.0))
    cur = _write(tmp_path, "cur.json", _snapshot(sweep_min=20.0))
    assert gate.main([base, cur]) == 1
    assert "REGRESSION: sweep" in capsys.readouterr().err


def test_engine_mismatch_exits_two_with_hint(gate, tmp_path, capsys):
    """A scalar-vs-fast regression compare is a usage error, not a crash."""
    base = _write(tmp_path, "b_scalar.json", _snapshot(engine="scalar"))
    cur = _write(tmp_path, "c_fast.json", _snapshot(engine="fast"))
    assert gate.main([base, cur]) == 2
    err = capsys.readouterr().err
    assert "different engines" in err
    assert "--min-speedup" in err
    assert "Traceback" not in err


def test_engine_mismatch_reports_both_tiers(gate, tmp_path, capsys):
    base = _write(tmp_path, "b_fast.json", _snapshot(engine="fast"))
    cur = _write(tmp_path, "c_scalar.json", _snapshot(engine="scalar"))
    assert gate.main([base, cur]) == 2
    err = capsys.readouterr().err
    assert "'fast'" in err and "'scalar'" in err


def test_matching_engines_still_compare(gate, tmp_path, capsys):
    base = _write(tmp_path, "base.json", _snapshot(engine="fast"))
    cur = _write(tmp_path, "cur.json", _snapshot(engine="fast"))
    assert gate.main([base, cur]) == 0
    assert "no regressions" in capsys.readouterr().out


def test_min_speedup_accepts_cross_engine_snapshots(gate, tmp_path, capsys):
    """--min-speedup is the sanctioned cross-tier mode: engines differ."""
    base = _write(
        tmp_path, "b_scalar.json", _snapshot(engine="scalar", sweep_min=20.0)
    )
    cur = _write(
        tmp_path, "c_fast.json", _snapshot(engine="fast", sweep_min=5.0)
    )
    assert gate.main([base, cur, "--min-speedup", "2.0"]) == 0
    assert "sweep speedup" in capsys.readouterr().out


def test_missing_engine_field_defaults_to_scalar(gate, tmp_path):
    """Old snapshots without platform.engine keep comparing (as scalar)."""
    old = _snapshot()
    del old["platform"]["engine"]
    base = _write(tmp_path, "base.json", old)
    cur = _write(tmp_path, "cur.json", _snapshot(engine="scalar"))
    assert gate.main([base, cur]) == 0
