"""Unit coverage of the supervised execution engine (repro.sim.resilient)."""

from __future__ import annotations

import json
import os

import pytest

from repro.sim.resilient import (
    JOURNAL_SCHEMA,
    ExecutionAborted,
    Journal,
    JournalError,
    LostResultError,
    ResiliencePolicy,
    Supervisor,
    SupervisionReport,
    count_journal_entries,
    current_supervisor,
    supervised_map,
    supervision,
)


def double(x):
    return x * 2


def boom(x):
    raise ValueError(f"bad item {x}")


class TestResiliencePolicy:
    def test_backoff_is_deterministic(self):
        policy = ResiliencePolicy(seed=7)
        assert policy.backoff("k", 1) == policy.backoff("k", 1)
        assert policy.backoff("k", 1) != policy.backoff("other", 1)

    def test_backoff_grows_and_caps(self):
        policy = ResiliencePolicy(
            backoff_base_seconds=0.1, backoff_cap_seconds=0.4
        )
        delays = [policy.backoff("k", attempt) for attempt in (1, 2, 3, 9)]
        assert all(d > 0 for d in delays)
        # base * 1.5 jitter ceiling; the cap bounds late attempts.
        assert max(delays) <= 0.4 * 1.5
        assert delays[0] <= 0.1 * 1.5

    def test_seed_changes_jitter(self):
        a = ResiliencePolicy(seed=0).backoff("k", 1)
        b = ResiliencePolicy(seed=1).backoff("k", 1)
        assert a != b


class TestJournal:
    def _open(self, tmp_path, keys=("a", "b"), resume=False):
        return Journal.open(
            tmp_path / "j.jsonl", "sweep", "ctx", list(keys),
            run_id="r1", resume=resume,
        )

    def test_roundtrip(self, tmp_path):
        journal = self._open(tmp_path)
        journal.record("a", {"value": 1})
        journal.record("b", [1, 2, 3])
        journal.close()
        loaded = self._open(tmp_path, resume=True).load()
        assert loaded == {"a": {"value": 1}, "b": [1, 2, 3]}

    def test_latest_wins(self, tmp_path):
        journal = self._open(tmp_path)
        journal.record("a", 1)
        journal.record("a", 2)
        journal.close()
        assert self._open(tmp_path, resume=True).load() == {"a": 2}

    def test_existing_file_requires_resume(self, tmp_path):
        self._open(tmp_path).close()
        with pytest.raises(JournalError, match="--resume"):
            self._open(tmp_path, resume=False)

    def test_key_set_mismatch_rejected(self, tmp_path):
        self._open(tmp_path).close()
        with pytest.raises(JournalError, match="different run"):
            self._open(tmp_path, keys=("a", "b", "c"), resume=True)

    def test_schema_mismatch_rejected(self, tmp_path):
        journal = self._open(tmp_path)
        journal.record("a", 1)
        journal.close()
        path = tmp_path / "j.jsonl"
        lines = path.read_text().splitlines(keepends=True)
        header = json.loads(lines[0])
        header["schema"] = "repro-journal/v99"
        lines[0] = json.dumps(header) + "\n"
        path.write_text("".join(lines))
        with pytest.raises(JournalError, match=JOURNAL_SCHEMA):
            self._open(tmp_path, resume=True).load()

    def test_corrupt_entry_skipped_not_fatal(self, tmp_path):
        journal = self._open(tmp_path)
        journal.record("a", 1)
        journal.record("b", 2)
        journal.close()
        path = tmp_path / "j.jsonl"
        lines = path.read_text().splitlines(keepends=True)
        entry = json.loads(lines[1])
        entry["payload"] = entry["payload"][:-4] + "AAA="
        lines[1] = json.dumps(entry) + "\n"
        path.write_text("".join(lines))
        reopened = self._open(tmp_path, resume=True)
        assert reopened.load() == {"b": 2}
        assert reopened.corrupt_entries == 1

    def test_strict_mode_raises_on_corruption(self, tmp_path):
        journal = self._open(tmp_path)
        journal.record("a", 1)
        journal.close()
        path = tmp_path / "j.jsonl"
        text = path.read_text().replace('"key": "a"', '"key": "a', 1)
        path.write_text(text)
        with pytest.raises(JournalError):
            self._open(tmp_path, resume=True).load(strict=True)

    def test_unterminated_tail_tolerated(self, tmp_path):
        journal = self._open(tmp_path)
        journal.record("a", 1)
        journal.record("b", 2)
        journal.close()
        path = tmp_path / "j.jsonl"
        text = path.read_text()
        path.write_text(text[:-10])  # crash mid-append
        reopened = self._open(tmp_path, resume=True)
        assert reopened.load() == {"a": 1}
        assert reopened.truncated_lines == 1

    def test_count_journal_entries_ignores_identity(self, tmp_path):
        journal = self._open(tmp_path)
        journal.record("a", 1)
        journal.record("a", 2)  # duplicate key counts once
        journal.record("b", 3)
        journal.close()
        assert count_journal_entries(tmp_path / "j.jsonl") == 2
        assert count_journal_entries(tmp_path / "missing.jsonl") == 0


class TestSupervisedMapSerial:
    def test_plain_map(self):
        assert supervised_map(double, [1, 2, 3], jobs=1) == [2, 4, 6]

    def test_key_count_must_match(self):
        with pytest.raises(ValueError, match="one-to-one"):
            supervised_map(double, [1, 2], jobs=1, keys=["only-one"])

    def test_keys_must_be_unique(self):
        with pytest.raises(ValueError, match="unique"):
            supervised_map(double, [1, 2], jobs=1, keys=["k", "k"])

    def test_journal_resume_skips_finished(self, tmp_path):
        keys = ["a", "b", "c"]
        journal = Journal.open(
            tmp_path / "j.jsonl", "map", "ctx", keys, resume=False
        )
        report = SupervisionReport()
        out = supervised_map(
            double, [1, 2, 3], jobs=1, keys=keys, journal=journal,
            report=report,
        )
        journal.close()
        assert out == [2, 4, 6]
        assert report.completed == 3

        journal2 = Journal.open(
            tmp_path / "j.jsonl", "map", "ctx", keys, resume=True
        )
        report2 = SupervisionReport()
        out2 = supervised_map(
            boom, [1, 2, 3], jobs=1, keys=keys, journal=journal2,
            report=report2,
        )
        journal2.close()
        # Every task was served from the journal: boom never ran.
        assert out2 == [2, 4, 6]
        assert report2.resume_skips == 3 and report2.attempts == 0

    def test_task_error_raises_after_one_retry(self):
        report = SupervisionReport()
        with pytest.raises(ValueError, match="bad item"):
            supervised_map(boom, [1], jobs=1, keys=["k"], report=report)
        # Serial path fails on first execution (no worker to retry in).
        assert report.completed == 0

    def test_abort_after_chaos_hook(self, tmp_path):
        class Abort:
            abort_after = 2

        keys = ["a", "b", "c", "d"]
        journal = Journal.open(
            tmp_path / "j.jsonl", "map", "ctx", keys, resume=False
        )
        with pytest.raises(ExecutionAborted):
            supervised_map(
                double, [1, 2, 3, 4], jobs=1, keys=keys, journal=journal,
                chaos=Abort(),
            )
        journal.close()
        assert count_journal_entries(tmp_path / "j.jsonl") == 2


class TestAmbientSupervision:
    def test_default_is_supervised(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC", raising=False)
        supervisor = current_supervisor()
        assert isinstance(supervisor, Supervisor)
        assert not supervisor.journaling

    def test_plain_env_opts_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC", "plain")
        assert current_supervisor() is None

    def test_explicit_supervisor_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC", "plain")
        mine = Supervisor()
        with supervision(mine):
            assert current_supervisor() is mine
        assert current_supervisor() is None

    def test_none_context_is_noop(self):
        with supervision(None) as active:
            assert active is None

    def test_nested_supervisors_stack(self):
        outer, inner = Supervisor(), Supervisor()
        with supervision(outer):
            with supervision(inner):
                assert current_supervisor() is inner
            assert current_supervisor() is outer


class TestSupervisor:
    def test_journaling_requires_keys(self, tmp_path):
        supervisor = Supervisor(run_id="r1", runs_dir=tmp_path)
        with pytest.raises(ValueError, match="keys"):
            supervisor.map(double, [1, 2])

    def test_map_journals_and_same_process_reopen(self, tmp_path):
        supervisor = Supervisor(run_id="r1", runs_dir=tmp_path)
        keys = ["a", "b"]
        out = supervisor.map(
            double, [1, 2], keys=keys, kind="sweep", context="ctx", jobs=1
        )
        assert out == [2, 4]
        # An identical fan-out later in the same process (bench repeat,
        # cleared memo) reopens its own journal as a resume.
        out2 = supervisor.map(
            double, [1, 2], keys=keys, kind="sweep", context="ctx", jobs=1
        )
        assert out2 == [2, 4]
        assert supervisor.report.resume_skips == 2

    def test_journal_path_varies_with_context(self, tmp_path):
        supervisor = Supervisor(run_id="r1", runs_dir=tmp_path)
        a = supervisor.journal_path("sweep", "ctx-a")
        b = supervisor.journal_path("sweep", "ctx-b")
        assert a != b and a.parent == b.parent == tmp_path / "r1"

    def test_lost_result_error_is_transient(self):
        assert LostResultError("x").transient is True

    def test_run_dir_requires_run_id(self):
        with pytest.raises(ValueError):
            Supervisor().run_dir()

    def test_declares_resilience_counters(self):
        from repro.obs import ObsContext

        obs = ObsContext.enabled(capacity=64)
        Supervisor(obs=obs)
        snapshot = obs.registry.snapshot("resilience")
        assert snapshot.get("resilience.exec_retry") == 0
        assert snapshot.get("resilience.exec_resume_skip") == 0


class TestRunsDir:
    def test_env_override(self, monkeypatch, tmp_path):
        from repro.sim.resilient import default_runs_dir

        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "elsewhere"))
        assert default_runs_dir() == tmp_path / "elsewhere"

    def test_new_run_ids_are_unique(self):
        from repro.sim.resilient import new_run_id

        ids = {new_run_id() for _ in range(32)}
        assert len(ids) == 32
