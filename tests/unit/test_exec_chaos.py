"""Unit coverage of the execution-chaos harness (repro.faults.exec_chaos)."""

from __future__ import annotations

import json

import pytest

from repro.faults.exec_chaos import (
    ChaosReport,
    ChaosSpec,
    break_journal_schema,
    corrupt_journal_entry,
    truncate_journal,
)
from repro.sim.resilient import Journal, JournalError


class TestChaosSpec:
    def test_decisions_are_deterministic(self):
        spec = ChaosSpec(seed=3, crash_rate=0.5, lost_rate=0.3)
        keys = [f"task-{i}" for i in range(20)]
        first = [spec.decide(key, 0) for key in keys]
        second = [spec.decide(key, 0) for key in keys]
        assert first == second
        assert set(first) <= {"crash", "lose", None}

    def test_seed_changes_story(self):
        keys = [f"task-{i}" for i in range(50)]
        a = [ChaosSpec(seed=0, crash_rate=0.5).decide(k, 0) for k in keys]
        b = [ChaosSpec(seed=1, crash_rate=0.5).decide(k, 0) for k in keys]
        assert a != b

    def test_no_fault_at_or_beyond_fault_attempts(self):
        """The convergence guarantee: retries eventually run clean."""
        spec = ChaosSpec(
            seed=0, crash_rate=1.0, hang_keys=("h",), fault_attempts=2
        )
        for key in ("h", "task-1", "task-2"):
            assert spec.decide(key, 2) is None
            assert spec.decide(key, 5) is None
            assert spec.decide(key, 0) is not None

    def test_hang_only_on_first_attempt(self):
        spec = ChaosSpec(seed=0, hang_keys=("h",))
        assert spec.decide("h", 0) == "hang"
        assert spec.decide("h", 1) is None
        assert spec.decide("other", 0) is None

    def test_rates_partition_the_roll(self):
        crash_only = ChaosSpec(seed=0, crash_rate=1.0)
        lose_only = ChaosSpec(seed=0, lost_rate=1.0)
        quiet = ChaosSpec(seed=0)
        assert crash_only.decide("k", 0) == "crash"
        assert lose_only.decide("k", 0) == "lose"
        assert quiet.decide("k", 0) is None

    def test_spec_is_picklable(self):
        import pickle

        spec = ChaosSpec(seed=2, crash_rate=0.2, hang_keys=("a",))
        assert pickle.loads(pickle.dumps(spec)) == spec


@pytest.fixture
def journal_path(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = Journal.open(path, "sweep", "ctx", ["a", "b", "c"], resume=False)
    journal.record("a", {"x": 1})
    journal.record("b", {"x": 2})
    journal.record("c", {"x": 3})
    journal.close()
    return path


def _reload(path, strict=False):
    journal = Journal.open(path, "sweep", "ctx", ["a", "b", "c"], resume=True)
    loaded = journal.load(strict=strict)
    return loaded, journal


class TestJournalDamageHelpers:
    def test_corrupt_entry_drops_only_that_key(self, journal_path):
        key = corrupt_journal_entry(journal_path, entry_index=1)
        assert key == "b"
        loaded, journal = _reload(journal_path)
        assert loaded == {"a": {"x": 1}, "c": {"x": 3}}
        assert journal.corrupt_entries == 1

    def test_corrupt_out_of_range(self, journal_path):
        with pytest.raises(IndexError):
            corrupt_journal_entry(journal_path, entry_index=9)

    def test_truncate_keeps_prefix_with_partial_tail(self, journal_path):
        truncate_journal(journal_path, keep_entries=1, partial=True)
        text = journal_path.read_text()
        assert not text.endswith("\n")  # crash residue: unterminated line
        loaded, journal = _reload(journal_path)
        assert loaded == {"a": {"x": 1}}
        assert journal.truncated_lines == 1

    def test_truncate_clean(self, journal_path):
        truncate_journal(journal_path, keep_entries=2, partial=False)
        loaded, journal = _reload(journal_path)
        assert loaded == {"a": {"x": 1}, "b": {"x": 2}}
        assert journal.truncated_lines == 0

    def test_break_schema_rejected_on_reopen(self, journal_path):
        break_journal_schema(journal_path)
        header = json.loads(journal_path.read_text().splitlines()[0])
        assert header["schema"] == "repro-journal/v0"
        with pytest.raises(JournalError):
            _reload(journal_path)


class TestChaosReport:
    def test_pass_fail_rollup(self):
        report = ChaosReport()
        report.add("one", True, "fine")
        assert report.passed
        report.add("two", False, "diverged")
        assert not report.passed

    def test_format(self):
        report = ChaosReport()
        report.add("sweep under chaos", True, "payloads identical")
        text = report.format()
        assert "[PASS] sweep under chaos: payloads identical" in text
        assert "chaos CLEAN" in text

    def test_format_failure(self):
        report = ChaosReport()
        report.add("sweep under chaos", False, "payloads DIVERGED")
        text = report.format()
        assert "[FAIL]" in text
        assert "chaos FAILED" in text
