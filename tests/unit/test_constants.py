"""Constants must satisfy the structural identities the paper assumes."""

import pytest

from repro.common import constants


class TestGranularityLadder:
    def test_four_granularities(self):
        assert constants.GRANULARITIES == (64, 512, 4096, 32768)

    def test_each_level_is_one_arity_coarser(self):
        for finer, coarser in zip(
            constants.GRANULARITIES, constants.GRANULARITIES[1:]
        ):
            assert coarser == finer * constants.TREE_ARITY

    def test_granularity_level_roundtrip(self):
        for level, granularity in enumerate(constants.GRANULARITIES):
            assert constants.granularity_level(granularity) == level

    @pytest.mark.parametrize("bad", [0, 1, 63, 128, 1024, 65536, -64])
    def test_granularity_level_rejects_unsupported(self, bad):
        with pytest.raises(ValueError):
            constants.granularity_level(bad)


class TestDerivedCounts:
    def test_lines_per_chunk_is_512(self):
        assert constants.LINES_PER_CHUNK == 512

    def test_partitions_per_chunk_is_64(self):
        assert constants.PARTITIONS_PER_CHUNK == 64

    def test_lines_per_partition_is_arity(self):
        assert constants.LINES_PER_PARTITION == constants.TREE_ARITY

    def test_chunk_offset_bits_match_chunk_size(self):
        assert 1 << constants.CHUNK_OFFSET_BITS == constants.CHUNK_BYTES

    def test_chunk_index_bits_complement_offset(self):
        assert constants.CHUNK_INDEX_BITS + constants.CHUNK_OFFSET_BITS == 64

    def test_macs_per_line(self):
        assert constants.MACS_PER_LINE * constants.MAC_BYTES == (
            constants.CACHELINE_BYTES
        )

    def test_counters_per_line_equals_arity(self):
        assert constants.COUNTERS_PER_LINE == constants.TREE_ARITY


class TestTimingConstants:
    def test_paper_latencies(self):
        # Sec. 5.1 fixes OTP = 10 cycles, XOR = 1 cycle.
        assert constants.OTP_LATENCY_CYCLES == 10
        assert constants.XOR_LATENCY_CYCLES == 1

    def test_cache_sizes_match_paper(self):
        assert constants.METADATA_CACHE_BYTES == 8 * 1024
        assert constants.MAC_CACHE_BYTES == 4 * 1024

    def test_tracker_geometry_matches_paper(self):
        assert constants.ACCESS_TRACKER_ENTRIES == 12
        assert constants.TRACKER_LIFETIME_CYCLES == 16 * 1024

    def test_bandwidth_is_17_gbps_at_reference_clock(self):
        assert constants.DRAM_BYTES_PER_CYCLE == pytest.approx(17.0)
