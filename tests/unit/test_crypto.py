"""Functional crypto: OTP uniqueness, MAC binding, nested MAC folding."""

import pytest

from repro.crypto.keys import KEY_BYTES, KeySet
from repro.crypto.mac import (
    compute_mac,
    macs_equal,
    nested_mac,
    node_mac,
    pack_counters,
)
from repro.crypto.otp import decrypt_line, encrypt_line, generate_otp, xor_bytes


@pytest.fixture(scope="module")
def keys():
    return KeySet.from_seed(b"crypto-tests")


class TestKeySet:
    def test_from_seed_is_deterministic(self):
        a = KeySet.from_seed(b"seed")
        b = KeySet.from_seed(b"seed")
        assert a.encryption_key == b.encryption_key
        assert a.mac_key == b.mac_key

    def test_different_seeds_differ(self):
        assert (
            KeySet.from_seed(b"a").encryption_key
            != KeySet.from_seed(b"b").encryption_key
        )

    def test_encryption_and_mac_keys_differ(self, keys):
        assert keys.encryption_key != keys.mac_key

    def test_generate_is_random(self):
        assert KeySet.generate().encryption_key != KeySet.generate().encryption_key

    def test_rejects_short_keys(self):
        with pytest.raises(ValueError):
            KeySet(b"short", b"x" * KEY_BYTES)


class TestOTP:
    def test_pad_length(self, keys):
        assert len(generate_otp(keys.encryption_key, 0, 0, 64)) == 64
        assert len(generate_otp(keys.encryption_key, 0, 0, 200)) == 200

    def test_pad_depends_on_address(self, keys):
        assert generate_otp(keys.encryption_key, 0, 5) != generate_otp(
            keys.encryption_key, 64, 5
        )

    def test_pad_depends_on_counter(self, keys):
        assert generate_otp(keys.encryption_key, 0, 5) != generate_otp(
            keys.encryption_key, 0, 6
        )

    def test_pad_depends_on_key(self, keys):
        other = KeySet.from_seed(b"other")
        assert generate_otp(keys.encryption_key, 0, 5) != generate_otp(
            other.encryption_key, 0, 5
        )

    def test_rejects_nonpositive_length(self, keys):
        with pytest.raises(ValueError):
            generate_otp(keys.encryption_key, 0, 0, 0)

    def test_encrypt_decrypt_roundtrip(self, keys):
        plaintext = bytes(range(64))
        ciphertext = encrypt_line(keys.encryption_key, 128, 7, plaintext)
        assert ciphertext != plaintext
        assert decrypt_line(keys.encryption_key, 128, 7, ciphertext) == plaintext

    def test_wrong_counter_garbles(self, keys):
        plaintext = bytes(range(64))
        ciphertext = encrypt_line(keys.encryption_key, 128, 7, plaintext)
        assert decrypt_line(keys.encryption_key, 128, 8, ciphertext) != plaintext

    def test_xor_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")


class TestMac:
    def test_mac_is_8_bytes(self, keys):
        assert len(compute_mac(keys.mac_key, 0, 0, b"x" * 64)) == 8

    def test_mac_binds_address(self, keys):
        data = b"d" * 64
        assert compute_mac(keys.mac_key, 0, 1, data) != compute_mac(
            keys.mac_key, 64, 1, data
        )

    def test_mac_binds_counter(self, keys):
        data = b"d" * 64
        assert compute_mac(keys.mac_key, 0, 1, data) != compute_mac(
            keys.mac_key, 0, 2, data
        )

    def test_mac_binds_data(self, keys):
        assert compute_mac(keys.mac_key, 0, 1, b"a" * 64) != compute_mac(
            keys.mac_key, 0, 1, b"b" * 64
        )

    def test_macs_equal_constant_time_wrapper(self, keys):
        mac = compute_mac(keys.mac_key, 0, 1, b"a" * 64)
        assert macs_equal(mac, bytes(mac))
        assert not macs_equal(mac, bytes(8))


class TestNestedMac:
    def test_order_sensitivity(self, keys):
        m1 = compute_mac(keys.mac_key, 0, 1, b"a" * 64)
        m2 = compute_mac(keys.mac_key, 64, 1, b"b" * 64)
        assert nested_mac(keys.mac_key, [m1, m2]) != nested_mac(
            keys.mac_key, [m2, m1]
        )

    def test_single_mac_fold_differs_from_raw(self, keys):
        m1 = compute_mac(keys.mac_key, 0, 1, b"a" * 64)
        assert nested_mac(keys.mac_key, [m1]) != m1

    def test_deterministic(self, keys):
        macs = [
            compute_mac(keys.mac_key, i * 64, 1, bytes([i]) * 64)
            for i in range(8)
        ]
        assert nested_mac(keys.mac_key, macs) == nested_mac(keys.mac_key, macs)

    def test_empty_rejected(self, keys):
        with pytest.raises(ValueError):
            nested_mac(keys.mac_key, [])

    def test_any_constituent_change_propagates(self, keys):
        macs = [
            compute_mac(keys.mac_key, i * 64, 1, bytes([i]) * 64)
            for i in range(8)
        ]
        merged = nested_mac(keys.mac_key, macs)
        for i in range(8):
            mutated = list(macs)
            mutated[i] = compute_mac(keys.mac_key, i * 64, 2, bytes([i]) * 64)
            assert nested_mac(keys.mac_key, mutated) != merged


class TestNodeMac:
    def test_binds_parent_counter(self, keys):
        payload = pack_counters(range(8))
        assert node_mac(keys.mac_key, 0, 1, payload) != node_mac(
            keys.mac_key, 0, 2, payload
        )

    def test_binds_payload(self, keys):
        assert node_mac(
            keys.mac_key, 0, 1, pack_counters(range(8))
        ) != node_mac(keys.mac_key, 0, 1, pack_counters(range(1, 9)))

    def test_pack_counters_layout(self):
        packed = pack_counters([1, 2])
        assert len(packed) == 16
        assert packed[:8] == (1).to_bytes(8, "little")
