"""Access tracker (Fig. 12) and granularity detector (Algorithm 1)."""

import pytest

from repro.common.config import TrackerConfig
from repro.common.constants import CHUNK_BYTES, LINES_PER_CHUNK
from repro.core import stream_part
from repro.core.detector import (
    detect_paper_order,
    detect_stream_partitions,
    full_chunk_vector,
    merge_detection,
    vector_from_lines,
)
from repro.core.tracker import AccessTracker, run_trace_through_tracker


class TestDetectorAlgorithm1:
    def test_empty_vector_detects_nothing(self):
        assert detect_stream_partitions(0) == 0

    def test_full_vector_detects_all_partitions(self):
        assert detect_stream_partitions(full_chunk_vector()) == (
            stream_part.FULL_MASK
        )

    def test_single_complete_partition(self):
        vector = vector_from_lines(range(8))  # lines 0..7 = partition 0
        assert detect_stream_partitions(vector) == 1

    def test_partial_partition_not_detected(self):
        vector = vector_from_lines(range(7))  # 7 of 8 lines
        assert detect_stream_partitions(vector) == 0

    def test_unaligned_run_of_8_not_detected(self):
        vector = vector_from_lines(range(4, 12))  # spans two partitions
        assert detect_stream_partitions(vector) == 0

    def test_middle_partition(self):
        vector = vector_from_lines(range(5 * 8, 6 * 8))
        assert detect_stream_partitions(vector) == 1 << 5

    def test_paper_order_is_bit_reverse_of_canonical(self):
        vector = vector_from_lines(list(range(8)) + list(range(16, 24)))
        canonical = detect_stream_partitions(vector)
        assert detect_paper_order(vector) == stream_part.algorithm1_encoding(
            canonical
        )

    def test_rejects_oversized_vector(self):
        with pytest.raises(ValueError):
            detect_stream_partitions(1 << LINES_PER_CHUNK)

    def test_vector_from_lines_validates(self):
        with pytest.raises(ValueError):
            vector_from_lines([LINES_PER_CHUNK])


class TestMergeDetection:
    def test_untouched_partitions_keep_previous_bits(self):
        previous = 0b11
        observation = vector_from_lines(range(16, 24))  # partition 2 only
        merged = merge_detection(previous, observation)
        assert merged == 0b111

    def test_sparse_touch_demotes(self):
        previous = 0b1
        observation = vector_from_lines([0])  # partition 0 touched sparsely
        assert merge_detection(previous, observation) == 0

    def test_complete_observation_promotes(self):
        assert merge_detection(0, vector_from_lines(range(8))) == 1

    def test_empty_observation_changes_nothing(self):
        assert merge_detection(0b1010, 0) == 0b1010


class TestAccessTracker:
    def test_full_chunk_triggers_eviction(self):
        tracker = AccessTracker(TrackerConfig(entries=4, lifetime_cycles=10**9))
        evictions = []
        for line in range(LINES_PER_CHUNK):
            evictions += tracker.observe(line * 64, cycle=line)
        assert len(evictions) == 1
        assert evictions[0].reason == "full"
        assert evictions[0].entry.access_bits == full_chunk_vector()
        assert len(tracker) == 0

    def test_lifetime_expiry(self):
        tracker = AccessTracker(TrackerConfig(entries=4, lifetime_cycles=100))
        tracker.observe(0, cycle=0)
        evictions = tracker.observe(CHUNK_BYTES, cycle=500)
        assert any(e.reason == "expired" for e in evictions)

    def test_capacity_eviction_is_lru(self):
        tracker = AccessTracker(TrackerConfig(entries=2, lifetime_cycles=10**9))
        tracker.observe(0 * CHUNK_BYTES, cycle=0)
        tracker.observe(1 * CHUNK_BYTES, cycle=1)
        tracker.observe(0 * CHUNK_BYTES, cycle=2)  # refresh chunk 0
        evictions = tracker.observe(2 * CHUNK_BYTES, cycle=3)
        assert len(evictions) == 1
        assert evictions[0].entry.chunk_index == 1
        assert evictions[0].reason == "capacity"

    def test_duplicate_accesses_do_not_double_count(self):
        tracker = AccessTracker(TrackerConfig(entries=4, lifetime_cycles=10**9))
        tracker.observe(0, 0)
        tracker.observe(0, 1)
        tracker.observe(0, 2)
        assert len(tracker) == 1

    def test_drain_returns_all_entries(self):
        tracker = AccessTracker(TrackerConfig(entries=4, lifetime_cycles=10**9))
        tracker.observe(0, 0)
        tracker.observe(CHUNK_BYTES, 0)
        drained = tracker.drain()
        assert len(drained) == 2
        assert len(tracker) == 0

    def test_hardware_budget_matches_paper(self):
        # Sec. 4.5: 12 entries x 561 bits = 842B of storage.
        tracker = AccessTracker()
        assert tracker.on_chip_bits() == 12 * (512 + 49)
        assert tracker.on_chip_bits() // 8 == 841  # ~842B

    def test_run_trace_helper(self):
        seen = []
        run_trace_through_tracker(
            ((cycle, line * 64) for cycle, line in enumerate(range(512))),
            TrackerConfig(entries=4, lifetime_cycles=10**9),
            on_evict=seen.append,
        )
        assert len(seen) == 1
        assert seen[0].entry.access_bits == full_chunk_vector()
