"""Device issue models: windows, dependency draws, replay mechanics."""

import pytest

from repro.common.config import DeviceConfig
from repro.common.types import DeviceKind
from repro.devices.issue import DeviceIssueState, device_config_for
from repro.workloads.generator import Trace
from repro.workloads.registry import get_workload


def make_trace(entries):
    return Trace(spec=get_workload("bw"), base_addr=0, entries=tuple(entries))


def state(entries, max_outstanding=2, dependent=0.0, index=0):
    return DeviceIssueState(
        index,
        make_trace(entries),
        DeviceConfig("d", max_outstanding, dependent_loads=dependent),
    )


class TestIssueTiming:
    def test_gap_delays_issue(self):
        st = state([(10.0, 0, False), (5.0, 64, False)])
        assert st.next_issue_time() == 10.0
        st.issue(10.0, 50.0, False)
        assert st.next_issue_time() == 15.0

    def test_full_window_blocks(self):
        st = state([(0.0, 0, False)] * 3, max_outstanding=2)
        st.issue(0.0, 100.0, False)
        st.issue(0.0, 200.0, False)
        # Window full: must wait for the earliest completion (100).
        assert st.next_issue_time() == 100.0

    def test_writes_do_not_occupy_window(self):
        st = state([(0.0, 0, True)] * 3 + [(0.0, 0, False)], max_outstanding=1)
        st.issue(0.0, 0.0, True)
        st.issue(0.0, 0.0, True)
        assert st.next_issue_time() == 0.0

    def test_completed_reads_free_the_window(self):
        st = state([(0.0, 0, False)] * 3, max_outstanding=1)
        st.issue(0.0, 30.0, False)
        st.issue(30.0, 60.0, False)
        assert st.next_issue_time() == 60.0

    def test_finish_tracks_latest_completion(self):
        st = state([(0.0, 0, False), (0.0, 64, False)])
        st.issue(0.0, 500.0, False)
        st.issue(1.0, 90.0, False)
        assert st.finish == 500.0

    def test_done_after_all_entries(self):
        st = state([(0.0, 0, False)])
        assert not st.done
        st.issue(0.0, 1.0, False)
        assert st.done


class TestDependentLoads:
    def test_zero_fraction_never_depends(self):
        st = state([(0.0, 0, False)] * 10, dependent=0.0)
        for cursor in range(10):
            st.cursor = cursor
            assert not st.is_dependent()

    def test_full_fraction_always_depends(self):
        st = state([(0.0, 0, False)] * 10, dependent=1.0)
        for cursor in range(10):
            st.cursor = cursor
            assert st.is_dependent()

    def test_draw_is_deterministic(self):
        a = state([(0.0, 0, False)] * 50, dependent=0.5)
        b = state([(0.0, 0, False)] * 50, dependent=0.5)
        draws_a, draws_b = [], []
        for cursor in range(50):
            a.cursor = b.cursor = cursor
            draws_a.append(a.is_dependent())
            draws_b.append(b.is_dependent())
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_dependent_read_waits_for_previous(self):
        st = state([(0.0, 0, False)] * 4, max_outstanding=8, dependent=1.0)
        st.issue(0.0, 300.0, False)
        assert st.next_issue_time() == 300.0

    def test_independent_read_does_not_wait(self):
        st = state([(0.0, 0, False)] * 4, max_outstanding=8, dependent=0.0)
        st.issue(0.0, 300.0, False)
        assert st.next_issue_time() == 0.0


class TestDeviceDefaults:
    def test_config_for_each_kind(self):
        cpu = device_config_for(DeviceKind.CPU, "c")
        gpu = device_config_for(DeviceKind.GPU, "g")
        npu = device_config_for(DeviceKind.NPU, "n")
        assert cpu.dependent_loads > npu.dependent_loads > gpu.dependent_loads
        assert gpu.max_outstanding > npu.max_outstanding > cpu.max_outstanding
