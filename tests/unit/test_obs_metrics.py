"""Metrics registry: instruments, lazy bindings, snapshots, resets."""

import pytest

from repro.common.stats import CounterStats
from repro.obs import CounterGroup, MetricsRegistry
from repro.obs.context import ObsContext


class TestInstruments:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("scheme.requests")
        c.inc(3)
        c.inc()
        assert reg.counter("scheme.requests") is c
        assert reg.snapshot()["scheme.requests"] == 4

    def test_gauge_holds_last_value(self):
        reg = MetricsRegistry()
        g = reg.gauge("sched.stall_cycles")
        g.set(10.0)
        g.set(7.5)
        assert reg.snapshot()["sched.stall_cycles"] == 7.5

    def test_timer_context_manager(self):
        reg = MetricsRegistry()
        t = reg.timer("profile.stage.simulate")
        with t.time():
            pass
        with t.time():
            pass
        assert t.count == 2
        assert t.total_seconds >= 0.0
        snap = reg.snapshot()
        assert snap["profile.stage.simulate.count"] == 2

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")


class TestCounterGroup:
    def test_is_a_counter_stats_drop_in(self):
        reg = MetricsRegistry()
        group = reg.group("engine.events")
        assert isinstance(group, CounterStats)
        group.bump("overflow_events")
        group.bump("overflow_events", 2)
        assert group.get("overflow_events") == 3
        assert group.as_dict() == {"overflow_events": 3}

        other = CounterStats()
        other.bump("heals")
        group.merge(other)
        assert group.get("heals") == 1

    def test_counts_expand_into_snapshot(self):
        reg = MetricsRegistry()
        group = reg.group("engine.events")
        group.bump("quarantines", 4)
        assert reg.snapshot()["engine.events.quarantines"] == 4

    def test_reuse_on_re_registration(self):
        # reset_stats() paths re-register; the same instrument must come back.
        reg = MetricsRegistry()
        group = reg.group("engine.events")
        assert reg.group("engine.events") is group


class TestBindings:
    def test_bind_is_lazy(self):
        reg = MetricsRegistry()
        state = {"hits": 0}
        reg.bind("cache.hits", lambda: state["hits"])
        state["hits"] = 42
        assert reg.snapshot()["cache.hits"] == 42

    def test_bind_overwrites_stale_closure(self):
        reg = MetricsRegistry()
        reg.bind("tree.verifications", lambda: 1)
        reg.bind("tree.verifications", lambda: 2)
        assert reg.snapshot()["tree.verifications"] == 2

    def test_dict_binding_expands_to_children(self):
        reg = MetricsRegistry()
        reg.bind("scheme.granularity_hist", lambda: {512: 3, 4096: 1})
        snap = reg.snapshot()
        assert snap["scheme.granularity_hist.512"] == 3
        assert snap["scheme.granularity_hist.4096"] == 1

    def test_snapshot_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("a.one").inc(1)
        reg.counter("b.two").inc(2)
        snap = reg.snapshot(prefix="a")
        assert snap == {"a.one": 1}

    def test_names_sorted_and_contains(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.counter("a")
        assert list(reg.names()) == ["a", "z"]
        assert "a" in reg
        assert "missing" not in reg
        assert len(reg) == 2

    def test_reset_clears_owned_instruments(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(5)
        reg.reset()
        assert reg.snapshot().get("n", 0) == 0


class TestObsContext:
    def test_disabled_context_has_falsy_tracer(self):
        obs = ObsContext.disabled()
        assert not obs.tracer
        assert not obs.tracing
        assert isinstance(obs.registry, MetricsRegistry)

    def test_enabled_context_traces(self):
        obs = ObsContext.enabled(capacity=8)
        assert obs.tracer
        assert obs.tracing
