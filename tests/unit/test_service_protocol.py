"""Wire-protocol unit + fuzz suite (``repro-wire/v1``).

Framing, envelope validation, authentication tags and report
signatures are pure functions, so they are fuzzed here without a
daemon; the live-daemon robustness matrix (truncated frames over a
real socket, mid-session disconnects, session-leak accounting) lives
in tests/integration/test_service_daemon.py.
"""

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import protocol
from repro.service.protocol import (
    AuthError,
    EnvelopeError,
    FrameError,
    HEADER_BYTES,
    MAX_FRAME_BYTES,
)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def test_frame_roundtrip():
    payload = {"v": protocol.WIRE_SCHEMA, "id": 7, "op": "ping", "body": {}}
    frame = protocol.encode_frame(payload)
    length = protocol.decode_length(frame[:HEADER_BYTES])
    assert length == len(frame) - HEADER_BYTES
    assert protocol.decode_body(frame[HEADER_BYTES:]) == payload


def test_zero_length_frame_rejected():
    with pytest.raises(FrameError):
        protocol.decode_length(struct.pack(">I", 0))


def test_oversized_declared_length_rejected():
    with pytest.raises(FrameError, match="exceeds"):
        protocol.decode_length(struct.pack(">I", MAX_FRAME_BYTES + 1))


def test_truncated_header_rejected():
    with pytest.raises(FrameError, match="truncated"):
        protocol.decode_length(b"\x00\x00")


def test_oversized_payload_refused_at_encode():
    with pytest.raises(FrameError):
        protocol.encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 16)})


def test_non_object_body_rejected():
    with pytest.raises(FrameError, match="object"):
        protocol.decode_body(json.dumps([1, 2, 3]).encode())


def test_garbage_body_rejected():
    with pytest.raises(FrameError, match="JSON"):
        protocol.decode_body(b"\xff\xfe not json at all")


@given(st.binary(min_size=0, max_size=512))
@settings(max_examples=200, deadline=None)
def test_fuzz_decode_body_never_crashes(blob):
    """Arbitrary bytes either parse to an object or raise FrameError."""
    try:
        obj = protocol.decode_body(blob)
    except FrameError:
        return
    assert isinstance(obj, dict)


@given(st.binary(min_size=HEADER_BYTES, max_size=HEADER_BYTES))
@settings(max_examples=200, deadline=None)
def test_fuzz_decode_length_bounds(header):
    """Any 4-byte header yields a bounded length or a FrameError."""
    try:
        length = protocol.decode_length(header)
    except FrameError:
        return
    assert 0 < length <= MAX_FRAME_BYTES


# ----------------------------------------------------------------------
# Envelopes + auth
# ----------------------------------------------------------------------

def _request(op="step", tenant="t", seq=3, secret=b"k", body=None):
    return protocol.make_request(
        1, op, body or {}, tenant=tenant, seq=seq, secret=secret
    )


def test_envelope_roundtrip_validates_and_verifies():
    env = _request(body={"requests": 5})
    assert protocol.validate_envelope(env) == "step"
    protocol.verify_tag(b"k", env)  # must not raise


def test_service_ops_need_no_tenant():
    env = protocol.make_request(2, "ping")
    assert protocol.validate_envelope(env) == "ping"
    assert "tenant" not in env


@pytest.mark.parametrize(
    "mutate",
    [
        lambda e: e.update(v="repro-wire/v0"),
        lambda e: e.update(op="drop-tables"),
        lambda e: e.pop("id"),
        lambda e: e.update(body=[1, 2]),
        lambda e: e.update(tenant=""),
        lambda e: e.pop("seq"),
        lambda e: e.update(seq="one"),
        lambda e: e.pop("tag"),
    ],
)
def test_malformed_envelopes_rejected(mutate):
    env = _request()
    mutate(env)
    with pytest.raises(EnvelopeError):
        protocol.validate_envelope(env)


def test_wrong_key_rejected():
    env = _request(secret=b"right")
    with pytest.raises(AuthError, match="key id"):
        protocol.verify_tag(b"wrong", env)


def test_tampered_body_rejected():
    env = _request(secret=b"k", body={"requests": 5})
    env["body"] = {"requests": 500}
    with pytest.raises(AuthError, match="tag"):
        protocol.verify_tag(b"k", env)


def test_tag_binds_op_tenant_and_seq():
    env = _request(op="step", tenant="t", seq=3, secret=b"k")
    for field, value in (("op", "close"), ("tenant", "t2"), ("seq", 4)):
        forged = dict(env)
        forged[field] = value
        with pytest.raises(AuthError):
            protocol.verify_tag(b"k", forged)


@given(
    tenant=st.text(min_size=1, max_size=16),
    op=st.sampled_from(protocol.TENANT_OPS),
    seq=st.integers(min_value=0, max_value=2**31),
    secret=st.binary(min_size=1, max_size=48),
)
@settings(max_examples=100, deadline=None)
def test_fuzz_envelope_roundtrip(tenant, op, seq, secret):
    env = protocol.make_request(
        9, op, {"k": 1}, tenant=tenant, seq=seq, secret=secret
    )
    assert protocol.validate_envelope(env) == op
    protocol.verify_tag(secret, env)
    with pytest.raises(AuthError):
        protocol.verify_tag(secret + b"x", env)


# ----------------------------------------------------------------------
# Signed reports
# ----------------------------------------------------------------------

def test_report_sign_verify_roundtrip():
    body = {"schema": "repro-attest/v1", "observables": {"sha256": "ab"}}
    signed = protocol.sign_report(body, b"service-key")
    assert protocol.verify_report(signed, b"service-key")
    assert not protocol.verify_report(signed, b"other-key")


def test_tampered_report_fails_verification():
    signed = protocol.sign_report(
        {"schema": "repro-attest/v1", "count": 10}, b"service-key"
    )
    signed["count"] = 11
    assert not protocol.verify_report(signed, b"service-key")


def test_resigning_is_stable():
    body = {"a": 1, "b": {"c": [1, 2]}}
    one = protocol.sign_report(body, b"k")
    two = protocol.sign_report(dict(body), b"k")
    assert one["sig"] == two["sig"]
