"""Bank-aware DRAM model: row hits, bank conflicts, factory."""

import pytest

from repro.common.config import EngineConfig, MemoryConfig, SoCConfig
from repro.mem.channel import MemoryChannel
from repro.mem.dram import BankedMemoryChannel, make_channel


def make(banks=4, row_bytes=2048, bw=16.0, latency=100):
    return BankedMemoryChannel(
        MemoryConfig(bytes_per_cycle=bw, latency_cycles=latency),
        banks=banks,
        row_bytes=row_bytes,
    )


class TestRowBuffer:
    def test_first_access_is_a_row_miss(self):
        channel = make()
        channel.submit(0.0, 64, addr=0)
        assert channel.row_misses == 1
        assert channel.row_hits == 0

    def test_same_row_hits(self):
        channel = make()
        channel.submit(0.0, 64, addr=0)
        channel.submit(10.0, 64, addr=64)
        assert channel.row_hits == 1

    def test_row_hit_is_faster(self):
        channel = make()
        _, miss_done = channel.submit(0.0, 64, addr=0)
        _, hit_done = channel.submit(1000.0, 64, addr=64)
        assert hit_done - 1000.0 < miss_done - 0.0

    def test_row_conflict_is_slower_than_cold_miss(self):
        channel = make(banks=1, row_bytes=2048)
        _, cold = channel.submit(0.0, 64, addr=0)
        _, conflict = channel.submit(10_000.0, 64, addr=4096)
        assert conflict - 10_000.0 > cold - 0.0

    def test_different_banks_do_not_conflict(self):
        channel = make(banks=4, row_bytes=2048)
        channel.submit(0.0, 64, addr=0)       # bank 0
        channel.submit(0.0, 64, addr=2048)    # bank 1
        # Bank 1's first access is a cold miss, not a conflict: its
        # latency matches bank 0's cold miss.
        assert channel.row_misses == 2

    def test_row_hit_rate(self):
        channel = make()
        for i in range(10):
            channel.submit(float(i), 64, addr=i * 64)
        assert channel.row_hit_rate == pytest.approx(0.9)


class TestAddresslessPath:
    def test_bookkeeping_transfer_does_not_touch_banks(self):
        channel = make()
        channel.submit(0.0, 64, addr=None)
        assert channel.row_hits == 0 and channel.row_misses == 0
        channel.submit(0.0, 64, addr=0)
        assert channel.row_misses == 1


class TestBusSharing:
    def test_bus_serializes_occupancy(self):
        channel = make(bw=16.0)
        channel.submit(0.0, 64, addr=0)
        start, _ = channel.submit(0.0, 64, addr=2048)  # other bank
        assert start == pytest.approx(4.0)

    def test_stats_accumulate(self):
        channel = make()
        channel.submit(0.0, 64, addr=0)
        channel.submit(0.0, 128, addr=2048)
        assert channel.stats.transactions == 2
        assert channel.stats.bytes_transferred == 192


class TestFactoryAndConfig:
    def test_factory_returns_simple_by_default(self):
        assert isinstance(make_channel(MemoryConfig()), MemoryChannel)

    def test_factory_returns_banked_when_configured(self):
        assert isinstance(
            make_channel(MemoryConfig(banks=8)), BankedMemoryChannel
        )

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            BankedMemoryChannel(MemoryConfig(), banks=0)

    def test_unified_cache_aliases_mac_cache(self):
        from repro.schemes.registry import build_scheme

        unified = build_scheme(
            "conventional",
            SoCConfig(engine=EngineConfig(unified_metadata_cache=True)),
        )
        assert unified.mac_cache is unified.metadata_cache
        split = build_scheme("conventional", SoCConfig())
        assert split.mac_cache is not split.metadata_cache
