"""Property: no single-bit off-chip flip is ever silently absorbed.

For every protection granularity, every failure policy and both
engine policies, flipping any single bit of any attacker-visible
surface -- stored ciphertext, the compacted MAC store, or a counter
node -- must make the next covering read raise a ``SecurityError``
(possibly a ``QuarantineError`` wrapping the detection).  The read
must never return, neither with wrong data nor with right data.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES, GRANULARITIES, granularity_level
from repro.common.errors import SecurityError
from repro.crypto.keys import KeySet
from repro.secure_memory import SecureMemory
from repro.secure_memory.failure import FAILURE_MODES

KEYS = KeySet.from_seed(b"prop-faults")
# 16 chunks keep every promoted counter below the on-chip root, so the
# counter surface is attackable at all four granularities.
REGION = 16 * CHUNK_BYTES
VICTIM_BASE = CHUNK_BYTES

surfaces = st.sampled_from(("ciphertext", "mac", "counter"))
modes = st.sampled_from(FAILURE_MODES)
cases = st.one_of(
    st.tuples(st.just("fixed"), st.just(GRANULARITIES[0])),
    st.tuples(st.just("multigranular"), st.sampled_from(GRANULARITIES)),
)


def _seed_victim(policy: str, granularity: int, mode: str, fill: int):
    mem = SecureMemory(REGION, keys=KEYS, policy=policy, failure_policy=mode)
    span = max(granularity, GRANULARITIES[1])
    data = bytes((fill + i) % 255 + 1 for i in range(span))
    mem.write(VICTIM_BASE, data)
    if policy == "multigranular":
        assert mem.force_granularity(VICTIM_BASE, granularity) == granularity
    return mem, span, data


@given(
    case=cases,
    mode=modes,
    surface=surfaces,
    line_pick=st.integers(min_value=0, max_value=2**30),
    byte_offset=st.integers(min_value=0, max_value=CACHELINE_BYTES - 1),
    bit=st.integers(min_value=0, max_value=7),
    fill=st.integers(min_value=0, max_value=254),
)
@settings(max_examples=40, deadline=None)
def test_single_bit_flip_never_silent(case, mode, surface, line_pick, byte_offset, bit, fill):
    policy, granularity = case
    mem, span, _ = _seed_victim(policy, granularity, mode, fill)
    line_addr = VICTIM_BASE + (line_pick % (span // CACHELINE_BYTES)) * CACHELINE_BYTES

    if surface == "ciphertext":
        mem.tamper_data(line_addr, flip_mask=1 << bit, offset=byte_offset)
    elif surface == "mac":
        mac_addr = mem._region_mac_addr(line_addr)
        mac = bytearray(mem._macs[mac_addr])
        mac[byte_offset % len(mac)] ^= 1 << bit
        mem._macs[mac_addr] = bytes(mac)
    else:
        level = granularity_level(granularity) if policy == "multigranular" else 0
        base = line_addr - line_addr % granularity
        mem.tree.tamper_counter(base, level=level, delta=1 + line_pick % 15)
        mem.tree.drop_trust_cache()

    with pytest.raises(SecurityError):
        mem.read(VICTIM_BASE, span)


@given(
    case=cases,
    mode=modes,
    fill=st.integers(min_value=0, max_value=254),
    line_pick=st.integers(min_value=0, max_value=2**30),
)
@settings(max_examples=15, deadline=None)
def test_untampered_reads_always_succeed(case, mode, fill, line_pick):
    """Control property: without a fault nothing ever raises."""
    policy, granularity = case
    mem, span, data = _seed_victim(policy, granularity, mode, fill)
    assert mem.read(VICTIM_BASE, span) == data
    line = VICTIM_BASE + (line_pick % (span // CACHELINE_BYTES)) * CACHELINE_BYTES
    assert mem.read(line, CACHELINE_BYTES) == data[
        line - VICTIM_BASE : line - VICTIM_BASE + CACHELINE_BYTES
    ]
