"""Property test of the fabric's exactly-once commit guarantee.

Hypothesis scripts K claimants against a real on-disk
:class:`LeaseQueue` and :class:`ResultStore`, crashing them at every
interesting protocol boundary -- straight after the claim, after
executing but before the commit, mid-commit (a torn blob at the final
path), and after the commit but before the release.  A crashed
claimant simply abandons its lease, exactly like a SIGKILLed worker
process; the filesystem is the only shared state, so the serialized
script explores the same interleavings real processes race through.

After the scripted mayhem an honest finisher drains the queue.  The
property: **every task ends with exactly one valid committed blob,
holding the task's true value** -- executions may repeat (at-least-once
execution is the design), but the committed store is exactly-once.
"""

import time
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.fabric import (
    LeaseQueue,
    ResultStore,
    run_worker,
    task_digest,
)

#: Short enough that abandoned leases expire within one test sleep.
TTL = 0.05

EXECUTIONS = Counter()


def effectful(item):
    """The task body: its side effect is observable via EXECUTIONS."""
    EXECUTIONS[item] += 1
    return item * 7


CRASH_POINTS = st.sampled_from(
    ["at_claim", "pre_commit", "torn_commit", "post_commit", "clean"]
)
SCRIPTS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2), CRASH_POINTS),
    min_size=0,
    max_size=10,
)


def _spool(tmp_path, n_tasks):
    tasks = [
        (
            f"k{i}",
            task_digest("prop", "ctx", f"k{i}", effectful),
            effectful,
            i,
        )
        for i in range(n_tasks)
    ]
    queue = LeaseQueue.create(
        tmp_path / "q", "prop", "ctx", tasks, ttl=TTL
    )
    store = ResultStore(tmp_path / "store")
    return queue, store, tasks


def _claimable(queue, store, tasks):
    for task in queue.tasks():
        if store.has(task.digest):
            continue
        claim = queue.claim(task.digest, "scripted")
        if claim is not None:
            return task, claim
    return None, None


def _play(queue, store, tasks, crash_point):
    """One scripted claimant turn ending at ``crash_point``."""
    task, claim = _claimable(queue, store, tasks)
    if task is None:
        return
    token, attempt, _stolen = claim
    if crash_point == "at_claim":
        return  # died holding an untouched lease
    value = task.fn(task.item)
    if crash_point == "pre_commit":
        return  # died after the work, before publishing it
    if crash_point == "torn_commit":
        # Died mid-write *at the final path*: the classic torn blob.
        final = store.path(task.digest)
        final.parent.mkdir(parents=True, exist_ok=True)
        envelope = store._envelope(task.digest, task.key, value, "torn", None)
        final.write_text(envelope[: len(envelope) // 2], encoding="utf-8")
        return
    store.commit(task.digest, task.key, value, worker="scripted")
    if crash_point == "post_commit":
        return  # died between commit and release: stale lease, warm blob
    queue.release(task.digest, token)


@settings(max_examples=20, deadline=None)
@given(n_tasks=st.integers(min_value=1, max_value=3), script=SCRIPTS)
def test_committed_store_is_exactly_once(tmp_path_factory, n_tasks, script):
    tmp_path = tmp_path_factory.mktemp("fabric-prop")
    EXECUTIONS.clear()
    queue, store, tasks = _spool(tmp_path, n_tasks)

    for _claimant, crash_point in script:
        _play(queue, store, tasks, crash_point)

    # Let every abandoned lease expire, then drain honestly.
    time.sleep(TTL * 1.6)
    queue.drain_expired("finisher")
    run_worker(queue, store, "finisher")

    for task in tasks:
        digest = task[1]
        env = store.read_envelope(digest)
        assert env is not None, f"task {task[0]} has no committed blob"
        value, error = store.load(digest)
        assert error is None
        assert value == task[3] * 7, f"task {task[0]} committed wrong value"
        assert EXECUTIONS[task[3]] >= 1
    # Exactly one blob per task -- no duplicates, no strays.
    assert len(list(store.blobs())) == len(tasks)


@settings(max_examples=10, deadline=None)
@given(script=st.lists(CRASH_POINTS, min_size=2, max_size=6))
def test_single_task_single_winner(tmp_path_factory, script):
    """Many claimants on ONE task: one committed envelope survives."""
    tmp_path = tmp_path_factory.mktemp("fabric-prop-one")
    EXECUTIONS.clear()
    queue, store, tasks = _spool(tmp_path, 1)
    digest = tasks[0][1]

    for crash_point in script:
        _play(queue, store, tasks, crash_point)
        # Abandoned leases must expire before the next claimant bites.
        time.sleep(TTL * 1.2)

    queue.drain_expired("finisher")
    run_worker(queue, store, "finisher")

    env = store.read_envelope(digest)
    assert env is not None
    assert store.load(digest)[0] == 0
    assert len(list(store.blobs())) == 1
