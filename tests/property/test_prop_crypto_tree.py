"""Property-based tests: crypto primitives and the functional tree."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.common.errors import SecurityError
from repro.crypto.keys import KeySet
from repro.crypto.mac import compute_mac, nested_mac
from repro.crypto.otp import decrypt_line, encrypt_line
from repro.tree.geometry import TreeGeometry
from repro.tree.integrity_tree import CounterTree

KEYS = KeySet.from_seed(b"property-tests")

lines = st.binary(min_size=64, max_size=64)
addrs = st.integers(min_value=0, max_value=(1 << 20) - 64).map(
    lambda a: a - a % 64
)
counters = st.integers(min_value=0, max_value=2**32)


class TestOtpProperties:
    @given(lines, addrs, counters)
    def test_roundtrip(self, plaintext, addr, counter):
        ciphertext = encrypt_line(KEYS.encryption_key, addr, counter, plaintext)
        assert (
            decrypt_line(KEYS.encryption_key, addr, counter, ciphertext)
            == plaintext
        )

    @given(lines, addrs, counters)
    def test_encryption_is_not_identity(self, plaintext, addr, counter):
        ciphertext = encrypt_line(KEYS.encryption_key, addr, counter, plaintext)
        assert ciphertext != plaintext or plaintext == b""  # pad is nonzero

    @given(lines, addrs, counters)
    def test_counter_change_breaks_decryption(self, plaintext, addr, counter):
        ciphertext = encrypt_line(KEYS.encryption_key, addr, counter, plaintext)
        garbled = decrypt_line(
            KEYS.encryption_key, addr, counter + 1, ciphertext
        )
        assert garbled != plaintext


class TestMacProperties:
    @given(lines, addrs, counters)
    def test_mac_is_deterministic(self, data, addr, counter):
        assert compute_mac(KEYS.mac_key, addr, counter, data) == compute_mac(
            KEYS.mac_key, addr, counter, data
        )

    @given(st.lists(lines, min_size=1, max_size=8))
    def test_nested_mac_depends_on_every_element(self, blobs):
        macs = [
            compute_mac(KEYS.mac_key, i * 64, 0, blob)
            for i, blob in enumerate(blobs)
        ]
        merged = nested_mac(KEYS.mac_key, macs)
        for i in range(len(macs)):
            mutated = list(macs)
            mutated[i] = bytes(8)
            if mutated[i] != macs[i]:
                assert nested_mac(KEYS.mac_key, mutated) != merged


class TestTreeProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=3),
        st.lists(addrs, min_size=1, max_size=20),
    )
    def test_increment_sequences_are_consistent(self, level, addresses):
        """Random increments at one level always read back exactly.

        The level is fixed per sequence: promoted counters *reuse*
        freshness-counter slots (Fig. 10), so counters at different
        levels of overlapping paths are intentionally not independent.
        """
        tree = CounterTree(TreeGeometry.build(1 << 20), KEYS)
        expected = {}
        for addr in addresses:
            key = tree.geometry.counter_slot(addr, level)
            value = tree.increment_counter(addr, level=level)
            expected[key] = expected.get(key, 0) + 1
            assert value == expected[key]
        for (node, slot), count in expected.items():
            addr = (node * 8 + slot) * (64 * 8**level)
            assert tree.read_counter(addr, level=level) == count

    @settings(max_examples=15, deadline=None)
    @given(addrs, st.integers(min_value=0, max_value=2))
    def test_any_tamper_is_detected(self, addr, level):
        tree = CounterTree(TreeGeometry.build(1 << 20), KEYS)
        tree.increment_counter(addr)
        tree.drop_trust_cache()
        tree.tamper_counter(addr, level=level)
        with pytest.raises(SecurityError):
            tree.read_counter(addr)

    @settings(max_examples=15, deadline=None)
    @given(addrs, st.integers(min_value=1, max_value=5))
    def test_any_replay_depth_is_detected(self, addr, writes_after):
        tree = CounterTree(TreeGeometry.build(1 << 20), KEYS)
        tree.increment_counter(addr)
        snapshot = tree.snapshot_node(addr)
        for _ in range(writes_after):
            tree.increment_counter(addr)
        tree.replay_node(addr, snapshot)
        tree.drop_trust_cache()
        with pytest.raises(SecurityError):
            tree.read_counter(addr)
