"""Property-based tests for the core bitmap / addressing algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.address import chunk_offset
from repro.common.constants import (
    CACHELINE_BYTES,
    CHUNK_BYTES,
    GRANULARITIES,
    LINES_PER_CHUNK,
    PARTITIONS_PER_CHUNK,
)
from repro.core import addressing, stream_part
from repro.core.detector import (
    detect_paper_order,
    detect_stream_partitions,
    merge_detection,
)

bitmaps = st.integers(min_value=0, max_value=stream_part.FULL_MASK)
vectors = st.integers(min_value=0, max_value=(1 << LINES_PER_CHUNK) - 1)
chunk_addrs = st.integers(min_value=0, max_value=CHUNK_BYTES - 1).map(
    lambda a: a - a % CACHELINE_BYTES
)
granularities = st.sampled_from(GRANULARITIES)


class TestResolveProperties:
    @given(bitmaps, chunk_addrs)
    def test_resolution_is_a_supported_granularity(self, bits, addr):
        assert stream_part.resolve_granularity(bits, addr) in GRANULARITIES

    @given(bitmaps, chunk_addrs, granularities)
    def test_cap_is_respected(self, bits, addr, cap):
        assert stream_part.resolve_granularity(bits, addr, cap) <= cap

    @given(bitmaps, chunk_addrs)
    def test_all_lines_of_a_region_resolve_identically(self, bits, addr):
        granularity = stream_part.resolve_granularity(bits, addr)
        base = addr - addr % granularity
        for off in range(0, granularity, max(64, granularity // 8)):
            assert (
                stream_part.resolve_granularity(bits, base + off)
                == granularity
            )

    @given(bitmaps)
    def test_histogram_covers_exactly_one_chunk(self, bits):
        sizes = stream_part.granularity_histogram(bits)
        assert sum(sizes.values()) == CHUNK_BYTES

    @given(bitmaps, st.sampled_from(GRANULARITIES[1:]))
    def test_quantize_only_clears_bits(self, bits, min_coarse):
        quantized = stream_part.quantize_bits(bits, min_coarse)
        assert quantized & ~bits == 0

    @given(bitmaps)
    def test_algorithm1_encoding_is_involutive(self, bits):
        encoded = stream_part.algorithm1_encoding(bits)
        assert stream_part.algorithm1_encoding(encoded) == bits


class TestMacCompactionProperties:
    @settings(max_examples=40)
    @given(bitmaps)
    def test_compaction_is_dense_and_collision_free(self, bits):
        """Distinct protection regions get distinct, gap-free indices."""
        indices = []
        addr = 0
        while addr < CHUNK_BYTES:
            granularity = stream_part.resolve_granularity(bits, addr)
            if granularity == 64:
                for line in range(8):  # one partition's worth
                    indices.append(
                        addressing.mac_index_in_chunk(bits, addr + line * 64)
                    )
                addr += 512
            else:
                indices.append(addressing.mac_index_in_chunk(bits, addr))
                addr += granularity
        assert len(set(indices)) == len(indices)
        assert sorted(indices) == list(range(len(indices)))
        assert len(indices) == addressing.macs_per_chunk(bits)

    @settings(max_examples=40)
    @given(bitmaps, chunk_addrs)
    def test_lines_of_one_region_share_a_mac_index(self, bits, addr):
        granularity = stream_part.resolve_granularity(bits, addr)
        base = addr - addr % granularity
        first = addressing.mac_index_in_chunk(bits, base)
        if granularity == 64:
            assert addressing.mac_index_in_chunk(bits, addr) == (
                first + (addr - base) // 64
            )
        else:
            assert addressing.mac_index_in_chunk(bits, addr) == first

    @given(bitmaps)
    def test_merged_count_never_exceeds_fine_count(self, bits):
        assert 1 <= addressing.macs_per_chunk(bits) <= LINES_PER_CHUNK


class TestDetectorProperties:
    @given(vectors)
    def test_detected_bits_subset_of_touched_partitions(self, vector):
        detected = detect_stream_partitions(vector)
        for part in range(PARTITIONS_PER_CHUNK):
            window = (vector >> (part * 8)) & 0xFF
            if detected & (1 << part):
                assert window == 0xFF

    @given(vectors)
    def test_paper_order_is_bit_reverse(self, vector):
        assert detect_paper_order(vector) == stream_part.algorithm1_encoding(
            detect_stream_partitions(vector)
        )

    @given(bitmaps, vectors)
    def test_merge_preserves_untouched_and_tracks_streams(self, prev, vector):
        merged = merge_detection(prev, vector)
        for part in range(PARTITIONS_PER_CHUNK):
            window = (vector >> (part * 8)) & 0xFF
            bit = 1 << part
            if window == 0xFF:
                assert merged & bit
            elif window:
                assert not merged & bit
            else:
                assert bool(merged & bit) == bool(prev & bit)

    @given(bitmaps, vectors)
    def test_merge_is_idempotent_for_same_observation(self, prev, vector):
        once = merge_detection(prev, vector)
        assert merge_detection(once, vector) == once


class TestCounterLocationProperties:
    @settings(max_examples=40)
    @given(chunk_addrs, granularities)
    def test_counter_location_consistent_within_region(self, addr, granularity):
        from repro.tree.geometry import TreeGeometry

        geometry = TreeGeometry.build(1 << 20)
        base = addr - addr % granularity
        loc = addressing.locate_counter(geometry, base, granularity)
        other = addressing.locate_counter(
            geometry, base + granularity - 64, granularity
        )
        assert (loc.node_index, loc.slot) == (other.node_index, other.slot)
        assert loc.level == GRANULARITIES.index(granularity)

    @settings(max_examples=40)
    @given(st.integers(min_value=0, max_value=(1 << 20) // 512 - 1))
    def test_adjacent_regions_never_share_a_counter(self, region):
        from repro.tree.geometry import TreeGeometry

        geometry = TreeGeometry.build(1 << 20)
        a = addressing.locate_counter(geometry, region * 512, 512)
        if (region + 1) * 512 < (1 << 20):
            b = addressing.locate_counter(geometry, (region + 1) * 512, 512)
            assert (a.node_index, a.slot) != (b.node_index, b.slot)
