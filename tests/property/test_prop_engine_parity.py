"""Property-based scalar/fast engine parity over random trace windows.

Hypothesis picks arbitrary contiguous windows of each device's trace
(plus scheme, seed and warmup mode); the fast engine must reproduce
``RunResult.to_dict()`` byte for byte on every window.  Windows start
and end at arbitrary request boundaries, so cold caches, mid-phase
granularity switches and partially trained tables are all exercised.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import engine_fast
from repro.common.config import SoCConfig
from repro.sim.scenario import selected_scenario

pytestmark = pytest.mark.skipif(
    not engine_fast.fast_engine_available(), reason="needs numpy ([fast])"
)

_SCENARIO_DURATION = 2500.0
_traces_cache = {}


def _base_traces(seed: int):
    if seed not in _traces_cache:
        _traces_cache[seed] = selected_scenario("cc1").build_traces(
            _SCENARIO_DURATION, seed
        )
    return _traces_cache[seed]


def _window(traces, footprint, starts, length):
    sliced = [
        dataclasses.replace(
            trace,
            entries=trace.entries[
                start % max(1, len(trace.entries)):
            ][:length],
        )
        for trace, start in zip(traces, starts)
    ]
    return sliced, footprint


def _simulate(traces, footprint, scheme_name, engine, warmup):
    from repro.schemes.registry import build_scheme
    from repro.sim.runner import best_static_granularities
    from repro.sim.soc import simulate

    config = SoCConfig(sim_engine=engine)
    device_granularities = None
    if scheme_name == "static_device":
        device_granularities = best_static_granularities(traces, config)
    scheme = build_scheme(
        scheme_name,
        config,
        footprint_bytes=footprint,
        device_granularities=device_granularities,
    )
    return simulate(traces, scheme, config, warmup=warmup)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2),
    starts=st.tuples(*[st.integers(min_value=0, max_value=5000)] * 4),
    length=st.integers(min_value=1, max_value=300),
    scheme=st.sampled_from(
        ["unsecure", "mac_only", "conventional", "ours", "multi_ctr_only"]
    ),
    warmup=st.booleans(),
)
def test_random_windows_bit_identical(seed, starts, length, scheme, warmup):
    traces, footprint = _base_traces(seed)
    window, footprint = _window(traces, footprint, starts, length)
    scalar = _simulate(window, footprint, scheme, "scalar", warmup)
    fast = _simulate(window, footprint, scheme, "fast", warmup)
    assert fast.engine == "fast"
    assert json.dumps(scalar.to_dict(), sort_keys=True, default=str) == (
        json.dumps(fast.to_dict(), sort_keys=True, default=str)
    )
    assert scalar.metrics == fast.metrics


@settings(max_examples=6, deadline=None)
@given(
    starts=st.tuples(*[st.integers(min_value=0, max_value=3000)] * 4),
    length=st.integers(min_value=1, max_value=200),
)
def test_static_device_windows_bit_identical(starts, length):
    # static_device resolves per-device granularities through the
    # memoized best-static search; exercised separately because that
    # search itself simulates (slower per example).
    traces, footprint = _base_traces(0)
    window, footprint = _window(traces, footprint, starts, length)
    scalar = _simulate(window, footprint, "static_device", "scalar", False)
    fast = _simulate(window, footprint, "static_device", "fast", False)
    assert fast.engine == "fast"
    assert json.dumps(scalar.to_dict(), sort_keys=True, default=str) == (
        json.dumps(fast.to_dict(), sort_keys=True, default=str)
    )
