"""Property tests: journal replay is idempotent, latest-wins, and
rejects damage (satellite 3 of the resilient executor)."""

from __future__ import annotations

import json
import tempfile
from contextlib import contextmanager
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.exec_chaos import break_journal_schema, corrupt_journal_entry
from repro.sim.resilient import Journal, JournalError

KEYS = ["k0", "k1", "k2", "k3"]

#: A run history: each element appends one (key, payload) record.
records = st.lists(
    st.tuples(st.sampled_from(KEYS), st.integers(-1000, 1000)),
    min_size=1,
    max_size=12,
)


@contextmanager
def _fresh_dir():
    """Per-example temp dir (hypothesis reuses function-scoped fixtures)."""
    with tempfile.TemporaryDirectory(prefix="repro-journal-prop-") as name:
        yield Path(name)


def _write(tmp_path, history):
    path = tmp_path / "j.jsonl"
    journal = Journal.open(path, "prop", "ctx", KEYS, resume=path.exists())
    for key, value in history:
        journal.record(key, value)
    journal.close()
    return path


def _load(path, strict=False):
    journal = Journal.open(path, "prop", "ctx", KEYS, resume=True)
    try:
        return journal.load(strict=strict), journal
    finally:
        journal.close()


@settings(max_examples=40, deadline=None)
@given(history=records)
def test_replay_latest_wins_and_idempotent(history):
    with _fresh_dir() as tmp_path:
        path = _write(tmp_path, history)
        expected = {key: value for key, value in history}  # dict keeps last
        first, _ = _load(path)
        second, _ = _load(path)
        assert first == expected
        assert second == first  # replay is idempotent


@settings(max_examples=40, deadline=None)
@given(history=records, data=st.data())
def test_corrupt_entry_dropped_or_raises_strict(history, data):
    with _fresh_dir() as tmp_path:
        path = _write(tmp_path, history)
        index = data.draw(
            st.integers(0, len(history) - 1), label="corrupt_index"
        )
        corrupted_key = corrupt_journal_entry(path, entry_index=index)
        assert corrupted_key == history[index][0]

        loaded, journal = _load(path)
        assert journal.corrupt_entries >= 1
        # Every surviving payload must come from the real history: the
        # damaged record may only drop a key, never fabricate a value.
        valid = [tuple(record) for record in history]
        for key, value in loaded.items():
            assert (key, value) in valid

        with pytest.raises(JournalError):
            _load(path, strict=True)


@settings(max_examples=20, deadline=None)
@given(history=records)
def test_schema_mismatch_always_rejected(history):
    with _fresh_dir() as tmp_path:
        path = _write(tmp_path, history)
        break_journal_schema(path)
        with pytest.raises(JournalError):
            Journal.open(path, "prop", "ctx", KEYS, resume=True).load()


@settings(max_examples=20, deadline=None)
@given(history=records, cut=st.integers(1, 80))
def test_truncated_tail_never_fabricates(history, cut):
    with _fresh_dir() as tmp_path:
        path = _write(tmp_path, history)
        text = path.read_text(encoding="utf-8")
        header_len = len(text.splitlines(keepends=True)[0])
        # Never cut into the header: truncation models a crash mid-append.
        kept = max(header_len, len(text) - cut)
        path.write_text(text[:kept], encoding="utf-8")
        loaded, _ = _load(path)
        valid = [tuple(record) for record in history]
        for key, value in loaded.items():
            assert (key, value) in valid


def test_append_after_resume_extends_not_rewrites(tmp_path):
    path = _write(tmp_path, [("k0", 1)])
    journal = Journal.open(path, "prop", "ctx", KEYS, resume=True)
    assert journal.load() == {"k0": 1}
    journal.record("k1", 2)
    journal.close()
    loaded, _ = _load(path)
    assert loaded == {"k0": 1, "k1": 2}
    # The original header is still line 0 (append-only file).
    header = json.loads(path.read_text().splitlines()[0])
    assert header["schema"].startswith("repro-journal/")
