"""Stateful property tests: SecureMemory matches a reference model.

A plain dict is the reference; random interleavings of aligned writes,
reads and granularity-affecting streams must always agree with it, and
any single off-chip mutation must be detected by the next covering
read.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES
from repro.common.errors import SecurityError
from repro.crypto.keys import KeySet
from repro.secure_memory import SecureMemory

KEYS = KeySet.from_seed(b"stateful")
REGION = 256 * 1024  # 8 chunks: big enough for promotion, fast enough

line_indices = st.integers(min_value=0, max_value=REGION // 64 - 1)
payload_bytes = st.integers(min_value=0, max_value=255)

write_ops = st.tuples(st.just("write"), line_indices, payload_bytes)
read_ops = st.tuples(st.just("read"), line_indices, st.just(0))
stream_ops = st.tuples(
    st.just("stream"),
    st.integers(min_value=0, max_value=REGION // CHUNK_BYTES - 1),
    payload_bytes,
)
operations = st.lists(
    st.one_of(write_ops, read_ops, stream_ops), min_size=1, max_size=25
)


def apply_ops(memory, reference, ops):
    for op, where, value in ops:
        if op == "write":
            addr = where * CACHELINE_BYTES
            data = bytes([value]) * CACHELINE_BYTES
            memory.write(addr, data)
            reference[where] = data
        elif op == "read":
            addr = where * CACHELINE_BYTES
            expected = reference.get(where, bytes(CACHELINE_BYTES))
            assert memory.read(addr, CACHELINE_BYTES) == expected
        else:  # stream a whole chunk (drives promotion)
            base = where * CHUNK_BYTES
            data = bytes([value]) * CHUNK_BYTES
            memory.write(base, data)
            for line in range(CHUNK_BYTES // CACHELINE_BYTES):
                reference[base // 64 + line] = data[:CACHELINE_BYTES]


class TestAgainstReferenceModel:
    @settings(max_examples=12, deadline=None)
    @given(operations)
    def test_multigranular_matches_reference(self, ops):
        memory = SecureMemory(REGION, keys=KEYS, policy="multigranular")
        reference = {}
        apply_ops(memory, reference, ops)
        for line, expected in reference.items():
            assert memory.read(line * 64, 64) == expected

    @settings(max_examples=12, deadline=None)
    @given(operations)
    def test_fixed_matches_reference(self, ops):
        memory = SecureMemory(REGION, keys=KEYS, policy="fixed")
        reference = {}
        apply_ops(memory, reference, ops)
        for line, expected in reference.items():
            assert memory.read(line * 64, 64) == expected


class TestTamperAlwaysDetected:
    @settings(max_examples=12, deadline=None)
    @given(operations, st.integers(min_value=0, max_value=7))
    def test_data_tamper_after_any_history(self, ops, byte_offset):
        memory = SecureMemory(REGION, keys=KEYS, policy="multigranular")
        reference = {}
        apply_ops(memory, reference, ops)
        written = [line for line in reference if any(reference[line])]
        if not written:
            return
        victim = written[0]
        memory.tamper_data(victim * 64, flip_mask=1 << byte_offset)
        with pytest.raises(SecurityError):
            memory.read(victim * 64, 64)

    @settings(max_examples=12, deadline=None)
    @given(operations)
    def test_mac_tamper_after_any_history(self, ops):
        memory = SecureMemory(REGION, keys=KEYS, policy="multigranular")
        reference = {}
        apply_ops(memory, reference, ops)
        written = [line for line in reference if any(reference[line])]
        if not written:
            return
        victim = written[-1]
        memory.tamper_mac(victim * 64)
        with pytest.raises(SecurityError):
            memory.read(victim * 64, 64)
