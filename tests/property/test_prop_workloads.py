"""Property-based tests for workload generation and trace I/O."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES
from repro.common.types import DeviceKind
from repro.workloads.generator import Trace, generate_trace
from repro.workloads.registry import WORKLOADS
from repro.workloads.spec import WorkloadSpec
from repro.workloads.trace_io import load_trace, save_trace

workload_names = st.sampled_from(sorted(WORKLOADS))


class TestGeneratorProperties:
    @settings(max_examples=20, deadline=None)
    @given(workload_names, st.integers(min_value=0, max_value=10))
    def test_traces_are_well_formed(self, name, seed):
        spec = WORKLOADS[name]
        trace = generate_trace(spec, 3000, base_addr=CHUNK_BYTES, seed=seed)
        assert len(trace) > 0
        for gap, addr, is_write in trace.entries:
            assert gap >= 0
            assert addr % CACHELINE_BYTES == 0
            assert CHUNK_BYTES <= addr < CHUNK_BYTES + spec.footprint_bytes
            assert isinstance(is_write, bool)

    @settings(max_examples=20, deadline=None)
    @given(workload_names, st.integers(min_value=0, max_value=10))
    def test_generation_is_pure(self, name, seed):
        spec = WORKLOADS[name]
        assert (
            generate_trace(spec, 2000, seed=seed).entries
            == generate_trace(spec, 2000, seed=seed).entries
        )

    @settings(max_examples=10, deadline=None)
    @given(workload_names)
    def test_longer_duration_extends_the_same_prefix(self, name):
        spec = WORKLOADS[name]
        short = generate_trace(spec, 1500, seed=0)
        long = generate_trace(spec, 3000, seed=0)
        assert len(long) >= len(short)
        # The generator is a deterministic stream: the short trace is a
        # prefix of the long one (modulo the final burst boundary).
        prefix = long.entries[: len(short.entries)]
        assert prefix == short.entries


class TestTraceIORoundtrip:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e4),
                st.integers(min_value=0, max_value=2**30),
                st.booleans(),
            ),
            min_size=1,
            max_size=60,
        ),
        st.sampled_from(list(DeviceKind)),
    )
    def test_arbitrary_traces_roundtrip(self, raw_entries, kind):
        entries = tuple(
            (round(gap, 4), addr - addr % CACHELINE_BYTES, is_write)
            for gap, addr, is_write in raw_entries
        )
        footprint = max(
            CHUNK_BYTES, max(a for _, a, _ in entries) + CACHELINE_BYTES
        )
        spec = WorkloadSpec(
            name="prop",
            kind=kind,
            footprint_bytes=footprint,
            class_mix={64: 1.0},
            write_fraction=0.5,
            gap_fine=1.0,
            gap_burst=1.0,
            gap_between_bursts=1.0,
        )
        trace = Trace(spec=spec, base_addr=0, entries=entries)
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.gz"
            save_trace(trace, path)
            loaded = load_trace(path)
        assert loaded.spec.kind is kind
        assert [a for _, a, _ in loaded.entries] == [
            a for _, a, _ in entries
        ]
        assert [w for _, _, w in loaded.entries] == [
            w for _, _, w in entries
        ]
        for (g1, _, _), (g2, _, _) in zip(loaded.entries, entries):
            assert abs(g1 - g2) < 1e-3
