"""Property-based tests for the timing-layer components."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig, MemoryConfig
from repro.core.gran_table import GranularityTable
from repro.core import stream_part
from repro.mem.cache import SetAssociativeCache
from repro.mem.channel import MemoryChannel
from repro.schemes.base import RegionBuffer

granularities = st.sampled_from([512, 4096, 32768])
bitmaps = st.integers(min_value=0, max_value=stream_part.FULL_MASK)


class TestCacheProperties:
    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200))
    def test_hits_plus_misses_equals_accesses(self, lines):
        cache = SetAssociativeCache(CacheConfig(512, 64, 2))
        for line in lines:
            cache.access(line * 64)
        assert cache.hits + cache.misses == len(lines)

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=100))
    def test_small_working_set_eventually_all_hits(self, lines):
        # 32 distinct lines fit a 512-line cache: second pass all hits.
        cache = SetAssociativeCache(CacheConfig(32 * 1024, 64, 8))
        for line in lines:
            cache.access(line * 64)
        cache.reset_stats()
        for line in lines:
            assert cache.access(line * 64).hit

    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=63), st.booleans()),
            min_size=1,
            max_size=200,
        )
    )
    def test_writebacks_never_exceed_writes(self, ops):
        cache = SetAssociativeCache(CacheConfig(256, 64, 2))
        writes = 0
        for line, is_write in ops:
            cache.access(line * 64, write=is_write)
            writes += is_write
        cache.flush()
        assert cache.writebacks <= writes


class TestChannelProperties:
    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=0, max_value=1e5), min_size=1, max_size=60))
    def test_completions_respect_latency_and_order(self, arrivals):
        channel = MemoryChannel(MemoryConfig(bytes_per_cycle=16, latency_cycles=50))
        last_start = 0.0
        for arrival in sorted(arrivals):
            start, done = channel.submit(arrival)
            assert start >= arrival
            assert start >= last_start  # FCFS never reorders
            assert done >= start + 50
            last_start = start

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=100))
    def test_busy_cycles_track_bytes(self, n):
        channel = MemoryChannel(MemoryConfig(bytes_per_cycle=16))
        for _ in range(n):
            channel.submit(0.0, 64)
        assert channel.stats.busy_cycles * 16 == channel.stats.bytes_transferred


class TestRegionBufferProperties:
    @settings(max_examples=30)
    @given(
        granularities,
        st.lists(st.integers(min_value=0, max_value=511), min_size=1, max_size=64),
        st.booleans(),
    )
    def test_debt_bounded_by_region_size(self, granularity, offsets, is_write):
        buffer = RegionBuffer()
        lines = granularity // 64
        for off in offsets:
            buffer.touch(0, granularity, off % lines, False, is_write)
        total_data = total_mac = 0
        for victim in buffer.flush():
            d, m = RegionBuffer.eviction_penalty(victim)
            total_data += d
            total_mac += m
        assert 0 <= total_data <= lines
        covered = len({off % lines for off in offsets})
        assert total_data <= lines - covered + 1 or total_data == 0

    @settings(max_examples=30)
    @given(granularities)
    def test_full_coverage_never_owes(self, granularity):
        buffer = RegionBuffer()
        for off in range(granularity // 64):
            buffer.touch(0, granularity, off, False, True)
        for victim in buffer.flush():
            assert RegionBuffer.eviction_penalty(victim) == (0, 0)


class TestGranularityTableProperties:
    @settings(max_examples=40)
    @given(bitmaps, st.lists(st.integers(min_value=0, max_value=32767), min_size=1, max_size=30))
    def test_resolution_converges_to_detection(self, bits, addrs):
        """After enough touches, ``current`` matches ``next`` wherever
        accessed, and resolution equals the detected granularity."""
        table = GranularityTable()
        table.record_detection(0, bits)
        for addr in addrs:
            table.resolve(addr, is_write=False)
        for addr in addrs:
            granularity, event = table.resolve(addr, is_write=False)
            assert event is None
            assert granularity == stream_part.resolve_granularity(bits, addr)

    @settings(max_examples=40)
    @given(bitmaps, st.integers(min_value=0, max_value=32767))
    def test_switch_event_direction_consistent(self, bits, addr):
        table = GranularityTable()
        table.record_detection(0, bits)
        granularity, event = table.resolve(addr, is_write=False)
        if event is not None:
            assert event.scale_up == (
                event.new_granularity > event.old_granularity
            )
            assert granularity == event.new_granularity
