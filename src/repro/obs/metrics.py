"""Hierarchically named metrics registry.

One :class:`MetricsRegistry` per run unifies every statistic the
simulator produces under dotted names (``engine.cache.mac.misses``,
``tree.walk.serialized_fetches``, ``sched.stall_cycles``) so run
results surface one flat, uniform snapshot instead of a handful of
private counter bags.

Two instrument flavours:

* **owned** -- created and stored by the registry (:class:`Counter`,
  :class:`Gauge`, :class:`Timer`, :class:`CounterGroup`, and plain
  :class:`~repro.common.stats.Histogram` objects);
* **bound** -- a zero-overhead view onto state that already exists
  (``registry.bind("channel.busy_cycles", lambda: stats.busy_cycles)``).
  Hot-path code keeps mutating its plain attributes; the registry
  evaluates the closure only when a snapshot is taken, so registration
  costs nothing per simulated request.

``snapshot()`` flattens everything: a bound callable may return a dict,
which is expanded into dotted child names.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterator, Optional

from repro.common.stats import CounterStats, Histogram


class Counter:
    """Monotonic owned counter."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """Owned point-in-time value (set, not accumulated)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0.0


class Timer:
    """Accumulating wall-clock timer (``with timer.time(): ...``)."""

    __slots__ = ("total_seconds", "count")
    kind = "timer"

    def __init__(self) -> None:
        self.total_seconds = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        self.total_seconds += seconds
        self.count += 1

    def time(self) -> "_TimerHandle":
        return _TimerHandle(self)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    @property
    def value(self) -> Dict[str, float]:
        return {"seconds": self.total_seconds, "count": self.count}

    def reset(self) -> None:
        self.total_seconds = 0.0
        self.count = 0


class _TimerHandle:
    """Context manager recording one timed span into a :class:`Timer`."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerHandle":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._timer.observe(time.perf_counter() - self._start)


class CounterGroup(CounterStats):
    """A :class:`~repro.common.stats.CounterStats` owned by a registry.

    Drop-in replacement for the private counter bags (same ``bump`` /
    ``get`` / ``as_dict`` / ``merge`` API) whose keys surface in the
    registry snapshot as ``<prefix>.<key>``.
    """

    kind = "group"

    def __init__(self, prefix: str) -> None:
        super().__init__()
        self.prefix = prefix

    @property
    def value(self) -> Dict[str, int]:
        return self.as_dict()

    def declare(self, *keys: str) -> "CounterGroup":
        """Pre-register keys at zero so snapshots include them.

        A clean supervised run should *show* ``resilience.exec_retry: 0``
        rather than omit the group; counters that exist only after
        their first bump are invisible exactly when their absence is
        the interesting fact.
        """
        for key in keys:
            self._counts.setdefault(key, 0)
        return self

    def reset(self) -> None:
        self._counts.clear()


class _Bound:
    """Computed instrument: evaluates ``fn`` at snapshot time only."""

    __slots__ = ("fn",)
    kind = "bound"

    def __init__(self, fn: Callable[[], object]) -> None:
        self.fn = fn

    @property
    def value(self) -> object:
        return self.fn()

    def reset(self) -> None:
        """Bound views have no owned state to reset."""


class _HistogramInstrument:
    """Registry wrapper surfacing a plain ``Histogram``'s buckets."""

    __slots__ = ("histogram",)
    kind = "histogram"

    def __init__(self) -> None:
        self.histogram = Histogram()

    @property
    def value(self) -> Dict[int, int]:
        return dict(self.histogram.buckets)

    def reset(self) -> None:
        self.histogram.buckets.clear()


class MetricsRegistry:
    """Name -> instrument map with get-or-create semantics.

    ``counter``/``gauge``/``timer``/``group``/``histogram`` return the
    existing instrument when the name is already registered (so
    re-registration after ``reset_stats`` reuses storage); requesting
    an existing name as a *different* instrument kind is an error.
    ``bind`` always overwrites -- closures go stale when their target
    object is replaced, and the newest binding is the valid one.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    # -- owned instruments ---------------------------------------------

    def counter(self, name: str) -> Counter:
        return self._own(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._own(name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._own(name, Timer)

    def group(self, prefix: str) -> CounterGroup:
        instrument = self._instruments.get(prefix)
        if instrument is None:
            instrument = CounterGroup(prefix)
            self._instruments[prefix] = instrument
        elif not isinstance(instrument, CounterGroup):
            raise TypeError(
                f"{prefix!r} already registered as {instrument.kind}"
            )
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._own(name, _HistogramInstrument)
        return instrument.histogram

    def _own(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls()
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"{name!r} already registered as {instrument.kind}"
            )
        return instrument

    # -- bound instruments ---------------------------------------------

    def bind(self, name: str, fn: Callable[[], object]) -> None:
        """(Re)register a computed view evaluated at snapshot time."""
        self._instruments[name] = _Bound(fn)

    # -- introspection -------------------------------------------------

    def names(self) -> Iterator[str]:
        return iter(sorted(self._instruments))

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def get(self, name: str):
        """The raw instrument registered under ``name`` (or None)."""
        return self._instruments.get(name)

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, object]:
        """Flat ``{dotted name: value}`` view of every instrument.

        Instruments whose value is a dict (groups, histograms, timers,
        bound views returning dicts) are expanded into dotted children.
        ``prefix`` restricts the snapshot to one subtree.
        """
        out: Dict[str, object] = {}
        for name in sorted(self._instruments):
            if prefix is not None and not (
                name == prefix or name.startswith(prefix + ".")
            ):
                continue
            value = self._instruments[name].value
            if isinstance(value, dict):
                for key, sub in value.items():
                    out[f"{name}.{key}"] = sub
            else:
                out[name] = value
        return out

    def reset(self) -> None:
        """Zero every owned instrument (bound views are untouched)."""
        for instrument in self._instruments.values():
            instrument.reset()
