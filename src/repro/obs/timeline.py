"""Cycle-bucketed timelines built from a recorded event stream.

Answers "what was each device doing over time": per-bucket request
counts and mean latency per device, integrity-engine activity (tree
levels walked, metadata cache misses, switches), and channel backlog
from the periodic occupancy samples.  This is the workload-phase view
(MGX's observation) that aggregate end-of-run counters cannot give.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.obs.events import EventType, TraceEvent


def build_timeline(
    events: Iterable[TraceEvent],
    bucket_cycles: Optional[float] = None,
    buckets: int = 24,
) -> List[Dict[str, object]]:
    """Aggregate events into fixed-width cycle buckets.

    ``bucket_cycles`` overrides the width; otherwise the span of the
    event stream is divided into ``buckets`` equal windows.  Returns a
    list of per-bucket dicts (JSON-friendly), each with:

    * ``start`` / ``end``: cycle window;
    * ``devices``: ``{device: {"requests": n, "mean_latency": x,
      "stalled": n}}`` from REQUEST events;
    * ``integrity``: tree levels walked, cache misses, switches;
    * ``channel_backlog``: mean backlog cycles of the occupancy samples.
    """
    stream = list(events)
    if not stream:
        return []
    last_cycle = max(ev.cycle for ev in stream)
    if bucket_cycles is None:
        bucket_cycles = max(1.0, (last_cycle + 1.0) / buckets)
    count = int(math.floor(last_cycle / bucket_cycles)) + 1

    rows: List[Dict[str, object]] = [
        {
            "start": i * bucket_cycles,
            "end": (i + 1) * bucket_cycles,
            "devices": {},
            "integrity": {"tree_levels": 0, "cache_misses": 0, "switches": 0},
            "channel_backlog": 0.0,
            "_samples": 0,
            "_latency": {},
        }
        for i in range(count)
    ]

    for event in stream:
        row = rows[min(count - 1, int(event.cycle // bucket_cycles))]
        if event.etype is EventType.REQUEST:
            per_dev: Dict = row["devices"].setdefault(
                event.device, {"requests": 0, "mean_latency": 0.0, "stalled": 0}
            )
            per_dev["requests"] += 1
            if event.payload.get("stalled"):
                per_dev["stalled"] += 1
            lat = row["_latency"].setdefault(event.device, [0.0, 0])
            lat[0] += float(event.payload.get("latency", 0.0))
            lat[1] += 1
        elif event.etype is EventType.TREE_WALK:
            row["integrity"]["tree_levels"] += int(
                event.payload.get("levels", 1)
            )
        elif event.etype is EventType.CACHE_MISS:
            row["integrity"]["cache_misses"] += 1
        elif event.etype is EventType.SWITCH:
            row["integrity"]["switches"] += 1
        elif event.etype is EventType.CHANNEL_SAMPLE:
            row["channel_backlog"] += float(
                event.payload.get("backlog_cycles", 0.0)
            )
            row["_samples"] += 1

    for row in rows:
        for device, (total, n) in row.pop("_latency").items():
            if n:
                row["devices"][device]["mean_latency"] = total / n
        samples = row.pop("_samples")
        if samples:
            row["channel_backlog"] /= samples
    return rows


def format_timeline(rows: List[Dict[str, object]]) -> str:
    """Fixed-width text rendering of :func:`build_timeline` output."""
    if not rows:
        return "(no events)"
    devices = sorted(
        {dev for row in rows for dev in row["devices"]}
    )
    header = f"{'cycles':>16s} " + " ".join(
        f"dev{dev}:req/stall" for dev in devices
    ) + f" {'tree':>6s} {'miss':>6s} {'switch':>6s} {'backlog':>8s}"
    lines = [header]
    for row in rows:
        cells = []
        for dev in devices:
            info = row["devices"].get(dev, {"requests": 0, "stalled": 0})
            cells.append(
                f"{info['requests']:>6d}/{info['stalled']:<5d}"
            )
        integrity = row["integrity"]
        lines.append(
            f"{row['start']:>7.0f}-{row['end']:<8.0f} "
            + " ".join(cells)
            + f" {integrity['tree_levels']:>6d}"
            + f" {integrity['cache_misses']:>6d}"
            + f" {integrity['switches']:>6d}"
            + f" {row['channel_backlog']:>8.1f}"
        )
    return "\n".join(lines)
