"""The per-run observability context: one registry + one tracer.

Every scheme and functional engine carries an :class:`ObsContext`.
The default (:meth:`ObsContext.disabled`) pairs a fresh registry with
the shared :data:`~repro.obs.events.NULL_RECORDER`, so construction is
cheap, metrics always work, and tracing costs one falsy check per
instrumented site until somebody opts in with :meth:`ObsContext.enabled`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.obs.events import (
    DEFAULT_CAPACITY,
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
)
from repro.obs.metrics import MetricsRegistry

Recorder = Union[TraceRecorder, NullRecorder]


@dataclass
class ObsContext:
    """Observability plumbing shared by one run's components."""

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Recorder = NULL_RECORDER

    @classmethod
    def disabled(cls) -> "ObsContext":
        """Metrics on, tracing compiled down to a falsy check."""
        return cls(registry=MetricsRegistry(), tracer=NULL_RECORDER)

    @classmethod
    def enabled(cls, capacity: int = DEFAULT_CAPACITY) -> "ObsContext":
        """Metrics plus a live ring-buffered event tracer."""
        return cls(
            registry=MetricsRegistry(), tracer=TraceRecorder(capacity)
        )

    @property
    def tracing(self) -> bool:
        return bool(self.tracer)
