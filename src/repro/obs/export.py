"""Trace and metrics exports: JSONL dumps and per-run summary reports."""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Iterator, List, Optional, TextIO, Union

from repro.obs.events import TraceEvent, TraceRecorder
from repro.obs.metrics import MetricsRegistry


def trace_to_jsonl_lines(
    events: Iterable[TraceEvent],
    extra: Optional[Dict[str, object]] = None,
) -> Iterator[str]:
    """Render events as JSONL lines; ``extra`` keys join every record."""
    for event in events:
        record = event.to_dict()
        if extra:
            record.update(extra)
        yield json.dumps(record, sort_keys=True)


def write_trace_jsonl(
    events: Iterable[TraceEvent],
    destination: Union[str, os.PathLike, TextIO],
    extra: Optional[Dict[str, object]] = None,
) -> int:
    """Write one JSONL record per event; returns the record count."""
    if isinstance(destination, (str, os.PathLike)):
        with open(destination, "w", encoding="utf-8") as handle:
            return write_trace_jsonl(events, handle, extra)
    count = 0
    for line in trace_to_jsonl_lines(events, extra):
        destination.write(line + "\n")
        count += 1
    return count


def read_trace_jsonl(
    source: Union[str, os.PathLike, TextIO]
) -> List[Dict[str, object]]:
    """Load the raw records of a JSONL trace dump."""
    if isinstance(source, (str, os.PathLike)):
        with open(source, "r", encoding="utf-8") as handle:
            return read_trace_jsonl(handle)
    return [json.loads(line) for line in source if line.strip()]


def summary_report(
    registry: MetricsRegistry,
    tracer: Optional[TraceRecorder] = None,
    title: str = "run summary",
) -> str:
    """Human-readable digest of one run's metrics (and trace, if any)."""
    lines = [f"# {title}"]
    if tracer is not None and tracer:
        lines.append(
            f"trace: {len(tracer)} events retained"
            + (f" ({tracer.dropped} dropped)" if tracer.dropped else "")
        )
        counts = tracer.counts_by_type()
        for etype in sorted(counts):
            lines.append(f"  {etype:18s} {counts[etype]:10d}")
    snapshot = registry.snapshot()
    if snapshot:
        lines.append("metrics:")
        width = max(len(name) for name in snapshot)
        for name, value in snapshot.items():
            if isinstance(value, float):
                rendered = f"{value:.3f}"
            else:
                rendered = str(value)
            lines.append(f"  {name:{width}s} {rendered}")
    return "\n".join(lines)
