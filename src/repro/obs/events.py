"""Structured event tracing for the secure-memory simulator.

The tracer answers the question the aggregate counters cannot: *when*
did things happen.  Instrumented sites throughout the engine, schemes,
memory system and fault layer emit typed :class:`TraceEvent` records
``(cycle, type, device, chunk, payload)`` into a bounded ring buffer.

Cost discipline: every instrumented site is guarded by a plain
truthiness check (``if tracer: tracer.emit(...)``).  The disabled
recorder (:data:`NULL_RECORDER`) is falsy, so a disabled trace costs
one boolean test per site and nothing else -- simulation wall-time is
unchanged.  An enabled recorder may do real work; tracing runs are
diagnostic runs.
"""

from __future__ import annotations

import enum
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Iterator, Optional

#: Default ring capacity: enough for a smoke scenario's full event
#: stream while bounding a long run to a few hundred MB at worst.
DEFAULT_CAPACITY = 1 << 18


class EventType(enum.Enum):
    """Taxonomy of traced events (see ``docs/observability.md``)."""

    #: A lazy granularity switch was applied (timing or functional).
    SWITCH = "switch"
    #: A serialized counter-tree verification walk (levels on the
    #: critical path).
    TREE_WALK = "tree_walk"
    #: Fine MACs folded into a merged MAC (scale-up, Eq. 5).
    MAC_MERGE = "mac_merge"
    #: A merged MAC split back into fine MACs (scale-down).
    MAC_SPLIT = "mac_split"
    #: A minor counter exhausted; overflow recovery engaged.
    COUNTER_OVERFLOW = "counter_overflow"
    #: A chunk's key epoch advanced (lazy re-encryption).
    EPOCH_BUMP = "epoch_bump"
    #: A protection region failed closed (quarantine).
    QUARANTINE = "quarantine"
    #: A fresh write healed a quarantined line.
    HEAL = "heal"
    #: An integrity/replay violation was detected.
    INTEGRITY_FAILURE = "integrity_failure"
    #: Security-metadata cache hit.
    CACHE_HIT = "cache_hit"
    #: Security-metadata cache miss.
    CACHE_MISS = "cache_miss"
    #: Periodic memory-channel occupancy sample.
    CHANNEL_SAMPLE = "channel_sample"
    #: A coarse region left the region buffer partially covered
    #: (over-fetch debt settled).
    REGION_EVICT = "region_evict"
    #: One device request issued through the SoC loop.
    REQUEST = "request"
    #: Supervised executor: a task was retried (transient worker loss
    #: or a first deterministic error).
    EXEC_RETRY = "exec_retry"
    #: Supervised executor: a task exceeded its wall-clock timeout and
    #: its worker pool was killed.
    EXEC_TIMEOUT = "exec_timeout"
    #: Supervised executor: graceful degradation (the pool shrank, or
    #: one task fell back to serial execution in the parent).
    EXEC_DEGRADE = "exec_degrade"
    #: Supervised executor: a journaled result was reused on resume.
    EXEC_RESUME_SKIP = "exec_resume_skip"
    #: Checkpoint journal: corrupt/truncated entries were dropped on
    #: replay (the damaged tasks re-execute).
    JOURNAL_DROPPED = "journal_dropped"
    #: Fabric: a worker claimed a task lease.
    LEASE_CLAIM = "lease_claim"
    #: Fabric: an expired lease was removed (its holder presumed dead).
    LEASE_EXPIRE = "lease_expire"
    #: Fabric: a worker stole an expired lease from a dead claimant.
    LEASE_STEAL = "lease_steal"
    #: Fabric: a content-addressed result was reused from a warm store
    #: instead of recomputing the cell.
    RESULT_REUSE = "result_reuse"


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence.

    Attributes:
        cycle: simulation cycle (or the functional engine's logical
            clock) at which the event happened.
        etype: event class from :class:`EventType`.
        device: index of the processing unit involved, if any.
        chunk: 32KB chunk index involved, if any.
        payload: event-specific details (granularities, levels, ...).
    """

    cycle: float
    etype: EventType
    device: Optional[int] = None
    chunk: Optional[int] = None
    payload: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable flat representation (one JSONL record)."""
        out: Dict[str, object] = {"cycle": self.cycle, "type": self.etype.value}
        if self.device is not None:
            out["device"] = self.device
        if self.chunk is not None:
            out["chunk"] = self.chunk
        if self.payload:
            out.update(self.payload)
        return out


class NullRecorder:
    """Disabled tracer: falsy, drops everything, costs one bool check.

    All instrumented sites are written as ``if tracer: tracer.emit(...)``
    so this object's methods are never even called on the hot path.
    """

    enabled = False
    emitted = 0
    dropped = 0

    def __bool__(self) -> bool:
        return False

    def emit(self, *args, **kwargs) -> None:  # pragma: no cover - guarded out
        pass

    def events(self) -> Iterator[TraceEvent]:
        return iter(())

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: Shared disabled recorder; safe because it holds no state.
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Bounded ring buffer of :class:`TraceEvent` records.

    When the buffer is full the *oldest* events are dropped (the tail
    of a run is usually the interesting part); ``dropped`` counts how
    many were lost so exports can flag truncation.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0

    def __bool__(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events lost to ring overflow since the last ``clear``."""
        return self.emitted - len(self._ring)

    def emit(
        self,
        etype: EventType,
        cycle: float,
        device: Optional[int] = None,
        chunk: Optional[int] = None,
        **payload: object,
    ) -> None:
        """Record one event (oldest events are evicted when full)."""
        self.emitted += 1
        self._ring.append(
            TraceEvent(
                cycle=cycle, etype=etype, device=device, chunk=chunk,
                payload=payload,
            )
        )

    def events(self) -> Iterator[TraceEvent]:
        """Iterate recorded events in emission order."""
        return iter(self._ring)

    def counts_by_type(self) -> Dict[str, int]:
        """``{event-type value: count}`` of the retained events."""
        counts: Counter = Counter(ev.etype.value for ev in self._ring)
        return dict(counts)

    def clear(self) -> None:
        """Drop all retained events and reset the drop accounting."""
        self._ring.clear()
        self.emitted = 0


def filter_events(
    events: Iterable[TraceEvent],
    etype: Optional[EventType] = None,
    device: Optional[int] = None,
) -> Iterator[TraceEvent]:
    """Select events by type and/or device."""
    for event in events:
        if etype is not None and event.etype is not etype:
            continue
        if device is not None and event.device != device:
            continue
        yield event
