"""Performance-benchmark snapshots: ``BENCH_<date>.json``.

A snapshot freezes, for one smoke scenario, the per-scheme simulation
results *and* the wall time the simulator itself needed to produce
them.  Committing a snapshot per PR makes simulator-performance
regressions visible in review instead of surfacing months later as
"the sweep got slow".

Snapshot schema (``repro-bench/v1``)::

    {
      "schema": "repro-bench/v1",
      "generated": "YYYY-MM-DD",
      "platform": {"python": ..., "implementation": ...},
      "repeat": N,                       # timing repetitions
      "wall_seconds": {                  # per scheme, over N repeats
        "<scheme>": {"runs": [...], "min": ..., "mean": ...}
      },
      "sim": { ... },                    # a full repro-sim/v1 payload
      "sweep": {                         # optional sweep timing section
        "wall_seconds": {"runs": [...], "min": ..., "mean": ...},
        "scenarios": N, "schemes": [...],
        "duration_cycles": ..., "jobs": N, "cpu_count": N
      }
    }

The ``sim`` section is byte-for-byte the object ``python -m repro
simulate --json`` prints, so simulate output round-trips into a
snapshot and snapshot consumers need only one schema for both.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import time
from typing import Dict, List, Optional, Sequence, Tuple

BENCH_SCHEMA = "repro-bench/v1"
SIM_SCHEMA = "repro-sim/v1"

#: Default smoke configuration: small enough for CI, big enough to
#: exercise switching and contention.
SMOKE_SCENARIO = "cc1"
SMOKE_SCHEMES = ("unsecure", "conventional", "ours")
SMOKE_DURATION = 1500.0


def sim_payload(
    scenario,
    runs: Dict[str, "object"],
    duration_cycles: float,
    seed: int,
    baseline: str = "unsecure",
) -> Dict[str, object]:
    """The ``repro-sim/v1`` JSON object for one simulated scenario."""
    base = runs.get(baseline)
    return {
        "schema": SIM_SCHEMA,
        "scenario": scenario.name,
        "workloads": list(scenario.workload_names),
        "duration_cycles": duration_cycles,
        "seed": seed,
        "baseline": baseline if base is not None else None,
        "schemes": {
            name: run.to_dict(baseline=base) for name, run in runs.items()
        },
    }


def measure(
    scenario,
    scheme_names: Sequence[str] = SMOKE_SCHEMES,
    duration_cycles: float = SMOKE_DURATION,
    seed: int = 0,
    repeat: int = 3,
    config=None,
    engine: str = "scalar",
) -> Tuple[Dict[str, object], Dict[str, Dict[str, object]]]:
    """Time each scheme's full (warmup + measure) simulation.

    Traces are generated once; every scheme is then built and simulated
    ``repeat`` times.  Returns ``(runs, wall_seconds)`` where ``runs``
    holds the last repetition's results (for the ``sim`` section) and
    ``wall_seconds`` the per-scheme timing summary.  ``engine`` selects
    the simulation tier; results are bit-identical either way, only the
    wall times differ.
    """
    import dataclasses

    from repro.common.config import SoCConfig
    from repro.schemes.registry import build_scheme
    from repro.sim.runner import best_static_granularities
    from repro.sim.soc import simulate

    config = config or SoCConfig()
    if config.sim_engine != engine:
        config = dataclasses.replace(config, sim_engine=engine)
    traces, footprint = scenario.build_traces(duration_cycles, seed)

    runs: Dict[str, object] = {}
    wall: Dict[str, Dict[str, object]] = {}
    for name in scheme_names:
        device_granularities = None
        if name == "static_device":
            device_granularities = best_static_granularities(traces, config)
        samples: List[float] = []
        for _ in range(max(1, repeat)):
            scheme = build_scheme(
                name,
                config,
                footprint_bytes=footprint,
                device_granularities=device_granularities,
            )
            start = time.perf_counter()
            runs[name] = simulate(traces, scheme, config, warmup=True)
            samples.append(time.perf_counter() - start)
        wall[name] = {
            "runs": samples,
            "min": min(samples),
            "mean": sum(samples) / len(samples),
        }
    return runs, wall


#: Default sweep-timing configuration: a small-but-real slice of the
#: Figs. 15-18 sweep (enough scenarios to exercise the parallel
#: fan-out, short enough for CI).
SWEEP_SAMPLE = 6
SWEEP_SCHEMES = ("unsecure", "conventional", "static_device", "ours")
SWEEP_DURATION = 800.0


def measure_sweep(
    sample: int = SWEEP_SAMPLE,
    duration_cycles: float = SWEEP_DURATION,
    seed: int = 0,
    scheme_names: Sequence[str] = SWEEP_SCHEMES,
    jobs: Optional[int] = None,
    repeat: int = 1,
    engine: str = "scalar",
) -> Dict[str, object]:
    """Time a scenario-sweep slice end to end (the ``sweep`` section).

    Unlike :func:`measure` this times the *orchestration* -- trace
    building, scheme construction and the (possibly parallel) fan-out
    of :func:`repro.sim.runner.run_many` -- which is what dominates
    figure regeneration.  The memoized static-best search is cleared
    before every repetition so each sample pays the full cost.
    """
    from repro.common.config import SoCConfig
    from repro.sim import parallel
    from repro.sim.runner import clear_static_best_cache, run_many, sweep_scenarios
    from repro.sim.scenario import all_scenarios

    config = SoCConfig(sim_engine=engine)
    scenarios = sweep_scenarios(all_scenarios(), sample)
    samples: List[float] = []
    for _ in range(max(1, repeat)):
        clear_static_best_cache()
        start = time.perf_counter()
        run_many(
            scenarios, scheme_names, config, duration_cycles, seed, jobs=jobs
        )
        samples.append(time.perf_counter() - start)
    return {
        "wall_seconds": {
            "runs": samples,
            "min": min(samples),
            "mean": sum(samples) / len(samples),
        },
        "scenarios": len(scenarios),
        "schemes": list(scheme_names),
        "duration_cycles": duration_cycles,
        "jobs": parallel.resolve_jobs(jobs),
        "cpu_count": os.cpu_count(),
        "engine": engine,
    }


def make_snapshot(
    sim: Dict[str, object],
    wall_seconds: Dict[str, Dict[str, object]],
    repeat: int,
    generated: Optional[str] = None,
    sweep: Optional[Dict[str, object]] = None,
    engine: str = "scalar",
    engines: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble a ``repro-bench/v1`` snapshot from its parts.

    ``engine`` names the tier that produced the top-level timings
    (``"both"`` for a side-by-side run, whose top-level timings are the
    scalar ones); ``engines`` is the optional side-by-side section
    built by :func:`engines_comparison`.
    """
    from repro import engine_fast

    if sim.get("schema") != SIM_SCHEMA:
        raise ValueError(
            f"sim section must be a {SIM_SCHEMA} payload, "
            f"got schema={sim.get('schema')!r}"
        )
    snapshot: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "generated": generated or datetime.date.today().isoformat(),
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
            "engine": engine,
            "numpy": engine_fast.numpy_version(),
            "fast_available": engine_fast.fast_engine_available(),
        },
        "repeat": repeat,
        "wall_seconds": wall_seconds,
        "sim": sim,
    }
    if sweep is not None:
        snapshot["sweep"] = sweep
    if engines is not None:
        snapshot["engines"] = engines
    return snapshot


def engines_comparison(
    wall_by_engine: Dict[str, Dict[str, Dict[str, object]]],
    sweep_by_engine: Optional[Dict[str, Dict[str, object]]] = None,
) -> Dict[str, object]:
    """The ``engines`` side-by-side section of an ``--engine both`` run.

    ``wall_by_engine`` maps engine name -> per-scheme wall summary (the
    second element :func:`measure` returns); ``sweep_by_engine``
    optionally maps engine name -> :func:`measure_sweep` section.
    Speedups are scalar-min / fast-min (>1 means fast is faster).
    """
    section: Dict[str, object] = {}
    for name, wall in wall_by_engine.items():
        entry: Dict[str, object] = {"wall_seconds": wall}
        if sweep_by_engine and name in sweep_by_engine:
            entry["sweep"] = sweep_by_engine[name]
        section[name] = entry
    scalar = wall_by_engine.get("scalar")
    fast = wall_by_engine.get("fast")
    if scalar and fast:
        speedup: Dict[str, object] = {}
        for scheme, timing in scalar.items():
            if scheme in fast and float(fast[scheme]["min"]) > 0:
                speedup[scheme] = round(
                    float(timing["min"]) / float(fast[scheme]["min"]), 3
                )
        if sweep_by_engine:
            s_sweep = sweep_by_engine.get("scalar")
            f_sweep = sweep_by_engine.get("fast")
            if s_sweep and f_sweep:
                f_min = float(f_sweep["wall_seconds"]["min"])
                if f_min > 0:
                    speedup["sweep"] = round(
                        float(s_sweep["wall_seconds"]["min"]) / f_min, 3
                    )
        section["speedup"] = speedup
    return section


def validate_snapshot(snapshot: Dict[str, object]) -> None:
    """Raise ``ValueError`` when a snapshot violates the v1 schema.

    Every malformed shape -- wrong top-level type, wrong schema tag,
    non-dict sections -- raises ``ValueError`` (never ``TypeError`` or
    ``AttributeError``), so CLI consumers such as
    ``scripts/check_bench_regression.py`` can turn any bad input into
    a clean exit instead of a traceback.
    """
    if not isinstance(snapshot, dict):
        raise ValueError(
            f"snapshot must be a JSON object, got {type(snapshot).__name__}"
        )
    if snapshot.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"not a {BENCH_SCHEMA} snapshot")
    for key in ("generated", "wall_seconds", "sim", "repeat"):
        if key not in snapshot:
            raise ValueError(f"snapshot missing {key!r}")
    sim = snapshot["sim"]
    if not isinstance(sim, dict) or sim.get("schema") != SIM_SCHEMA:
        raise ValueError(f"snapshot sim section is not {SIM_SCHEMA}")
    wall = snapshot["wall_seconds"]
    if not isinstance(wall, dict):
        raise ValueError("snapshot wall_seconds section is not an object")
    for scheme, timing in wall.items():
        if not isinstance(timing, dict) or "min" not in timing or "runs" not in timing:
            raise ValueError(f"wall_seconds[{scheme!r}] missing min/runs")
    sweep = snapshot.get("sweep")
    if sweep is not None:
        if not isinstance(sweep, dict):
            raise ValueError("sweep section is not an object")
        timing = sweep.get("wall_seconds")
        if not isinstance(timing, dict) or "min" not in timing:
            raise ValueError("sweep section missing wall_seconds.min")
    engines = snapshot.get("engines")
    if engines is not None:
        if not isinstance(engines, dict):
            raise ValueError("engines section is not an object")
        for name, entry in engines.items():
            if name == "speedup":
                if not isinstance(entry, dict):
                    raise ValueError("engines.speedup is not an object")
                continue
            if not isinstance(entry, dict) or "wall_seconds" not in entry:
                raise ValueError(f"engines[{name!r}] missing wall_seconds")


def snapshot_path(
    out: Optional[str] = None,
    generated: Optional[str] = None,
    engine: Optional[str] = None,
) -> str:
    """Resolve the output path: ``BENCH_<date>[_<engine>].json`` unless overridden.

    A single-engine run gets an engine-suffixed default name so the
    ``_scalar`` / ``_fast`` snapshot pair can live side by side.
    """
    date = generated or datetime.date.today().isoformat()
    suffix = f"_{engine}" if engine in ("scalar", "fast") else ""
    default_name = f"BENCH_{date}{suffix}.json"
    if out is None:
        return default_name
    if os.path.isdir(out):
        return os.path.join(out, default_name)
    return out


def write_snapshot(snapshot: Dict[str, object], path: str) -> str:
    validate_snapshot(snapshot)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_snapshot(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    validate_snapshot(snapshot)
    return snapshot


def compare_snapshots(
    baseline: Dict[str, object],
    current: Dict[str, object],
    tolerance: float = 0.05,
    sweep_tolerance: float = 0.25,
) -> List[str]:
    """Wall-time regressions of ``current`` vs ``baseline``.

    Compares per-scheme *minimum* wall time (the least noisy sample);
    a scheme regresses when it is more than ``tolerance`` slower.  When
    both snapshots carry a ``sweep`` section with matching shape, its
    wall time is compared under ``sweep_tolerance`` (sweeps run once,
    so they are noisier than the repeated per-scheme timings).
    Returns human-readable regression descriptions (empty = clean).
    """
    regressions: List[str] = []
    base_wall = baseline["wall_seconds"]
    for scheme, timing in current["wall_seconds"].items():
        if scheme not in base_wall:
            continue
        old = float(base_wall[scheme]["min"])
        new = float(timing["min"])
        if old > 0 and new > old * (1.0 + tolerance):
            regressions.append(
                f"{scheme}: {new:.4f}s vs baseline {old:.4f}s "
                f"(+{(new / old - 1.0):.1%}, tolerance {tolerance:.0%})"
            )
    base_sweep = baseline.get("sweep")
    cur_sweep = current.get("sweep")
    if base_sweep and cur_sweep and _sweeps_comparable(base_sweep, cur_sweep):
        old = float(base_sweep["wall_seconds"]["min"])
        new = float(cur_sweep["wall_seconds"]["min"])
        if old > 0 and new > old * (1.0 + sweep_tolerance):
            regressions.append(
                f"sweep: {new:.4f}s vs baseline {old:.4f}s "
                f"(+{(new / old - 1.0):.1%}, tolerance {sweep_tolerance:.0%})"
            )
    return regressions


def _sweeps_comparable(
    base: Dict[str, object], cur: Dict[str, object]
) -> bool:
    """Sweep timings only compare when they measured the same work."""
    return all(
        base.get(key) == cur.get(key)
        for key in ("scenarios", "schemes", "duration_cycles", "jobs")
    )
