"""Profiling harness for the simulator's own hot paths.

Two complementary views:

* **stage timers** -- wall time per pipeline stage (trace generation,
  scheme construction, warmup+measure per scheme), recorded as
  ``profile.stage.*`` timers in a metrics registry;
* **cProfile** -- the usual function-level profile of the whole run,
  reduced to the top-N cumulative entries.

Imports of the sim layer are deferred so ``repro.obs`` stays
import-light and cycle-free (schemes import ``repro.obs`` themselves).
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry


def profile_scenario(
    scenario,
    scheme_names: Sequence[str],
    duration_cycles: Optional[float] = None,
    seed: int = 0,
    config=None,
    registry: Optional[MetricsRegistry] = None,
):
    """Run one scenario with per-stage wall timers.

    Returns ``(results, registry)`` where results is the usual
    ``{scheme: RunResult}`` map and the registry holds
    ``profile.stage.tracegen``, ``profile.stage.build.<scheme>`` and
    ``profile.stage.simulate.<scheme>`` timers.
    """
    from repro.common.config import SoCConfig
    from repro.schemes.registry import build_scheme
    from repro.sim.runner import best_static_granularities, sim_duration
    from repro.sim.soc import simulate

    config = config or SoCConfig()
    registry = registry if registry is not None else MetricsRegistry()
    duration = (
        duration_cycles if duration_cycles is not None else sim_duration()
    )

    with registry.timer("profile.stage.tracegen").time():
        traces, footprint = scenario.build_traces(duration, seed)

    results = {}
    for name in scheme_names:
        with registry.timer(f"profile.stage.build.{name}").time():
            device_granularities = None
            if name == "static_device":
                device_granularities = best_static_granularities(
                    traces, config
                )
            scheme = build_scheme(
                name,
                config,
                footprint_bytes=footprint,
                device_granularities=device_granularities,
            )
        with registry.timer(f"profile.stage.simulate.{name}").time():
            results[name] = simulate(traces, scheme, config, warmup=True)
    return results, registry


def profile_with_cprofile(
    scenario,
    scheme_names: Sequence[str],
    duration_cycles: Optional[float] = None,
    seed: int = 0,
    config=None,
    top: int = 20,
) -> Tuple[Dict, MetricsRegistry, str]:
    """Stage timers plus a cProfile top-``top`` cumulative table."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        results, registry = profile_scenario(
            scenario, scheme_names, duration_cycles, seed, config
        )
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return results, registry, buffer.getvalue()


def format_stage_report(registry: MetricsRegistry) -> str:
    """Table of the ``profile.stage.*`` timers in a registry."""
    rows: List[Tuple[str, float, int]] = []
    for name in registry.names():
        if not name.startswith("profile.stage."):
            continue
        timer = registry.get(name)
        rows.append(
            (name[len("profile.stage."):], timer.total_seconds, timer.count)
        )
    if not rows:
        return "(no stage timers recorded)"
    total = sum(seconds for _, seconds, _ in rows)
    width = max(len(stage) for stage, _, _ in rows)
    lines = [f"{'stage':{width}s} {'seconds':>9s} {'share':>6s}"]
    for stage, seconds, _ in rows:
        share = seconds / total if total else 0.0
        lines.append(f"{stage:{width}s} {seconds:9.4f} {share:6.1%}")
    lines.append(f"{'total':{width}s} {total:9.4f} {'100.0%':>6s}")
    return "\n".join(lines)
