"""Unified observability: tracing, metrics, profiling, bench snapshots.

Public surface:

* :class:`~repro.obs.context.ObsContext` -- the per-run bundle every
  scheme and functional engine carries (registry + tracer);
* :class:`~repro.obs.events.TraceRecorder` / :data:`NULL_RECORDER` --
  ring-buffered typed event trace, free when disabled;
* :class:`~repro.obs.metrics.MetricsRegistry` -- hierarchical metric
  names over owned and bound instruments;
* :mod:`~repro.obs.export` / :mod:`~repro.obs.timeline` -- JSONL dump,
  summary report, cycle-bucketed timeline;
* :mod:`~repro.obs.profiler` / :mod:`~repro.obs.bench` -- stage +
  cProfile profiling and ``BENCH_<date>.json`` snapshots.

See ``docs/observability.md`` for the event taxonomy and CLI usage.
"""

from repro.obs.context import ObsContext
from repro.obs.events import (
    DEFAULT_CAPACITY,
    NULL_RECORDER,
    EventType,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
    filter_events,
)
from repro.obs.metrics import (
    Counter,
    CounterGroup,
    Gauge,
    MetricsRegistry,
    Timer,
)

__all__ = [
    "Counter",
    "CounterGroup",
    "DEFAULT_CAPACITY",
    "EventType",
    "Gauge",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "ObsContext",
    "Timer",
    "TraceEvent",
    "TraceRecorder",
    "filter_events",
]
