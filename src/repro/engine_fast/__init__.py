"""Batch-oriented fast simulation tier (``--engine fast``).

The scalar engine processes one request at a time through a stack of
small Python calls (scheme -> walk -> cache -> channel).  This package
provides the *fast* tier selected via ``SoCConfig.sim_engine``:

* :mod:`repro.engine_fast.tables` flattens per-request Python objects
  into arena-style numpy arrays and vectorizes the tree-level/span/base
  resolution of :meth:`repro.tree.geometry.TreeGeometry.level_tables`
  and the Eq. 1 compacted-MAC offset math of
  :mod:`repro.core.addressing` over whole request windows;
* :mod:`repro.engine_fast.core` replays those arenas through one fused
  interpreter loop that mutates the *same* scheme/cache/channel state
  objects as the scalar engine, preserving every float operation in
  scalar order, and falls back to the scalar helpers at barrier events
  (granularity-switch commits, tracker evictions, region-buffer
  eviction settlements) that the vector path does not model.

Observable behavior is bit-for-bit identical to the scalar engine:
``RunResult.to_dict()`` payloads, metrics snapshots, golden-corpus
digests and bench ``sim`` sections match byte for byte.  The parity
suites (``tests/integration/test_engine_parity.py``,
``tests/property/test_prop_engine_parity.py``) and the differential
oracle (``python -m repro check --engine fast``) enforce that claim.

numpy is an *optional* extra (``pip install .[fast]``); the default
runtime stays pure-stdlib.  When numpy is missing (or the
``REPRO_FORCE_NO_NUMPY`` environment variable is set), a requested
fast engine degrades to scalar with a :class:`RuntimeWarning`.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

#: Environment toggle simulating a numpy-less install (tests, CI's
#: no-numpy matrix leg).  Any non-empty value other than "0" disables
#: numpy even when it is importable.
FORCE_NO_NUMPY_ENV = "REPRO_FORCE_NO_NUMPY"

_numpy = None
_numpy_import_attempted = False


def _force_disabled() -> bool:
    return os.environ.get(FORCE_NO_NUMPY_ENV, "").strip() not in ("", "0")


def numpy_or_none():
    """The numpy module, or None when unavailable/force-disabled.

    The import is attempted once per process; the environment override
    is consulted on every call so tests can flip it dynamically.
    """
    global _numpy, _numpy_import_attempted
    if _force_disabled():
        return None
    if not _numpy_import_attempted:
        _numpy_import_attempted = True
        try:  # pragma: no cover - depends on the installed extras
            import numpy  # noqa: PLC0415 - optional dependency probe

            _numpy = numpy
        except ImportError:  # pragma: no cover - numpy-less installs
            _numpy = None
    return _numpy


def numpy_available() -> bool:
    return numpy_or_none() is not None


def numpy_version() -> Optional[str]:
    """numpy's version string, or None (the bench ``platform`` field)."""
    np = numpy_or_none()
    return getattr(np, "__version__", None) if np is not None else None


def fast_engine_available() -> bool:
    """Whether ``sim_engine="fast"`` can do anything at all here."""
    return numpy_available()


def warn_scalar_fallback(reason: str) -> None:
    """Emit the degradation warning for a requested-but-unavailable fast tier."""
    warnings.warn(
        f"fast engine unavailable ({reason}); falling back to the scalar "
        "engine (results are identical, only slower)",
        RuntimeWarning,
        stacklevel=3,
    )
