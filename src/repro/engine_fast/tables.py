"""Arena flattening and vectorized layout math for the fast engine.

Two consumers:

* :mod:`repro.engine_fast.core` flattens each device's trace into a
  :class:`DeviceArena` -- numpy-derived flat lists of every per-request
  quantity that is a pure function of the request address (tree-walk
  node addresses per level, fine-MAC line addresses, granularity-table
  line addresses, chunk/partition coordinates, dependency draws) so the
  fused loop never recomputes address algebra per request;
* :mod:`repro.check.differential` (``--engine fast``) verifies whole
  windows of Eq. 1 / Eq. 4 observables at once via
  :func:`mac_observables` / :func:`counter_observables`, an independent
  numpy derivation of the compacted-MAC layout (cumulative sums over
  the partition bitmap instead of the scalar address-order walk).

Everything here requires numpy; callers gate on
:func:`repro.engine_fast.numpy_or_none`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine_fast import numpy_or_none
from repro.common.constants import (
    CACHELINE_BYTES,
    GRANULARITIES,
    LINES_PER_PARTITION,
    PARTITIONS_PER_CHUNK,
    TREE_ARITY,
)
from repro.core import stream_part
from repro.core.addressing import MAC_BYTES_PER_CHUNK
from repro.common.constants import MAC_BYTES
from repro.tree.geometry import TreeGeometry

_PARTS_PER_4KB = GRANULARITIES[2] // GRANULARITIES[1]


class DeviceArena:
    """Flat per-request arrays of one device's trace (plain lists).

    All fields are aligned by request index.  The numpy work happens at
    build time; the fused loop indexes plain Python lists because the
    per-element access pattern of an event-driven loop is scalar.
    """

    __slots__ = (
        "n", "gaps", "addrs", "writes", "deps",
        "walk", "fine_mac_lines", "table_lines",
        "chunks", "chunk_mac_bases", "partitions", "lines_in_partition",
        "static_mac_lines", "static_region_bases", "static_line_offsets",
    )

    def __init__(self) -> None:
        self.n = 0
        self.gaps: List[float] = []
        self.addrs: List[int] = []
        self.writes: List[bool] = []
        self.deps: List[bool] = []
        #: walk[level][i]: node line address of level ``level`` for
        #: request ``i`` (levels 0..root_level-1).
        self.walk: List[List[int]] = []
        self.fine_mac_lines: List[int] = []
        self.table_lines: List[int] = []
        self.chunks: List[int] = []
        self.chunk_mac_bases: List[int] = []
        self.partitions: List[int] = []
        self.lines_in_partition: List[int] = []
        self.static_mac_lines: List[int] = []
        self.static_region_bases: List[int] = []
        self.static_line_offsets: List[int] = []


def build_arena(
    entries: Sequence[Tuple[float, int, bool]],
    device_index: int,
    dependent_fraction: float,
    geometry: TreeGeometry,
    *,
    need_walk: bool = False,
    need_fine_mac: bool = False,
    need_table: bool = False,
    need_chunk_coords: bool = False,
    static_granularity: Optional[int] = None,
    static_max_granularity: Optional[int] = None,
) -> DeviceArena:
    """Vectorize one device's per-request derived addresses."""
    np = numpy_or_none()
    assert np is not None, "build_arena requires numpy"
    arena = DeviceArena()
    arena.n = len(entries)
    if not entries:
        return arena

    ent = np.asarray(entries, dtype=np.float64)
    addrs = ent[:, 1].astype(np.int64)
    arena.gaps = ent[:, 0].tolist()
    arena.addrs = addrs.tolist()
    arena.writes = (ent[:, 2] != 0.0).tolist()

    if dependent_fraction > 0.0:
        cursors = np.arange(len(entries), dtype=np.int64)
        draws = (
            ((cursors * 2654435761 + device_index * 97) & 0xFFFF)
            .astype(np.float64) / 65536.0
        )
        arena.deps = (draws < dependent_fraction).tolist()
    else:
        arena.deps = [False] * len(entries)

    if need_walk:
        spans, _, bases = geometry.level_tables()
        arena.walk = [
            (bases[level] + (addrs // spans[level]) * CACHELINE_BYTES).tolist()
            for level in range(geometry.root_level)
        ]

    lines = addrs >> 6
    if need_fine_mac:
        arena.fine_mac_lines = (
            geometry.mac_base + ((lines >> 3) << 6)
        ).tolist()

    chunks = addrs >> 15
    if need_table:
        raw = geometry.table_base + chunks * 16
        arena.table_lines = (raw - (raw % CACHELINE_BYTES)).tolist()

    if need_chunk_coords:
        arena.chunks = chunks.tolist()
        arena.chunk_mac_bases = (
            geometry.mac_base + chunks * MAC_BYTES_PER_CHUNK
        ).tolist()
        arena.partitions = ((addrs >> 9) & 63).tolist()
        arena.lines_in_partition = ((addrs >> 6) & 7).tolist()

    if static_granularity is not None and static_granularity != GRANULARITIES[0]:
        g = static_granularity
        region_bases = (addrs // g) * g
        arena.static_region_bases = region_bases.tolist()
        arena.static_line_offsets = ((addrs - region_bases) // 64).tolist()
        arena.chunks = chunks.tolist()
        # Uniform all-stream layout at the device's granularity: the
        # compaction degenerates to offset // g inside the chunk's
        # fixed MAC window (see StaticGranularScheme._uniform_mac_line).
        cap = static_max_granularity if static_max_granularity is not None else g
        idx, _, _ = mac_index_arrays(
            np.full(len(entries), stream_part.FULL_MASK, dtype=np.uint64),
            addrs,
            cap,
            geometry,
        )
        raw = geometry.mac_base + chunks * MAC_BYTES_PER_CHUNK + idx * MAC_BYTES
        arena.static_mac_lines = (raw - (raw % CACHELINE_BYTES)).tolist()
    return arena


# ----------------------------------------------------------------------
# Vectorized Eq. 1 compacted-MAC layout (Fig. 9 via cumulative sums)
# ----------------------------------------------------------------------

#: Per-process memo of vectorized layouts keyed (bits, cap); bounded
#: like the scalar memo in :mod:`repro.core.addressing`.
_ARRAY_LAYOUT_CAPACITY = 8192
_array_layouts: Dict[Tuple[int, int], tuple] = {}


def mac_layout_arrays(bits: int, max_granularity: int) -> tuple:
    """``(part_index, part_merged, total)`` as numpy arrays.

    An independent, vectorized derivation of the Fig. 9 compaction:
    per-partition MAC counts -> per-4KB-group totals (collapsed to one
    when the group is fully streamed and the cap allows merging) ->
    exclusive cumulative sums for the compacted start index of every
    partition.  ``repro check --engine fast`` diffs this derivation
    against both the naive oracle walk and the scalar memo.
    """
    key = (bits, max_granularity)
    cached = _array_layouts.get(key)
    if cached is not None:
        return cached
    np = numpy_or_none()
    assert np is not None, "mac_layout_arrays requires numpy"

    stream = np.unpackbits(
        np.frombuffer(bits.to_bytes(8, "little"), dtype=np.uint8),
        bitorder="little",
    ).astype(bool)
    counts = np.where(
        stream & (max_granularity >= GRANULARITIES[1]),
        1,
        LINES_PER_PARTITION,
    ).astype(np.int64)
    groups = PARTITIONS_PER_CHUNK // _PARTS_PER_4KB
    group_full = (
        stream.reshape(groups, _PARTS_PER_4KB).all(axis=1)
        & (max_granularity >= GRANULARITIES[2])
    )
    counts_2d = counts.reshape(groups, _PARTS_PER_4KB)
    group_counts = np.where(group_full, 1, counts_2d.sum(axis=1))
    group_starts = np.concatenate(
        ([0], np.cumsum(group_counts)[:-1])
    ).astype(np.int64)
    within = np.cumsum(counts_2d, axis=1) - counts_2d  # exclusive prefix
    full_rep = np.repeat(group_full, _PARTS_PER_4KB)
    starts_rep = np.repeat(group_starts, _PARTS_PER_4KB)
    part_index = np.where(full_rep, starts_rep, starts_rep + within.ravel())
    part_merged = full_rep | (
        stream & (max_granularity >= GRANULARITIES[1])
    )
    total = int(group_counts.sum())
    value = (part_index, part_merged, total)
    if len(_array_layouts) >= _ARRAY_LAYOUT_CAPACITY:
        _array_layouts.clear()
    _array_layouts[key] = value
    return value


def mac_index_arrays(bits_arr, addrs, max_granularity: int, geometry=None):
    """Vectorized compacted MAC indices of a request window.

    ``bits_arr`` is one bitmap per request (same length as ``addrs``).
    Returns ``(index, merged_chunk, per_chunk)`` numpy arrays: the
    compacted in-chunk MAC index, whether the whole chunk merged to a
    single MAC, and the chunk's post-merge MAC count.
    """
    np = numpy_or_none()
    assert np is not None
    del geometry  # indices are chunk-relative; callers add the base
    n = len(addrs)
    index = np.empty(n, dtype=np.int64)
    per_chunk = np.empty(n, dtype=np.int64)
    merged_chunk = np.zeros(n, dtype=bool)
    parts = ((addrs >> 9) & 63).astype(np.int64)
    lips = ((addrs >> 6) & 7).astype(np.int64)
    full_cap = max_granularity >= GRANULARITIES[3]
    bits_arr = np.asarray(bits_arr, dtype=np.uint64)
    for bits in np.unique(bits_arr):
        sel = bits_arr == bits
        bits_int = int(bits)
        if bits_int == stream_part.FULL_MASK and full_cap:
            index[sel] = 0
            per_chunk[sel] = 1
            merged_chunk[sel] = True
            continue
        part_index, part_merged, total = mac_layout_arrays(
            bits_int, max_granularity
        )
        p = parts[sel]
        base = part_index[p]
        index[sel] = np.where(part_merged[p], base, base + lips[sel])
        per_chunk[sel] = total
    return index, merged_chunk, per_chunk


def mac_observables(
    geometry: TreeGeometry,
    max_granularity: int,
    bits_list: Sequence[int],
    addr_list: Sequence[int],
) -> Tuple[List[int], List[int], List[int]]:
    """Eq. 1 observables (index, MAC address, MACs per chunk) of a window."""
    np = numpy_or_none()
    assert np is not None
    addrs = np.asarray(addr_list, dtype=np.int64)
    bits_arr = np.asarray(bits_list, dtype=np.uint64)
    index, _, per_chunk = mac_index_arrays(bits_arr, addrs, max_granularity)
    chunk_mac_bases = geometry.mac_base + (addrs >> 15) * MAC_BYTES_PER_CHUNK
    mac_addrs = chunk_mac_bases + index * MAC_BYTES
    return index.tolist(), mac_addrs.tolist(), per_chunk.tolist()


def counter_observables(
    geometry: TreeGeometry,
    level_list: Sequence[int],
    addr_list: Sequence[int],
) -> Tuple[List[int], List[int], List[int]]:
    """Eq. 2-4 counter locations (node, slot, node address) of a window."""
    np = numpy_or_none()
    assert np is not None
    _, counter_spans, bases = geometry.level_tables()
    levels = np.asarray(level_list, dtype=np.int64)
    addrs = np.asarray(addr_list, dtype=np.int64)
    cspans = np.asarray(counter_spans, dtype=np.int64)[levels]
    region = addrs // cspans
    nodes = region // TREE_ARITY
    slots = region % TREE_ARITY
    node_addrs = (
        np.asarray(bases, dtype=np.int64)[levels] + nodes * CACHELINE_BYTES
    )
    return nodes.tolist(), slots.tolist(), node_addrs.tolist()
