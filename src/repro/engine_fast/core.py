"""The fused batch run-loop of the fast engine.

:func:`prepare` validates that a (scheme, SoC) pair has a fast path and
returns a drop-in replacement for :func:`repro.sim.soc._run_loop`.  The
replacement replays precomputed :class:`~repro.engine_fast.tables.DeviceArena`
windows through ONE loop that inlines the scalar engine's per-request
work -- issue-window arithmetic, cache lookups, channel scheduling,
tree walks, Eq. 1 MAC addressing -- while mutating the *same* state
objects (cache sets, region buffer, granularity table, tracker) the
scalar helpers would.

Bit-for-bit parity rules (enforced by tests/integration parity suites):

* every float accumulation (channel ``free_at``/``busy_cycles``/
  ``queue_cycles``, completion arithmetic) happens in exactly the
  scalar operation order, via authoritative locals that are synced out
  before and back in after every delegation to a scalar helper;
* integer counters (cache hits/misses, traffic bytes, request counts)
  are delta-batched and flushed once -- integer addition commutes with
  the helpers' own live increments;
* dict key-insertion order that leaks into ``metrics`` snapshots
  (granularity histogram buckets, per-device counter names) is
  replicated with local insertion-ordered dicts that mirror the scalar
  first-touch sequence;
* rare barrier events -- tracker evictions, lazy granularity switches,
  region-buffer eviction settlements -- are delegated to the scalar
  helpers themselves, so unmodeled behavior cannot diverge.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Sequence

from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES, GRANULARITIES
from repro.common.types import MetadataKind
from repro.core import addressing, stream_part
from repro.core.detector import merge_detection
from repro.core.gran_table import TableEntry
from repro.engine_fast import numpy_or_none, warn_scalar_fallback
from repro.engine_fast.tables import build_arena

_GLEVEL = {g: i for i, g in enumerate(GRANULARITIES)}
_FULL = stream_part.FULL_MASK


def prepare(
    traces: Sequence,
    scheme,
    soc_config,
    device_configs: Sequence,
) -> Optional[Callable]:
    """Build the fast run callable, or None when no fast path applies.

    ``None`` means "use the scalar loop": numpy missing (warned, since
    the caller explicitly requested the fast engine), a banked channel,
    tracing enabled, or a scheme variant the fused loop does not model
    (subtree root caches).  The returned callable has the signature of
    :func:`repro.sim.soc._run_loop` and may be invoked once per replay
    phase (warmup and measured) -- the arenas are shared.
    """
    if numpy_or_none() is None:
        warn_scalar_fallback("numpy is not installed")
        return None
    if getattr(soc_config.memory, "banks", 0):
        return None
    if scheme.tracer:
        return None

    from repro.schemes.conventional import ConventionalScheme, MacOnlyScheme
    from repro.schemes.multigran import MultiGranularScheme
    from repro.schemes.static import StaticGranularScheme
    from repro.schemes.unsecure import UnsecureScheme

    kind = type(scheme)
    if kind is UnsecureScheme:
        mode = "unsecure"
    elif kind is MacOnlyScheme:
        mode = "mac_only"
    elif kind is ConventionalScheme:
        if scheme.subtree is not None:
            return None
        mode = "conventional"
    elif kind is StaticGranularScheme:
        mode = "static"
    elif kind is MultiGranularScheme:
        if scheme.subtree is not None:
            return None
        mode = "ours"
    else:
        return None

    geometry = scheme.geometry
    arenas = []
    for i, (trace, cfg) in enumerate(zip(traces, device_configs)):
        kw = {}
        if mode == "mac_only":
            kw = dict(need_fine_mac=True)
        elif mode == "conventional":
            kw = dict(need_walk=True, need_fine_mac=True)
        elif mode == "static":
            g = scheme.device_granularities.get(i, GRANULARITIES[0])
            kw = dict(
                need_walk=True,
                need_fine_mac=g == GRANULARITIES[0],
                static_granularity=g if g != GRANULARITIES[0] else None,
            )
        elif mode == "ours":
            kw = dict(
                need_walk=True,
                need_table=True,
                need_chunk_coords=True,
                need_fine_mac=not scheme.mac_multigranular,
            )
        arenas.append(
            build_arena(
                trace.entries, i, cfg.dependent_loads, geometry, **kw
            )
        )

    def run(states, scheme, channel, sink=None):
        _run_fast(states, scheme, channel, arenas, mode, sink)

    return run


def _run_fast(states, scheme, channel, arenas, mode, sink=None) -> None:
    """One full replay of every arena through the fused loop."""
    heappush = heapq.heappush
    heappop = heapq.heappop

    geometry = scheme.geometry
    engine = scheme._engine
    mac_latency = engine.mac_latency
    otp_latency = engine.otp_latency
    xor_latency = engine.xor_latency
    root_level = geometry.root_level
    stats = scheme.stats

    mode_unsecure = mode == "unsecure"
    mode_mac_only = mode == "mac_only"
    mode_conv = mode == "conventional"
    mode_static = mode == "static"
    mode_ours = mode == "ours"

    # -- channel: floats live in locals (authoritative), ints batched --
    ch_stats = channel.stats
    occupancy = CACHELINE_BYTES / channel.config.bytes_per_cycle
    latency = channel.config.latency_cycles
    free_at = channel._free_at
    busy = ch_stats.busy_cycles
    queue = ch_stats.queue_cycles
    d_txns = 0
    d_bytes = 0

    # -- caches: sets mutated live, counters batched --
    meta = scheme.metadata_cache
    mac_cache = scheme.mac_cache
    tab_cache = scheme.table_cache
    unified = mac_cache is meta
    m_sets, m_lb = meta._sets, meta._line_bytes
    m_ns, m_w = meta._num_sets, meta._ways
    mc_sets, mc_lb = mac_cache._sets, mac_cache._line_bytes
    mc_ns, mc_w = mac_cache._num_sets, mac_cache._ways
    tc_sets, tc_lb = tab_cache._sets, tab_cache._line_bytes
    tc_ns, tc_w = tab_cache._num_sets, tab_cache._ways
    m_hits = m_miss = m_wb = 0
    mc_hits = mc_miss = mc_wb = 0
    tc_hits = tc_miss = tc_wb = 0

    t_data = t_ctr = t_mac = t_tab = 0
    d_serialized = 0
    d_req = d_reads = d_writes = 0
    res_total = res_corr = 0
    hist: dict = {}
    n_dev = len(states)
    dev_counts: list = [None] * n_dev
    last_device = -1

    if mode_ours:
        table = scheme.table
        tentries = table._entries
        tracker_observe = scheme.tracker.observe
        table_resolve = table.resolve
        record_detection = table.record_detection
        entry_by_chunk = table.entry_by_chunk
        entry_line_addr = table.entry_line_addr
        record_event = stats.switching.record_event
        charge = scheme.charge_switch_costs
        mac_mg = scheme.mac_multigranular
        maxg = table.max_granularity
        cap512 = maxg >= GRANULARITIES[1]
        cap4k = maxg >= GRANULARITIES[2]
        cap32k = maxg >= GRANULARITIES[3]
        layouts: dict = {}
        chunk_layout = addressing._chunk_mac_layout
        table_access = scheme._table_access
        charge_switch = scheme._charge_switch
    if mode_ours or mode_static:
        region_touch = scheme.region_buffer.touch
        written = scheme._written_chunks
        retains = scheme.retains_fine_macs
        settle = scheme._settle_evictions
    if mode_static:
        dev_gran = [
            scheme.device_granularities.get(i, GRANULARITIES[0])
            for i in range(n_dev)
        ]
        dev_level = [_GLEVEL[g] for g in dev_gran]

    cursors = [0] * n_dev
    clocks = [0.0] * n_dev
    computes = [0.0] * n_dev
    finishes = [0.0] * n_dev
    lrds = [0.0] * n_dev
    outs = [st.outstanding for st in states]
    maxouts = [st._max_outstanding for st in states]

    heap = []
    for i in range(n_dev):
        a = arenas[i]
        if a.n == 0:
            continue
        heap.append((0.0 + a.gaps[0], i))
    heapq.heapify(heap)

    while heap:
        at, i = heappop(heap)
        a = arenas[i]
        cursor = cursors[i]
        addr = a.addrs[cursor]
        is_write = a.writes[cursor]
        cycle = at
        last_device = i

        # -- scheme.process() bookkeeping --
        d_req += 1
        dc = dev_counts[i]
        if dc is None:
            dc = dev_counts[i] = {}
        dc["requests"] = dc.get("requests", 0) + 1
        if is_write:
            d_writes += 1
            dc["writes"] = dc.get("writes", 0) + 1
        else:
            d_reads += 1
            dc["reads"] = dc.get("reads", 0) + 1

        if mode_unsecure:
            t_data += 64
            start = cycle if cycle > free_at else free_at
            free_at = start + occupancy
            busy += occupancy
            queue += start - cycle
            d_txns += 1
            d_bytes += 64
            completion = cycle if is_write else free_at + latency

        elif mode_mac_only:
            hist[64] = hist.get(64, 0) + 1
            mac_line = a.fine_mac_lines[cursor]
            t_data += 64
            start = cycle if cycle > free_at else free_at
            free_at = start + occupancy
            busy += occupancy
            queue += start - cycle
            d_txns += 1
            d_bytes += 64
            data_ready = free_at + latency
            dc["mac_verifications"] = dc.get("mac_verifications", 0) + 1
            line = mac_line // mc_lb
            cset = mc_sets[line % mc_ns]
            if line in cset:
                mc_hits += 1
                if is_write and not cset[line]:
                    cset[line] = True
                cset.move_to_end(line)
                mac_ready = cycle
            else:
                mc_miss += 1
                if len(cset) >= mc_w:
                    _, vdirty = cset.popitem(last=False)
                    if vdirty:
                        mc_wb += 1
                        t_mac += 64
                        start = cycle if cycle > free_at else free_at
                        free_at = start + occupancy
                        busy += occupancy
                        queue += start - cycle
                        d_txns += 1
                        d_bytes += 64
                cset[line] = is_write
                t_mac += 64
                start = cycle if cycle > free_at else free_at
                free_at = start + occupancy
                busy += occupancy
                queue += start - cycle
                d_txns += 1
                d_bytes += 64
                mac_ready = free_at + latency
            if is_write:
                completion = cycle
            else:
                m = data_ready if data_ready > mac_ready else mac_ready
                completion = m + mac_latency

        else:
            # conventional / static / ours share the full
            # data + walk + MAC + crypto pipeline; resolve the
            # per-scheme granularity and addresses first.
            if mode_conv:
                hist[64] = hist.get(64, 0) + 1
                level = 0
                mac_line = a.fine_mac_lines[cursor]
                region_gran = 64
            elif mode_static:
                g = dev_gran[i]
                hist[g] = hist.get(g, 0) + 1
                level = dev_level[i]
                region_gran = g
                if g == 64:
                    mac_line = a.fine_mac_lines[cursor]
                else:
                    mac_line = a.static_mac_lines[cursor]
            else:  # ours
                # 1. tracker -> detector -> table "next" updates.
                evs = tracker_observe(addr, int(cycle))
                if evs:
                    for ev in evs:
                        chunk_e = ev.entry.chunk_index
                        bits_e = merge_detection(
                            entry_by_chunk(chunk_e).next,
                            ev.entry.access_bits,
                            censored=ev.reason == "capacity",
                        )
                        if record_detection(chunk_e, bits_e):
                            channel._free_at = free_at
                            ch_stats.busy_cycles = busy
                            ch_stats.queue_cycles = queue
                            table_access(
                                entry_line_addr(chunk_e * CHUNK_BYTES),
                                True, cycle, channel,
                            )
                            free_at = channel._free_at
                            busy = ch_stats.busy_cycles
                            queue = ch_stats.queue_cycles

                # 2. granularity-table read + lazy switching.
                tl = a.table_lines[cursor]
                line = tl // tc_lb
                cset = tc_sets[line % tc_ns]
                if line in cset:
                    tc_hits += 1
                    cset.move_to_end(line)
                else:
                    tc_miss += 1
                    if len(cset) >= tc_w:
                        _, vdirty = cset.popitem(last=False)
                        if vdirty:
                            tc_wb += 1
                            t_tab += 64
                            start = cycle if cycle > free_at else free_at
                            free_at = start + occupancy
                            busy += occupancy
                            queue += start - cycle
                            d_txns += 1
                            d_bytes += 64
                    cset[line] = False
                    t_tab += 64
                    start = cycle if cycle > free_at else free_at
                    free_at = start + occupancy
                    busy += occupancy
                    queue += start - cycle
                    d_txns += 1
                    d_bytes += 64

                chunk = a.chunks[cursor]
                entry = tentries.get(chunk)
                if entry is None:
                    entry = tentries[chunk] = TableEntry()
                cur = entry.current
                res_total += 1
                if cur != entry.next:
                    granularity, event = table_resolve(addr, is_write)
                    if event is None:
                        res_corr += 1
                    else:
                        record_event(event)
                        channel._free_at = free_at
                        ch_stats.busy_cycles = busy
                        ch_stats.queue_cycles = queue
                        table_access(tl, True, cycle, channel)
                        if charge:
                            charge_switch(event, cycle, channel)
                        free_at = channel._free_at
                        busy = ch_stats.busy_cycles
                        queue = ch_stats.queue_cycles
                else:
                    res_corr += 1
                    if cur == _FULL and cap32k:
                        granularity = 32768
                    else:
                        p = a.partitions[cursor]
                        gmask = 255 << (p & 56)
                        if cur & gmask == gmask and cap4k:
                            granularity = 4096
                        elif cur & (1 << p) and cap512:
                            granularity = 512
                        else:
                            granularity = 64
                    entry.last_access_write = is_write
                    if is_write:
                        entry.written = True
                hist[granularity] = hist.get(granularity, 0) + 1
                level = _GLEVEL[granularity]
                region_gran = granularity if mac_mg else 64

                # 5-prep. merged + compacted MAC line (Eq. 1).
                if mac_mg:
                    bits = entry.current
                    if bits == _FULL and cap32k:
                        raw = a.chunk_mac_bases[cursor]
                    else:
                        lay = layouts.get(bits)
                        if lay is None:
                            lay = layouts[bits] = chunk_layout(bits, maxg)
                        p = a.partitions[cursor]
                        index = lay[0][p]
                        if not lay[1][p]:
                            index += a.lines_in_partition[cursor]
                        raw = a.chunk_mac_bases[cursor] + index * 8
                    mac_line = raw - raw % 64
                else:
                    mac_line = a.fine_mac_lines[cursor]

            # 3. data movement (region buffer above 64B granularity).
            if region_gran != 64:
                if mode_static:
                    chunk = a.chunks[cursor]
                    region_base = a.static_region_bases[cursor]
                    line_offset = a.static_line_offsets[cursor]
                else:
                    region_base = (addr // region_gran) * region_gran
                    line_offset = (addr - region_base) // 64
                if is_write:
                    written.add(chunk)
                _, victims = region_touch(
                    region_base, region_gran, line_offset,
                    read_only=retains and chunk not in written,
                    is_write=is_write,
                )
                if victims:
                    channel._free_at = free_at
                    ch_stats.busy_cycles = busy
                    ch_stats.queue_cycles = queue
                    settle(victims, cycle, channel)
                    free_at = channel._free_at
                    busy = ch_stats.busy_cycles
                    queue = ch_stats.queue_cycles
            t_data += 64
            start = cycle if cycle > free_at else free_at
            free_at = start + occupancy
            busy += occupancy
            queue += start - cycle
            d_txns += 1
            d_bytes += 64
            data_ready = cycle if is_write else free_at + latency

            # 4. counter walk from the promoted level.
            walk = a.walk
            if is_write:
                for lvl in range(level, root_level):
                    node_addr = walk[lvl][cursor]
                    line = node_addr // m_lb
                    cset = m_sets[line % m_ns]
                    if line in cset:
                        m_hits += 1
                        if not cset[line]:
                            cset[line] = True
                        cset.move_to_end(line)
                    else:
                        m_miss += 1
                        if len(cset) >= m_w:
                            _, vdirty = cset.popitem(last=False)
                            if vdirty:
                                m_wb += 1
                                t_ctr += 64
                                start = cycle if cycle > free_at else free_at
                                free_at = start + occupancy
                                busy += occupancy
                                queue += start - cycle
                                d_txns += 1
                                d_bytes += 64
                        cset[line] = True
                        t_ctr += 64
                        start = cycle if cycle > free_at else free_at
                        free_at = start + occupancy
                        busy += occupancy
                        queue += start - cycle
                        d_txns += 1
                        d_bytes += 64
            else:
                ready = cycle
                lw = 0
                for lvl in range(level, root_level):
                    node_addr = walk[lvl][cursor]
                    line = node_addr // m_lb
                    cset = m_sets[line % m_ns]
                    if line in cset:
                        m_hits += 1
                        cset.move_to_end(line)
                        lw += 1
                        break
                    m_miss += 1
                    if len(cset) >= m_w:
                        _, vdirty = cset.popitem(last=False)
                        if vdirty:
                            m_wb += 1
                            t_ctr += 64
                            start = cycle if cycle > free_at else free_at
                            free_at = start + occupancy
                            busy += occupancy
                            queue += start - cycle
                            d_txns += 1
                            d_bytes += 64
                    cset[line] = False
                    t_ctr += 64
                    start = cycle if cycle > free_at else free_at
                    free_at = start + occupancy
                    busy += occupancy
                    queue += start - cycle
                    d_txns += 1
                    d_bytes += 64
                    done = free_at + latency
                    lw += 1
                    if done > ready:
                        ready = done
                    d_serialized += 1
                if lw:
                    dc["tree_levels_verified"] = (
                        dc.get("tree_levels_verified", 0) + lw
                    )
                ctr_ready = ready + lw * mac_latency

            # 5. MAC access.
            dc["mac_verifications"] = dc.get("mac_verifications", 0) + 1
            line = mac_line // mc_lb
            cset = mc_sets[line % mc_ns]
            if line in cset:
                mc_hits += 1
                if is_write and not cset[line]:
                    cset[line] = True
                cset.move_to_end(line)
                mac_ready = cycle
            else:
                mc_miss += 1
                if len(cset) >= mc_w:
                    _, vdirty = cset.popitem(last=False)
                    if vdirty:
                        mc_wb += 1
                        t_mac += 64
                        start = cycle if cycle > free_at else free_at
                        free_at = start + occupancy
                        busy += occupancy
                        queue += start - cycle
                        d_txns += 1
                        d_bytes += 64
                cset[line] = is_write
                t_mac += 64
                start = cycle if cycle > free_at else free_at
                free_at = start + occupancy
                busy += occupancy
                queue += start - cycle
                d_txns += 1
                d_bytes += 64
                mac_ready = free_at + latency

            if is_write:
                completion = cycle
            else:
                otp_ready = ctr_ready + otp_latency
                plaintext = (
                    data_ready if data_ready > otp_ready else otp_ready
                ) + xor_latency
                completion = (
                    plaintext if plaintext > mac_ready else mac_ready
                ) + mac_latency

        if sink is not None:
            # Same semantic point as SessionCore.step()'s sink: after
            # the completion is known, before the issue bookkeeping.
            # Arena columns are numpy scalars -- normalize here so both
            # engines feed identical Python types to observables.
            sink.append((at, i, int(addr), bool(is_write), completion))

        # -- DeviceIssueState.issue() inline --
        computes[i] += a.gaps[cursor]
        cursor += 1
        cursors[i] = cursor
        clocks[i] = at
        out = outs[i]
        while out and out[0] <= at:
            heappop(out)
        if not is_write:
            heappush(out, completion)
            lrds[i] = completion
        f = finishes[i]
        if completion > f:
            f = completion
        if at > f:
            f = at
        finishes[i] = f

        # -- next_issue_time() inline + re-arm the heap --
        if cursor < a.n:
            ready = at + a.gaps[cursor]
            if not a.writes[cursor] and a.deps[cursor]:
                lrd = lrds[i]
                if lrd > ready:
                    ready = lrd
            while out and out[0] <= ready:
                heappop(out)
            if len(out) >= maxouts[i]:
                head = out[0]
                if head > ready:
                    ready = head
            heappush(heap, (ready, i))

    # ---- flush: device state, channel, caches, scheme stats ----
    for i, st in enumerate(states):
        st.cursor = cursors[i]
        st.clock = clocks[i]
        st.compute = computes[i]
        st.finish = finishes[i]
        st.last_read_done = lrds[i]

    channel._free_at = free_at
    ch_stats.busy_cycles = busy
    ch_stats.queue_cycles = queue
    ch_stats.transactions += d_txns
    ch_stats.bytes_transferred += d_bytes

    if unified:
        meta.hits += m_hits + mc_hits
        meta.misses += m_miss + mc_miss
        meta.writebacks += m_wb + mc_wb
    else:
        meta.hits += m_hits
        meta.misses += m_miss
        meta.writebacks += m_wb
        mac_cache.hits += mc_hits
        mac_cache.misses += mc_miss
        mac_cache.writebacks += mc_wb
    tab_cache.hits += tc_hits
    tab_cache.misses += tc_miss
    tab_cache.writebacks += tc_wb

    stats.requests += d_req
    stats.reads += d_reads
    stats.writes += d_writes
    stats.serialized_level_fetches += d_serialized
    traffic = stats.traffic.bytes_by_kind
    traffic[MetadataKind.DATA] += t_data
    traffic[MetadataKind.COUNTER] += t_ctr
    traffic[MetadataKind.MAC] += t_mac
    traffic[MetadataKind.GRAN_TABLE] += t_tab
    for g, count in hist.items():
        stats.granularity_hist.add(g, count)
    if mode_ours:
        stats.switching.total_resolutions += res_total
        stats.switching.correct_predictions += res_corr
    for i, dc in enumerate(dev_counts):
        if dc:
            group = stats.device(i)
            for name, value in dc.items():
                group.bump(name, value)
    if last_device >= 0:
        scheme._active_device = last_device
