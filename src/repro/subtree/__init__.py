"""Subtree-based integrity-tree optimizations (BMF + PENGLAI pruning)."""

from repro.subtree.bmf import SubtreeRootCache

__all__ = ["SubtreeRootCache"]
