"""Subtree-root caching in the spirit of Bonsai Merkle Forests [17].

BMF keeps the roots of hot integrity *subtrees* in trusted on-chip
storage: a verification walk that reaches a cached subtree root stops
there instead of continuing to the global root, and a counter update
only propagates up to the cached root.  We model the forest as an LRU
table of level-``level`` tree nodes (level 2 nodes cover 32KB, a
natural subtree unit for our workloads).

PENGLAI-style unused-region pruning [16] is modeled orthogonally, by
building the scheme's tree geometry over the *allocated* footprint
instead of the full 4GB protected range (see
:func:`repro.schemes.registry.build_scheme`).
"""

from __future__ import annotations

from collections import OrderedDict


class SubtreeRootCache:
    """LRU on-chip table of trusted subtree roots.

    ``trusted(level, node)`` is the ``trusted_stop`` hook of the tree
    walks in :class:`repro.schemes.base.ProtectionScheme`;
    ``admit(node)`` registers the subtree covering a recent access
    (recency is our hotness proxy, as in BMF's hot-region policy).
    """

    def __init__(self, entries: int = 64, level: int = 2) -> None:
        if entries <= 0 or level < 0:
            raise ValueError(f"invalid subtree cache ({entries=}, {level=})")
        self.entries = entries
        self.level = level
        self._table: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.admissions = 0
        self.evictions = 0

    def trusted(self, level: int, node: int) -> bool:
        """True when (level, node) is a cached, trusted subtree root."""
        if level != self.level:
            return False
        if node in self._table:
            self._table.move_to_end(node)
            self.hits += 1
            return True
        return False

    def admit(self, node: int) -> None:
        """Register the subtree root of a recently accessed region."""
        if node in self._table:
            self._table.move_to_end(node)
            return
        if len(self._table) >= self.entries:
            self._table.popitem(last=False)
            self.evictions += 1
        self._table[node] = True
        self.admissions += 1

    def __len__(self) -> int:
        return len(self._table)
