"""Functional 8-ary counter integrity tree with real verification.

This is the replay-protection substrate of the paper's baseline
(Sec. 2.2): a tree of 64B nodes, each holding 8 counters.  Counter
``j`` of a level-0 node is the version counter of data line ``8n+j``;
counter ``j`` of a level-``l>0`` node is the *freshness counter* of its
``j``-th child node.  Every node carries a MAC bound to its own
freshness counter in the parent, so rolling any node (or any data
counter) back to an old value is detected.  The root node's counters
live on-chip and are trusted.

The same object also serves the multi-granular tree of Sec. 4.3: a
*promoted* counter of granularity ``64B * 8**l`` is simply the counter
at ``(level=l, slot)`` -- the slot that would otherwise hold a child's
freshness counter now versions a whole data region, and the subtree
below it is never touched (pruned).  ``increment_counter`` /
``read_counter`` take the level as a parameter, so the baseline is the
``level=0`` special case.

Attacker primitives (`tamper_*`, `snapshot_node`, `replay_node`) mutate
the off-chip state directly, mirroring the paper's physical attacker.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.constants import CACHELINE_BYTES, COUNTERS_PER_LINE
from repro.common.errors import CounterOverflowError, IntegrityError, ReplayError
from repro.crypto.keys import KeySet
from repro.crypto.mac import macs_equal, node_mac, pack_counters
from repro.tree.geometry import TreeGeometry

#: Functional counters are 64-bit; overflow would repeat an OTP.
_COUNTER_LIMIT = 2**64 - 1

NodeId = Tuple[int, int]


class CounterTree:
    """Counter tree over one protected region (functional layer)."""

    def __init__(
        self,
        geometry: TreeGeometry,
        keys: KeySet,
        trust_cache: bool = True,
        counter_limit: int = _COUNTER_LIMIT,
    ) -> None:
        if not 1 < counter_limit <= _COUNTER_LIMIT:
            raise ValueError(
                f"counter_limit {counter_limit} must be in (1, 2**64 - 1]"
            )
        self.geometry = geometry
        self.keys = keys
        #: Largest legal *data/promoted* counter value.  Narrow limits
        #: make the overflow path testable; the freshness counters of
        #: the node-seal chain always use the full 64-bit width.
        self.counter_limit = counter_limit
        # Off-chip, attacker-controlled state:
        self._payloads: Dict[NodeId, List[int]] = {}
        self._macs: Dict[NodeId, bytes] = {}
        # On-chip state:
        self._root: List[int] = [0] * COUNTERS_PER_LINE
        self._trust_cache_enabled = trust_cache
        self._trusted: Dict[NodeId, List[int]] = {}
        # Statistics (functional-layer only; timing stats live elsewhere).
        self.verifications = 0
        self.node_fetches = 0

    # ------------------------------------------------------------------
    # Public counter interface
    # ------------------------------------------------------------------

    def read_counter(self, addr: int, level: int = 0) -> int:
        """Verified read of the counter of ``addr`` at ``level``.

        ``level=0`` reads the fine 64B counter; ``level=l`` reads the
        promoted counter of the ``64B * 8**l`` region (paper Eq. 2-3).
        """
        node, slot = self.geometry.counter_slot(addr, level)
        payload = self._verified_payload(level, node)
        return payload[slot]

    def increment_counter(self, addr: int, level: int = 0) -> int:
        """Increment the counter of ``addr`` at ``level`` and reseal the path.

        Bumps the target counter and the freshness counter of every
        node on the path to the root, then recomputes the affected
        node MACs bottom-up.  Returns the new counter value.
        """
        node, slot = self.geometry.counter_slot(addr, level)
        self._bump(level, node, slot)
        return self._verified_payload(level, node)[slot]

    def set_counter(
        self, addr: int, level: int, value: int, revive: bool = False
    ) -> None:
        """Set a counter to an explicit value (granularity switching).

        Scale-up stores ``max(child counters) + 1`` into the parent and
        scale-down copies the parent value into children (paper
        Fig. 13); both need raw assignment rather than increment.

        ``revive=True`` is for scale-down: a *pruned* child node has no
        valid seal (its freshness counter in the parent advanced while
        it was promoted away), so it is re-initialized from zeros
        instead of verified.  A node that still carries a MAC must
        verify -- reviving silently over a tampered seal would let an
        attacker roll counters back.
        """
        node, slot = self.geometry.counter_slot(addr, level)
        if level == self.geometry.root_level:
            # Promoted counters can land in the root itself when the
            # region is small; the root lives on-chip and needs no seal.
            self._root[slot] = value
            return
        if revive:
            payload = self._revivable_payload(level, node)
        else:
            payload = self._verified_payload(level, node)
        fresh = list(payload)
        fresh[slot] = value
        self._commit(level, node, fresh, revive=revive)

    def _revivable_payload(self, level: int, node: int) -> List[int]:
        """Payload for a scale-down target: verified, or zeros if pruned.

        A pruned node either has no seal at all or a *stale but
        authentic* one (sealed before promotion, under an old freshness
        counter) -- both revive from zeros, since the caller overwrites
        the contents anyway.  A seal that is neither current nor stale-
        authentic is corruption and still raises.
        """
        if level == self.geometry.root_level:
            return self._root
        if (level, node) not in self._macs:
            return [0] * COUNTERS_PER_LINE
        try:
            return self._verified_payload(level, node)
        except ReplayError:
            return [0] * COUNTERS_PER_LINE

    def prune_subtree(self, addr: int, level: int) -> int:
        """Drop the pruned descendants of a promoted region (Fig. 10).

        Promotion delegates a region's versioning to the level-``level``
        counter; every node below it that covered the region becomes
        dead storage.  Returns the number of nodes reclaimed.
        """
        region = CACHELINE_BYTES * (self.geometry.arity ** level)
        base = addr - addr % region
        pruned = 0
        for child_level in range(level):
            span = self.geometry.span_of_level(child_level)
            first = base // span
            last = (base + region - 1) // span
            for node in range(first, last + 1):
                existed = self._payloads.pop((child_level, node), None)
                self._macs.pop((child_level, node), None)
                self._trusted.pop((child_level, node), None)
                pruned += existed is not None
        return pruned

    @property
    def stored_nodes(self) -> int:
        """Off-chip tree nodes currently holding state."""
        return len(self._payloads)

    def metrics_into(self, registry, prefix: str = "tree") -> None:
        """Bind the tree's counters under ``prefix.*`` in a registry."""
        registry.bind(f"{prefix}.verifications", lambda: self.verifications)
        registry.bind(f"{prefix}.node_fetches", lambda: self.node_fetches)
        registry.bind(f"{prefix}.stored_nodes", lambda: self.stored_nodes)

    def render(self, max_span: int = 8) -> str:
        """ASCII sketch of the tree's stored nodes (Fig. 1/10 style).

        One row per level (root at the top); ``#`` marks a stored node,
        ``.`` an absent one (pristine or pruned).  Only the first
        ``max_span`` nodes of each level are drawn -- enough to *see*
        promotion pruning a subtree in examples and docs.
        """
        lines = []
        for level in reversed(range(self.geometry.num_levels)):
            count = self.geometry.level_counts[level]
            shown = min(count, max_span)
            if level == self.geometry.root_level:
                cells = "R" * shown
            else:
                cells = "".join(
                    "#" if (level, node) in self._payloads else "."
                    for node in range(shown)
                )
            suffix = f" (+{count - shown} more)" if count > shown else ""
            lines.append(f"L{level}: {cells}{suffix}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Attacker primitives (off-chip mutation)
    # ------------------------------------------------------------------

    def tamper_counter(self, addr: int, level: int = 0, delta: int = 1) -> None:
        """Silently modify a stored counter without resealing MACs."""
        node, slot = self.geometry.counter_slot(addr, level)
        payload = self._payloads.setdefault(
            (level, node), [0] * COUNTERS_PER_LINE
        )
        payload[slot] = (payload[slot] + delta) % (2**64)
        self._trusted.pop((level, node), None)

    def tamper_node_mac(self, addr: int, level: int = 0) -> None:
        """Flip a bit of a stored node MAC."""
        node, _ = self.geometry.counter_slot(addr, level)
        mac = self._macs.get((level, node))
        if mac is None:
            raise KeyError(f"node ({level}, {node}) has no stored MAC yet")
        flipped = bytes([mac[0] ^ 0x01]) + mac[1:]
        self._macs[(level, node)] = flipped
        self._trusted.pop((level, node), None)

    def snapshot_node(self, addr: int, level: int = 0) -> Tuple[List[int], Optional[bytes]]:
        """Capture a node's off-chip state for a later replay."""
        node, _ = self.geometry.counter_slot(addr, level)
        payload = self._payloads.get((level, node))
        return (
            list(payload) if payload is not None else [0] * COUNTERS_PER_LINE,
            self._macs.get((level, node)),
        )

    def replay_node(
        self, addr: int, snapshot: Tuple[List[int], Optional[bytes]], level: int = 0
    ) -> None:
        """Restore a previously captured node (a replay attack)."""
        node, _ = self.geometry.counter_slot(addr, level)
        payload, mac = snapshot
        self._payloads[(level, node)] = list(payload)
        if mac is None:
            self._macs.pop((level, node), None)
        else:
            self._macs[(level, node)] = mac
        self._trusted.pop((level, node), None)

    def drop_trust_cache(self) -> None:
        """Invalidate the on-chip trusted-node cache (e.g. power event)."""
        self._trusted.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _node_payload(self, level: int, node: int) -> List[int]:
        return self._payloads.setdefault((level, node), [0] * COUNTERS_PER_LINE)

    def _verified_payload(self, level: int, node: int) -> List[int]:
        """Return the counters of a node after verifying its path to root."""
        if level == self.geometry.root_level:
            return self._root
        if self._trust_cache_enabled:
            cached = self._trusted.get((level, node))
            if cached is not None:
                return cached

        parent_level, parent_node = self.geometry.parent(level, node)
        parent_payload = self._verified_payload(parent_level, parent_node)
        freshness = parent_payload[self.geometry.child_slot(level, node)]

        payload = self._node_payload(level, node)
        self.node_fetches += 1
        stored_mac = self._macs.get((level, node))
        addr = self.geometry.node_addr(level, node)
        expected = node_mac(
            self.keys.mac_key, addr, freshness, pack_counters(payload)
        )
        self.verifications += 1
        if stored_mac is None:
            # A never-sealed node is only acceptable in its pristine
            # all-zero state under a zero freshness counter.
            if freshness != 0 or any(payload):
                raise ReplayError(
                    f"node (level {level}, index {node}) has no MAC but a "
                    f"non-pristine state"
                )
        elif not macs_equal(stored_mac, expected):
            if self._seals_older_state(addr, freshness, payload, stored_mac):
                raise ReplayError(
                    f"stale tree node detected (level {level}, index {node})"
                )
            raise IntegrityError(
                f"MAC mismatch on tree node (level {level}, index {node})"
            )
        if self._trust_cache_enabled:
            self._trusted[(level, node)] = list(payload)
        return self._trusted.get((level, node), list(payload))

    def _seals_older_state(
        self, addr: int, freshness: int, payload: List[int], stored_mac: bytes
    ) -> bool:
        """Best-effort replay classification.

        A replayed node carries a MAC that is a *valid seal of its
        payload under an older freshness counter*.  We probe a small
        window of older values purely to pick the exception subclass;
        acceptance is never affected -- the access fails either way.
        """
        probe_window = 64
        packed = pack_counters(payload)
        for old in range(max(0, freshness - probe_window), freshness):
            candidate = node_mac(self.keys.mac_key, addr, old, packed)
            if macs_equal(candidate, stored_mac):
                return True
        return False

    def _commit(
        self, level: int, node: int, payload: List[int], revive: bool = False
    ) -> None:
        """Store a node payload and reseal the MAC chain up to the root.

        ``revive=True`` tolerates pruned/stale *ancestors* on the climb
        (scale-down re-seals a whole chain whose intermediate nodes
        were pruned by an earlier promotion).
        """
        # Changing this node's contents requires bumping its freshness
        # counter in the parent, which in turn changes the parent, and
        # so on up to the (on-chip) root.
        self._payloads[(level, node)] = list(payload)
        if self._trust_cache_enabled:
            self._trusted[(level, node)] = list(payload)

        current_level, current_node = level, node
        while current_level < self.geometry.root_level:
            parent_level, parent_node = self.geometry.parent(
                current_level, current_node
            )
            slot = self.geometry.child_slot(current_level, current_node)
            if parent_level == self.geometry.root_level:
                parent_payload = self._root
            elif revive:
                parent_payload = list(
                    self._revivable_payload(parent_level, parent_node)
                )
            else:
                parent_payload = self._verified_payload(parent_level, parent_node)
                parent_payload = list(parent_payload)
            if parent_payload[slot] >= _COUNTER_LIMIT:
                raise CounterOverflowError(
                    f"freshness counter overflow at level {parent_level}"
                )
            parent_payload[slot] += 1

            if parent_level != self.geometry.root_level:
                self._payloads[(parent_level, parent_node)] = list(parent_payload)
                if self._trust_cache_enabled:
                    self._trusted[(parent_level, parent_node)] = list(parent_payload)

            # Reseal the child under its new freshness counter.
            child_payload = self._payloads[(current_level, current_node)]
            addr = self.geometry.node_addr(current_level, current_node)
            self._macs[(current_level, current_node)] = node_mac(
                self.keys.mac_key,
                addr,
                parent_payload[slot],
                pack_counters(child_payload),
            )
            current_level, current_node = parent_level, parent_node

    def _bump(self, level: int, node: int, slot: int) -> None:
        payload = list(self._verified_payload(level, node))
        if payload[slot] >= self.counter_limit:
            raise CounterOverflowError(
                f"counter overflow at level {level}, node {node}, slot {slot} "
                f"(limit {self.counter_limit})"
            )
        payload[slot] += 1
        if level == self.geometry.root_level:
            self._root[slot] = payload[slot]
            return
        self._commit(level, node, payload)
