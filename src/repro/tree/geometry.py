"""Geometry of the 8-ary counter integrity tree and metadata layout.

The timing layer and the functional layer both need to answer the same
questions: *where* does the counter of a line live, *which* node at
level ``l`` covers an address, and what physical addresses do metadata
lines occupy (so cache models can index them).  This module owns that
arithmetic.

Simulated physical layout (addresses are synthetic; only distinctness
and locality matter to the cache models):

    [0, region)                      protected data
    [mac_base, mac_base + region/8)  fine-grained MAC array (8B per 64B)
    [tree_base, ...)                 counter tree, level 0 first
    [table_base, ...)                granularity table (16B per chunk)

Level ``l`` nodes are 64B lines holding 8 counters; a level-``l`` node
covers ``512B * 8**l`` of data.  The root is held on-chip and is never
fetched.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, List, Tuple

from repro.common.constants import (
    CACHELINE_BYTES,
    COUNTERS_PER_LINE,
    MAC_BYTES,
    TREE_ARITY,
)
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class TreeGeometry:
    """Derived geometry for one protected region.

    Attributes:
        region_bytes: size of the protected data region.
        arity: tree arity (8 in the paper's baseline).
        level_counts: number of nodes at each level, leaf level first.
        level_offsets: node-index offset of each level in the linear
            tree layout (for address computation).
    """

    region_bytes: int
    arity: int
    level_counts: Tuple[int, ...]
    level_offsets: Tuple[int, ...]
    mac_base: int
    tree_base: int
    table_base: int

    @classmethod
    def build(cls, region_bytes: int, arity: int = TREE_ARITY) -> "TreeGeometry":
        """Compute the geometry for a protected region of ``region_bytes``."""
        if region_bytes < CACHELINE_BYTES * arity:
            raise ConfigError(
                f"region of {region_bytes}B smaller than one tree node's span"
            )
        if region_bytes % CACHELINE_BYTES != 0:
            raise ConfigError("region size must be a multiple of 64B")

        leaf_lines = region_bytes // CACHELINE_BYTES
        counts: List[int] = []
        nodes = -(-leaf_lines // arity)  # ceil: level-0 node per 8 lines
        while True:
            counts.append(nodes)
            if nodes == 1:
                break
            nodes = -(-nodes // arity)

        offsets: List[int] = []
        acc = 0
        for count in counts:
            offsets.append(acc)
            acc += count

        mac_base = region_bytes
        mac_bytes_total = leaf_lines * MAC_BYTES
        tree_base = mac_base + mac_bytes_total
        tree_bytes_total = acc * CACHELINE_BYTES
        table_base = tree_base + tree_bytes_total
        return cls(
            region_bytes=region_bytes,
            arity=arity,
            level_counts=tuple(counts),
            level_offsets=tuple(offsets),
            mac_base=mac_base,
            tree_base=tree_base,
            table_base=table_base,
        )

    # -- structural queries -------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Number of node levels including the root level."""
        return len(self.level_counts)

    @property
    def root_level(self) -> int:
        """Level index of the root node (held on-chip)."""
        return self.num_levels - 1

    # The per-level arithmetic below sits on the simulator's hottest
    # path (every counter walk resolves node spans and addresses), so
    # the power-of-arity spans and per-level base addresses are
    # flattened into tuples once per geometry instead of recomputing
    # ``arity ** level`` on every call.  ``cached_property`` stores
    # into ``__dict__`` directly, which stays legal on a frozen
    # dataclass.

    @cached_property
    def _level_spans(self) -> Tuple[int, ...]:
        """span_of_level(l) for every level, precomputed."""
        return tuple(
            CACHELINE_BYTES * self.arity ** (level + 1)
            for level in range(self.num_levels)
        )

    @cached_property
    def _counter_spans(self) -> Tuple[int, ...]:
        """Bytes covered by one *counter* at each level (Eq. 3 divisor)."""
        return tuple(
            CACHELINE_BYTES * self.arity**level
            for level in range(self.num_levels)
        )

    @cached_property
    def _level_base_addrs(self) -> Tuple[int, ...]:
        """Simulated address of node 0 of every level."""
        return tuple(
            self.tree_base + offset * CACHELINE_BYTES
            for offset in self.level_offsets
        )

    def level_tables(self) -> Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]:
        """Flat per-level tables ``(spans, counter_spans, base_addrs)``.

        The export API of the batch engine (:mod:`repro.engine_fast`):
        tree-level/span/base resolution vectorizes over whole request
        windows by broadcasting these tuples into numpy arrays instead
        of calling :meth:`span_of_level`/:meth:`node_addr` per request.
        Index ``l`` gives the data span of one level-``l`` node, the
        data span of one level-``l`` *counter*, and the simulated
        address of node 0 of level ``l``.
        """
        return self._level_spans, self._counter_spans, self._level_base_addrs

    def span_of_level(self, level: int) -> int:
        """Bytes of data covered by one node at ``level``."""
        self._check_level(level)
        return self._level_spans[level]

    def node_of_addr(self, addr: int, level: int) -> int:
        """Index of the level-``level`` node covering byte ``addr``."""
        self._check_level(level)
        return addr // self._level_spans[level]

    def leaf_counter_index(self, addr: int) -> int:
        """Global index of the fine (64B) counter of ``addr``."""
        return addr // CACHELINE_BYTES

    def counter_slot(self, addr: int, level: int) -> Tuple[int, int]:
        """(node index, slot 0..7) of the level-``level`` counter of ``addr``.

        Level 0 is the fine counter in a leaf node; promoted counters
        of granularity ``64B * 8**l`` live at level ``l`` (paper Eq. 3).
        """
        self._check_level(level)
        region = addr // self._counter_spans[level]
        return region // self.arity, region % self.arity

    def parent(self, level: int, node_index: int) -> Tuple[int, int]:
        """(parent level, parent node index) of a node."""
        self._check_level(level + 1)
        return level + 1, node_index // self.arity

    def child_slot(self, level: int, node_index: int) -> int:
        """Slot (0..7) of this node inside its parent."""
        return node_index % self.arity

    # -- address computation (timing layer) ----------------------------------

    def node_addr(self, level: int, node_index: int) -> int:
        """Simulated physical address of a tree-node line (64B-aligned)."""
        self._check_level(level)
        if not 0 <= node_index < self.level_counts[level]:
            raise ConfigError(
                f"node {node_index} out of range at level {level} "
                f"(count {self.level_counts[level]})"
            )
        return self._level_base_addrs[level] + node_index * CACHELINE_BYTES

    def fine_mac_addr(self, line_index: int) -> int:
        """Address of the 8B fine MAC of global line ``line_index``."""
        return self.mac_base + line_index * MAC_BYTES

    def fine_mac_line_addr(self, line_index: int) -> int:
        """64B-aligned address of the MAC cacheline holding that MAC."""
        macs_per_line = CACHELINE_BYTES // MAC_BYTES
        return self.mac_base + (line_index // macs_per_line) * CACHELINE_BYTES

    def path_to_root(self, addr: int, start_level: int = 0) -> Iterator[Tuple[int, int]]:
        """Yield (level, node index) from ``start_level`` up to the root.

        The root level itself is included; callers that model the root
        as on-chip simply skip the final element.
        """
        self._check_level(start_level)
        node = self.node_of_addr(addr, start_level)
        for level in range(start_level, self.num_levels):
            yield level, node
            node //= self.arity

    def counters_at_level(self, level: int) -> int:
        """Total counters stored at ``level`` (8 per node)."""
        return self.level_counts[level] * COUNTERS_PER_LINE

    def metadata_bounds(self) -> dict:
        """Half-open [start, end) address range of every layout window.

        The granularity table stores 16B per 32KB chunk; its end is
        derived here rather than stored because only the table places
        anything past ``table_base``.
        """
        from repro.common.constants import CHUNK_BYTES

        table_bytes = -(-self.region_bytes // CHUNK_BYTES) * 16
        return {
            "data": (0, self.region_bytes),
            "mac": (self.mac_base, self.tree_base),
            "tree": (self.tree_base, self.table_base),
            "table": (self.table_base, self.table_base + table_bytes),
        }

    def classify_addr(self, addr: int) -> str:
        """Name of the layout window containing ``addr``.

        Cross-checked against the naive re-derivation in
        :meth:`repro.check.oracle.RefGeometry.classify`; returns
        ``"invalid"`` for addresses no window owns.
        """
        for name, (start, end) in self.metadata_bounds().items():
            if start <= addr < end:
                return name
        return "invalid"

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.num_levels:
            raise ConfigError(
                f"level {level} out of range (tree has {self.num_levels} levels)"
            )
