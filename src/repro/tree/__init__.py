"""Baseline 8-ary counter integrity tree: geometry + functional layer."""

from repro.tree.geometry import TreeGeometry
from repro.tree.integrity_tree import CounterTree

__all__ = ["TreeGeometry", "CounterTree"]
