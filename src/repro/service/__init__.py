"""Secure-memory-as-a-service: daemon, wire protocol, client, load driver.

The service tier puts a long-lived multi-tenant asyncio daemon in
front of :class:`~repro.secure_memory.session.EngineSession` shards.
Each tenant owns a keyed shard (scalar or fast engine per
``SoCConfig.sim_engine``) with its own quarantine/epoch state; requests
cross an authenticated ``repro-wire/v1`` envelope rather than trusting
the transport.  See docs/daemon.md.
"""

from repro.service.protocol import (
    FrameError,
    AuthError,
    EnvelopeError,
    WireError,
    MAX_FRAME_BYTES,
    WIRE_SCHEMA,
)
from repro.service.daemon import ServiceDaemon
from repro.service.client import ServiceClient

__all__ = [
    "ServiceDaemon",
    "ServiceClient",
    "WireError",
    "FrameError",
    "AuthError",
    "EnvelopeError",
    "MAX_FRAME_BYTES",
    "WIRE_SCHEMA",
]
