"""The multi-tenant asyncio daemon serving keyed engine shards.

One :class:`ServiceDaemon` listens on a Unix socket or TCP port and
serves many concurrent tenants.  Each tenant owns a keyed
:class:`~repro.secure_memory.session.EngineSession` shard -- scalar or
fast engine per the requested ``engine`` -- with its own
quarantine/key-epoch state; sessions live in the daemon, not the
connection, so a tenant may reconnect (or multiplex many tenants over
one connection) and keep stepping the same shard.

Engine stepping is synchronous CPU work executed on the event loop:
shards are single-threaded deterministic simulators, so serving a
window inline is both the simplest and the only ordering that keeps
per-tenant byte-parity.  Concurrency comes from interleaving *windows*
of many tenants, and from batched ingestion -- a whole-run ``step`` on
a fast shard replays through the prebuilt ``engine_fast`` arenas in a
single fused pass.

Durability (``--state-dir``): every tenant gets an fsync'd
``repro-tenant/v1`` journal (:mod:`repro.service.store`) recording the
opening snapshot and each committed step window's digest.  A restarted
daemon lazily **rehydrates** a persisted tenant on its next ``open``:
the session is rebuilt from the journaled params and replayed to the
recorded watermark, asserting the recorded observable digest after
every window, so a reattaching client resumes with byte-identical
digests and attestation versus an uninterrupted run.  A torn tail
entry (crash mid-append) is dropped and healed; the lost window simply
re-executes on retry.

Overload protection: admission control (``max_tenants``,
``max_inflight``, a per-tenant step-window byte budget) sheds load
with typed retryable ``overloaded`` errors carrying a ``retry_after``
hint -- counted in ``service.shed_requests`` -- instead of stalling or
exhausting memory.

Failure containment (the fuzz suite drives every row of the failure
matrix in docs/daemon.md): framing damage counts
``service.rejected_frames`` and drops only the offending connection;
well-framed garbage earns an error response; per-op errors
(unknown tenant, bad auth, engine exceptions) are confined to an
error response for that request id.  A byte-identical *duplicate* of
the last committed request (a client retry after a lost response) is
answered idempotently from a per-tenant response cache -- a retried
``step`` never double-applies.  No path crashes the daemon or leaks a
session.
"""

from __future__ import annotations

import asyncio
import hmac
import os
import secrets as _secrets
from typing import Dict, List, Optional, Tuple

from repro.obs import ObsContext
from repro.secure_memory.session import EngineSession
from repro.service import protocol
from repro.service.protocol import (
    AuthError,
    EnvelopeError,
    FrameError,
    OverloadError,
    UnknownTenantError,
    WireError,
)
from repro.service.store import TenantStore

#: Engine knobs ``open`` accepts, with bounds that keep one tenant from
#: monopolizing the daemon.
MAX_DURATION_CYCLES = 200_000.0
MAX_DATA_BYTES = 1 << 24

#: Canonical-JSON size estimate of one observable row, used to convert
#: the per-window byte budget into a row cap.
STEP_ROW_BYTES = 64

#: The ``open`` params the tenant journal header binds (and rehydration
#: replays); everything :meth:`EngineSession.from_params` accepts.
SESSION_PARAM_KEYS = (
    "scenario", "scheme", "engine", "duration", "seed", "warmup",
    "data_bytes",
)


class TenantShard:
    """One tenant's session plus its authentication/durability state."""

    __slots__ = ("name", "secret", "kid", "seq", "session", "journal",
                 "last")

    def __init__(
        self, name: str, secret: bytes, session: EngineSession
    ) -> None:
        self.name = name
        self.secret = secret
        self.kid = protocol.kid_for(secret)
        self.seq = 0
        self.session = session
        #: ``repro-tenant/v1`` journal when the daemon persists state.
        self.journal = None
        #: ``(seq, tag, body)`` of the last committed mutating request,
        #: so a byte-identical retry is answered without re-applying.
        self.last: Optional[Tuple[int, str, Dict[str, object]]] = None


class ServiceDaemon:
    """Asyncio front-end over per-tenant engine shards."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        service_secret: Optional[bytes] = None,
        obs: Optional[ObsContext] = None,
        state_dir: Optional[str] = None,
        max_tenants: Optional[int] = None,
        max_inflight: Optional[int] = None,
        max_step_bytes: Optional[int] = None,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path / port required")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.service_secret = service_secret or _secrets.token_bytes(32)
        self.obs = obs or ObsContext.disabled()
        self.counters = self.obs.registry.group("service")
        self.counters.declare(
            "shed_requests", "duplicate_replays", "sessions_rehydrated",
            "rejected_frames",
        )
        self.tenants: Dict[str, TenantShard] = {}
        self.store = TenantStore(state_dir) if state_dir else None
        self.max_tenants = max_tenants
        self.max_inflight = max_inflight
        self.max_step_bytes = max_step_bytes
        self._inflight = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._peers: set = set()
        self._closed = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        if self.socket_path is not None:
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=self.socket_path
            )
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, host=self.host, port=self.port
            )
            if self.port == 0:
                self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> int:
        """Graceful drain: stop accepting, park journals, unlink socket.

        Returns the number of tenant journals drained (flushed and
        closed; every append was already fsync'd, so a parked journal
        is durable by construction).  Persisted sessions are *not*
        deleted -- a restarted daemon rehydrates them on ``open``.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Sever live connections: a drained daemon must not keep
        # serving (or resurrecting) tenants through lingering streams.
        for writer in list(self._peers):
            writer.close()
        self._peers.clear()
        drained = 0
        for shard in list(self.tenants.values()):
            if shard.journal is not None:
                shard.journal.close()
                drained += 1
            self.counters.bump("sessions_closed")
        self.tenants.clear()
        if self.socket_path and os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._closed.set()
        return drained

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Run until ``stop`` is set, then shut down cleanly."""
        await self.start()
        try:
            await stop.wait()
        finally:
            await self.close()

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        self.counters.bump("connections")
        self._peers.add(writer)
        try:
            while True:
                try:
                    frame = await protocol.read_frame(reader)
                except FrameError as exc:
                    self.counters.bump("rejected_frames")
                    if getattr(exc, "recoverable", False):
                        # Stream still synchronized: answer and go on.
                        await self._send(
                            writer, protocol.error_response(None, exc)
                        )
                        continue
                    # Desynchronized: best-effort error, then drop.
                    try:
                        await self._send(
                            writer, protocol.error_response(None, exc)
                        )
                    except (ConnectionError, RuntimeError):
                        pass
                    break
                if frame is None:
                    break  # clean EOF
                _, request = frame
                if (
                    self.max_inflight is not None
                    and self._inflight >= self.max_inflight
                ):
                    response = self._shed(
                        request.get("id"),
                        f"daemon at max inflight ({self.max_inflight})",
                        retry_after=0.05,
                    )
                else:
                    self._inflight += 1
                    try:
                        response = await self._dispatch(request)
                    finally:
                        self._inflight -= 1
                await self._send(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._peers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _send(self, writer, payload: Dict[str, object]) -> None:
        writer.write(protocol.encode_frame(payload))
        await writer.drain()

    def _shed(
        self, request_id, why: str, retry_after: float
    ) -> Dict[str, object]:
        """One admission-control rejection: typed, retryable, counted."""
        self.counters.bump("shed_requests")
        exc = OverloadError(f"{why}; retry later", retry_after=retry_after)
        self.counters.bump(f"errors.{exc.code}")
        return protocol.error_response(request_id, exc)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch(
        self, request: Dict[str, object]
    ) -> Dict[str, object]:
        request_id = request.get("id")
        try:
            op = protocol.validate_envelope(request)
            self.counters.bump(f"op.{op}")
            if op in protocol.SERVICE_OPS:
                body = self._service_op(op)
            elif op == "open":
                body = self._op_open(request)
            else:
                # Yield once so concurrently connected clients can be
                # admitted (or shed) while this envelope holds a slot.
                await asyncio.sleep(0)
                body = self._tenant_op(op, request)
            return protocol.ok_response(request_id, body)
        except WireError as exc:
            # Shed sites bump service.shed_requests themselves; here we
            # only classify the error for the per-code counters.
            self.counters.bump(f"errors.{exc.code}")
            return protocol.error_response(request_id, exc)
        except Exception as exc:  # engine errors stay per-request
            self.counters.bump("errors.internal")
            return protocol.error_response(request_id, exc)

    def _service_op(self, op: str) -> Dict[str, object]:
        if op == "ping":
            return {"pong": True}
        body: Dict[str, object] = {  # stats
            "tenants": len(self.tenants),
            "service_kid": protocol.kid_for(self.service_secret),
            "inflight": self._inflight,
            "limits": {
                "max_tenants": self.max_tenants,
                "max_inflight": self.max_inflight,
                "max_step_bytes": self.max_step_bytes,
            },
            "metrics": self.obs.registry.snapshot(),
        }
        if self.store is not None:
            body["persisted_tenants"] = self.store.count()
        return body

    # ------------------------------------------------------------------
    # open: attach, rehydrate, or create
    # ------------------------------------------------------------------

    def _admit_tenant(self) -> None:
        if (
            self.max_tenants is not None
            and len(self.tenants) >= self.max_tenants
        ):
            self.counters.bump("shed_requests")
            raise OverloadError(
                f"tenant limit of {self.max_tenants} reached; retry later",
                retry_after=0.25,
            )

    def _op_open(self, request: Dict[str, object]) -> Dict[str, object]:
        tenant = request["tenant"]
        body = request.get("body", {})
        secret = bytes.fromhex(body.get("secret_hex", ""))
        shard = self.tenants.get(tenant)
        if shard is not None:
            # Re-attach: same key proves the same principal; the shard
            # (and its seq watermark) survives reconnects.
            if request["kid"] != shard.kid:
                raise AuthError(
                    f"tenant {tenant!r} already open under another key"
                )
            protocol.verify_tag(shard.secret, request)
            self.counters.bump("sessions_reattached")
            return {
                "attached": True,
                "seq": shard.seq,
                "snapshot": shard.session.snapshot(),
            }
        if not secret:
            raise EnvelopeError("open requires a non-empty secret_hex")
        if self.store is not None and self.store.exists(tenant):
            return self._op_rehydrate(tenant, secret, request)
        protocol.verify_tag(secret, request)
        self._admit_tenant()
        duration = float(body.get("duration", 2000.0))
        if not 0 < duration <= MAX_DURATION_CYCLES:
            raise EnvelopeError(
                f"duration {duration} outside (0, {MAX_DURATION_CYCLES}]"
            )
        data_bytes = int(body.get("data_bytes", 0))
        if not 0 <= data_bytes <= MAX_DATA_BYTES:
            raise EnvelopeError(
                f"data_bytes {data_bytes} outside [0, {MAX_DATA_BYTES}]"
            )
        params = {
            "scenario": body.get("scenario", "cc1"),
            "scheme": body.get("scheme", "ours"),
            "engine": body.get("engine", "scalar"),
            "duration": duration,
            "seed": int(body.get("seed", 0)),
            "warmup": bool(body.get("warmup", False)),
            "data_bytes": data_bytes,
        }
        session = EngineSession.from_params(
            tenant=tenant, secret=secret, **params
        )
        shard = TenantShard(tenant, secret, session)
        shard.seq = request["seq"]
        if self.store is not None:
            shard.journal = self.store.create(tenant, shard.kid, params)
            shard.journal.record_open(shard.seq, session.snapshot())
        self.tenants[tenant] = shard
        self.counters.bump("sessions_opened")
        return {
            "attached": False,
            "seq": shard.seq,
            "engine": session.engine,
            "total_requests": session.total_requests,
        }

    def _op_rehydrate(
        self, tenant: str, secret: bytes, request: Dict[str, object]
    ) -> Dict[str, object]:
        """Rebuild a persisted tenant from its journal, then attach.

        The journal header binds the key id: a different key cannot
        hijack persisted state.  Replay verifies the recorded
        observable digest after every step window; an entry that fails
        verification (tamper, torn write that still parsed) ends the
        usable prefix exactly like a torn tail -- the journal heals to
        the good prefix and the dropped windows re-execute on retry.
        """
        assert self.store is not None
        loaded = self.store.load(tenant)
        if loaded is None:
            # Header damage: nothing trustworthy survived.  Retry the
            # open as a fresh session (the store discarded the file).
            return self._op_open(request)
        journal, entries = loaded
        if request["kid"] != journal.header.get("kid"):
            raise AuthError(
                f"tenant {tenant!r} persisted under another key"
            )
        protocol.verify_tag(secret, request)
        self._admit_tenant()
        params = dict(journal.header.get("params", {}))
        damaged = journal.dropped_entries
        while True:
            session = EngineSession.from_params(
                tenant=tenant, secret=secret,
                **{k: params[k] for k in SESSION_PARAM_KEYS if k in params},
            )
            ok, seq, last, valid = self._replay(session, entries)
            if ok:
                break
            damaged += len(entries) - len(valid)
            entries = valid
        if damaged:
            journal.truncate_to(entries)
        shard = TenantShard(tenant, secret, session)
        shard.seq = seq
        shard.last = last
        shard.journal = journal
        self.tenants[tenant] = shard
        self.counters.bump("sessions_rehydrated")
        return {
            "attached": True,
            "rehydrated": True,
            "dropped_entries": damaged,
            "seq": shard.seq,
            "snapshot": session.snapshot(),
        }

    @staticmethod
    def _replay(
        session: EngineSession, entries: List[Dict[str, object]]
    ) -> Tuple[bool, int, Optional[Tuple[int, str, Dict[str, object]]],
               List[Dict[str, object]]]:
        """Apply journal entries in order; verify digests as recorded.

        Returns ``(ok, seq_watermark, last_response, valid_prefix)``.
        ``ok=False`` means entry ``len(valid_prefix)`` lied about the
        deterministic replay (digest or issued mismatch): the caller
        truncates to the prefix and replays a fresh session.
        """
        seq = 0
        last: Optional[Tuple[int, str, Dict[str, object]]] = None
        for index, entry in enumerate(entries):
            kind = entry.get("type")
            try:
                if kind == "open":
                    seq = int(entry["seq"])
                elif kind == "step":
                    target = int(entry["issued"])
                    rows = session.step_to(target)
                    if (
                        session.issued != target
                        or session.observable_digest() != entry["digest"]
                    ):
                        return False, 0, None, entries[:index]
                    seq = int(entry["seq"])
                    last = (seq, str(entry["tag"]), {
                        "observables": rows,
                        "issued": session.issued,
                        "total_requests": session.total_requests,
                        "done": session.done,
                        "digest": str(entry["digest"]),
                    })
                elif kind == "put":
                    session.put(
                        int(entry["addr"]),
                        bytes.fromhex(entry["data_hex"]),
                    )
                    seq = int(entry["seq"])
                    last = (seq, str(entry["tag"]), {"ok": True})
                else:
                    return False, 0, None, entries[:index]
            except (KeyError, ValueError, TypeError):
                return False, 0, None, entries[:index]
        return True, seq, last, entries

    # ------------------------------------------------------------------
    # Tenant ops
    # ------------------------------------------------------------------

    def _tenant_op(
        self, op: str, request: Dict[str, object]
    ) -> Dict[str, object]:
        tenant = request["tenant"]
        shard = self.tenants.get(tenant)
        if shard is None:
            if self.store is not None and self.store.exists(tenant):
                # Persisted but not yet rehydrated: only `open` may
                # rehydrate (it carries the secret); tell the client to
                # resync there rather than desyncing the stream.
                raise UnknownTenantError(
                    f"tenant {tenant!r} has no open session "
                    "(persisted state exists; re-open to rehydrate)"
                )
            raise UnknownTenantError(
                f"tenant {tenant!r} has no open session"
            )
        protocol.verify_tag(shard.secret, request)
        seq = request["seq"]
        if (
            shard.last is not None
            and seq == shard.last[0]
            and hmac.compare_digest(shard.last[1], request["tag"])
        ):
            # Byte-identical retry of the last committed request (the
            # response was lost in transit): answer idempotently, never
            # double-apply.
            self.counters.bump("duplicate_replays")
            return dict(shard.last[2])
        if seq <= shard.seq:
            raise AuthError(
                f"stale seq {seq} (watermark {shard.seq})"
            )
        shard.seq = seq
        session = shard.session
        body = request.get("body", {})

        if op == "step":
            requests = body.get("requests")
            if requests is not None:
                requests = int(requests)
                if requests <= 0:
                    raise EnvelopeError("step requests must be positive")
            if self.max_step_bytes is not None:
                budget_rows = max(1, self.max_step_bytes // STEP_ROW_BYTES)
                window = (
                    requests
                    if requests is not None
                    else max(0, session.total_requests - session.issued)
                )
                if window > budget_rows:
                    self.counters.bump("shed_requests")
                    raise OverloadError(
                        f"step window of {window} rows exceeds the "
                        f"{self.max_step_bytes}-byte budget "
                        f"(~{budget_rows} rows); retry with a bounded "
                        "window",
                        retry_after=0.0,
                    )
            window_rows = session.step(requests)
            self.counters.bump("requests_stepped", len(window_rows))
            result = {
                "observables": window_rows,
                "issued": session.issued,
                "total_requests": session.total_requests,
                "done": session.done,
                "digest": session.observable_digest(),
            }
            if shard.journal is not None:
                shard.journal.record_step(
                    seq, request["tag"], session.issued, result["digest"]
                )
            shard.last = (seq, request["tag"], result)
            return result
        if op == "put":
            addr = int(body.get("addr", 0))
            data_hex = body.get("data_hex", "")
            session.put(addr, bytes.fromhex(data_hex))
            if shard.journal is not None:
                shard.journal.record_put(seq, request["tag"], addr, data_hex)
            result = {"ok": True}
            shard.last = (seq, request["tag"], result)
            return result
        if op == "get":
            data = session.get(
                int(body.get("addr", 0)), int(body.get("size", 64))
            )
            result = {"data_hex": data.hex()}
            shard.last = (seq, request["tag"], result)
            return result
        if op == "snapshot":
            result = session.snapshot()
            shard.last = (seq, request["tag"], result)
            return result
        if op == "report":
            self.counters.bump("reports_signed")
            result = protocol.sign_report(
                session.report(), self.service_secret
            )
            shard.last = (seq, request["tag"], result)
            return result
        # close: drop the shard and its persisted state (the name is
        # free again; a closed tenant is gone, not resumable).
        del self.tenants[tenant]
        if shard.journal is not None:
            shard.journal.unlink()
        elif self.store is not None:
            self.store.discard(tenant)
        self.counters.bump("sessions_closed")
        return {
            "closed": True,
            "issued": session.issued,
            "digest": session.observable_digest(),
        }
