"""The multi-tenant asyncio daemon serving keyed engine shards.

One :class:`ServiceDaemon` listens on a Unix socket or TCP port and
serves many concurrent tenants.  Each tenant owns a keyed
:class:`~repro.secure_memory.session.EngineSession` shard -- scalar or
fast engine per the requested ``engine`` -- with its own
quarantine/key-epoch state; sessions live in the daemon, not the
connection, so a tenant may reconnect (or multiplex many tenants over
one connection) and keep stepping the same shard.

Engine stepping is synchronous CPU work executed on the event loop:
shards are single-threaded deterministic simulators, so serving a
window inline is both the simplest and the only ordering that keeps
per-tenant byte-parity.  Concurrency comes from interleaving *windows*
of many tenants, and from batched ingestion -- a whole-run ``step`` on
a fast shard replays through the prebuilt ``engine_fast`` arenas in a
single fused pass.

Failure containment (the fuzz suite drives every row of the failure
matrix in docs/daemon.md): framing damage counts
``service.rejected_frames`` and drops only the offending connection;
well-framed garbage earns an error response; per-op errors
(unknown tenant, bad auth, engine exceptions) are confined to an
error response for that request id.  No path crashes the daemon or
leaks a session.
"""

from __future__ import annotations

import asyncio
import os
import secrets as _secrets
from typing import Dict, Optional

from repro.obs import ObsContext
from repro.secure_memory.session import EngineSession
from repro.service import protocol
from repro.service.protocol import (
    AuthError,
    EnvelopeError,
    FrameError,
    WireError,
)

#: Engine knobs ``open`` accepts, with bounds that keep one tenant from
#: monopolizing the daemon.
MAX_DURATION_CYCLES = 200_000.0
MAX_DATA_BYTES = 1 << 24


class TenantShard:
    """One tenant's session plus its authentication state."""

    __slots__ = ("name", "secret", "kid", "seq", "session")

    def __init__(
        self, name: str, secret: bytes, session: EngineSession
    ) -> None:
        self.name = name
        self.secret = secret
        self.kid = protocol.kid_for(secret)
        self.seq = 0
        self.session = session


class ServiceDaemon:
    """Asyncio front-end over per-tenant engine shards."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        service_secret: Optional[bytes] = None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path / port required")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.service_secret = service_secret or _secrets.token_bytes(32)
        self.obs = obs or ObsContext.disabled()
        self.counters = self.obs.registry.group("service")
        self.tenants: Dict[str, TenantShard] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        if self.socket_path is not None:
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=self.socket_path
            )
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, host=self.host, port=self.port
            )
            if self.port == 0:
                self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop listening, drop sessions, unlink the socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for shard in list(self.tenants.values()):
            self.counters.bump("sessions_closed")
        self.tenants.clear()
        if self.socket_path and os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._closed.set()

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Run until ``stop`` is set, then shut down cleanly."""
        await self.start()
        try:
            await stop.wait()
        finally:
            await self.close()

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        self.counters.bump("connections")
        try:
            while True:
                try:
                    frame = await protocol.read_frame(reader)
                except FrameError as exc:
                    self.counters.bump("rejected_frames")
                    if getattr(exc, "recoverable", False):
                        # Stream still synchronized: answer and go on.
                        await self._send(
                            writer, protocol.error_response(None, exc)
                        )
                        continue
                    # Desynchronized: best-effort error, then drop.
                    try:
                        await self._send(
                            writer, protocol.error_response(None, exc)
                        )
                    except (ConnectionError, RuntimeError):
                        pass
                    break
                if frame is None:
                    break  # clean EOF
                _, request = frame
                response = self._dispatch(request)
                await self._send(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _send(self, writer, payload: Dict[str, object]) -> None:
        writer.write(protocol.encode_frame(payload))
        await writer.drain()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, request: Dict[str, object]) -> Dict[str, object]:
        request_id = request.get("id")
        try:
            op = protocol.validate_envelope(request)
            self.counters.bump(f"op.{op}")
            if op in protocol.SERVICE_OPS:
                body = self._service_op(op)
            elif op == "open":
                body = self._op_open(request)
            else:
                body = self._tenant_op(op, request)
            return protocol.ok_response(request_id, body)
        except WireError as exc:
            self.counters.bump(f"errors.{exc.code}")
            return protocol.error_response(request_id, exc)
        except Exception as exc:  # engine errors stay per-request
            self.counters.bump("errors.internal")
            return protocol.error_response(request_id, exc)

    def _service_op(self, op: str) -> Dict[str, object]:
        if op == "ping":
            return {"pong": True}
        return {  # stats
            "tenants": len(self.tenants),
            "service_kid": protocol.kid_for(self.service_secret),
            "metrics": self.obs.registry.snapshot(),
        }

    def _op_open(self, request: Dict[str, object]) -> Dict[str, object]:
        tenant = request["tenant"]
        body = request.get("body", {})
        secret = bytes.fromhex(body.get("secret_hex", ""))
        shard = self.tenants.get(tenant)
        if shard is None and not secret:
            raise EnvelopeError("open requires a non-empty secret_hex")
        if shard is not None:
            # Re-attach: same key proves the same principal; the shard
            # (and its seq watermark) survives reconnects.
            if request["kid"] != shard.kid:
                raise AuthError(
                    f"tenant {tenant!r} already open under another key"
                )
            protocol.verify_tag(shard.secret, request)
            self.counters.bump("sessions_reattached")
            return {
                "attached": True,
                "seq": shard.seq,
                "snapshot": shard.session.snapshot(),
            }
        protocol.verify_tag(secret, request)
        duration = float(body.get("duration", 2000.0))
        if not 0 < duration <= MAX_DURATION_CYCLES:
            raise EnvelopeError(
                f"duration {duration} outside (0, {MAX_DURATION_CYCLES}]"
            )
        data_bytes = int(body.get("data_bytes", 0))
        if not 0 <= data_bytes <= MAX_DATA_BYTES:
            raise EnvelopeError(
                f"data_bytes {data_bytes} outside [0, {MAX_DATA_BYTES}]"
            )
        session = EngineSession.from_params(
            scenario=body.get("scenario", "cc1"),
            scheme=body.get("scheme", "ours"),
            engine=body.get("engine", "scalar"),
            duration=duration,
            seed=int(body.get("seed", 0)),
            warmup=bool(body.get("warmup", False)),
            tenant=tenant,
            secret=secret,
            data_bytes=data_bytes,
        )
        shard = TenantShard(tenant, secret, session)
        shard.seq = request["seq"]
        self.tenants[tenant] = shard
        self.counters.bump("sessions_opened")
        return {
            "attached": False,
            "seq": shard.seq,
            "engine": session.engine,
            "total_requests": session.total_requests,
        }

    def _tenant_op(
        self, op: str, request: Dict[str, object]
    ) -> Dict[str, object]:
        tenant = request["tenant"]
        shard = self.tenants.get(tenant)
        if shard is None:
            raise EnvelopeError(f"tenant {tenant!r} has no open session")
        protocol.verify_tag(shard.secret, request)
        if request["seq"] <= shard.seq:
            raise AuthError(
                f"stale seq {request['seq']} (watermark {shard.seq})"
            )
        shard.seq = request["seq"]
        session = shard.session
        body = request.get("body", {})

        if op == "step":
            requests = body.get("requests")
            if requests is not None:
                requests = int(requests)
                if requests <= 0:
                    raise EnvelopeError("step requests must be positive")
            window = session.step(requests)
            self.counters.bump("requests_stepped", len(window))
            return {
                "observables": window,
                "issued": session.issued,
                "total_requests": session.total_requests,
                "done": session.done,
                "digest": session.observable_digest(),
            }
        if op == "put":
            session.put(
                int(body.get("addr", 0)),
                bytes.fromhex(body.get("data_hex", "")),
            )
            return {"ok": True}
        if op == "get":
            data = session.get(
                int(body.get("addr", 0)), int(body.get("size", 64))
            )
            return {"data_hex": data.hex()}
        if op == "snapshot":
            return session.snapshot()
        if op == "report":
            self.counters.bump("reports_signed")
            return protocol.sign_report(
                session.report(), self.service_secret
            )
        # close
        del self.tenants[tenant]
        self.counters.bump("sessions_closed")
        return {
            "closed": True,
            "issued": session.issued,
            "digest": session.observable_digest(),
        }
