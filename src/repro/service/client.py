"""Client library for the ``repro-wire/v1`` daemon.

Two clients share the envelope logic:

* :class:`ServiceClient` -- blocking, one connection, for the CLI verbs
  (``repro client open/step/report/close``) and for tests.
* :class:`AsyncServiceClient` -- asyncio, multiplexes many tenants over
  ONE connection with response dispatch by request id.  The load driver
  runs thousands of tenant sessions over a handful of connections, so
  tenant-count scaling never collides with file-descriptor limits.

Both keep a per-tenant ``seq`` watermark; after a reconnect,
``open`` (re-attach) returns the daemon's watermark so the client can
resume above it.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
from typing import Dict, Optional

from repro.service import protocol
from repro.service.protocol import HEADER_BYTES, WireError


class ServiceError(WireError):
    """An error response from the daemon, raised client-side."""

    code = "service-error"

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def _raise_on_error(response: Dict[str, object]) -> Dict[str, object]:
    if not response.get("ok"):
        err = response.get("error", {})
        raise ServiceError(
            err.get("code", "unknown"), err.get("message", "unknown error")
        )
    return response["body"]  # type: ignore[return-value]


class _SeqBook:
    """Per-tenant monotonic sequence numbers."""

    def __init__(self) -> None:
        self._seqs: Dict[str, int] = {}

    def next(self, tenant: str) -> int:
        seq = self._seqs.get(tenant, 0) + 1
        self._seqs[tenant] = seq
        return seq

    def known(self, tenant: str) -> bool:
        return tenant in self._seqs

    def resume(self, tenant: str, watermark: int) -> None:
        self._seqs[tenant] = max(self._seqs.get(tenant, 0), int(watermark))


class ServiceClient:
    """Blocking single-connection client."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: float = 30.0,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path / port required")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._ids = itertools.count(1)
        self._seqs = _SeqBook()

    # -- connection -----------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        self._sock = sock
        return self

    def close_connection(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close_connection()

    # -- framing --------------------------------------------------------

    def _recv_exactly(self, n: int) -> bytes:
        assert self._sock is not None
        chunks = []
        while n:
            chunk = self._sock.recv(n)
            if not chunk:
                raise protocol.FrameError("connection closed mid-frame")
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    def request(
        self,
        op: str,
        body: Optional[Dict[str, object]] = None,
        tenant: str = "",
        secret: bytes = b"",
    ) -> Dict[str, object]:
        """Send one envelope and return the (unwrapped) response body."""
        if self._sock is None:
            self.connect()
        if (
            op in protocol.TENANT_OPS
            and op != "open"
            and not self._seqs.known(tenant)
        ):
            # Fresh process, existing daemon session: re-attach first to
            # learn the daemon's seq watermark (open is the resync
            # point of the protocol -- see docs/daemon.md).
            self.open(tenant, secret)
        seq = self._seqs.next(tenant) if op in protocol.TENANT_OPS else 0
        env = protocol.make_request(
            next(self._ids), op, body, tenant=tenant, seq=seq, secret=secret
        )
        assert self._sock is not None
        self._sock.sendall(protocol.encode_frame(env))
        length = protocol.decode_length(self._recv_exactly(HEADER_BYTES))
        response = protocol.decode_body(self._recv_exactly(length))
        out = _raise_on_error(response)
        if op == "open":
            self._seqs.resume(tenant, out.get("seq", seq))
        return out

    # -- verbs ----------------------------------------------------------

    def ping(self) -> Dict[str, object]:
        return self.request("ping")

    def stats(self) -> Dict[str, object]:
        return self.request("stats")

    def open(
        self, tenant: str, secret: bytes, **params
    ) -> Dict[str, object]:
        body = dict(params)
        body["secret_hex"] = secret.hex()
        return self.request("open", body, tenant=tenant, secret=secret)

    def step(
        self,
        tenant: str,
        secret: bytes,
        requests: Optional[int] = None,
    ) -> Dict[str, object]:
        body = {} if requests is None else {"requests": requests}
        return self.request("step", body, tenant=tenant, secret=secret)

    def put(
        self, tenant: str, secret: bytes, addr: int, data: bytes
    ) -> Dict[str, object]:
        body = {"addr": addr, "data_hex": data.hex()}
        return self.request("put", body, tenant=tenant, secret=secret)

    def get(
        self, tenant: str, secret: bytes, addr: int, size: int = 64
    ) -> bytes:
        body = {"addr": addr, "size": size}
        out = self.request("get", body, tenant=tenant, secret=secret)
        return bytes.fromhex(out["data_hex"])

    def report(self, tenant: str, secret: bytes) -> Dict[str, object]:
        return self.request("report", tenant=tenant, secret=secret)

    def snapshot(self, tenant: str, secret: bytes) -> Dict[str, object]:
        return self.request("snapshot", tenant=tenant, secret=secret)

    def close(self, tenant: str, secret: bytes) -> Dict[str, object]:
        return self.request("close", tenant=tenant, secret=secret)


class AsyncServiceClient:
    """Asyncio client multiplexing many tenants over one connection.

    Requests may be issued concurrently from many tasks; a single
    reader task dispatches responses to waiters by request id, so in-
    flight windows from different tenants interleave freely on the one
    stream.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path / port required")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = itertools.count(1)
        self._seqs = _SeqBook()
        self._waiters: Dict[int, asyncio.Future] = {}
        self._pump: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()

    async def connect(self) -> "AsyncServiceClient":
        if self.socket_path is not None:
            self._reader, self._writer = await asyncio.open_unix_connection(
                self.socket_path
            )
        else:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        self._pump = asyncio.ensure_future(self._pump_responses())
        return self

    async def close_connection(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except (asyncio.CancelledError, Exception):
                pass
            self._pump = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        for future in self._waiters.values():
            if not future.done():
                future.set_exception(
                    protocol.FrameError("connection closed")
                )
        self._waiters.clear()

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close_connection()

    async def _pump_responses(self) -> None:
        assert self._reader is not None
        try:
            while True:
                frame = await protocol.read_frame(self._reader)
                if frame is None:
                    break
                _, response = frame
                future = self._waiters.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (protocol.FrameError, ConnectionError) as exc:
            for future in self._waiters.values():
                if not future.done():
                    future.set_exception(exc)
            self._waiters.clear()

    async def request(
        self,
        op: str,
        body: Optional[Dict[str, object]] = None,
        tenant: str = "",
        secret: bytes = b"",
    ) -> Dict[str, object]:
        assert self._writer is not None
        request_id = next(self._ids)
        seq = self._seqs.next(tenant) if op in protocol.TENANT_OPS else 0
        env = protocol.make_request(
            request_id, op, body, tenant=tenant, seq=seq, secret=secret
        )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters[request_id] = future
        async with self._write_lock:
            self._writer.write(protocol.encode_frame(env))
            await self._writer.drain()
        response = await future
        out = _raise_on_error(response)
        if op == "open":
            self._seqs.resume(tenant, out.get("seq", seq))
        return out

    async def open(
        self, tenant: str, secret: bytes, **params
    ) -> Dict[str, object]:
        body = dict(params)
        body["secret_hex"] = secret.hex()
        return await self.request("open", body, tenant=tenant, secret=secret)

    async def step(
        self,
        tenant: str,
        secret: bytes,
        requests: Optional[int] = None,
    ) -> Dict[str, object]:
        body = {} if requests is None else {"requests": requests}
        return await self.request("step", body, tenant=tenant, secret=secret)

    async def put(
        self, tenant: str, secret: bytes, addr: int, data: bytes
    ) -> Dict[str, object]:
        body = {"addr": addr, "data_hex": data.hex()}
        return await self.request("put", body, tenant=tenant, secret=secret)

    async def get(
        self, tenant: str, secret: bytes, addr: int, size: int = 64
    ) -> bytes:
        body = {"addr": addr, "size": size}
        out = await self.request("get", body, tenant=tenant, secret=secret)
        return bytes.fromhex(out["data_hex"])

    async def report(self, tenant: str, secret: bytes) -> Dict[str, object]:
        return await self.request("report", tenant=tenant, secret=secret)

    async def close(self, tenant: str, secret: bytes) -> Dict[str, object]:
        return await self.request("close", tenant=tenant, secret=secret)
