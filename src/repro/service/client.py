"""Client library for the ``repro-wire/v1`` daemon.

Two clients share the envelope logic:

* :class:`ServiceClient` -- blocking, one connection, for the CLI verbs
  (``repro client open/step/report/close``) and for tests.
* :class:`AsyncServiceClient` -- asyncio, multiplexes many tenants over
  ONE connection with response dispatch by request id.  The load driver
  runs thousands of tenant sessions over a handful of connections, so
  tenant-count scaling never collides with file-descriptor limits.

Both keep a per-tenant ``seq`` watermark; after a reconnect,
``open`` (re-attach) returns the daemon's watermark so the client can
resume above it.

Resilience
----------
Connection failures never leak raw ``ConnectionRefusedError`` /
``socket.timeout``: both clients retry with capped, deterministic
jittered exponential backoff (:func:`reconnect_delay`, mirroring
``ResiliencePolicy.backoff``) and raise a typed
:class:`ServiceUnavailableError` naming the endpoint and attempt count
once the budget is spent.

A request that dies mid-flight is retried **idempotently**: the
envelope is built once (fixed ``seq`` and ``tag``), the client
reconnects, re-attaches the tenant via ``open`` (using the params
cached from the original ``open``, so a restarted daemon can
rehydrate), and re-sends the *same* envelope.  The daemon either
answers from its duplicate cache (the window committed before the
crash) or re-executes the deterministic window -- a retried ``step``
never double-applies.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import socket
import time
from typing import Dict, Optional

from repro.service import protocol
from repro.service.protocol import HEADER_BYTES, WireError


class ServiceError(WireError):
    """An error response from the daemon, raised client-side.

    ``retry_after`` is the daemon's backoff hint in seconds when the
    error is a shed (``code == "overloaded"``), else ``None``.
    """

    code = "service-error"

    def __init__(
        self,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after


class ServiceUnavailableError(WireError):
    """The daemon endpoint could not be reached within the retry budget."""

    code = "service-unavailable"

    def __init__(
        self, endpoint: str, attempts: int, cause: Optional[Exception] = None
    ) -> None:
        detail = f": {cause}" if cause is not None else ""
        super().__init__(
            f"service at {endpoint} unavailable after "
            f"{attempts} attempt(s){detail}"
        )
        self.endpoint = endpoint
        self.attempts = attempts
        self.cause = cause


def reconnect_delay(
    endpoint: str, attempt: int, base: float = 0.05, cap: float = 1.0
) -> float:
    """Capped exponential backoff with deterministic jitter.

    The jitter fraction is keyed BLAKE2b of ``endpoint:attempt`` (the
    same discipline as ``ResiliencePolicy.backoff`` in
    :mod:`repro.sim.resilient`), so retry schedules are reproducible in
    tests while still de-synchronizing distinct endpoints.
    """
    raw = min(base * (2 ** attempt), cap)
    seed = hashlib.blake2b(
        f"{endpoint}:{attempt}".encode("utf-8"),
        digest_size=8,
        person=b"repro-reconnect",
    ).digest()
    jitter = int.from_bytes(seed, "big") / float(1 << 64)
    return raw * (0.5 + jitter)


def _raise_on_error(response: Dict[str, object]) -> Dict[str, object]:
    if not response.get("ok"):
        err = response.get("error", {})
        raise ServiceError(
            err.get("code", "unknown"),
            err.get("message", "unknown error"),
            retry_after=err.get("retry_after"),
        )
    return response["body"]  # type: ignore[return-value]


class _SeqBook:
    """Per-tenant monotonic sequence numbers."""

    def __init__(self) -> None:
        self._seqs: Dict[str, int] = {}

    def next(self, tenant: str) -> int:
        seq = self._seqs.get(tenant, 0) + 1
        self._seqs[tenant] = seq
        return seq

    def known(self, tenant: str) -> bool:
        return tenant in self._seqs

    def resume(self, tenant: str, watermark: int) -> None:
        self._seqs[tenant] = max(self._seqs.get(tenant, 0), int(watermark))


class ServiceClient:
    """Blocking single-connection client."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: float = 30.0,
        retries: int = 4,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path / port required")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self._sock: Optional[socket.socket] = None
        self._ids = itertools.count(1)
        self._seqs = _SeqBook()
        #: ``open`` params per tenant, replayed on reattach so a
        #: restarted daemon rehydrates (or re-creates) the right session.
        self._open_params: Dict[str, Dict[str, object]] = {}

    # -- connection -----------------------------------------------------

    def endpoint(self) -> str:
        if self.socket_path is not None:
            return self.socket_path
        return f"{self.host}:{self.port}"

    def _connect_once(self) -> None:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        self._sock = sock

    def connect(self) -> "ServiceClient":
        """Connect, retrying with backoff; typed error when exhausted."""
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                self._connect_once()
                return self
            except OSError as exc:
                last = exc
                self.close_connection()
                if attempt < self.retries:
                    time.sleep(reconnect_delay(self.endpoint(), attempt))
        raise ServiceUnavailableError(
            self.endpoint(), self.retries + 1, last
        )

    def close_connection(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close_connection()

    # -- framing --------------------------------------------------------

    def _recv_exactly(self, n: int) -> bytes:
        assert self._sock is not None
        chunks = []
        while n:
            chunk = self._sock.recv(n)
            if not chunk:
                raise protocol.FrameError("connection closed mid-frame")
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    def _send_recv(self, env: Dict[str, object]) -> Dict[str, object]:
        assert self._sock is not None
        self._sock.sendall(protocol.encode_frame(env))
        length = protocol.decode_length(self._recv_exactly(HEADER_BYTES))
        return _raise_on_error(protocol.decode_body(self._recv_exactly(length)))

    def _reattach(self, tenant: str, secret: bytes) -> None:
        """Resync one tenant after a reconnect (open is the resync point)."""
        body = dict(self._open_params.get(tenant, {}))
        body["secret_hex"] = secret.hex()
        seq = self._seqs.next(tenant)
        env = protocol.make_request(
            next(self._ids), "open", body,
            tenant=tenant, seq=seq, secret=secret,
        )
        out = self._send_recv(env)
        self._seqs.resume(tenant, out.get("seq", seq))

    def request(
        self,
        op: str,
        body: Optional[Dict[str, object]] = None,
        tenant: str = "",
        secret: bytes = b"",
    ) -> Dict[str, object]:
        """Send one envelope and return the (unwrapped) response body.

        The envelope is built exactly once; connection failures trigger
        reconnect + reattach + re-send of the *same* bytes, which the
        daemon's duplicate cache makes idempotent.
        """
        if (
            op in protocol.TENANT_OPS
            and op != "open"
            and not self._seqs.known(tenant)
        ):
            # Fresh process, existing daemon session: re-attach first to
            # learn the daemon's seq watermark (open is the resync
            # point of the protocol -- see docs/daemon.md).
            self.open(tenant, secret)
        seq = self._seqs.next(tenant) if op in protocol.TENANT_OPS else 0
        env = protocol.make_request(
            next(self._ids), op, body, tenant=tenant, seq=seq, secret=secret
        )
        out = self._request_with_retry(env, op, tenant, secret)
        if op == "open":
            self._open_params[tenant] = dict(body or {})
            self._open_params[tenant].pop("secret_hex", None)
            self._seqs.resume(tenant, out.get("seq", seq))
        return out

    def _request_with_retry(
        self,
        env: Dict[str, object],
        op: str,
        tenant: str,
        secret: bytes,
    ) -> Dict[str, object]:
        last: Optional[Exception] = None
        resync = op in protocol.TENANT_OPS and op != "open"
        need_reattach = False
        reattached = False
        for attempt in range(self.retries + 1):
            try:
                if self._sock is None:
                    self._connect_once()
                    need_reattach = resync
                if need_reattach:
                    self._reattach(tenant, secret)
                    need_reattach = False
                return self._send_recv(env)
            except ServiceError as exc:
                # The daemon restarted without this tenant live (its
                # state rehydrates on open): re-open once, then re-send
                # the same envelope.  Only for tenants *this client*
                # opened -- a truly unknown tenant stays an error.
                if (
                    exc.code != "unknown-tenant"
                    or not resync
                    or reattached
                    or tenant not in self._open_params
                ):
                    raise
                reattached = True
                need_reattach = True
            except (protocol.FrameError, OSError) as exc:
                last = exc
                self.close_connection()
                if attempt < self.retries:
                    time.sleep(reconnect_delay(self.endpoint(), attempt))
        raise ServiceUnavailableError(
            self.endpoint(), self.retries + 1, last
        )

    # -- verbs ----------------------------------------------------------

    def ping(self) -> Dict[str, object]:
        return self.request("ping")

    def stats(self) -> Dict[str, object]:
        return self.request("stats")

    def open(
        self, tenant: str, secret: bytes, **params
    ) -> Dict[str, object]:
        body = dict(params)
        body["secret_hex"] = secret.hex()
        return self.request("open", body, tenant=tenant, secret=secret)

    def step(
        self,
        tenant: str,
        secret: bytes,
        requests: Optional[int] = None,
    ) -> Dict[str, object]:
        body = {} if requests is None else {"requests": requests}
        return self.request("step", body, tenant=tenant, secret=secret)

    def put(
        self, tenant: str, secret: bytes, addr: int, data: bytes
    ) -> Dict[str, object]:
        body = {"addr": addr, "data_hex": data.hex()}
        return self.request("put", body, tenant=tenant, secret=secret)

    def get(
        self, tenant: str, secret: bytes, addr: int, size: int = 64
    ) -> bytes:
        body = {"addr": addr, "size": size}
        out = self.request("get", body, tenant=tenant, secret=secret)
        return bytes.fromhex(out["data_hex"])

    def report(self, tenant: str, secret: bytes) -> Dict[str, object]:
        return self.request("report", tenant=tenant, secret=secret)

    def snapshot(self, tenant: str, secret: bytes) -> Dict[str, object]:
        return self.request("snapshot", tenant=tenant, secret=secret)

    def close(self, tenant: str, secret: bytes) -> Dict[str, object]:
        return self.request("close", tenant=tenant, secret=secret)


class AsyncServiceClient:
    """Asyncio client multiplexing many tenants over one connection.

    Requests may be issued concurrently from many tasks; a single
    reader task dispatches responses to waiters by request id, so in-
    flight windows from different tenants interleave freely on the one
    stream.  Reconnects are serialized through a connection lock: the
    first task to notice a dead stream re-dials (with backoff) and
    every task re-attaches its own tenant before re-sending its
    original envelope.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        retries: int = 4,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path / port required")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.retries = retries
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = itertools.count(1)
        self._seqs = _SeqBook()
        self._open_params: Dict[str, Dict[str, object]] = {}
        self._waiters: Dict[int, asyncio.Future] = {}
        self._pump: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()
        self._conn_lock = asyncio.Lock()

    def endpoint(self) -> str:
        if self.socket_path is not None:
            return self.socket_path
        return f"{self.host}:{self.port}"

    async def connect(self) -> "AsyncServiceClient":
        if self.socket_path is not None:
            self._reader, self._writer = await asyncio.open_unix_connection(
                self.socket_path
            )
        else:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        self._pump = asyncio.ensure_future(self._pump_responses())
        return self

    def _connected(self) -> bool:
        return (
            self._writer is not None
            and not self._writer.is_closing()
            and self._pump is not None
            and not self._pump.done()
        )

    async def _ensure_connected(self) -> None:
        """Dial (once across concurrent tasks) if the stream is dead."""
        async with self._conn_lock:
            if self._connected():
                return
            await self.close_connection()
            await self.connect()

    async def close_connection(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except (asyncio.CancelledError, Exception):
                pass
            self._pump = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._fail_waiters(protocol.FrameError("connection closed"))

    def _fail_waiters(self, exc: Exception) -> None:
        for future in self._waiters.values():
            if not future.done():
                future.set_exception(exc)
        self._waiters.clear()

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close_connection()

    async def _pump_responses(self) -> None:
        assert self._reader is not None
        failure: Exception = protocol.FrameError("connection closed")
        try:
            while True:
                frame = await protocol.read_frame(self._reader)
                if frame is None:
                    break  # EOF: daemon went away; fail the in-flight set
                _, response = frame
                future = self._waiters.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (protocol.FrameError, ConnectionError) as exc:
            failure = exc
        finally:
            self._fail_waiters(failure)

    async def _send_once(self, env: Dict[str, object]) -> Dict[str, object]:
        assert self._writer is not None
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters[env["id"]] = future
        try:
            async with self._write_lock:
                self._writer.write(protocol.encode_frame(env))
                await self._writer.drain()
            response = await future
        finally:
            self._waiters.pop(env["id"], None)
        return _raise_on_error(response)

    async def _reattach(self, tenant: str, secret: bytes) -> None:
        body = dict(self._open_params.get(tenant, {}))
        body["secret_hex"] = secret.hex()
        seq = self._seqs.next(tenant)
        env = protocol.make_request(
            next(self._ids), "open", body,
            tenant=tenant, seq=seq, secret=secret,
        )
        out = await self._send_once(env)
        self._seqs.resume(tenant, out.get("seq", seq))

    async def request(
        self,
        op: str,
        body: Optional[Dict[str, object]] = None,
        tenant: str = "",
        secret: bytes = b"",
    ) -> Dict[str, object]:
        request_id = next(self._ids)
        seq = self._seqs.next(tenant) if op in protocol.TENANT_OPS else 0
        env = protocol.make_request(
            request_id, op, body, tenant=tenant, seq=seq, secret=secret
        )
        out = await self._request_with_retry(env, op, tenant, secret)
        if op == "open":
            self._open_params[tenant] = dict(body or {})
            self._open_params[tenant].pop("secret_hex", None)
            self._seqs.resume(tenant, out.get("seq", seq))
        return out

    async def _request_with_retry(
        self,
        env: Dict[str, object],
        op: str,
        tenant: str,
        secret: bytes,
    ) -> Dict[str, object]:
        last: Optional[Exception] = None
        resync = op in protocol.TENANT_OPS and op != "open"
        need_reattach = False
        reattached = False
        for attempt in range(self.retries + 1):
            try:
                await self._ensure_connected()
                if (attempt or need_reattach) and resync:
                    await self._reattach(tenant, secret)
                    need_reattach = False
                return await self._send_once(env)
            except ServiceError as exc:
                # Another task may have re-dialed after a daemon
                # restart without re-opening *this* tenant: do it once,
                # then re-send the same envelope.  Only for tenants
                # *this client* opened -- a truly unknown tenant stays
                # an error.
                if (
                    exc.code != "unknown-tenant"
                    or not resync
                    or reattached
                    or tenant not in self._open_params
                ):
                    raise
                reattached = True
                need_reattach = True
            except (protocol.FrameError, OSError) as exc:
                last = exc
                if attempt < self.retries:
                    await asyncio.sleep(
                        reconnect_delay(self.endpoint(), attempt)
                    )
        raise ServiceUnavailableError(
            self.endpoint(), self.retries + 1, last
        )

    async def open(
        self, tenant: str, secret: bytes, **params
    ) -> Dict[str, object]:
        body = dict(params)
        body["secret_hex"] = secret.hex()
        return await self.request("open", body, tenant=tenant, secret=secret)

    async def step(
        self,
        tenant: str,
        secret: bytes,
        requests: Optional[int] = None,
    ) -> Dict[str, object]:
        body = {} if requests is None else {"requests": requests}
        return await self.request("step", body, tenant=tenant, secret=secret)

    async def put(
        self, tenant: str, secret: bytes, addr: int, data: bytes
    ) -> Dict[str, object]:
        body = {"addr": addr, "data_hex": data.hex()}
        return await self.request("put", body, tenant=tenant, secret=secret)

    async def get(
        self, tenant: str, secret: bytes, addr: int, size: int = 64
    ) -> bytes:
        body = {"addr": addr, "size": size}
        out = await self.request("get", body, tenant=tenant, secret=secret)
        return bytes.fromhex(out["data_hex"])

    async def report(self, tenant: str, secret: bytes) -> Dict[str, object]:
        return await self.request("report", tenant=tenant, secret=secret)

    async def close(self, tenant: str, secret: bytes) -> Dict[str, object]:
        return await self.request("close", tenant=tenant, secret=secret)
