"""``repro-wire/v1``: length-prefixed JSON frames + authenticated envelopes.

Framing
-------
One frame = a 4-byte big-endian length header followed by that many
bytes of UTF-8 JSON encoding one object.  Frames above
:data:`MAX_FRAME_BYTES` (or with a zero length) are rejected at the
header, before any allocation.  Framing damage -- truncated header or
body, oversized length -- desynchronizes the stream, so the daemon
drops the connection after counting ``service.rejected_frames``;
well-framed garbage (bad UTF-8 / JSON / non-object payloads) keeps the
stream synchronized, so it earns an error response and the connection
survives.

Envelopes
---------
Every request is an object::

    {"v": "repro-wire/v1", "id": <client request id>, "op": <verb>,
     "tenant": <name>, "seq": <monotonic int>, "kid": <key id>,
     "tag": <keyed-blake2b hex>, "body": {...}}

The tag authenticates ``tenant|op|seq`` as associated data plus the
canonical JSON of ``body`` under the tenant secret (keyed BLAKE2b,
mirroring :class:`~repro.crypto.keys.KeySet.derive`).  ``seq`` must be
strictly increasing per tenant -- replayed or reordered envelopes are
rejected with ``auth-error``.  ``kid`` lets the daemon reject a wrong
key without doing tag math.  Responses echo ``id`` and carry either
``{"ok": true, "body": ...}`` or ``{"ok": false, "error": {...}}``.

Reports
-------
Attestation reports (``repro-attest/v1`` bodies from
:meth:`EngineSession.report`) are signed by the daemon's service key:
``sig`` = keyed BLAKE2b over the canonical body, ``service_kid``
identifies the key.  :func:`verify_report` checks both.
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
import json
import struct
from typing import Dict, Optional, Tuple

WIRE_SCHEMA = "repro-wire/v1"
MAX_FRAME_BYTES = 8 * 1024 * 1024
_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size

#: Verbs a tenant may send.  ``open`` creates (or re-attaches to) a
#: session; everything else requires one.
TENANT_OPS = ("open", "step", "put", "get", "snapshot", "report", "close")
#: Verbs that need no tenant (service-level).
SERVICE_OPS = ("ping", "stats")
ALL_OPS = TENANT_OPS + SERVICE_OPS


class WireError(Exception):
    """Base protocol error: ``code`` is the machine-readable slug."""

    code = "wire-error"

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class FrameError(WireError):
    """Framing-layer damage; counts toward ``service.rejected_frames``."""

    code = "frame-error"


class EnvelopeError(WireError):
    """Well-framed but malformed envelope (missing/invalid fields)."""

    code = "envelope-error"


class AuthError(WireError):
    """Bad key id, bad tag, or non-monotonic sequence number."""

    code = "auth-error"


class UnknownTenantError(WireError):
    """Tenant has no live (or persisted) session on this daemon.

    Distinct from :class:`EnvelopeError` so a resilient client can
    recognise "the daemon restarted without my state" and re-open
    instead of treating the response as a malformed-request bug.
    """

    code = "unknown-tenant"


class OverloadError(WireError):
    """The daemon is shedding load (admission control).

    Typed and *retryable*: the response carries ``retry_after`` (a
    client hint in seconds) so callers back off instead of hammering
    a saturated daemon.  Counted in ``service.shed_requests``.
    """

    code = "overloaded"

    def __init__(self, message: str, retry_after: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class StateError(WireError):
    """Persisted tenant state failed verification during rehydration."""

    code = "state-error"


def canonical(obj) -> str:
    """Canonical JSON (sorted keys, no whitespace) for tags/digests."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def encode_frame(payload: Dict[str, object]) -> bytes:
    """Serialize one JSON object into a length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def decode_length(header: bytes) -> int:
    """Validate a 4-byte header; return the body length."""
    if len(header) != HEADER_BYTES:
        raise FrameError("truncated frame header")
    (length,) = _HEADER.unpack(header)
    if length == 0:
        raise FrameError("zero-length frame")
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"declared frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return length


def decode_body(data: bytes) -> Dict[str, object]:
    """Parse a frame body into one JSON object."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise FrameError("frame body must be a JSON object")
    return obj


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[int, Dict[str, object]]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`FrameError` on damage.  Returns ``(length, obj)``
    so callers can account bytes.  A body that fails JSON parsing is
    reported as a *recoverable* FrameError (``recoverable=True`` on
    the exception): the declared length was honoured, so the stream is
    still synchronized.
    """
    try:
        header = await reader.readexactly(HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise FrameError("connection closed mid-header") from None
    length = decode_length(header)
    try:
        data = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise FrameError("connection closed mid-frame") from None
    try:
        return length, decode_body(data)
    except FrameError as exc:
        exc.recoverable = True  # stream still synchronized
        raise


# ----------------------------------------------------------------------
# Authentication
# ----------------------------------------------------------------------

def kid_for(secret: bytes) -> str:
    """Short public identifier of a tenant secret."""
    return hashlib.blake2b(
        secret, digest_size=8, person=b"repro-kid"
    ).hexdigest()


def tag_for(
    secret: bytes, tenant: str, op: str, seq: int, body: Dict[str, object]
) -> str:
    """Keyed-BLAKE2b tag over AAD (tenant|op|seq) + canonical body."""
    aad = f"{tenant}|{op}|{seq}|".encode("utf-8")
    return hashlib.blake2b(
        aad + canonical(body).encode("utf-8"),
        key=secret[:64],
        digest_size=16,
        person=b"repro-wire",
    ).hexdigest()


def make_request(
    request_id: int,
    op: str,
    body: Optional[Dict[str, object]] = None,
    tenant: str = "",
    seq: int = 0,
    secret: bytes = b"",
) -> Dict[str, object]:
    """Assemble (and, for tenant ops, authenticate) one envelope."""
    body = body or {}
    env: Dict[str, object] = {
        "v": WIRE_SCHEMA,
        "id": request_id,
        "op": op,
        "body": body,
    }
    if op in TENANT_OPS:
        env["tenant"] = tenant
        env["seq"] = seq
        env["kid"] = kid_for(secret)
        env["tag"] = tag_for(secret, tenant, op, seq, body)
    return env


def validate_envelope(obj: Dict[str, object]) -> str:
    """Structural checks; returns the verb.  Raises EnvelopeError."""
    if obj.get("v") != WIRE_SCHEMA:
        raise EnvelopeError(
            f"unsupported wire schema {obj.get('v')!r} "
            f"(expected {WIRE_SCHEMA!r})"
        )
    op = obj.get("op")
    if op not in ALL_OPS:
        raise EnvelopeError(f"unknown op {op!r}")
    if "id" not in obj:
        raise EnvelopeError("envelope missing request id")
    if not isinstance(obj.get("body", {}), dict):
        raise EnvelopeError("envelope body must be an object")
    if op in TENANT_OPS:
        tenant = obj.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            raise EnvelopeError(f"op {op!r} requires a tenant name")
        if not isinstance(obj.get("seq"), int):
            raise EnvelopeError(f"op {op!r} requires an integer seq")
        if not isinstance(obj.get("kid"), str) or not isinstance(
            obj.get("tag"), str
        ):
            raise EnvelopeError(f"op {op!r} requires kid and tag")
    return op  # type: ignore[return-value]


def verify_tag(
    secret: bytes, obj: Dict[str, object]
) -> None:
    """Check kid + tag of a validated tenant envelope."""
    if obj["kid"] != kid_for(secret):
        raise AuthError("unknown key id for tenant")
    expected = tag_for(
        secret,
        obj["tenant"],  # type: ignore[arg-type]
        obj["op"],  # type: ignore[arg-type]
        obj["seq"],  # type: ignore[arg-type]
        obj.get("body", {}),  # type: ignore[arg-type]
    )
    if not hmac.compare_digest(expected, obj["tag"]):  # type: ignore[arg-type]
        raise AuthError("envelope tag mismatch")


# ----------------------------------------------------------------------
# Responses and signed reports
# ----------------------------------------------------------------------

def ok_response(request_id, body: Dict[str, object]) -> Dict[str, object]:
    return {"v": WIRE_SCHEMA, "id": request_id, "ok": True, "body": body}


def error_response(request_id, exc: Exception) -> Dict[str, object]:
    code = getattr(exc, "code", "internal-error")
    message = getattr(exc, "message", None) or str(exc)
    error: Dict[str, object] = {"code": code, "message": message}
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {
        "v": WIRE_SCHEMA,
        "id": request_id,
        "ok": False,
        "error": error,
    }


def sign_report(
    body: Dict[str, object], service_secret: bytes
) -> Dict[str, object]:
    """Attach ``service_kid`` + ``sig`` to an attestation body."""
    signed = dict(body)
    signed.pop("sig", None)
    signed.pop("service_kid", None)
    signed["service_kid"] = kid_for(service_secret)
    signed["sig"] = hashlib.blake2b(
        canonical(dict(body)).encode("utf-8"),
        key=service_secret[:64],
        digest_size=32,
        person=b"repro-att",
    ).hexdigest()
    return signed


def verify_report(
    report: Dict[str, object], service_secret: bytes
) -> bool:
    """True iff ``report`` carries a valid signature under the key."""
    body = {
        k: v for k, v in report.items() if k not in ("sig", "service_kid")
    }
    if report.get("service_kid") != kid_for(service_secret):
        return False
    expected = hashlib.blake2b(
        canonical(body).encode("utf-8"),
        key=service_secret[:64],
        digest_size=32,
        person=b"repro-att",
    ).hexdigest()
    sig = report.get("sig")
    return isinstance(sig, str) and hmac.compare_digest(expected, sig)
