"""``repro-tenant/v1``: crash-safe per-tenant persistence for the daemon.

Each tenant the daemon opens with a ``--state-dir`` gets one
append-only, fsync'd JSONL journal riding the ``repro-journal/v1``
framing discipline from :mod:`repro.sim.resilient`: line 1 is a header
binding the file to one (tenant, key-id, session-params) identity, and
every further line carries one entry wrapped with a SHA-256 digest of
its canonical JSON::

    {"schema": "repro-tenant/v1", "tenant": ..., "kid": ...,
     "params": {...}}
    {"digest": <sha256 of canonical entry>, "entry": {...}}

Entry types (all carry the wire ``seq`` that committed them):

* ``open`` -- the opening ``repro-session/v1`` snapshot;
* ``step`` -- one committed step window: cumulative ``issued``, the
  running observable ``digest`` and the envelope ``tag`` (the tag is
  what lets a restarted daemon recognise a *byte-identical* duplicate
  retry of the final window and answer it idempotently);
* ``put`` -- one committed data-plane write (``addr`` + payload hex).

The journal never stores engine state: sessions are deterministic in
their params, so rehydration rebuilds the :class:`EngineSession` from
the header and **replays** the entry prefix, asserting the recorded
observable digest after every step window.  A torn tail line (crash
mid-append) or a corrupt entry ends the valid prefix: everything after
it is dropped, the file is healed (atomically rewritten to the good
prefix) and the dropped windows simply re-execute when the client
retries -- damage degrades to re-work, never to wrong results.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.sim.resilient import digest_text

#: Tenant-journal schema identifier; bump on incompatible change.
TENANT_SCHEMA = "repro-tenant/v1"


def canonical(obj) -> str:
    """Canonical JSON (sorted keys, no whitespace) for entry digests."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class TenantStoreError(ValueError):
    """The tenant journal is unusable (schema/identity damage)."""


class TenantJournal:
    """One tenant's append-only event log (``repro-tenant/v1``)."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.header: Dict[str, object] = {}
        self._fh = None
        #: Damaged lines observed by the last :meth:`load_entries`.
        self.dropped_entries = 0

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(
        cls,
        path: os.PathLike,
        tenant: str,
        kid: str,
        params: Dict[str, object],
    ) -> "TenantJournal":
        """Start a fresh journal: header first, fsync'd like every line."""
        journal = cls(path)
        journal.header = {
            "schema": TENANT_SCHEMA,
            "tenant": tenant,
            "kid": kid,
            "params": dict(params),
        }
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        if journal.path.exists():
            journal.path.unlink()
        journal._append_line(canonical(journal.header))
        return journal

    @classmethod
    def attach(cls, path: os.PathLike) -> "TenantJournal":
        """Reopen an existing journal; validates only the header."""
        journal = cls(path)
        journal.header = journal._read_header()
        return journal

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def unlink(self) -> None:
        self.close()
        if self.path.exists():
            self.path.unlink()

    # -- header --------------------------------------------------------

    def _read_header(self) -> Dict[str, object]:
        try:
            with open(self.path, encoding="utf-8") as handle:
                first = handle.readline()
            header = json.loads(first)
        except (OSError, json.JSONDecodeError) as exc:
            raise TenantStoreError(
                f"tenant journal {self.path} has an unreadable header: {exc}"
            ) from exc
        if not isinstance(header, dict):
            raise TenantStoreError(
                f"tenant journal {self.path} header is not an object"
            )
        if header.get("schema") != TENANT_SCHEMA:
            raise TenantStoreError(
                f"tenant journal {self.path} has schema "
                f"{header.get('schema')!r}, expected {TENANT_SCHEMA!r}"
            )
        for field in ("tenant", "kid", "params"):
            if field not in header:
                raise TenantStoreError(
                    f"tenant journal {self.path} header is missing {field!r}"
                )
        return header

    # -- writing -------------------------------------------------------

    def _append_line(self, line: str) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append(self, entry: Dict[str, object]) -> None:
        """Durably append one committed entry (digest + flush + fsync)."""
        body = canonical(entry)
        self._append_line(
            canonical({"digest": digest_text(body), "entry": entry})
        )

    def record_open(self, seq: int, snapshot: Dict[str, object]) -> None:
        self.append({"type": "open", "seq": int(seq), "snapshot": snapshot})

    def record_step(
        self, seq: int, tag: str, issued: int, digest: str
    ) -> None:
        self.append(
            {
                "type": "step",
                "seq": int(seq),
                "tag": tag,
                "issued": int(issued),
                "digest": digest,
            }
        )

    def record_put(
        self, seq: int, tag: str, addr: int, data_hex: str
    ) -> None:
        self.append(
            {
                "type": "put",
                "seq": int(seq),
                "tag": tag,
                "addr": int(addr),
                "data_hex": data_hex,
            }
        )

    # -- reading -------------------------------------------------------

    def load_entries(self) -> List[Dict[str, object]]:
        """The valid entry *prefix*, in append order.

        Unlike the latest-wins task journal, a tenant journal is an
        ordered event log: state after entry N depends on every entry
        before it, so the first damaged line (torn tail, bad JSON,
        digest mismatch) ends the usable prefix and everything from it
        on is dropped -- counted in :attr:`dropped_entries`.
        """
        self.dropped_entries = 0
        self.header = self._read_header()
        entries: List[Dict[str, object]] = []
        with open(self.path, encoding="utf-8") as handle:
            lines = handle.readlines()
        for position, raw in enumerate(lines[1:], start=1):
            damaged = not raw.endswith("\n")
            line = raw.strip()
            if not damaged and not line:
                continue
            if not damaged:
                try:
                    wrapper = json.loads(line)
                    entry = wrapper["entry"]
                    digest = wrapper["digest"]
                    if digest_text(canonical(entry)) != digest:
                        damaged = True
                    elif not isinstance(entry, dict) or "type" not in entry:
                        damaged = True
                except (json.JSONDecodeError, KeyError, TypeError):
                    damaged = True
            if damaged:
                # Ordered log: drop this line and the whole suffix.
                self.dropped_entries = len(lines) - 1 - len(entries)
                break
            entries.append(entry)
        return entries

    def truncate_to(self, entries: List[Dict[str, object]]) -> None:
        """Heal: atomically rewrite the file as header + ``entries``.

        tmp + fsync + rename, so a crash mid-heal leaves either the old
        damaged file (healed again on the next rehydration) or the new
        clean one -- never a half-written journal.
        """
        self.close()
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(canonical(self.header) + "\n")
            for entry in entries:
                body = canonical(entry)
                handle.write(
                    canonical({"digest": digest_text(body), "entry": entry})
                    + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)


class TenantStore:
    """The ``--state-dir`` layout: one journal per persisted tenant.

    Files live under ``<state_dir>/tenants/<sha256(tenant)[:16]>.jsonl``
    -- the digest keeps client-chosen tenant names out of the
    filesystem namespace; the real name is bound in the header.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.tenants_dir = self.root / "tenants"
        self.tenants_dir.mkdir(parents=True, exist_ok=True)

    def path_for(self, tenant: str) -> Path:
        slug = hashlib.sha256(tenant.encode("utf-8")).hexdigest()[:16]
        return self.tenants_dir / f"{slug}.jsonl"

    def exists(self, tenant: str) -> bool:
        return self.path_for(tenant).exists()

    def create(
        self, tenant: str, kid: str, params: Dict[str, object]
    ) -> TenantJournal:
        return TenantJournal.create(
            self.path_for(tenant), tenant, kid, params
        )

    def load(
        self, tenant: str
    ) -> Optional[Tuple[TenantJournal, List[Dict[str, object]]]]:
        """Journal + valid entry prefix, or ``None`` if unusable.

        A journal whose *header* is damaged cannot be trusted at all
        (identity unknown), so it is discarded -- the tenant falls back
        to a fresh open, exactly like a client that never persisted.
        """
        path = self.path_for(tenant)
        if not path.exists():
            return None
        try:
            journal = TenantJournal.attach(path)
            entries = journal.load_entries()
        except TenantStoreError:
            path.unlink()
            return None
        return journal, entries

    def discard(self, tenant: str) -> None:
        path = self.path_for(tenant)
        if path.exists():
            path.unlink()

    def count(self) -> int:
        return sum(1 for _ in self.tenants_dir.glob("*.jsonl"))
