"""Load driver: thousands of concurrent tenant sessions with parity.

Drives N tenants against a daemon -- in-process (``--selftest``) or an
external one (``scripts/load_daemon.py``) -- through the async
multiplexing client, then replays every tenant's exact parameters
through an in-process :class:`EngineSession` and asserts the daemon's
per-session observable digest (and, for spot-checked tenants, the full
row stream) is byte-identical.  Produces a ``repro-load/v1`` report
for the CI artifact.

Tenants are deliberately heterogeneous: scenario, scheme, seed, window
size and engine tier (scalar / fast alternating when numpy is present)
all vary per tenant, so the parity sweep covers the whole dispatch
matrix rather than one happy path.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional

from repro.secure_memory.session import EngineSession
from repro.service.client import AsyncServiceClient
from repro.service.daemon import ServiceDaemon

LOAD_SCHEMA = "repro-load/v1"

#: Tenant parameter rotation: small, fast scenarios with distinct
#: schemes so a 1000-tenant run stays minutes, not hours.
_SCENARIOS = ("cc1", "cc2", "cc3")
_SCHEMES = ("ours", "mac_only", "conventional", "unsecure")
_WINDOWS = (0, 64, 113, 257)  # 0 = whole-run step


def tenant_params(index: int, engines: str, duration: float) -> Dict[str, object]:
    """Deterministic per-tenant session parameters."""
    if engines == "mixed":
        engine = "fast" if index % 2 else "scalar"
    else:
        engine = engines
    return {
        "scenario": _SCENARIOS[index % len(_SCENARIOS)],
        "scheme": _SCHEMES[index % len(_SCHEMES)],
        "engine": engine,
        "duration": duration,
        "seed": index,
        "window": _WINDOWS[index % len(_WINDOWS)],
    }


def inprocess_digest(params: Dict[str, object], tenant: str, secret: bytes):
    """Digest + row count of an in-process run of the same trace."""
    session = EngineSession.from_params(
        scenario=params["scenario"],
        scheme=params["scheme"],
        engine=params["engine"],
        duration=params["duration"],
        seed=params["seed"],
        tenant=tenant,
        secret=secret,
    )
    window = params["window"] or None
    rows: List[List[object]] = []
    while not session.done:
        rows.extend(session.step(window))
    return session.observable_digest(), rows


async def _drive_tenant(
    client: AsyncServiceClient,
    index: int,
    engines: str,
    duration: float,
    collect_rows: bool,
) -> Dict[str, object]:
    """Open, step to completion, report, close one tenant session."""
    tenant = f"tenant-{index:05d}"
    secret = f"secret-{index:05d}".encode()
    params = tenant_params(index, engines, duration)
    opened = await client.open(
        tenant,
        secret,
        scenario=params["scenario"],
        scheme=params["scheme"],
        engine=params["engine"],
        duration=params["duration"],
        seed=params["seed"],
    )
    rows: List[List[object]] = []
    window = params["window"] or None
    done = False
    digest = None
    while not done:
        stepped = await client.step(tenant, secret, requests=window)
        done = stepped["done"]
        digest = stepped["digest"]
        if collect_rows:
            rows.extend(stepped["observables"])
    report = await client.report(tenant, secret)
    closed = await client.close(tenant, secret)
    return {
        "tenant": tenant,
        "secret": secret,
        "params": params,
        "engine": opened["engine"],
        "issued": closed["issued"],
        "digest": digest,
        "close_digest": closed["digest"],
        "report": report,
        "rows": rows,
    }


async def run_load(
    tenants: int = 64,
    connections: int = 8,
    engines: str = "mixed",
    duration: float = 400.0,
    socket_path: Optional[str] = None,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    daemon: Optional[ServiceDaemon] = None,
    parity_rows: int = 8,
    progress=None,
) -> Dict[str, object]:
    """Drive ``tenants`` sessions; verify per-session byte-parity.

    With ``daemon`` given, it is started and stopped in this loop (the
    ``--selftest`` path); otherwise the address must point at a running
    daemon.  ``connections`` clients multiplex the tenants so fd usage
    stays bounded.  Every tenant's digest is checked against an
    in-process run; the first ``parity_rows`` tenants are additionally
    checked row-for-row.  Returns the ``repro-load/v1`` report.
    """
    from repro.engine_fast import numpy_or_none

    if engines == "mixed" and numpy_or_none() is None:
        engines = "scalar"
    owned = daemon is not None
    if owned:
        await daemon.start()
        socket_path = daemon.socket_path
        host, port = daemon.host, daemon.port

    started = time.perf_counter()
    clients = []
    failures: List[str] = []
    results: List[Dict[str, object]] = []
    try:
        clients = [
            AsyncServiceClient(
                socket_path=socket_path, host=host, port=port
            )
            for _ in range(min(connections, tenants) or 1)
        ]
        await asyncio.gather(*(c.connect() for c in clients))

        async def one(index: int):
            client = clients[index % len(clients)]
            try:
                return await _drive_tenant(
                    client,
                    index,
                    engines,
                    duration,
                    collect_rows=index < parity_rows,
                )
            except Exception as exc:  # collected, not fatal
                failures.append(f"tenant-{index:05d}: {exc}")
                return None

        outcome = await asyncio.gather(*(one(i) for i in range(tenants)))
        results = [r for r in outcome if r is not None]
    finally:
        for client in clients:
            await client.close_connection()
        if owned:
            await daemon.close()
    drove_seconds = time.perf_counter() - started

    # ---- parity sweep: daemon digests vs in-process replays ----
    parity_checked = 0
    for entry in results:
        digest, rows = inprocess_digest(
            entry["params"], entry["tenant"], entry["secret"]
        )
        if entry["digest"] != digest or entry["close_digest"] != digest:
            failures.append(
                f"{entry['tenant']}: digest mismatch "
                f"(daemon {entry['digest']} vs in-process {digest})"
            )
        elif entry["rows"] and entry["rows"] != rows:
            failures.append(f"{entry['tenant']}: observable rows diverge")
        else:
            parity_checked += 1
        att = entry["report"]
        if att.get("observables", {}).get("sha256") != digest:
            failures.append(
                f"{entry['tenant']}: attestation digest mismatch"
            )
        if progress and parity_checked % 100 == 0:
            progress(f"parity {parity_checked}/{len(results)}")

    engines_seen: Dict[str, int] = {}
    total_rows = 0
    for entry in results:
        engines_seen[entry["engine"]] = engines_seen.get(entry["engine"], 0) + 1
        total_rows += entry["issued"]

    return {
        "schema": LOAD_SCHEMA,
        "tenants": tenants,
        "connections": len(clients),
        "engines": engines_seen,
        "duration_cycles": duration,
        "sessions_completed": len(results),
        "requests_served": total_rows,
        "parity_checked": parity_checked,
        "row_checked": min(parity_rows, len(results)),
        "drive_seconds": drove_seconds,
        "failures": failures,
        "ok": not failures and len(results) == tenants,
    }


def run_selftest(
    tenants: int = 64,
    connections: int = 8,
    engines: str = "mixed",
    duration: float = 400.0,
    socket_path: Optional[str] = None,
    progress=None,
) -> Dict[str, object]:
    """In-process daemon + load in one event loop (``serve --selftest``)."""
    import os
    import tempfile

    path = socket_path or os.path.join(
        tempfile.mkdtemp(prefix="repro-svc-"), "repro.sock"
    )
    daemon = ServiceDaemon(socket_path=path)
    return asyncio.run(
        run_load(
            tenants=tenants,
            connections=connections,
            engines=engines,
            duration=duration,
            daemon=daemon,
            progress=progress,
        )
    )
