"""Daemon restart chaos: SIGKILL mid-fleet, rehydrate, prove parity.

``python -m repro chaos --mode daemon`` is the durability twin of the
execution-chaos harness (:mod:`repro.faults.exec_chaos`): it spawns a
real ``repro serve`` subprocess with a ``--state-dir``, drives a small
heterogeneous tenant fleet through the resilient async client, and
**SIGKILLs the daemon at seeded step-count thresholds** -- then
restarts it against the same state dir and lets the clients
reconnect, re-attach and resume.  The property under test is the
paper-grade one the whole service stack promises: every tenant's final
observable digest, signed attestation and (seq-deduplicated) row
stream are **byte-identical** to an uninterrupted in-process replay of
the same parameters.

Further sections damage the final journal entry (a torn append),
verify the daemon heals it on rehydration and the lost window simply
re-executes; replay a byte-identical duplicate ``step`` and verify it
never double-applies; and saturate admission control to verify typed
retryable sheds.  One SIGTERM at the end checks the graceful-drain
path of ``repro serve`` end to end.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.faults.exec_chaos import ChaosReport
from repro.service import protocol
from repro.service.client import AsyncServiceClient, ServiceError
from repro.service.load import inprocess_digest, tenant_params
from repro.service.store import TenantStore

#: Step windows the chaos fleet rotates through -- all bounded and
#: small (a whole-run window would give the killer nothing to
#: interrupt; small windows keep the kill thresholds reachable even
#: for short traces).
CHAOS_WINDOWS = (23, 31, 41, 53)


def _python_env() -> Dict[str, str]:
    """Subprocess env whose PYTHONPATH resolves this very ``repro``."""
    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    current = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not current else src + os.pathsep + current
    return env


def short_socket_path(tag: str) -> str:
    """A Unix-socket path short enough for ``sun_path`` limits."""
    slug = hashlib.blake2b(
        f"{tag}:{os.getpid()}".encode(), digest_size=5
    ).hexdigest()
    return os.path.join(tempfile.gettempdir(), f"repro-cx-{slug}.sock")


class DaemonHarness:
    """One ``repro serve`` subprocess the chaos story kills and revives."""

    def __init__(
        self,
        socket_path: str,
        service_secret: bytes,
        state_dir: Optional[str] = None,
        extra_args: Sequence[str] = (),
    ) -> None:
        self.socket_path = socket_path
        self.service_secret = service_secret
        self.state_dir = state_dir
        self.extra_args = list(extra_args)
        self.proc: Optional[subprocess.Popen] = None
        self.restarts = 0

    def spawn(self) -> None:
        args = [
            sys.executable, "-m", "repro", "serve",
            "--socket", self.socket_path,
            "--service-secret", self.service_secret.hex(),
        ]
        if self.state_dir is not None:
            args += ["--state-dir", self.state_dir]
        args += self.extra_args
        self.proc = subprocess.Popen(
            args,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_python_env(),
        )

    async def await_socket(self, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc is not None and self.proc.poll() is not None:
                out = self.proc.stdout.read() if self.proc.stdout else ""
                raise RuntimeError(
                    f"daemon exited with {self.proc.returncode} before "
                    f"accepting: {out[-2000:]}"
                )
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(self.socket_path)
                return
            except OSError:
                await asyncio.sleep(0.05)
            finally:
                probe.close()
        raise RuntimeError(f"daemon socket {self.socket_path} never came up")

    async def start(self) -> None:
        self.spawn()
        await self.await_socket()

    def kill(self) -> None:
        """SIGKILL: no drain, no fsync beyond what already happened."""
        if self.proc is not None:
            self.proc.kill()
            self.proc.wait()
            self.proc = None

    async def restart(self) -> None:
        self.kill()
        self.restarts += 1
        await self.start()

    def terminate(self, timeout: float = 30.0):
        """SIGTERM and collect (exit code, combined output)."""
        assert self.proc is not None
        self.proc.send_signal(signal.SIGTERM)
        out, _ = self.proc.communicate(timeout=timeout)
        code = self.proc.returncode
        self.proc = None
        return code, out or ""

    def cleanup(self) -> None:
        if self.proc is not None:
            self.kill()
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)


class KillSchedule:
    """SIGKILL the daemon when the fleet crosses seeded window counts.

    Thresholds are pure functions of the seed, so one chaos story
    replays identically.  The task that crosses a threshold performs
    the kill + restart inline (serialized by a lock); everyone else
    rides the client's reconnect-and-reattach path.
    """

    def __init__(
        self, harness: DaemonHarness, seed: int, kills: int, spread: int = 3
    ) -> None:
        self.harness = harness
        self.points: List[int] = []
        point = 2
        for index in range(kills):
            digest = hashlib.blake2b(
                f"daemon-chaos:{seed}:{index}".encode(), digest_size=8
            ).digest()
            point += 2 + int(int.from_bytes(digest, "little") / 2**64 * spread)
            self.points.append(point)
        self.pending = list(self.points)
        self.windows = 0
        self.kills_fired = 0
        self._lock = asyncio.Lock()

    async def on_window(self) -> None:
        self.windows += 1
        if not self.pending or self.windows < self.pending[0]:
            return
        async with self._lock:
            if not self.pending or self.windows < self.pending[0]:
                return  # another task already fired this point
            self.pending.pop(0)
            self.kills_fired += 1
            await self.harness.restart()


def dedupe_rows(rows: List[List[object]]) -> List[List[object]]:
    """Drop re-emitted rows (same global seq) after watermark regressions.

    A torn final journal entry legitimately re-executes its window
    after restart; the client-side row accumulation then holds that
    window twice.  Row seq (column 0) is globally unique per session,
    so first-occurrence wins reconstructs the canonical stream.
    """
    seen = set()
    out: List[List[object]] = []
    for row in rows:
        if row[0] in seen:
            continue
        seen.add(row[0])
        out.append(row)
    return out


async def _drive_fleet_tenant(
    client: AsyncServiceClient,
    index: int,
    engines: str,
    duration: float,
    schedule: Optional[KillSchedule],
) -> Dict[str, object]:
    """Open + step to completion + report one tenant, surviving kills."""
    tenant = f"chaos-{index:04d}"
    secret = f"chaos-secret-{index:04d}".encode()
    params = tenant_params(index, engines, duration)
    params["window"] = CHAOS_WINDOWS[index % len(CHAOS_WINDOWS)]
    await client.open(
        tenant,
        secret,
        scenario=params["scenario"],
        scheme=params["scheme"],
        engine=params["engine"],
        duration=params["duration"],
        seed=params["seed"],
    )
    rows: List[List[object]] = []
    done = False
    digest = None
    while not done:
        stepped = await client.step(
            tenant, secret, requests=params["window"]
        )
        done = stepped["done"]
        digest = stepped["digest"]
        rows.extend(stepped["observables"])
        if schedule is not None:
            await schedule.on_window()
    report = await client.report(tenant, secret)
    return {
        "tenant": tenant,
        "secret": secret,
        "params": params,
        "digest": digest,
        "rows": rows,
        "report": report,
    }


async def _section_kill_restart(
    report: ChaosReport,
    tenants: int,
    engines: str,
    duration: float,
    seed: int,
    kills: int,
    connections: int,
    progress,
) -> None:
    socket_path = short_socket_path(f"fleet:{seed}")
    state_dir = tempfile.mkdtemp(prefix="repro-chaos-state-")
    service_secret = hashlib.blake2b(
        f"chaos-service:{seed}".encode(), digest_size=32
    ).digest()
    harness = DaemonHarness(
        socket_path, service_secret, state_dir=state_dir
    )
    failures: List[str] = []
    results: List[Dict[str, object]] = []
    drain = (1, "")
    try:
        await harness.start()
        schedule = KillSchedule(harness, seed, kills)
        clients = [
            AsyncServiceClient(socket_path=socket_path, retries=8)
            for _ in range(min(connections, tenants) or 1)
        ]
        await asyncio.gather(*(c.connect() for c in clients))
        try:

            async def one(index: int):
                try:
                    return await _drive_fleet_tenant(
                        clients[index % len(clients)],
                        index, engines, duration, schedule,
                    )
                except Exception as exc:
                    failures.append(f"chaos-{index:04d}: {exc!r}")
                    return None

            outcome = await asyncio.gather(
                *(one(i) for i in range(tenants))
            )
            results = [r for r in outcome if r is not None]
        finally:
            for client in clients:
                await client.close_connection()
        if progress:
            progress(
                f"fleet done: {len(results)}/{tenants} tenants, "
                f"{schedule.kills_fired} kill(s)"
            )
        drain = harness.terminate()

        # ---- parity: daemon-under-chaos vs uninterrupted in-process ----
        parity_ok = 0
        for entry in results:
            clean_digest, clean_rows = inprocess_digest(
                entry["params"], entry["tenant"], entry["secret"]
            )
            if entry["digest"] != clean_digest:
                failures.append(
                    f"{entry['tenant']}: digest {entry['digest']} != "
                    f"in-process {clean_digest}"
                )
                continue
            if dedupe_rows(entry["rows"]) != clean_rows:
                failures.append(f"{entry['tenant']}: row stream diverges")
                continue
            att = entry["report"]
            if not protocol.verify_report(att, service_secret):
                failures.append(f"{entry['tenant']}: attestation sig bad")
                continue
            if att.get("observables", {}).get("sha256") != clean_digest:
                failures.append(
                    f"{entry['tenant']}: attestation digest mismatch"
                )
                continue
            parity_ok += 1
        report.add(
            "kill-restart parity",
            not failures
            and len(results) == tenants
            and schedule.kills_fired == kills,
            f"{parity_ok}/{tenants} tenants byte-identical across "
            f"{schedule.kills_fired} SIGKILL+restart(s)"
            + (f"; failures: {failures[:3]}" if failures else ""),
        )
        code, out = drain
        report.add(
            "graceful drain",
            code == 0
            and "shut down cleanly" in out
            and "drained" in out
            and not os.path.exists(socket_path),
            f"SIGTERM exit={code}, journals drained, socket unlinked",
        )
    finally:
        harness.cleanup()


async def _section_torn_tail(
    report: ChaosReport, duration: float, seed: int
) -> None:
    socket_path = short_socket_path(f"torn:{seed}")
    state_dir = tempfile.mkdtemp(prefix="repro-chaos-torn-")
    service_secret = hashlib.blake2b(
        f"chaos-torn:{seed}".encode(), digest_size=32
    ).digest()
    harness = DaemonHarness(
        socket_path, service_secret, state_dir=state_dir
    )
    tenant, secret = "torn-victim", b"torn-secret"
    params = {
        "scenario": "cc1", "scheme": "ours", "engine": "scalar",
        "duration": duration, "seed": seed, "window": 50,
    }
    try:
        await harness.start()
        client = AsyncServiceClient(socket_path=socket_path, retries=8)
        await client.connect()
        try:
            opened = await client.open(
                tenant, secret,
                scenario=params["scenario"], scheme=params["scheme"],
                engine=params["engine"], duration=params["duration"],
                seed=params["seed"],
            )
            # Size windows off the real trace length so three of them
            # land strictly mid-run: the torn entry must hold progress
            # the dropped-and-re-executed check can observe regressing.
            params["window"] = max(10, int(opened["total_requests"]) // 6)
            rows: List[List[object]] = []
            for _ in range(3):
                stepped = await client.step(
                    tenant, secret, requests=params["window"]
                )
                rows.extend(stepped["observables"])
            issued_before = stepped["issued"]

            # Crash, then forge the torn append: the final committed
            # entry is cut mid-line, exactly what a kill inside
            # write() leaves behind.
            harness.kill()
            journal_path = TenantStore(state_dir).path_for(tenant)
            lines = journal_path.read_text(encoding="utf-8").splitlines(
                keepends=True
            )
            torn = lines[-1][: max(4, len(lines[-1]) // 2)].rstrip("\n")
            journal_path.write_text(
                "".join(lines[:-1]) + torn, encoding="utf-8"
            )
            await harness.start()

            attach = await client.open(tenant, secret)
            regressed = attach["snapshot"]["issued"]
            healed = (
                attach.get("rehydrated") is True
                and attach.get("dropped_entries", 0) >= 1
                and regressed < issued_before
            )
            # The journal file itself must be clean again (prefix only).
            reloaded = TenantStore(state_dir).load(tenant)
            healed = healed and (
                reloaded is not None and reloaded[0].dropped_entries == 0
            )
            done = False
            digest = None
            while not done:
                stepped = await client.step(
                    tenant, secret, requests=params["window"]
                )
                done = stepped["done"]
                digest = stepped["digest"]
                rows.extend(stepped["observables"])
            clean_digest, clean_rows = inprocess_digest(
                params, tenant, secret
            )
            report.add(
                "torn journal entry heals",
                healed
                and digest == clean_digest
                and dedupe_rows(rows) == clean_rows,
                f"dropped tail re-executed: issued {issued_before} -> "
                f"{regressed} -> done, digest parity "
                f"{'ok' if digest == clean_digest else 'BAD'}",
            )
        finally:
            await client.close_connection()
    finally:
        harness.cleanup()


async def _section_duplicate_and_overload(
    report: ChaosReport, duration: float, seed: int
) -> None:
    socket_path = short_socket_path(f"dup:{seed}")
    service_secret = hashlib.blake2b(
        f"chaos-dup:{seed}".encode(), digest_size=32
    ).digest()
    harness = DaemonHarness(
        socket_path,
        service_secret,
        extra_args=["--max-tenants", "2", "--max-step-bytes", "4096"],
    )
    try:
        await harness.start()
        client = AsyncServiceClient(socket_path=socket_path, retries=4)
        await client.connect()
        try:
            secret = b"dup-secret"
            await client.open(
                "dup-a", secret, scenario="cc1", scheme="ours",
                engine="scalar", duration=duration, seed=seed,
            )
            first = await client.step("dup-a", secret, requests=20)
            # Byte-identical duplicate (a retry after a lost response):
            # rewind the seq book so the next envelope reuses seq+tag.
            client._seqs._seqs["dup-a"] -= 1
            again = await client.step("dup-a", secret, requests=20)
            forward = await client.step("dup-a", secret, requests=20)
            report.add(
                "duplicate step is a no-op",
                again == first
                and again["issued"] == first["issued"]
                and forward["issued"] == first["issued"] + 20,
                f"replayed window answered from cache at issued="
                f"{again['issued']}, next window advanced to "
                f"{forward['issued']}",
            )

            # ---- admission control ----
            await client.open(
                "dup-b", secret, scenario="cc1", scheme="ours",
                engine="scalar", duration=duration, seed=seed,
            )
            shed_tenant = shed_budget = False
            retry_hints = []
            try:
                await client.open(
                    "dup-c", secret, scenario="cc1", scheme="ours",
                    engine="scalar", duration=duration, seed=seed,
                )
            except ServiceError as exc:
                shed_tenant = exc.code == "overloaded"
                retry_hints.append(exc.retry_after)
            try:
                await client.step("dup-b", secret, requests=500)
            except ServiceError as exc:
                shed_budget = exc.code == "overloaded"
                retry_hints.append(exc.retry_after)
            within = await client.step("dup-b", secret, requests=30)
            stats = await client.request("stats")
            shed_count = stats["metrics"].get("service.shed_requests", 0)
            report.add(
                "overload sheds are typed and retryable",
                shed_tenant
                and shed_budget
                and all(h is not None for h in retry_hints)
                and within["issued"] == 30
                and shed_count >= 2,
                f"tenant-limit + step-budget sheds with retry_after="
                f"{retry_hints}, service.shed_requests={shed_count}, "
                "bounded window accepted",
            )
        finally:
            await client.close_connection()
    finally:
        harness.cleanup()


def run_daemon_chaos(
    tenants: int = 6,
    duration: float = 400.0,
    seed: int = 0,
    engines: str = "mixed",
    kills: int = 2,
    connections: int = 3,
    progress=None,
) -> ChaosReport:
    """The full daemon-durability chaos story; returns a ChaosReport."""
    from repro.engine_fast import numpy_or_none

    if engines == "mixed" and numpy_or_none() is None:
        engines = "scalar"
    report = ChaosReport()

    async def story() -> None:
        await _section_kill_restart(
            report, tenants, engines, duration, seed, kills, connections,
            progress,
        )
        await _section_torn_tail(report, duration, seed)
        await _section_duplicate_and_overload(report, duration, seed)

    asyncio.run(story())
    return report
