"""Granularity-aware counter and MAC address computation (paper Eqs. 1-4).

Promotion moves a counter ``log_arity(g / 64B)`` levels up the tree
(Eqs. 2-3); merging compacts the MACs of a chunk so coarse MACs fill
the front of the chunk's MAC space without fragmentation (Fig. 9).
Addresses are computed per 32KB chunk assuming all *previous* chunks
are finest-grained, so each chunk owns a fixed 4KB MAC window and only
in-chunk indices depend on the bitmap (Sec. 4.3).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.address import line_in_partition, partition_in_chunk
from repro.common.constants import (
    CACHELINE_BYTES,
    CHUNK_BYTES,
    GRANULARITIES,
    LINES_PER_CHUNK,
    MAC_BYTES,
    PARTITIONS_PER_CHUNK,
    TREE_ARITY,
    granularity_level,
)
from repro.core import stream_part
from repro.tree.geometry import TreeGeometry

#: Bytes of fine-MAC space owned by one 32KB chunk (512 lines x 8B).
MAC_BYTES_PER_CHUNK = LINES_PER_CHUNK * MAC_BYTES

_PARTS_PER_4KB = GRANULARITIES[2] // GRANULARITIES[1]


def num_parents(granularity: int, arity: int = TREE_ARITY) -> int:
    """Paper Eq. 2: promotion steps = log_arity(granularity / 64B)."""
    level = granularity_level(granularity)
    # The closed form below is Eq. 2 verbatim; the table lookup above
    # already validated that it is exact for supported granularities.
    parents = round(math.log(granularity / CACHELINE_BYTES, arity))
    assert parents == level
    return parents


def ancestor_index(leaf_counter_index: int, parents: int, arity: int = TREE_ARITY) -> int:
    """Paper Eq. 3: recursive ancestor of a leaf counter index."""
    index = leaf_counter_index
    for _ in range(parents):
        index //= arity
    return index


@dataclass(frozen=True)
class CounterLocation:
    """Resolved location of a (possibly promoted) counter."""

    level: int
    node_index: int
    slot: int
    node_addr: int


def locate_counter(
    geometry: TreeGeometry, addr: int, granularity: int
) -> CounterLocation:
    """Resolve the counter of ``addr`` protected at ``granularity``.

    Equivalent to Eqs. 2-4: the counter of a ``64B * 8**l`` region
    lives at slot ``region % 8`` of level-``l`` node ``region // 8``.
    """
    level = granularity_level(granularity)
    node, slot = geometry.counter_slot(addr, level)
    return CounterLocation(
        level=level,
        node_index=node,
        slot=slot,
        node_addr=geometry.node_addr(level, node),
    )


#: Capacity of the per-process chunk MAC layout memo.  8192 signatures
#: is far above what any sweep touches (a few dozen distinct bitmaps);
#: the explicit bound plus eviction counter exists so pathological
#: bitmap churn degrades visibly instead of silently.
LAYOUT_CACHE_CAPACITY = 8192

_LayoutEntry = Tuple[Tuple[int, ...], Tuple[bool, ...], int]

_layout_cache: "OrderedDict[Tuple[int, int], _LayoutEntry]" = OrderedDict()
_layout_counters: Dict[str, int] = {"hits": 0, "misses": 0, "evictions": 0}


def _chunk_mac_layout(bits: int, max_granularity: int) -> _LayoutEntry:
    """Memoized compaction layout of one (bitmap, cap) signature.

    Returns ``(part_index, part_merged, total)`` where
    ``part_index[p]`` is the compacted index of the first MAC of
    partition ``p`` (for a merged 4KB group, every member partition
    maps to the group's single MAC), ``part_merged[p]`` says the
    partition is covered by one merged MAC (512B or coarser), and
    ``total`` is the chunk's post-merge MAC count.

    The address-order walk of Fig. 9 is O(partitions) per lookup; the
    timing layer resolves a MAC address for *every* request, and the
    sweep revisits the same few bitmaps millions of times, so the walk
    is done once per signature and reduced to two tuple reads.  The
    memo is a bounded LRU (:data:`LAYOUT_CACHE_CAPACITY`) with
    hit/miss/eviction counters exposed via :func:`layout_cache_stats`.
    """
    key = (bits, max_granularity)
    cached = _layout_cache.get(key)
    if cached is not None:
        _layout_counters["hits"] += 1
        _layout_cache.move_to_end(key)
        return cached
    _layout_counters["misses"] += 1
    value = _compute_chunk_mac_layout(bits, max_granularity)
    _layout_cache[key] = value
    if len(_layout_cache) > LAYOUT_CACHE_CAPACITY:
        _layout_cache.popitem(last=False)
        _layout_counters["evictions"] += 1
    return value


def _compute_chunk_mac_layout(bits: int, max_granularity: int) -> _LayoutEntry:
    """The uncached Fig. 9 address-order walk behind the layout memo."""
    part_index: List[int] = []
    part_merged: List[bool] = []
    index = 0
    for group in range(PARTITIONS_PER_CHUNK // _PARTS_PER_4KB):
        mask = ((1 << _PARTS_PER_4KB) - 1) << (group * _PARTS_PER_4KB)
        if bits & mask == mask and max_granularity >= GRANULARITIES[2]:
            part_index.extend([index] * _PARTS_PER_4KB)
            part_merged.extend([True] * _PARTS_PER_4KB)
            index += 1
            continue
        for part in range(group * _PARTS_PER_4KB, (group + 1) * _PARTS_PER_4KB):
            part_index.append(index)
            merged = bool(bits & (1 << part)) and (
                max_granularity >= GRANULARITIES[1]
            )
            part_merged.append(merged)
            index += stream_part.mac_count_of_partition(
                bits, part, max_granularity
            )
    return tuple(part_index), tuple(part_merged), index


def clear_layout_cache() -> None:
    """Drop memoized chunk MAC layouts and reset counters (tests)."""
    _layout_cache.clear()
    for key in _layout_counters:
        _layout_counters[key] = 0


def layout_cache_stats() -> dict:
    """Hit/miss/eviction/size counters of the chunk MAC layout memo.

    The cache is a pure memo over (bits, max_granularity) signatures:
    it can change speed but never results.  ``repro check`` pins that
    claim by diffing every cached answer against the uncached reference
    walk in :mod:`repro.check.oracle`.  Tracing-enabled runs surface
    this dict through the metrics registry as ``engine.layout_cache.*``
    (the binding is tracer-gated because the cache is process-global,
    so an unconditional binding would leak state across the serial vs
    parallel and scalar vs fast byte-parity comparisons).
    """
    return {
        "hits": _layout_counters["hits"],
        "misses": _layout_counters["misses"],
        "evictions": _layout_counters["evictions"],
        "entries": len(_layout_cache),
        "capacity": LAYOUT_CACHE_CAPACITY,
    }


def mac_index_in_chunk(
    bits: int, addr: int, max_granularity: int = GRANULARITIES[3]
) -> int:
    """Compacted in-chunk MAC index of ``addr`` under bitmap ``bits``.

    Walks the chunk's regions in address order, counting the MACs each
    earlier region contributes after merging: a fully streamed chunk
    has one MAC; a streamed 4KB group one; a stream partition one; a
    fine partition eight (one per line).  This realizes the
    fragmentation-free compaction of Fig. 9.  ``max_granularity`` caps
    merging for dual-granularity baselines.  The per-bitmap walk is
    memoized by :func:`_chunk_mac_layout`.
    """
    if bits == stream_part.FULL_MASK and max_granularity >= GRANULARITIES[3]:
        return 0

    part_index, part_merged, _ = _chunk_mac_layout(bits, max_granularity)
    my_partition = partition_in_chunk(addr)
    index = part_index[my_partition]
    if part_merged[my_partition]:
        return index
    return index + line_in_partition(addr)


def _macs_of_group(bits: int, group: int, max_granularity: int) -> int:
    mask = ((1 << _PARTS_PER_4KB) - 1) << (group * _PARTS_PER_4KB)
    if bits & mask == mask and max_granularity >= GRANULARITIES[2]:
        return 1
    return sum(
        stream_part.mac_count_of_partition(bits, part, max_granularity)
        for part in range(group * _PARTS_PER_4KB, (group + 1) * _PARTS_PER_4KB)
    )


def mac_addr(
    geometry: TreeGeometry,
    bits: int,
    addr: int,
    max_granularity: int = GRANULARITIES[3],
) -> int:
    """Paper Eq. 1: MAC address = chunk base + compacted index x 8B."""
    chunk = addr // CHUNK_BYTES
    chunk_mac_base = geometry.mac_base + chunk * MAC_BYTES_PER_CHUNK
    index = mac_index_in_chunk(bits, addr, max_granularity)
    return chunk_mac_base + index * MAC_BYTES


def mac_line_addr(
    geometry: TreeGeometry,
    bits: int,
    addr: int,
    max_granularity: int = GRANULARITIES[3],
) -> int:
    """64B-aligned address of the MAC cacheline holding ``addr``'s MAC."""
    raw = mac_addr(geometry, bits, addr, max_granularity)
    return raw - (raw % CACHELINE_BYTES)


def macs_per_chunk(bits: int, max_granularity: int = GRANULARITIES[3]) -> int:
    """Total MACs a chunk stores under bitmap ``bits`` (after merging)."""
    if bits == stream_part.FULL_MASK and max_granularity >= GRANULARITIES[3]:
        return 1
    return _chunk_mac_layout(bits, max_granularity)[2]


def fine_lines_of_region(addr: int, granularity: int) -> range:
    """Global line indices of the region of ``addr`` at ``granularity``."""
    base = (addr // granularity) * granularity
    first = base // CACHELINE_BYTES
    return range(first, first + granularity // CACHELINE_BYTES)


def sanity_check_chunk_mac_space(bits: int) -> None:
    """Assert merged MACs never outgrow the fixed per-chunk MAC window."""
    assert macs_per_chunk(bits) <= LINES_PER_CHUNK, (
        f"compacted MAC count {macs_per_chunk(bits)} exceeds the fine "
        f"layout's {LINES_PER_CHUNK} slots"
    )
