"""Granularity-aware counter and MAC address computation (paper Eqs. 1-4).

Promotion moves a counter ``log_arity(g / 64B)`` levels up the tree
(Eqs. 2-3); merging compacts the MACs of a chunk so coarse MACs fill
the front of the chunk's MAC space without fragmentation (Fig. 9).
Addresses are computed per 32KB chunk assuming all *previous* chunks
are finest-grained, so each chunk owns a fixed 4KB MAC window and only
in-chunk indices depend on the bitmap (Sec. 4.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.address import line_in_partition, partition_in_chunk
from repro.common.constants import (
    CACHELINE_BYTES,
    CHUNK_BYTES,
    GRANULARITIES,
    LINES_PER_CHUNK,
    MAC_BYTES,
    PARTITIONS_PER_CHUNK,
    TREE_ARITY,
    granularity_level,
)
from repro.core import stream_part
from repro.tree.geometry import TreeGeometry

#: Bytes of fine-MAC space owned by one 32KB chunk (512 lines x 8B).
MAC_BYTES_PER_CHUNK = LINES_PER_CHUNK * MAC_BYTES

_PARTS_PER_4KB = GRANULARITIES[2] // GRANULARITIES[1]


def num_parents(granularity: int, arity: int = TREE_ARITY) -> int:
    """Paper Eq. 2: promotion steps = log_arity(granularity / 64B)."""
    level = granularity_level(granularity)
    # The closed form below is Eq. 2 verbatim; the table lookup above
    # already validated that it is exact for supported granularities.
    parents = round(math.log(granularity / CACHELINE_BYTES, arity))
    assert parents == level
    return parents


def ancestor_index(leaf_counter_index: int, parents: int, arity: int = TREE_ARITY) -> int:
    """Paper Eq. 3: recursive ancestor of a leaf counter index."""
    index = leaf_counter_index
    for _ in range(parents):
        index //= arity
    return index


@dataclass(frozen=True)
class CounterLocation:
    """Resolved location of a (possibly promoted) counter."""

    level: int
    node_index: int
    slot: int
    node_addr: int


def locate_counter(
    geometry: TreeGeometry, addr: int, granularity: int
) -> CounterLocation:
    """Resolve the counter of ``addr`` protected at ``granularity``.

    Equivalent to Eqs. 2-4: the counter of a ``64B * 8**l`` region
    lives at slot ``region % 8`` of level-``l`` node ``region // 8``.
    """
    level = granularity_level(granularity)
    node, slot = geometry.counter_slot(addr, level)
    return CounterLocation(
        level=level,
        node_index=node,
        slot=slot,
        node_addr=geometry.node_addr(level, node),
    )


def mac_index_in_chunk(
    bits: int, addr: int, max_granularity: int = GRANULARITIES[3]
) -> int:
    """Compacted in-chunk MAC index of ``addr`` under bitmap ``bits``.

    Walks the chunk's regions in address order, counting the MACs each
    earlier region contributes after merging: a fully streamed chunk
    has one MAC; a streamed 4KB group one; a stream partition one; a
    fine partition eight (one per line).  This realizes the
    fragmentation-free compaction of Fig. 9.  ``max_granularity`` caps
    merging for dual-granularity baselines.
    """
    if bits == stream_part.FULL_MASK and max_granularity >= GRANULARITIES[3]:
        return 0

    my_partition = partition_in_chunk(addr)
    my_group = my_partition // _PARTS_PER_4KB
    index = 0

    for group in range(my_group):
        index += _macs_of_group(bits, group, max_granularity)

    group_mask = ((1 << _PARTS_PER_4KB) - 1) << (my_group * _PARTS_PER_4KB)
    if bits & group_mask == group_mask and max_granularity >= GRANULARITIES[2]:
        return index  # one merged MAC for the whole 4KB group

    for part in range(my_group * _PARTS_PER_4KB, my_partition):
        index += stream_part.mac_count_of_partition(bits, part, max_granularity)

    if bits & (1 << my_partition) and max_granularity >= GRANULARITIES[1]:
        return index  # one merged MAC for the 512B partition
    return index + line_in_partition(addr)


def _macs_of_group(bits: int, group: int, max_granularity: int) -> int:
    mask = ((1 << _PARTS_PER_4KB) - 1) << (group * _PARTS_PER_4KB)
    if bits & mask == mask and max_granularity >= GRANULARITIES[2]:
        return 1
    return sum(
        stream_part.mac_count_of_partition(bits, part, max_granularity)
        for part in range(group * _PARTS_PER_4KB, (group + 1) * _PARTS_PER_4KB)
    )


def mac_addr(
    geometry: TreeGeometry,
    bits: int,
    addr: int,
    max_granularity: int = GRANULARITIES[3],
) -> int:
    """Paper Eq. 1: MAC address = chunk base + compacted index x 8B."""
    chunk = addr // CHUNK_BYTES
    chunk_mac_base = geometry.mac_base + chunk * MAC_BYTES_PER_CHUNK
    index = mac_index_in_chunk(bits, addr, max_granularity)
    return chunk_mac_base + index * MAC_BYTES


def mac_line_addr(
    geometry: TreeGeometry,
    bits: int,
    addr: int,
    max_granularity: int = GRANULARITIES[3],
) -> int:
    """64B-aligned address of the MAC cacheline holding ``addr``'s MAC."""
    raw = mac_addr(geometry, bits, addr, max_granularity)
    return raw - (raw % CACHELINE_BYTES)


def macs_per_chunk(bits: int, max_granularity: int = GRANULARITIES[3]) -> int:
    """Total MACs a chunk stores under bitmap ``bits`` (after merging)."""
    if bits == stream_part.FULL_MASK and max_granularity >= GRANULARITIES[3]:
        return 1
    return sum(
        _macs_of_group(bits, group, max_granularity)
        for group in range(PARTITIONS_PER_CHUNK // _PARTS_PER_4KB)
    )


def fine_lines_of_region(addr: int, granularity: int) -> range:
    """Global line indices of the region of ``addr`` at ``granularity``."""
    base = (addr // granularity) * granularity
    first = base // CACHELINE_BYTES
    return range(first, first + granularity // CACHELINE_BYTES)


def sanity_check_chunk_mac_space(bits: int) -> None:
    """Assert merged MACs never outgrow the fixed per-chunk MAC window."""
    assert macs_per_chunk(bits) <= LINES_PER_CHUNK, (
        f"compacted MAC count {macs_per_chunk(bits)} exceeds the fine "
        f"layout's {LINES_PER_CHUNK} slots"
    )
