"""The paper's contribution: multi-granular MAC & integrity-tree machinery.

Submodules:

* :mod:`repro.core.stream_part` -- ``stream_part`` bitmap algebra.
* :mod:`repro.core.addressing`  -- Eqs. 1-4 counter/MAC addressing.
* :mod:`repro.core.tracker`     -- per-chunk access tracker (Fig. 12).
* :mod:`repro.core.detector`    -- granularity detection (Algorithm 1).
* :mod:`repro.core.gran_table`  -- granularity table + lazy switching.
* :mod:`repro.core.switching`   -- Table-2 switching cost accounting.
"""

from repro.core.addressing import (
    CounterLocation,
    ancestor_index,
    locate_counter,
    mac_addr,
    mac_index_in_chunk,
    mac_line_addr,
    macs_per_chunk,
    num_parents,
)
from repro.core.detector import detect_stream_partitions
from repro.core.gran_table import GranularityTable, SwitchEvent, TableEntry
from repro.core.switching import SwitchAccounting, SwitchCost, cost_of
from repro.core.tracker import AccessTracker, Eviction, TrackerEntry

__all__ = [
    "CounterLocation",
    "ancestor_index",
    "locate_counter",
    "mac_addr",
    "mac_index_in_chunk",
    "mac_line_addr",
    "macs_per_chunk",
    "num_parents",
    "detect_stream_partitions",
    "GranularityTable",
    "SwitchEvent",
    "TableEntry",
    "SwitchAccounting",
    "SwitchCost",
    "cost_of",
    "AccessTracker",
    "Eviction",
    "TrackerEntry",
]
