"""``stream_part`` bitmaps: the paper's granularity encoding (Sec. 4.4).

The granularity of one 32KB chunk is stored as a 64-bit bitmap with one
bit per 512B partition.  A set bit means the partition is a *stream
partition* (protected at 512B or coarser); a clear bit means 64B fine
granularity.  Coarser granularities are encoded positionally:

* all 64 bits set            -> the whole chunk is 32KB-granular;
* an aligned group of 8 bits -> that 4KB block is 4KB-granular;
* a single set bit           -> that 512B partition is 512B-granular.

We keep the canonical in-memory convention "bit ``i`` = partition
``i``"; :func:`algorithm1_encoding` converts to the paper's literal
Algorithm-1 bit order (partition 0 in the MSB) for fidelity tests.
"""

from __future__ import annotations

from typing import List

from repro.common.address import partition_in_chunk
from repro.common.constants import (
    GRANULARITIES,
    LINES_PER_PARTITION,
    PARTITIONS_PER_CHUNK,
)

#: Bitmap with every partition marked as a stream (32KB granularity).
FULL_MASK = (1 << PARTITIONS_PER_CHUNK) - 1

#: Partitions per 4KB block (8 when partitions are 512B).
_PARTS_PER_4KB = GRANULARITIES[2] // GRANULARITIES[1]


def partition_bit(addr: int) -> int:
    """Bit mask of the partition containing ``addr`` within its chunk."""
    return 1 << partition_in_chunk(addr)


def group_mask(addr: int) -> int:
    """Bit mask of the aligned 4KB group of partitions containing ``addr``."""
    group = partition_in_chunk(addr) // _PARTS_PER_4KB
    return ((1 << _PARTS_PER_4KB) - 1) << (group * _PARTS_PER_4KB)


def resolve_granularity(
    bits: int, addr: int, max_granularity: int = GRANULARITIES[3]
) -> int:
    """Effective protection granularity of ``addr`` under bitmap ``bits``.

    Checks coarsest-first so a fully set chunk resolves to 32KB even
    though its 4KB groups and partitions are also fully set.
    ``max_granularity`` caps the result -- dual-granularity baselines
    (e.g. 64B/4KB MACs of [56]) run the same machinery with a cap.
    """
    if bits == FULL_MASK and max_granularity >= GRANULARITIES[3]:
        return GRANULARITIES[3]
    group = group_mask(addr)
    if bits & group == group and max_granularity >= GRANULARITIES[2]:
        return GRANULARITIES[2]
    if bits & partition_bit(addr) and max_granularity >= GRANULARITIES[1]:
        return GRANULARITIES[1]
    return GRANULARITIES[0]


def quantize_bits(bits: int, min_coarse: int) -> int:
    """Drop stream marks finer than ``min_coarse`` from a bitmap.

    Schemes that only support a subset of granularities (dual-granular
    prior work, ablations) quantize detection results before storing
    them: a 512B stream partition is meaningless to a scheme whose
    coarse unit is 4KB, so its bit is cleared (the partition falls back
    to fine-grained).
    """
    if min_coarse <= GRANULARITIES[1]:
        return bits
    if min_coarse == GRANULARITIES[2]:
        out = 0
        for group in range(PARTITIONS_PER_CHUNK // _PARTS_PER_4KB):
            mask = ((1 << _PARTS_PER_4KB) - 1) << (group * _PARTS_PER_4KB)
            if bits & mask == mask:
                out |= mask
        return out
    if min_coarse == GRANULARITIES[3]:
        return FULL_MASK if bits == FULL_MASK else 0
    raise ValueError(f"unsupported min_coarse {min_coarse}")


def granularity_histogram(bits: int) -> dict:
    """Bytes of a chunk covered at each granularity, keyed by size.

    Used for Fig. 19 (b)-style distributions: a chunk's 32KB either
    counts entirely as one 32KB stream, or splits into 4KB groups,
    512B partitions and fine residue.
    """
    sizes = {g: 0 for g in GRANULARITIES}
    if bits == FULL_MASK:
        sizes[GRANULARITIES[3]] = GRANULARITIES[3]
        return sizes
    for group in range(PARTITIONS_PER_CHUNK // _PARTS_PER_4KB):
        mask = ((1 << _PARTS_PER_4KB) - 1) << (group * _PARTS_PER_4KB)
        if bits & mask == mask:
            sizes[GRANULARITIES[2]] += GRANULARITIES[2]
            continue
        for part in range(group * _PARTS_PER_4KB, (group + 1) * _PARTS_PER_4KB):
            if bits & (1 << part):
                sizes[GRANULARITIES[1]] += GRANULARITIES[1]
            else:
                sizes[GRANULARITIES[0]] += GRANULARITIES[1]
    return sizes


def region_base_and_size(bits: int, addr: int, chunk_base: int) -> tuple:
    """(base address, size) of the protection region containing ``addr``."""
    gran = resolve_granularity(bits, addr)
    offset = addr - chunk_base
    return chunk_base + (offset // gran) * gran, gran


def partitions_as_list(bits: int) -> List[bool]:
    """Expand a bitmap into a per-partition boolean list (index = partition)."""
    return [bool(bits & (1 << i)) for i in range(PARTITIONS_PER_CHUNK)]


def from_partition_flags(flags: List[bool]) -> int:
    """Inverse of :func:`partitions_as_list`."""
    if len(flags) != PARTITIONS_PER_CHUNK:
        raise ValueError(
            f"expected {PARTITIONS_PER_CHUNK} partition flags, got {len(flags)}"
        )
    bits = 0
    for i, flag in enumerate(flags):
        if flag:
            bits |= 1 << i
    return bits


def algorithm1_encoding(bits: int) -> int:
    """Convert the canonical bitmap to the paper's Algorithm-1 order.

    Algorithm 1 appends partitions MSB-first (add one, then shift
    left), so partition 0 lands in the most significant bit.  The two
    encodings are bit-reverses of each other.
    """
    encoded = 0
    for i in range(PARTITIONS_PER_CHUNK):
        encoded = (encoded << 1) | ((bits >> i) & 1)
    return encoded


def mac_count_of_partition(
    bits: int, partition: int, max_granularity: int = GRANULARITIES[3]
) -> int:
    """MACs contributed by one partition under bitmap ``bits``.

    A stream partition is covered by one merged MAC shared with its
    group (counted at group granularity by the caller); a fine
    partition contributes one MAC per 64B line.  Schemes whose coarse
    unit is larger than 512B never merge at partition level.
    """
    if bits & (1 << partition) and max_granularity >= GRANULARITIES[1]:
        return 1
    return LINES_PER_PARTITION
