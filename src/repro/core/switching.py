"""Granularity-switching cost model (paper Table 2, Figs. 13-14).

Lazy switching makes most transitions free; the residual costs are:

* **Counter/tree, scale-up on a read** (RAR / RAW): the promoted
  counter must be sealed up the tree, so the nodes from the promotion
  parent to the root are fetched (writes would fetch them anyway).
* **MAC, scale-down on non-read-only data**: merged MACs cannot be
  split without recomputing fine MACs, which requires the whole data
  chunk (the paper's "Moderate" case).  Read-only data keeps its
  constant fine MACs in unprotected memory (after [56]), so only the
  fine-MAC lines are refetched.

Everything else is zero-cost by construction; the accounting here both
charges the timing layer and produces the Table-2 category ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.constants import CACHELINE_BYTES, MACS_PER_LINE
from repro.core.gran_table import SwitchEvent

#: Bytes of data whose fine MACs fill one 64B MAC line (8 x 64B).
_DATA_PER_MAC_LINE = MACS_PER_LINE * CACHELINE_BYTES


@dataclass(frozen=True)
class SwitchCost:
    """Extra work one switch event injects into the pipeline.

    Attributes:
        category: Table-2 row label for statistics.
        tree_fetch_to_root: fetch tree nodes from the promotion parent
            up to the root (charged through the metadata cache).
        extra_mac_lines: additional MAC lines to fetch.
        extra_data_lines: additional whole-data lines to fetch.
        recrypt_lines: lines to re-encrypt / re-MAC (latency only).
    """

    category: str
    tree_fetch_to_root: bool = False
    extra_mac_lines: int = 0
    extra_data_lines: int = 0
    recrypt_lines: int = 0


def categorize(event: SwitchEvent) -> str:
    """Table-2 row of one switch event."""
    if not event.scale_up:
        return "coarse_to_fine"
    prev = "W" if event.prev_was_write else "R"
    cur = "W" if event.is_write else "R"
    return f"fine_to_coarse_{cur}A{prev}"


def cost_of(event: SwitchEvent) -> SwitchCost:
    """Map a switch event to its Table-2 cost."""
    category = categorize(event)

    if not event.scale_up:
        # Scale-down. Counter side is free (the parent value is reused
        # by all children, Fig. 13 (b)); the MAC side depends on
        # whether fine MACs still exist.
        old_lines = event.old_granularity // CACHELINE_BYTES
        if event.read_only:
            fine_mac_lines = max(1, event.old_granularity // _DATA_PER_MAC_LINE)
            return SwitchCost(
                category=category,
                extra_mac_lines=fine_mac_lines,
                recrypt_lines=0,
            )
        return SwitchCost(
            category=category,
            extra_data_lines=old_lines,
            recrypt_lines=old_lines,
        )

    # Scale-up. Writes refetch the path to the root anyway -> free.
    if event.is_write:
        return SwitchCost(category=category)
    # Reads must seal the promoted counter: fetch parent-to-root.  The
    # merged MAC is built by folding the stored fine MACs (Eq. 5).
    fine_mac_lines = max(1, event.new_granularity // _DATA_PER_MAC_LINE)
    return SwitchCost(
        category=category,
        tree_fetch_to_root=True,
        extra_mac_lines=fine_mac_lines,
        recrypt_lines=0,
    )


@dataclass
class SwitchAccounting:
    """Aggregated Table-2 statistics for one simulation run."""

    events_by_category: Dict[str, int] = field(default_factory=dict)
    correct_predictions: int = 0
    total_resolutions: int = 0

    def record_event(self, event: SwitchEvent) -> None:
        key = categorize(event)
        self.events_by_category[key] = self.events_by_category.get(key, 0) + 1

    def record_resolution(self, switched: bool) -> None:
        self.total_resolutions += 1
        if not switched:
            self.correct_predictions += 1

    @property
    def total_switches(self) -> int:
        return sum(self.events_by_category.values())

    def ratios(self) -> Dict[str, float]:
        """Table-2 style ratios over all granularity resolutions."""
        if self.total_resolutions == 0:
            return {}
        out = {
            key: count / self.total_resolutions
            for key, count in sorted(self.events_by_category.items())
        }
        out["correct_prediction"] = (
            self.correct_predictions / self.total_resolutions
        )
        return out

    @property
    def misprediction_rate(self) -> float:
        if self.total_resolutions == 0:
            return 0.0
        return self.total_switches / self.total_resolutions
