"""Granularity table with lazy switching (paper Sec. 4.4).

One entry per 32KB chunk, holding *two* ``stream_part`` bitmaps: the
granularity currently sealed into metadata (``current``) and the most
recent detection result (``next``).  Detections only update ``next``;
the expensive re-keying of counters and MACs happens lazily, the first
time an access actually touches a region whose two bitmaps disagree
(*lazy granularity switching*).

The table itself lives in a protected memory region; the timing layer
charges its traffic through a dedicated cache using the addresses
computed here (16B per chunk, 4 entries per 64B line).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.common.address import chunk_base, chunk_index
from repro.common.constants import CACHELINE_BYTES, CHUNK_BYTES, GRANULARITIES
from repro.core import stream_part

#: Bytes per granularity-table entry: 8B current + 8B next.
TABLE_ENTRY_BYTES = 16


@dataclass
class TableEntry:
    """Granularity state of one chunk."""

    current: int = 0
    next: int = 0
    written: bool = False  # chunk ever written (read-only optimization)
    last_access_write: bool = False
    detections: int = 0
    demote_hold: int = 0  # hysteresis: suppress re-promotion after a
    # misprediction demotion for this many detections

    @property
    def pending_switch(self) -> bool:
        return self.current != self.next


@dataclass(frozen=True)
class SwitchEvent:
    """One lazy granularity switch, to be costed by the switching model.

    Attributes:
        addr: the access that triggered the switch.
        old_granularity / new_granularity: before and after, in bytes.
        prev_was_write: last access to the chunk before this one.
        is_write: whether the triggering access is a write.
        read_only: chunk had never been written when the switch fired.
        old_bits / new_bits: the chunk's ``stream_part`` bitmap before
            and after the switch (needed to compute old vs. new
            compacted MAC addresses during re-keying).
    """

    addr: int
    old_granularity: int
    new_granularity: int
    prev_was_write: bool
    is_write: bool
    read_only: bool
    old_bits: int = 0
    new_bits: int = 0

    @property
    def scale_up(self) -> bool:
        return self.new_granularity > self.old_granularity


@dataclass
class GranularityTable:
    """In-memory model of the protected granularity table.

    ``min_coarse`` / ``max_granularity`` restrict which granularities
    the table will ever store or resolve -- the full multi-granular
    scheme uses (512B, 32KB); dual-granularity baselines pin both to
    one coarse size.
    """

    table_base: int = 0
    min_coarse: int = GRANULARITIES[1]
    max_granularity: int = GRANULARITIES[3]
    _entries: Dict[int, TableEntry] = field(default_factory=dict)

    def entry(self, addr: int) -> TableEntry:
        """Entry of the chunk containing ``addr`` (created on demand)."""
        return self._entries.setdefault(chunk_index(addr), TableEntry())

    def entry_by_chunk(self, chunk: int) -> TableEntry:
        return self._entries.setdefault(chunk, TableEntry())

    def entry_addr(self, addr: int) -> int:
        """Simulated physical address of the chunk's table entry."""
        return self.table_base + chunk_index(addr) * TABLE_ENTRY_BYTES

    def entry_line_addr(self, addr: int) -> int:
        """64B-aligned line address (4 entries per line)."""
        raw = self.entry_addr(addr)
        return raw - (raw % CACHELINE_BYTES)

    def record_detection(self, chunk: int, bits: int) -> bool:
        """Store a detection result into ``next``; True when it changed."""
        entry = self.entry_by_chunk(chunk)
        entry.detections += 1
        bits = stream_part.quantize_bits(bits, self.min_coarse)
        if entry.demote_hold > 0:
            # Hysteresis after a misprediction demotion: accept further
            # demotions but refuse to re-promote until the hold decays,
            # damping promote/demote oscillation on mixed regions.
            entry.demote_hold -= 1
            bits &= entry.next
        if entry.next == bits:
            return False
        entry.next = bits
        return True

    def resolve(self, addr: int, is_write: bool) -> Tuple[int, Optional[SwitchEvent]]:
        """Effective granularity of ``addr``, applying lazy switching.

        Returns the granularity to use for this access and, when the
        stored and detected granularities of the touched region
        disagree, the :class:`SwitchEvent` that the caller must cost
        and apply.  The switch is applied to ``current`` here (the
        metadata re-keying cost is the caller's concern).
        """
        entry = self.entry(addr)
        old_gran = stream_part.resolve_granularity(
            entry.current, addr, self.max_granularity
        )
        new_gran = stream_part.resolve_granularity(
            entry.next, addr, self.max_granularity
        )

        event: Optional[SwitchEvent] = None
        if new_gran != old_gran:
            old_bits = entry.current
            self._apply_switch(entry, addr, max(old_gran, new_gran))
            event = SwitchEvent(
                addr=addr,
                old_granularity=old_gran,
                new_granularity=new_gran,
                prev_was_write=entry.last_access_write,
                is_write=is_write,
                read_only=not entry.written,
                old_bits=old_bits,
                new_bits=entry.current,
            )
            granularity = new_gran
        else:
            granularity = old_gran

        entry.last_access_write = is_write
        if is_write:
            entry.written = True
        return granularity, event

    def peek_granularity(self, addr: int) -> int:
        """Granularity without lazy switching (no side effects)."""
        entry = self._entries.get(chunk_index(addr))
        if entry is None:
            return GRANULARITIES[0]
        return stream_part.resolve_granularity(
            entry.current, addr, self.max_granularity
        )

    def _apply_switch(self, entry: TableEntry, addr: int, span: int) -> None:
        """Copy ``next`` into ``current`` for the region of ``addr``.

        Only the bits of the touched region move -- other regions of
        the chunk keep their old sealed granularity until their own
        first access (that is what makes the switching *lazy*).
        """
        if span >= CHUNK_BYTES:
            entry.current = entry.next
            return
        base = chunk_base(addr)
        offset = addr - base
        region_start = (offset // span) * span
        first_part = region_start // GRANULARITIES[1]
        parts = max(1, span // GRANULARITIES[1])
        mask = ((1 << parts) - 1) << first_part
        entry.current = (entry.current & ~mask) | (entry.next & mask)

    # ------------------------------------------------------------------
    # Recovery helpers (quarantine demotion, switch rollback)
    # ------------------------------------------------------------------

    @staticmethod
    def region_partition_mask(addr: int, span: int) -> int:
        """Bitmap mask of the partitions covered by ``addr``'s span-region.

        ``span`` is clamped to the chunk; sub-partition spans (64B)
        still mask their covering 512B partition, because the bitmap
        cannot express anything finer.
        """
        span = min(max(span, GRANULARITIES[1]), CHUNK_BYTES)
        offset = addr - chunk_base(addr)
        region_start = (offset // span) * span
        first_part = region_start // GRANULARITIES[1]
        parts = span // GRANULARITIES[1]
        return ((1 << parts) - 1) << first_part

    def demote_region(self, addr: int, span: int, hold: int = 4) -> Tuple[int, int]:
        """Force the region of ``addr`` back to 64B granularity.

        Clears the region's partition bits in *both* bitmaps (so no
        lazy switch immediately re-promotes it) and arms the demotion
        hysteresis.  Returns ``(old_bits, new_bits)`` so the caller can
        relocate compacted MACs of the rest of the chunk.
        """
        entry = self.entry(addr)
        mask = self.region_partition_mask(addr, span)
        old_bits = entry.current
        entry.current &= ~mask
        entry.next &= ~mask
        entry.demote_hold = max(entry.demote_hold, hold)
        return old_bits, entry.current

    def rollback_region(self, addr: int, span: int, old_bits: int) -> None:
        """Undo a just-applied lazy switch of ``addr``'s span-region.

        Restores the span's partition bits in both bitmaps from
        ``old_bits`` -- used when the metadata re-keying of a switch
        fails verification (mid-switch tamper) and the sealed layout
        must remain the authoritative one.
        """
        entry = self.entry(addr)
        mask = self.region_partition_mask(addr, span)
        entry.current = (entry.current & ~mask) | (old_bits & mask)
        entry.next = (entry.next & ~mask) | (old_bits & mask)

    def restrict_next(self, addr: int, forbidden_mask: int) -> None:
        """Keep the partitions in ``forbidden_mask`` fine in ``next``.

        Quarantined partitions must never be re-promoted (a switch
        would have to open their unverifiable data), so the resolver
        clamps the detection bitmap before applying lazy switching.
        """
        entry = self._entries.get(chunk_index(addr))
        if entry is not None:
            entry.next &= ~forbidden_mask

    def chunks(self) -> Iterator[Tuple[int, TableEntry]]:
        return iter(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)
