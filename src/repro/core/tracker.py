"""Access tracker: per-chunk one-hot access vectors (paper Fig. 12).

Twelve entries (3 per processing unit), each tracking one 32KB chunk
with a 512-bit vector -- bit ``i`` set when cacheline ``i`` of the
chunk has been touched.  An entry is *evicted* (and handed to the
granularity detector) when:

* every line of the chunk has been touched (count reaches 512), or
* the entry's lifetime exceeds 16K cycles, or
* a new chunk needs a slot and the tracker is full (LRU victim).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.common.address import cacheline_in_chunk, chunk_index
from repro.common.config import TrackerConfig
from repro.common.constants import LINES_PER_CHUNK


@dataclass
class TrackerEntry:
    """State of one tracked 32KB chunk."""

    chunk_index: int
    access_bits: int
    set_count: int
    birth_cycle: int
    last_cycle: int

    @property
    def full(self) -> bool:
        return self.set_count >= LINES_PER_CHUNK

    def expired(self, now: int, lifetime: int) -> bool:
        return now - self.birth_cycle > lifetime


@dataclass(frozen=True)
class Eviction:
    """An evicted entry plus why it left the tracker."""

    entry: TrackerEntry
    reason: str  # "full" | "expired" | "capacity"


class AccessTracker:
    """LRU tracker of recently accessed chunks.

    ``observe`` records one 64B access and returns any evictions it
    caused; callers (the dynamic granularity manager) feed evictions to
    the detector.  ``drain`` evicts everything at end of simulation so
    trailing chunks still get classified.
    """

    def __init__(self, config: Optional[TrackerConfig] = None) -> None:
        self.config = config or TrackerConfig()
        self._entries: "OrderedDict[int, TrackerEntry]" = OrderedDict()
        self.evictions_full = 0
        self.evictions_expired = 0
        self.evictions_capacity = 0
        # Earliest cycle any current entry can expire; ``observe`` runs
        # per request, so the expiry sweep is skipped entirely until
        # this deadline passes.  The value is conservative (it may
        # reference an entry that already left for another reason) --
        # a stale deadline only triggers a scan that finds nothing and
        # recomputes the true one, never a missed eviction.
        self._next_expiry = float("inf")

    def __len__(self) -> int:
        return len(self._entries)

    def observe(self, addr: int, cycle: int) -> List[Eviction]:
        """Record an access; return entries evicted by this access."""
        evicted: List[Eviction] = []
        if cycle > self._next_expiry:
            evicted.extend(self._sweep_expired(cycle))

        chunk = chunk_index(addr)
        entry = self._entries.get(chunk)
        if entry is None:
            if len(self._entries) >= self.config.entries:
                victim_chunk, victim = self._entries.popitem(last=False)
                del victim_chunk
                self.evictions_capacity += 1
                evicted.append(Eviction(victim, "capacity"))
            entry = TrackerEntry(
                chunk_index=chunk,
                access_bits=0,
                set_count=0,
                birth_cycle=cycle,
                last_cycle=cycle,
            )
            self._entries[chunk] = entry
            deadline = cycle + self.config.lifetime_cycles
            if deadline < self._next_expiry:
                self._next_expiry = deadline
        else:
            # Refresh LRU position.
            self._entries.move_to_end(chunk)

        bit = 1 << cacheline_in_chunk(addr)
        if not entry.access_bits & bit:
            entry.access_bits |= bit
            entry.set_count += 1
        entry.last_cycle = cycle

        if entry.full:
            self._entries.pop(chunk)
            self.evictions_full += 1
            evicted.append(Eviction(entry, "full"))
        return evicted

    def drain(self) -> List[Eviction]:
        """Evict all remaining entries (end of trace)."""
        evicted = [
            Eviction(entry, "expired") for entry in self._entries.values()
        ]
        self.evictions_expired += len(evicted)
        self._entries.clear()
        self._next_expiry = float("inf")
        return evicted

    def _sweep_expired(self, now: int) -> List[Eviction]:
        lifetime = self.config.lifetime_cycles
        expired = [
            chunk
            for chunk, entry in self._entries.items()
            if entry.expired(now, lifetime)
        ]
        evicted = []
        for chunk in expired:
            entry = self._entries.pop(chunk)
            self.evictions_expired += 1
            evicted.append(Eviction(entry, "expired"))
        # Recompute the exact deadline from the survivors.
        self._next_expiry = (
            min(e.birth_cycle for e in self._entries.values()) + lifetime
            if self._entries
            else float("inf")
        )
        return evicted

    def on_chip_bits(self) -> int:
        """Hardware cost of this tracker in bits (paper Sec. 4.5)."""
        from repro.common.constants import CHUNK_INDEX_BITS

        return self.config.entries * (LINES_PER_CHUNK + CHUNK_INDEX_BITS)


def run_trace_through_tracker(
    accesses,
    config: Optional[TrackerConfig] = None,
    on_evict: Optional[Callable[[Eviction], None]] = None,
) -> AccessTracker:
    """Convenience: feed (cycle, addr) pairs through a fresh tracker."""
    tracker = AccessTracker(config)
    for cycle, addr in accesses:
        for eviction in tracker.observe(addr, cycle):
            if on_evict is not None:
                on_evict(eviction)
    if on_evict is not None:
        for eviction in tracker.drain():
            on_evict(eviction)
    return tracker
