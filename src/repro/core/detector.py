"""Granularity detection (paper Algorithm 1).

When an access-tracker entry is evicted, its 512-bit access vector is
split into 64 partitions of 8 bits.  A partition whose bits are all
set was fully streamed within the tracking window and becomes a
*stream partition*; the result is the ``stream_part`` bitmap stored in
the granularity table.
"""

from __future__ import annotations

from repro.common.constants import (
    LINES_PER_CHUNK,
    LINES_PER_PARTITION,
    PARTITIONS_PER_CHUNK,
)

_PARTITION_MASK = (1 << LINES_PER_PARTITION) - 1


def detect_stream_partitions(access_bits: int) -> int:
    """Algorithm 1 over a 512-bit access vector -> 64-bit ``stream_part``.

    Canonical bit order: bit ``i`` of the result corresponds to
    partition ``i`` (the paper's literal MSB-first encoding is
    available via :func:`repro.core.stream_part.algorithm1_encoding`).
    """
    if access_bits < 0 or access_bits >> LINES_PER_CHUNK:
        raise ValueError("access vector wider than 512 bits")
    result = 0
    for part in range(PARTITIONS_PER_CHUNK):
        window = (access_bits >> (part * LINES_PER_PARTITION)) & _PARTITION_MASK
        if window == _PARTITION_MASK:  # ISALLSET(p_i)
            result |= 1 << part
    return result


def detect_paper_order(access_bits: int) -> int:
    """Algorithm 1 verbatim: add-one-then-shift-left accumulation.

    Returns the paper's MSB-first encoding.  Kept as an independent
    implementation so tests can cross-check the canonical one.
    """
    stream_partition = 0
    for part in range(PARTITIONS_PER_CHUNK):
        stream_partition <<= 1
        window = (access_bits >> (part * LINES_PER_PARTITION)) & _PARTITION_MASK
        if window == _PARTITION_MASK:
            stream_partition |= 1
    return stream_partition


def merge_detection(
    previous_bits: int, access_bits: int, censored: bool = False
) -> int:
    """Fold one tracker observation into the previous ``stream_part``.

    A partition that was fully covered in the window is (re)classified
    as a stream; a partition that was *touched but only partially* is
    demoted (evidence of sparse access); a partition the window never
    touched keeps its previous classification -- absence of accesses
    is not evidence that a stream stopped being a stream.  Without
    this, capacity-evicted tracker entries (common when four devices
    share twelve entries) would erase learned granularity and cause
    demote/re-promote oscillation on every unrelated fine access.

    ``censored=True`` marks observations cut short by a *capacity*
    eviction: a stream that was still in flight looks exactly like a
    sparse access ("touched but incomplete"), so truncated windows may
    only promote, never demote.
    """
    touched = 0
    streams = 0
    for part in range(PARTITIONS_PER_CHUNK):
        window = (access_bits >> (part * LINES_PER_PARTITION)) & _PARTITION_MASK
        if window:
            touched |= 1 << part
        if window == _PARTITION_MASK:
            streams |= 1 << part
    if censored:
        return previous_bits | streams
    return (previous_bits & ~touched) | streams


def full_chunk_vector() -> int:
    """Access vector of a completely streamed chunk (all 512 bits set)."""
    return (1 << LINES_PER_CHUNK) - 1


def vector_from_lines(lines) -> int:
    """Build an access vector from in-chunk line indices (0..511)."""
    bits = 0
    for line in lines:
        if not 0 <= line < LINES_PER_CHUNK:
            raise ValueError(f"line index {line} out of chunk range")
        bits |= 1 << line
    return bits
