"""Integrity-failure policies and event records for the secure memory.

The paper's engine (like SGX-class hardware) halts on the first
integrity violation.  For a system that must keep serving traffic, the
reproduction also offers *graceful degradation*: an integrity failure
poisons only the protection region that failed verification, that
region is quarantined (fails closed on every access) and demoted back
to 64B granularity, and fresh writes heal it line by line while the
rest of the protected region keeps serving.

Three policies:

* ``raise``                 -- the paper's semantics: first violation
  raises and the engine makes no further promises (default).
* ``quarantine``            -- quarantine the failing region
  immediately; unaffected chunks keep serving.
* ``retry-then-quarantine`` -- re-verify once (absorbing transient
  bus/DRAM glitches, see ``BackingStore.corrupt_transient``) before
  quarantining.

Detection is never weakened: no policy ever returns data that failed
verification.  The policies only change what happens *after* the
failure is detected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

#: The accepted failure-policy modes.
FAILURE_MODES = ("raise", "quarantine", "retry-then-quarantine")


@dataclass(frozen=True)
class FailurePolicy:
    """How the engine responds once an integrity check has failed.

    Attributes:
        mode: one of :data:`FAILURE_MODES`.
        retries: verification re-attempts before quarantining (only
            meaningful for ``retry-then-quarantine``).
    """

    mode: str = "raise"
    retries: int = 1

    def __post_init__(self) -> None:
        if self.mode not in FAILURE_MODES:
            raise ValueError(
                f"unknown failure mode {self.mode!r}; expected one of "
                f"{FAILURE_MODES}"
            )
        if self.retries < 0:
            raise ValueError(f"negative retry count {self.retries}")

    @classmethod
    def coerce(cls, value) -> "FailurePolicy":
        """Accept a FailurePolicy, a mode string, or None (-> raise)."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        raise TypeError(f"cannot build a FailurePolicy from {value!r}")

    @property
    def quarantines(self) -> bool:
        return self.mode != "raise"

    @property
    def retries_first(self) -> bool:
        return self.mode == "retry-then-quarantine"


@dataclass(frozen=True)
class IntegrityEvent:
    """One recorded integrity incident (for audit / metrics)."""

    kind: str          # "read-failure" | "write-failure" | "switch-failure"
    addr: int          # address of the triggering access
    granularity: int   # sealed granularity of the failing region
    error: str         # exception class name of the detected violation
    healable: bool     # quarantined lines can be healed by fresh writes
    recovered: bool = False  # a retry re-verified successfully


@dataclass
class IntegrityLog:
    """Append-only log of integrity incidents on one engine."""

    events: List[IntegrityEvent] = field(default_factory=list)

    def record(self, event: IntegrityEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def counts_by_kind(self) -> dict:
        out: dict = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out
