"""Protected granularity-table storage (paper Sec. 4.4).

The granularity table decides *how* data is protected, so it is itself
an attack target: forging an entry would misdirect the address
computation of counters and MACs.  The paper therefore places it in a
protected memory region secured by a **discrete fixed-64B integrity
tree**.  This module realizes that: table entries are persisted through
a dedicated fixed-policy :class:`~repro.secure_memory.SecureMemory`
instance, so every entry load is decrypted and verified, and any
off-chip tampering with the table raises before a forged granularity
can be used.

The in-memory :class:`~repro.core.gran_table.GranularityTable` stays
the working copy (the engine's caches); this store is its durable,
attacker-exposed backing.
"""

from __future__ import annotations

from typing import Optional

from repro.common.address import align_down
from repro.common.constants import CACHELINE_BYTES
from repro.core.gran_table import GranularityTable, TABLE_ENTRY_BYTES
from repro.crypto.keys import KeySet
from repro.secure_memory.engine import SecureMemory


class ProtectedTableStore:
    """Granularity-table entries sealed in a fixed-granular region."""

    def __init__(
        self,
        chunks: int,
        keys: Optional[KeySet] = None,
    ) -> None:
        if chunks <= 0:
            raise ValueError("table must cover at least one chunk")
        self.chunks = chunks
        region = max(
            CACHELINE_BYTES * 8,
            _round_up(chunks * TABLE_ENTRY_BYTES, CACHELINE_BYTES),
        )
        # The paper's table region uses the conventional fixed tree.
        self._memory = SecureMemory(
            region, keys=keys or KeySet.generate(), policy="fixed"
        )

    def _entry_addr(self, chunk: int) -> int:
        if not 0 <= chunk < self.chunks:
            raise IndexError(f"chunk {chunk} outside table of {self.chunks}")
        return chunk * TABLE_ENTRY_BYTES

    def store(self, chunk: int, current: int, next_bits: int) -> None:
        """Seal one entry (8B current + 8B next, paper layout)."""
        payload = current.to_bytes(8, "little") + next_bits.to_bytes(8, "little")
        self._memory.write_bytes(self._entry_addr(chunk), payload)

    def load(self, chunk: int) -> tuple:
        """Verified load of one entry; raises on any table tampering."""
        raw = self._memory.read_bytes(self._entry_addr(chunk), TABLE_ENTRY_BYTES)
        return (
            int.from_bytes(raw[:8], "little"),
            int.from_bytes(raw[8:], "little"),
        )

    def checkpoint(self, table: GranularityTable) -> int:
        """Seal every populated entry of a working table; returns count."""
        count = 0
        for chunk, entry in table.chunks():
            if chunk < self.chunks and (entry.current or entry.next):
                self.store(chunk, entry.current, entry.next)
                count += 1
        return count

    def restore(self, table: GranularityTable) -> None:
        """Verified reload of all stored entries into a working table."""
        for chunk in range(self.chunks):
            current, next_bits = self.load(chunk)
            if current or next_bits:
                entry = table.entry_by_chunk(chunk)
                entry.current = current
                entry.next = next_bits

    # Attacker primitive -------------------------------------------------

    def tamper_entry(self, chunk: int) -> None:
        """Flip a bit of a stored entry's ciphertext (physical attack)."""
        line = align_down(self._entry_addr(chunk), CACHELINE_BYTES)
        self._memory.tamper_data(line)


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple
