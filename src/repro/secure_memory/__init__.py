"""User-facing functional secure memory (encrypt + MAC + replay-protect)."""

from repro.secure_memory.engine import SecureMemory
from repro.secure_memory.protected_table import ProtectedTableStore

__all__ = ["SecureMemory", "ProtectedTableStore"]
