"""User-facing functional secure memory (encrypt + MAC + replay-protect)."""

from repro.secure_memory.engine import SecureMemory
from repro.secure_memory.failure import (
    FAILURE_MODES,
    FailurePolicy,
    IntegrityEvent,
    IntegrityLog,
)
from repro.secure_memory.protected_table import ProtectedTableStore
from repro.secure_memory.session import EngineSession

__all__ = [
    "SecureMemory",
    "EngineSession",
    "ProtectedTableStore",
    "FailurePolicy",
    "FAILURE_MODES",
    "IntegrityEvent",
    "IntegrityLog",
]
