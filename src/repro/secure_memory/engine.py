"""Functional secure memory: encryption + integrity + freshness, end to end.

This is the paper's memory protection engine as a *working* object: it
stores real ciphertext in an attacker-accessible backing store, real
MACs in an attacker-accessible MAC store, and real counters in the
functional counter tree.  Reads verify everything and raise
:class:`~repro.common.errors.IntegrityError` /
:class:`~repro.common.errors.ReplayError` on any off-chip mutation.

Two policies:

* ``fixed``         -- the conventional baseline: 64B counters + MACs.
* ``multigranular`` -- the paper's contribution: the access tracker
  detects stream partitions (Alg. 1), the granularity table applies
  lazy switching, counters are promoted into parent tree nodes
  (Fig. 10) and MACs are merged + compacted (Fig. 9, Eq. 5).

Uninitialized memory reads as zeros.  A line is "sealed" once it has a
stored MAC; absence of a MAC is only accepted for the pristine all-zero
ciphertext, so an attacker cannot hide data by deleting its MAC.

The functional layer favours clarity over speed; the timing layer in
:mod:`repro.schemes` shares the same core logic but only counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.address import align_down, check_range, iter_lines
from repro.common.constants import CACHELINE_BYTES, GRANULARITIES, granularity_level
from repro.common.errors import AddressError, IntegrityError, ReplayError
from repro.core import addressing, stream_part
from repro.core.detector import merge_detection
from repro.core.gran_table import GranularityTable, SwitchEvent
from repro.core.switching import SwitchAccounting
from repro.core.tracker import AccessTracker
from repro.crypto.keys import KeySet
from repro.crypto.mac import compute_mac, macs_equal, nested_mac
from repro.crypto.otp import decrypt_line, encrypt_line
from repro.mem.backing_store import BackingStore
from repro.tree.geometry import TreeGeometry
from repro.tree.integrity_tree import CounterTree

_REPLAY_PROBE_WINDOW = 64
_ZERO_LINE = bytes(CACHELINE_BYTES)


class SecureMemory:
    """Encrypted, integrity- and replay-protected memory region."""

    def __init__(
        self,
        region_bytes: int,
        keys: Optional[KeySet] = None,
        policy: str = "multigranular",
        tracker: Optional[AccessTracker] = None,
    ) -> None:
        if policy not in ("fixed", "multigranular"):
            raise ValueError(f"unknown policy {policy!r}")
        self.policy = policy
        self.keys = keys or KeySet.generate()
        self.geometry = TreeGeometry.build(region_bytes)
        self.tree = CounterTree(self.geometry, self.keys)
        self.dram = BackingStore()
        self._macs: Dict[int, bytes] = {}
        self.table = GranularityTable(table_base=self.geometry.table_base)
        self.tracker = tracker or AccessTracker()
        self.switching = SwitchAccounting()
        self.cycle = 0
        self.reads = 0
        self.writes = 0
        self.switches = 0

    # ------------------------------------------------------------------
    # Public data interface
    # ------------------------------------------------------------------

    def write(self, addr: int, data: bytes) -> None:
        """Encrypt and store ``data`` at 64B-aligned ``addr``."""
        self._check_aligned_access(addr, len(data))
        for line_index in iter_lines(addr, len(data)):
            line_addr = line_index * CACHELINE_BYTES
            offset = line_addr - addr
            payload = data[offset : offset + CACHELINE_BYTES]
            self._write_line(line_addr, payload)
            self.writes += 1

    def read(self, addr: int, size: int) -> bytes:
        """Verified read of ``size`` bytes from 64B-aligned ``addr``."""
        self._check_aligned_access(addr, size)
        out = bytearray()
        for line_index in iter_lines(addr, size):
            line_addr = line_index * CACHELINE_BYTES
            out += self._read_line(line_addr)
            self.reads += 1
        return bytes(out)

    def advance(self, cycles: int) -> None:
        """Advance the logical clock used by the access tracker."""
        self.cycle += cycles

    def granularity_of(self, addr: int) -> int:
        """Currently sealed protection granularity of ``addr``."""
        if self.policy == "fixed":
            return GRANULARITIES[0]
        return self.table.peek_granularity(addr)

    # ------------------------------------------------------------------
    # Attacker primitives (physical off-chip access, paper Sec. 2.5)
    # ------------------------------------------------------------------

    def tamper_data(self, addr: int, flip_mask: int = 0x01) -> None:
        """Flip a bit of stored ciphertext."""
        self.dram.corrupt(align_down(addr, CACHELINE_BYTES), flip_mask=flip_mask)

    def tamper_mac(self, addr: int) -> None:
        """Flip a bit of the stored MAC covering ``addr``."""
        mac_addr = self._region_mac_addr(addr)
        mac = self._macs.get(mac_addr)
        if mac is None:
            raise KeyError(f"no MAC stored yet for {addr:#x}")
        self._macs[mac_addr] = bytes([mac[0] ^ 0x01]) + mac[1:]

    def snapshot(self, addr: int) -> Tuple[bytes, bytes]:
        """Capture (ciphertext, MAC) of one line for a replay attack."""
        line_addr = align_down(addr, CACHELINE_BYTES)
        return (
            self.dram.snapshot_line(line_addr),
            self._macs.get(self._region_mac_addr(addr), b""),
        )

    def replay(self, addr: int, snapshot: Tuple[bytes, bytes]) -> None:
        """Restore a previously captured (ciphertext, MAC) pair."""
        line_addr = align_down(addr, CACHELINE_BYTES)
        ciphertext, mac = snapshot
        self.dram.replay_line(line_addr, ciphertext)
        if mac:
            self._macs[self._region_mac_addr(addr)] = mac

    # ------------------------------------------------------------------
    # Line-level paths
    # ------------------------------------------------------------------

    def _write_line(self, line_addr: int, payload: bytes) -> None:
        if len(payload) != CACHELINE_BYTES:
            payload = payload.ljust(CACHELINE_BYTES, b"\0")
        granularity = self._resolve(line_addr, is_write=True)
        if granularity == GRANULARITIES[0]:
            counter = self.tree.increment_counter(line_addr, level=0)
            self._seal_line(line_addr, counter, payload, self._current_bits(line_addr))
            return
        self._write_line_coarse(line_addr, payload, granularity)

    def _write_line_coarse(
        self, line_addr: int, payload: bytes, granularity: int
    ) -> None:
        """Write one line of a coarse region (shared counter + merged MAC).

        The shared counter advances, so every line of the region is
        re-encrypted under the new value -- this is precisely the cost
        the dynamic detector exists to avoid on mispredicted regions.
        """
        level = granularity_level(granularity)
        region_base = align_down(line_addr, granularity)
        bits = self._current_bits(line_addr)
        old_counter = self.tree.read_counter(region_base, level=level)
        plaintexts = self._open_region(region_base, granularity, old_counter, bits)
        plaintexts[(line_addr - region_base) // CACHELINE_BYTES] = payload
        new_counter = self.tree.increment_counter(region_base, level=level)
        self._seal_region(region_base, granularity, new_counter, plaintexts, bits)

    def _read_line(self, line_addr: int) -> bytes:
        granularity = self._resolve(line_addr, is_write=False)
        bits = self._current_bits(line_addr)
        if granularity == GRANULARITIES[0]:
            counter = self.tree.read_counter(line_addr, level=0)
            return self._open_line(line_addr, counter, bits)
        level = granularity_level(granularity)
        region_base = align_down(line_addr, granularity)
        counter = self.tree.read_counter(region_base, level=level)
        plaintexts = self._open_region(region_base, granularity, counter, bits)
        return plaintexts[(line_addr - region_base) // CACHELINE_BYTES]

    # ------------------------------------------------------------------
    # Granularity resolution + functional switching
    # ------------------------------------------------------------------

    def _resolve(self, line_addr: int, is_write: bool) -> int:
        if self.policy == "fixed":
            return GRANULARITIES[0]

        for eviction in self.tracker.observe(line_addr, self.cycle):
            chunk = eviction.entry.chunk_index
            bits = merge_detection(
                self.table.entry_by_chunk(chunk).next,
                eviction.entry.access_bits,
                censored=eviction.reason == "capacity",
            )
            self.table.record_detection(chunk, bits)
        self.cycle += 1

        granularity, event = self.table.resolve(line_addr, is_write)
        self.switching.record_resolution(switched=event is not None)
        if event is not None:
            self.switching.record_event(event)
            self.switches += 1
            self._apply_switch_functional(event)
        return granularity

    def _apply_switch_functional(self, event: SwitchEvent) -> None:
        """Re-key counters and MACs for a granularity switch (Fig. 13).

        The switched span may contain sub-regions of *different* old
        (or new) granularities -- e.g. a 4KB group promoted from a mix
        of 512B stream partitions and fine partitions -- so both passes
        walk the span resolving each sub-region against its bitmap.
        Reads use the *old* bitmap's MAC addresses; writes use the new
        one, because compaction moves MACs when the bitmap changes.

        Counter values follow Fig. 13: scale-up seals under
        ``max(old counters) + 1`` (a never-used value, forcing
        re-encryption); scale-down retains the shared value, so the
        deterministic OTP reproduces the identical ciphertext.
        """
        span = max(event.old_granularity, event.new_granularity)
        span_base = align_down(event.addr, span)

        # Pass 1: open every sub-region under its old seal.
        plaintexts: List[bytes] = []
        max_counter = 0
        off = 0
        while off < span:
            sub = span_base + off
            sub_g = min(
                stream_part.resolve_granularity(event.old_bits, sub), span
            )
            counter = self.tree.read_counter(sub, level=granularity_level(sub_g))
            plaintexts.extend(
                self._open_region(sub, sub_g, counter, event.old_bits)
            )
            max_counter = max(max_counter, counter)
            off += sub_g

        # Stale fine/merged MACs of the old layout are garbage once the
        # region is resealed; collect their addresses for reclamation.
        stale_macs = set()
        off = 0
        while off < span:
            sub = span_base + off
            sub_g = min(
                stream_part.resolve_granularity(event.old_bits, sub), span
            )
            if sub_g == GRANULARITIES[0]:
                for line_off in range(0, sub_g, CACHELINE_BYTES):
                    stale_macs.add(
                        addressing.mac_addr(
                            self.geometry, event.old_bits, sub + line_off
                        )
                    )
            else:
                stale_macs.add(
                    addressing.mac_addr(self.geometry, event.old_bits, sub)
                )
            off += sub_g

        # Pass 2: reseal every sub-region under its new granularity.
        shared = max_counter + 1 if event.scale_up else max_counter
        fresh_macs = set()
        off = 0
        while off < span:
            sub = span_base + off
            sub_g = min(
                stream_part.resolve_granularity(event.new_bits, sub), span
            )
            level = granularity_level(sub_g)
            self.tree.set_counter(sub, level, shared, revive=True)
            if level > 0:
                self.tree.prune_subtree(sub, level)
            first_line = off // CACHELINE_BYTES
            lines = plaintexts[first_line : first_line + sub_g // CACHELINE_BYTES]
            self._seal_region(sub, sub_g, shared, lines, event.new_bits)
            fresh_macs.add(
                addressing.mac_addr(self.geometry, event.new_bits, sub)
            )
            off += sub_g

        # Reclaim obsolete MAC slots (compaction frees them, Fig. 9).
        for mac_addr in stale_macs - fresh_macs:
            self._macs.pop(mac_addr, None)

    # ------------------------------------------------------------------
    # Seal / open helpers (the only code that touches MACs + ciphertext)
    # ------------------------------------------------------------------

    def _seal_line(self, line_addr: int, counter: int, payload: bytes, bits: int) -> None:
        ciphertext = encrypt_line(self.keys.encryption_key, line_addr, counter, payload)
        self.dram.write_line(line_addr, ciphertext)
        mac_addr = addressing.mac_addr(self.geometry, bits, line_addr)
        self._macs[mac_addr] = compute_mac(
            self.keys.mac_key, line_addr, counter, ciphertext
        )

    def _open_line(self, line_addr: int, counter: int, bits: int) -> bytes:
        """Verify and decrypt one fine-grained line."""
        ciphertext = self.dram.read_line(line_addr)
        stored = self._macs.get(addressing.mac_addr(self.geometry, bits, line_addr))
        if stored is None:
            if ciphertext == _ZERO_LINE and counter == 0:
                return _ZERO_LINE  # pristine, never written
            raise IntegrityError(f"missing MAC for line {line_addr:#x}")
        expected = compute_mac(self.keys.mac_key, line_addr, counter, ciphertext)
        if not macs_equal(stored, expected):
            self._raise_classified(line_addr, counter, ciphertext, stored)
        return decrypt_line(self.keys.encryption_key, line_addr, counter, ciphertext)

    def _seal_region(
        self,
        region_base: int,
        granularity: int,
        counter: int,
        plaintexts: List[bytes],
        bits: int,
    ) -> None:
        """Encrypt a region under ``counter`` and store its merged MAC."""
        fine_macs: List[bytes] = []
        for index, off in enumerate(range(0, granularity, CACHELINE_BYTES)):
            addr = region_base + off
            ciphertext = encrypt_line(
                self.keys.encryption_key, addr, counter, plaintexts[index]
            )
            self.dram.write_line(addr, ciphertext)
            fine_macs.append(
                compute_mac(self.keys.mac_key, addr, counter, ciphertext)
            )
        mac_addr = addressing.mac_addr(self.geometry, bits, region_base)
        if granularity == GRANULARITIES[0]:
            self._macs[mac_addr] = fine_macs[0]
        else:
            self._macs[mac_addr] = nested_mac(self.keys.mac_key, fine_macs)

    def _open_region(
        self, region_base: int, granularity: int, counter: int, bits: int
    ) -> List[bytes]:
        """Verify a whole region's merged MAC and decrypt every line."""
        if granularity == GRANULARITIES[0]:
            return [self._open_line(region_base, counter, bits)]

        ciphertexts = [
            self.dram.read_line(region_base + off)
            for off in range(0, granularity, CACHELINE_BYTES)
        ]
        stored = self._macs.get(
            addressing.mac_addr(self.geometry, bits, region_base)
        )
        if stored is None:
            if all(ct == _ZERO_LINE for ct in ciphertexts) and counter == 0:
                return [_ZERO_LINE] * len(ciphertexts)  # pristine region
            raise IntegrityError(
                f"missing merged MAC for region {region_base:#x}"
            )
        fine_macs = [
            compute_mac(self.keys.mac_key, region_base + off, counter, ct)
            for off, ct in zip(
                range(0, granularity, CACHELINE_BYTES), ciphertexts
            )
        ]
        merged = nested_mac(self.keys.mac_key, fine_macs)
        if not macs_equal(stored, merged):
            # Probe older counters to classify replay vs corruption.
            for old in range(max(0, counter - _REPLAY_PROBE_WINDOW), counter):
                old_fines = [
                    compute_mac(self.keys.mac_key, region_base + off, old, ct)
                    for off, ct in zip(
                        range(0, granularity, CACHELINE_BYTES), ciphertexts
                    )
                ]
                if macs_equal(
                    nested_mac(self.keys.mac_key, old_fines), stored
                ):
                    raise ReplayError(
                        f"replayed region detected at {region_base:#x}"
                    )
            raise IntegrityError(
                f"merged MAC mismatch on region {region_base:#x} "
                f"({granularity}B granularity)"
            )
        return [
            decrypt_line(self.keys.encryption_key, region_base + off, counter, ct)
            for off, ct in zip(range(0, granularity, CACHELINE_BYTES), ciphertexts)
        ]

    # ------------------------------------------------------------------
    # Small utilities
    # ------------------------------------------------------------------

    def _current_bits(self, addr: int) -> int:
        if self.policy == "fixed":
            return 0
        return self.table.entry(addr).current

    def _region_mac_addr(self, addr: int) -> int:
        """MAC address of the protection region containing ``addr``."""
        bits = self._current_bits(addr)
        granularity = self.granularity_of(addr)
        region_base = align_down(addr, granularity)
        return addressing.mac_addr(self.geometry, bits, region_base)

    def _raise_classified(
        self, addr: int, counter: int, ciphertext: bytes, stored: bytes
    ) -> None:
        """Raise ReplayError for stale-but-authentic data, else IntegrityError."""
        for old in range(max(0, counter - _REPLAY_PROBE_WINDOW), counter):
            candidate = compute_mac(self.keys.mac_key, addr, old, ciphertext)
            if macs_equal(candidate, stored):
                raise ReplayError(f"replayed data detected at {addr:#x}")
        raise IntegrityError(f"MAC mismatch on data line {addr:#x}")

    def _check_aligned_access(self, addr: int, size: int) -> None:
        check_range(addr, size, self.geometry.region_bytes)
        if addr % CACHELINE_BYTES or size % CACHELINE_BYTES:
            raise AddressError(
                f"access [{addr:#x}, +{size}) not 64B-aligned; use "
                f"read_bytes/write_bytes for unaligned access"
            )

    def metadata_footprint(self) -> dict:
        """Bytes of security metadata currently stored off-chip.

        The headline saving of the multi-granular design: promoted
        counters prune whole subtrees and merged MACs collapse 8-512
        fine MACs into one, so the same data needs less metadata.
        """
        mac_bytes = len(self._macs) * 8
        tree_nodes = len(self.tree._payloads)
        counter_bytes = tree_nodes * CACHELINE_BYTES
        granularity_hist = {}
        if self.policy == "multigranular":
            for _, entry in self.table.chunks():
                sizes = stream_part.granularity_histogram(entry.current)
                for granularity, covered in sizes.items():
                    if covered:
                        granularity_hist[granularity] = (
                            granularity_hist.get(granularity, 0) + covered
                        )
        return {
            "mac_bytes": mac_bytes,
            "tree_node_bytes": counter_bytes,
            "total_bytes": mac_bytes + counter_bytes,
            "coverage_by_granularity": granularity_hist,
        }

    # Unaligned convenience wrappers -----------------------------------

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Unaligned write via read-modify-write of the covering lines."""
        if not data:
            return
        start = align_down(addr, CACHELINE_BYTES)
        end = align_down(addr + len(data) - 1, CACHELINE_BYTES) + CACHELINE_BYTES
        merged = bytearray(self.read(start, end - start))
        merged[addr - start : addr - start + len(data)] = data
        self.write(start, bytes(merged))

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Unaligned read."""
        if size <= 0:
            return b""
        start = align_down(addr, CACHELINE_BYTES)
        end = align_down(addr + size - 1, CACHELINE_BYTES) + CACHELINE_BYTES
        whole = self.read(start, end - start)
        return whole[addr - start : addr - start + size]
