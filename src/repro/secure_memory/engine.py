"""Functional secure memory: encryption + integrity + freshness, end to end.

This is the paper's memory protection engine as a *working* object: it
stores real ciphertext in an attacker-accessible backing store, real
MACs in an attacker-accessible MAC store, and real counters in the
functional counter tree.  Reads verify everything and raise
:class:`~repro.common.errors.IntegrityError` /
:class:`~repro.common.errors.ReplayError` on any off-chip mutation.

Two policies:

* ``fixed``         -- the conventional baseline: 64B counters + MACs.
* ``multigranular`` -- the paper's contribution: the access tracker
  detects stream partitions (Alg. 1), the granularity table applies
  lazy switching, counters are promoted into parent tree nodes
  (Fig. 10) and MACs are merged + compacted (Fig. 9, Eq. 5).

Uninitialized memory reads as zeros.  A line is "sealed" once it has a
stored MAC; absence of a MAC is only accepted for the pristine all-zero
ciphertext, so an attacker cannot hide data by deleting its MAC.

Beyond detection, the engine supports *recovery* (see
:mod:`repro.secure_memory.failure` and ``docs/fault_model.md``):

* a configurable :class:`FailurePolicy` -- ``raise`` (paper
  semantics), ``quarantine`` and ``retry-then-quarantine`` -- that
  contains an integrity failure to the poisoned protection region,
  demotes it back to 64B granularity and lets fresh writes heal it
  while the rest of the region keeps serving;
* real :class:`~repro.common.errors.CounterOverflowError` handling:
  counter exhaustion triggers a lazy re-encryption of the affected
  32KB chunk under a fresh key epoch, so narrow counters degrade into
  extra work instead of a dead engine.

The functional layer favours clarity over speed; the timing layer in
:mod:`repro.schemes` shares the same core logic but only counts.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.address import align_down, check_range, chunk_base, chunk_index, iter_lines
from repro.common.constants import (
    CACHELINE_BYTES,
    CHUNK_BYTES,
    GRANULARITIES,
    granularity_level,
)
from repro.common.errors import (
    AddressError,
    CounterOverflowError,
    IntegrityError,
    QuarantineError,
    ReplayError,
)
from repro.common.stats import CounterStats
from repro.core import addressing, stream_part
from repro.core.detector import merge_detection
from repro.core.gran_table import GranularityTable, SwitchEvent
from repro.core.switching import SwitchAccounting
from repro.core.tracker import AccessTracker
from repro.crypto.keys import KeySet
from repro.crypto.mac import compute_mac, macs_equal, nested_mac
from repro.crypto.otp import decrypt_line, encrypt_line
from repro.mem.backing_store import BackingStore
from repro.obs import EventType, ObsContext
from repro.secure_memory.failure import FailurePolicy, IntegrityEvent, IntegrityLog
from repro.tree.geometry import TreeGeometry
from repro.tree.integrity_tree import CounterTree

_REPLAY_PROBE_WINDOW = 64
_ZERO_LINE = bytes(CACHELINE_BYTES)


class SecureMemory:
    """Encrypted, integrity- and replay-protected memory region."""

    def __init__(
        self,
        region_bytes: int,
        keys: Optional[KeySet] = None,
        policy: str = "multigranular",
        tracker: Optional[AccessTracker] = None,
        failure_policy=None,
        counter_bits: int = 64,
        obs: Optional[ObsContext] = None,
    ) -> None:
        if policy not in ("fixed", "multigranular"):
            raise ValueError(f"unknown policy {policy!r}")
        if not 2 <= counter_bits <= 64:
            raise ValueError(
                f"counter_bits {counter_bits} out of range [2, 64]"
            )
        self.policy = policy
        self.keys = keys or KeySet.generate()
        self.geometry = TreeGeometry.build(region_bytes)
        self.counter_bits = counter_bits
        self.tree = CounterTree(
            self.geometry, self.keys, counter_limit=(1 << counter_bits) - 1
        )
        self.dram = BackingStore()
        self._macs: Dict[int, bytes] = {}
        self.table = GranularityTable(table_base=self.geometry.table_base)
        self.tracker = tracker or AccessTracker()
        self.switching = SwitchAccounting()
        self.failure_policy = FailurePolicy.coerce(failure_policy)
        self.obs = obs or ObsContext.disabled()
        self.tracer = self.obs.tracer
        # Registry-owned counter group: same CounterStats API the rest
        # of the code (and tests) already use, surfaced uniformly as
        # ``engine.events.*`` in the metrics snapshot.
        self.events: CounterStats = self.obs.registry.group("engine.events")
        self.tree.metrics_into(self.obs.registry, "tree")
        self.integrity_log = IntegrityLog()
        # Key-epoch state for counter-overflow recovery: chunks whose
        # counters exhausted are re-encrypted under a derived key, so a
        # reset counter can never repeat a pad.  Epochs are on-chip
        # trusted state (hardware would keep a small epoch table or
        # re-derive from fuses).
        self._key_epochs: Dict[int, int] = {}
        self._epoch_keys: Dict[int, KeySet] = {}
        # Quarantine state: poisoned 64B lines fail closed until healed
        # by a fresh write ("heal") or permanently ("hard").
        self._quarantined: Dict[int, str] = {}
        self._quarantine_masks: Dict[int, int] = {}
        self.cycle = 0
        self.reads = 0
        self.writes = 0
        self.switches = 0

    # ------------------------------------------------------------------
    # Public data interface
    # ------------------------------------------------------------------

    def write(self, addr: int, data: bytes) -> None:
        """Encrypt and store ``data`` at 64B-aligned ``addr``."""
        self._check_aligned_access(addr, len(data))
        for line_index in iter_lines(addr, len(data)):
            line_addr = line_index * CACHELINE_BYTES
            offset = line_addr - addr
            payload = data[offset : offset + CACHELINE_BYTES]
            self._write_line(line_addr, payload)
            self.writes += 1

    def read(self, addr: int, size: int) -> bytes:
        """Verified read of ``size`` bytes from 64B-aligned ``addr``."""
        self._check_aligned_access(addr, size)
        out = bytearray()
        for line_index in iter_lines(addr, size):
            line_addr = line_index * CACHELINE_BYTES
            out += self._read_line(line_addr)
            self.reads += 1
        return bytes(out)

    def advance(self, cycles: int) -> None:
        """Advance the logical clock used by the access tracker."""
        self.cycle += cycles

    def granularity_of(self, addr: int) -> int:
        """Currently sealed protection granularity of ``addr``."""
        if self.policy == "fixed":
            return GRANULARITIES[0]
        return self.table.peek_granularity(addr)

    def force_granularity(self, addr: int, granularity: int) -> int:
        """Deterministically request ``granularity`` for ``addr``'s region.

        Test and campaign helper: stores the detection bitmap directly
        (bypassing the access tracker's stochastic timing) and applies
        the lazy switch immediately, exactly as a first access to the
        region would.  Returns the granularity now in effect at
        ``addr``.  Forcing 64B demotes the covering 512B partition (the
        bitmap's finest unit); forcing 512B on a fully streamed 4KB
        group still resolves to 4KB, as in the real encoding.
        """
        if self.policy == "fixed":
            raise ValueError("the fixed policy has no granularity table")
        granularity_level(granularity)  # validates the size
        entry = self.table.entry(addr)
        if granularity == GRANULARITIES[0]:
            entry.next &= ~self.table.region_partition_mask(
                addr, GRANULARITIES[1]
            )
        elif granularity == CHUNK_BYTES:
            entry.next = stream_part.FULL_MASK
        else:
            entry.next |= self.table.region_partition_mask(addr, granularity)
        resolved, event = self.table.resolve(addr, is_write=False)
        self.switching.record_resolution(switched=event is not None)
        if event is not None:
            self.switching.record_event(event)
            self.switches += 1
            self._emit_switch(event)
            self._apply_switch_with_recovery(event)
        return resolved

    # ------------------------------------------------------------------
    # Quarantine introspection
    # ------------------------------------------------------------------

    def is_quarantined(self, addr: int) -> bool:
        """True when the 64B line of ``addr`` is currently quarantined."""
        return align_down(addr, CACHELINE_BYTES) in self._quarantined

    def quarantined_lines(self) -> List[int]:
        """Sorted line addresses currently failing closed."""
        return sorted(self._quarantined)

    def key_epoch(self, addr: int) -> int:
        """Key epoch of ``addr``'s chunk (bumped by overflow recovery)."""
        return self._key_epochs.get(chunk_index(addr), 0)

    # ------------------------------------------------------------------
    # Attacker primitives (physical off-chip access, paper Sec. 2.5)
    # ------------------------------------------------------------------

    def tamper_data(self, addr: int, flip_mask: int = 0x01, offset: int = 0) -> None:
        """Flip bits of stored ciphertext."""
        self.dram.corrupt(
            align_down(addr, CACHELINE_BYTES), offset=offset, flip_mask=flip_mask
        )

    def tamper_data_transient(
        self, addr: int, flip_mask: int = 0x01, offset: int = 0
    ) -> None:
        """Glitch primitive: the next read of ``addr``'s line is corrupted once."""
        self.dram.corrupt_transient(
            align_down(addr, CACHELINE_BYTES), offset=offset, flip_mask=flip_mask
        )

    def tamper_mac(self, addr: int) -> None:
        """Flip a bit of the stored MAC covering ``addr``."""
        mac_addr = self._region_mac_addr(addr)
        mac = self._macs.get(mac_addr)
        if mac is None:
            raise KeyError(f"no MAC stored yet for {addr:#x}")
        self._macs[mac_addr] = bytes([mac[0] ^ 0x01]) + mac[1:]

    def delete_mac(self, addr: int) -> None:
        """Delete the stored MAC covering ``addr`` (metadata erasure attack)."""
        mac_addr = self._region_mac_addr(addr)
        if mac_addr not in self._macs:
            raise KeyError(f"no MAC stored yet for {addr:#x}")
        del self._macs[mac_addr]

    def snapshot(self, addr: int) -> Tuple[bytes, bytes]:
        """Capture (ciphertext, MAC) of one line for a replay attack."""
        line_addr = align_down(addr, CACHELINE_BYTES)
        return (
            self.dram.snapshot_line(line_addr),
            self._macs.get(self._region_mac_addr(addr), b""),
        )

    def replay(self, addr: int, snapshot: Tuple[bytes, bytes]) -> None:
        """Restore a previously captured (ciphertext, MAC) pair."""
        line_addr = align_down(addr, CACHELINE_BYTES)
        ciphertext, mac = snapshot
        self.dram.replay_line(line_addr, ciphertext)
        if mac:
            self._macs[self._region_mac_addr(addr)] = mac

    # ------------------------------------------------------------------
    # Line-level paths
    # ------------------------------------------------------------------

    def _write_line(self, line_addr: int, payload: bytes) -> None:
        if len(payload) != CACHELINE_BYTES:
            payload = payload.ljust(CACHELINE_BYTES, b"\0")
        state = self._quarantined.get(line_addr)
        if state == "hard":
            self.events.bump("quarantined_line_writes")
            raise QuarantineError(
                f"write to hard-quarantined line {line_addr:#x}"
            )
        if state == "heal":
            self._heal_line(line_addr)
        granularity = self._resolve(line_addr, is_write=True)
        try:
            self._write_line_at(line_addr, payload, granularity)
        except CounterOverflowError:
            self.events.bump("counter_overflows")
            if self.tracer:
                self.tracer.emit(
                    EventType.COUNTER_OVERFLOW,
                    self.cycle,
                    chunk=chunk_index(line_addr),
                    addr=line_addr,
                )
            self._reencrypt_chunk(chunk_base(line_addr))
            self._write_line_at(line_addr, payload, granularity)
        except (IntegrityError, ReplayError) as exc:
            self._handle_write_failure(line_addr, payload, granularity, exc)

    def _write_line_at(
        self, line_addr: int, payload: bytes, granularity: int
    ) -> None:
        if granularity == GRANULARITIES[0]:
            counter = self.tree.increment_counter(line_addr, level=0)
            self._seal_line(line_addr, counter, payload, self._current_bits(line_addr))
            return
        self._write_line_coarse(line_addr, payload, granularity)

    def _write_line_coarse(
        self, line_addr: int, payload: bytes, granularity: int
    ) -> None:
        """Write one line of a coarse region (shared counter + merged MAC).

        The shared counter advances, so every line of the region is
        re-encrypted under the new value -- this is precisely the cost
        the dynamic detector exists to avoid on mispredicted regions.
        """
        level = granularity_level(granularity)
        region_base = align_down(line_addr, granularity)
        bits = self._current_bits(line_addr)
        old_counter = self.tree.read_counter(region_base, level=level)
        plaintexts = self._open_region(region_base, granularity, old_counter, bits)
        plaintexts[(line_addr - region_base) // CACHELINE_BYTES] = payload
        new_counter = self.tree.increment_counter(region_base, level=level)
        self._seal_region(region_base, granularity, new_counter, plaintexts, bits)

    def _read_line(self, line_addr: int) -> bytes:
        if line_addr in self._quarantined:
            self.events.bump("quarantined_line_reads")
            raise QuarantineError(
                f"read of quarantined line {line_addr:#x}"
            )
        try:
            return self._read_line_verified(line_addr)
        except (IntegrityError, ReplayError) as exc:
            return self._handle_read_failure(line_addr, exc)

    def _read_line_verified(self, line_addr: int) -> bytes:
        granularity = self._resolve(line_addr, is_write=False)
        bits = self._current_bits(line_addr)
        if granularity == GRANULARITIES[0]:
            counter = self.tree.read_counter(line_addr, level=0)
            return self._open_line(line_addr, counter, bits)
        level = granularity_level(granularity)
        region_base = align_down(line_addr, granularity)
        counter = self.tree.read_counter(region_base, level=level)
        plaintexts = self._open_region(region_base, granularity, counter, bits)
        return plaintexts[(line_addr - region_base) // CACHELINE_BYTES]

    # ------------------------------------------------------------------
    # Integrity-failure handling (FailurePolicy)
    # ------------------------------------------------------------------

    def _handle_read_failure(self, line_addr: int, exc: Exception) -> bytes:
        self.events.bump("integrity_failures")
        if self.tracer:
            self.tracer.emit(
                EventType.INTEGRITY_FAILURE,
                self.cycle,
                chunk=chunk_index(line_addr),
                addr=line_addr,
                error=type(exc).__name__,
                on="read",
            )
        if not self.failure_policy.quarantines:
            raise exc
        if self.failure_policy.retries_first:
            for _ in range(self.failure_policy.retries):
                try:
                    data = self._read_line_verified(line_addr)
                except (IntegrityError, ReplayError) as again:
                    exc = again
                    continue
                self._record_recovery("read-failure", line_addr, exc)
                return data
        self._quarantine_region(line_addr, exc, kind="read-failure")
        raise AssertionError("unreachable")  # pragma: no cover

    def _handle_write_failure(
        self, line_addr: int, payload: bytes, granularity: int, exc: Exception
    ) -> None:
        """A read-modify-write (coarse write) failed verification."""
        self.events.bump("integrity_failures")
        if self.tracer:
            self.tracer.emit(
                EventType.INTEGRITY_FAILURE,
                self.cycle,
                chunk=chunk_index(line_addr),
                addr=line_addr,
                error=type(exc).__name__,
                on="write",
            )
        if not self.failure_policy.quarantines:
            raise exc
        if self.failure_policy.retries_first:
            for _ in range(self.failure_policy.retries):
                try:
                    self._write_line_at(line_addr, payload, granularity)
                except (IntegrityError, ReplayError) as again:
                    exc = again
                    continue
                self._record_recovery("write-failure", line_addr, exc)
                return
        self._quarantine_region(line_addr, exc, kind="write-failure")

    def _record_recovery(self, kind: str, line_addr: int, exc: Exception) -> None:
        self.events.bump("retry_recoveries")
        self.integrity_log.record(
            IntegrityEvent(
                kind=kind,
                addr=line_addr,
                granularity=self._peek_granularity(line_addr),
                error=type(exc).__name__,
                healable=True,
                recovered=True,
            )
        )

    def _quarantine_region(
        self, line_addr: int, cause: Exception, kind: str, reraise: bool = True
    ) -> None:
        """Fail the poisoned region closed; keep the rest serving.

        The failing protection region is quarantined whole (its merged
        MAC cannot localize the tamper further), demoted back to 64B
        granularity so fresh writes can heal it line by line, and its
        partitions are barred from re-promotion until healed.  If even
        the demotion bookkeeping fails verification (the counter tree
        itself is corrupted), the region is quarantined *hard*: no
        access, including writes, is accepted for it again.
        """
        granularity = self._peek_granularity(line_addr)
        base = align_down(line_addr, granularity)
        healable = True
        if granularity != GRANULARITIES[0] and self.policy == "multigranular":
            try:
                self._demote_quarantined(base, granularity)
            except (IntegrityError, ReplayError, CounterOverflowError):
                healable = False
                self.events.bump("hard_quarantines")
        self._quarantine_lines(base, granularity, "heal" if healable else "hard")
        self.events.bump("quarantined_regions")
        if self.tracer:
            self.tracer.emit(
                EventType.QUARANTINE,
                self.cycle,
                chunk=chunk_index(base),
                base=base,
                granularity=granularity,
                healable=healable,
                kind=kind,
            )
        self.integrity_log.record(
            IntegrityEvent(
                kind=kind,
                addr=line_addr,
                granularity=granularity,
                error=type(cause).__name__,
                healable=healable,
            )
        )
        if reraise:
            raise QuarantineError(
                f"region [{base:#x}, +{granularity}B) quarantined after "
                f"{type(cause).__name__}"
            ) from cause

    def _demote_quarantined(self, base: int, granularity: int) -> None:
        """Demote a poisoned coarse region to 64B without re-sealing it.

        The region's data is unverifiable, so unlike a normal scale-
        down the plaintext cannot be carried over; instead the per-line
        counters are revived at the region's shared counter value
        (>= every counter ever used for these lines, the scale-down
        argument of SECURITY.md), so heal-writes never reuse a pad.
        Compacted MACs of the chunk's *other* regions move to their new
        addresses; the poisoned merged MAC is dropped.
        """
        level = granularity_level(granularity)
        shared = self.tree.read_counter(base, level=level)
        chunk_b = chunk_base(base)
        old_bits, new_bits = self.table.demote_region(base, granularity)
        outside = self._pop_chunk_macs(
            chunk_b, old_bits, skip_base=base, skip_size=granularity
        )
        self._macs.pop(addressing.mac_addr(self.geometry, old_bits, base), None)
        self._reinsert_macs(outside, new_bits)
        for off in range(0, granularity, CACHELINE_BYTES):
            self.tree.set_counter(base + off, 0, shared, revive=True)

    def _quarantine_lines(self, base: int, size: int, state: str) -> None:
        for off in range(0, size, CACHELINE_BYTES):
            self._quarantined[base + off] = state
        chunk = chunk_index(base)
        self._quarantine_masks[chunk] = self._quarantine_masks.get(
            chunk, 0
        ) | self.table.region_partition_mask(base, size)

    def _heal_line(self, line_addr: int) -> None:
        """A fresh write re-seals a quarantined line; lift its quarantine."""
        self._quarantined.pop(line_addr, None)
        self.events.bump("healed_lines")
        if self.tracer:
            self.tracer.emit(
                EventType.HEAL,
                self.cycle,
                chunk=chunk_index(line_addr),
                addr=line_addr,
            )
        self._refresh_quarantine_mask(chunk_index(line_addr))

    def _refresh_quarantine_mask(self, chunk: int) -> None:
        mask = 0
        for line_addr in self._quarantined:
            if chunk_index(line_addr) == chunk:
                mask |= stream_part.partition_bit(line_addr)
        if mask:
            self._quarantine_masks[chunk] = mask
        else:
            self._quarantine_masks.pop(chunk, None)

    def _peek_granularity(self, addr: int) -> int:
        if self.policy == "fixed":
            return GRANULARITIES[0]
        return stream_part.resolve_granularity(
            self._current_bits(addr), addr, self.table.max_granularity
        )

    # ------------------------------------------------------------------
    # Counter-overflow recovery (lazy re-encryption, fresh key epoch)
    # ------------------------------------------------------------------

    def _reencrypt_chunk(
        self,
        chunk_b: int,
        bits: Optional[int] = None,
        skip_base: Optional[int] = None,
        skip_size: int = 0,
    ) -> None:
        """Re-encrypt every sealed region of a chunk under a new key epoch.

        Counter exhaustion must never repeat a (key, address, counter)
        pad, so instead of wrapping, the affected chunk's data is
        decrypted under the old epoch, the epoch advances (deriving a
        fresh keyset), all carried regions are re-sealed at counter 1,
        and the overflowing write retries.  Quarantined lines are not
        carried -- they stay quarantined.  ``skip_base/skip_size``
        exclude a span the caller re-seals itself (mid-switch
        overflow).
        """
        if bits is None:
            bits = self._current_bits(chunk_b)
        limit = min(CHUNK_BYTES, self.geometry.region_bytes - chunk_b)
        sealed = []
        for sub, sub_g in self._iter_subregions(chunk_b, limit, bits):
            if skip_base is not None and skip_base <= sub < skip_base + skip_size:
                continue
            if any(
                sub + off in self._quarantined
                for off in range(0, sub_g, CACHELINE_BYTES)
            ):
                continue
            mac_addr = addressing.mac_addr(self.geometry, bits, sub)
            if mac_addr not in self._macs:
                continue  # pristine, nothing sealed to carry over
            counter = self.tree.read_counter(sub, level=granularity_level(sub_g))
            sealed.append(
                (sub, sub_g, self._open_region(sub, sub_g, counter, bits))
            )
        chunk = chunk_index(chunk_b)
        self._key_epochs[chunk] = self._key_epochs.get(chunk, 0) + 1
        self._epoch_keys.pop(chunk, None)
        if self.tracer:
            self.tracer.emit(
                EventType.EPOCH_BUMP,
                self.cycle,
                chunk=chunk,
                epoch=self._key_epochs[chunk],
                carried_regions=len(sealed),
            )
        for sub, sub_g, plaintexts in sealed:
            self.tree.set_counter(sub, granularity_level(sub_g), 1)
            self._seal_region(sub, sub_g, 1, plaintexts, bits)
        self.events.bump("chunk_reencryptions")

    def _keys_for(self, addr: int) -> KeySet:
        """Keyset of ``addr``'s chunk under its current key epoch."""
        chunk = chunk_index(addr)
        epoch = self._key_epochs.get(chunk, 0)
        if epoch == 0:
            return self.keys
        cached = self._epoch_keys.get(chunk)
        if cached is None:
            cached = self.keys.derive(b"chunk-%d-epoch-%d" % (chunk, epoch))
            self._epoch_keys[chunk] = cached
        return cached

    # ------------------------------------------------------------------
    # Granularity resolution + functional switching
    # ------------------------------------------------------------------

    def _resolve(self, line_addr: int, is_write: bool) -> int:
        if self.policy == "fixed":
            return GRANULARITIES[0]

        for eviction in self.tracker.observe(line_addr, self.cycle):
            chunk = eviction.entry.chunk_index
            bits = merge_detection(
                self.table.entry_by_chunk(chunk).next,
                eviction.entry.access_bits,
                censored=eviction.reason == "capacity",
            )
            self.table.record_detection(chunk, bits)
        self.cycle += 1

        quarantine_mask = self._quarantine_masks.get(chunk_index(line_addr))
        if quarantine_mask:
            # Quarantined partitions must stay fine: a promotion would
            # have to open their unverifiable data mid-switch.
            self.table.restrict_next(line_addr, quarantine_mask)

        granularity, event = self.table.resolve(line_addr, is_write)
        self.switching.record_resolution(switched=event is not None)
        if event is not None:
            self.switching.record_event(event)
            self.switches += 1
            self._emit_switch(event)
            self._apply_switch_with_recovery(event)
        return granularity

    def _emit_switch(self, event: SwitchEvent) -> None:
        if self.tracer:
            self.tracer.emit(
                EventType.SWITCH,
                self.cycle,
                chunk=chunk_index(event.addr),
                old=event.old_granularity,
                new=event.new_granularity,
                scale_up=event.scale_up,
            )
            self.tracer.emit(
                EventType.MAC_MERGE if event.scale_up else EventType.MAC_SPLIT,
                self.cycle,
                chunk=chunk_index(event.addr),
                granularity=event.new_granularity,
            )

    def _apply_switch_with_recovery(self, event: SwitchEvent) -> None:
        """Apply a lazy switch; contain mid-switch metadata tamper.

        A switch re-keys a whole span, so a tamper staged inside the
        lazy-switching window surfaces *here* rather than in a plain
        read.  Retries only help when the first failure hit the
        verification pass (transient glitches); a failure during the
        re-seal pass leaves the span fail-closed via quarantine.
        """
        try:
            self._apply_switch_functional(event)
            return
        except (IntegrityError, ReplayError) as exc:
            self.events.bump("switch_failures")
            if self.failure_policy.retries_first:
                for _ in range(self.failure_policy.retries):
                    try:
                        self._apply_switch_functional(event)
                    except (IntegrityError, ReplayError) as again:
                        exc = again
                        continue
                    self._record_recovery("switch-failure", event.addr, exc)
                    return
            self._handle_switch_failure(event, exc)

    def _handle_switch_failure(self, event: SwitchEvent, exc: Exception) -> None:
        span = max(event.old_granularity, event.new_granularity)
        span_base = align_down(event.addr, span)
        self.table.rollback_region(event.addr, span, event.old_bits)
        if not self.failure_policy.quarantines:
            raise exc
        # Locate the poisoned sub-regions under the restored old
        # layout; intact sub-regions of the span keep serving.
        poisoned = 0
        for sub, sub_g in self._iter_subregions(span_base, span, event.old_bits):
            try:
                counter = self.tree.read_counter(
                    sub, level=granularity_level(sub_g)
                )
                self._open_region(sub, sub_g, counter, event.old_bits)
            except (IntegrityError, ReplayError) as sub_exc:
                self._quarantine_region(
                    sub, sub_exc, kind="switch-failure", reraise=False
                )
                poisoned += 1
        if poisoned == 0:
            # The old layout verifies but re-keying still failed
            # (corruption confined to switch targets): fail the whole
            # span closed rather than guess.
            self._quarantine_lines(span_base, span, "hard")
            self.events.bump("quarantined_regions")
            self.events.bump("hard_quarantines")
            if self.tracer:
                self.tracer.emit(
                    EventType.QUARANTINE,
                    self.cycle,
                    chunk=chunk_index(span_base),
                    base=span_base,
                    granularity=span,
                    healable=False,
                    kind="switch-failure",
                )
            self.integrity_log.record(
                IntegrityEvent(
                    kind="switch-failure",
                    addr=event.addr,
                    granularity=span,
                    error=type(exc).__name__,
                    healable=False,
                )
            )
        raise QuarantineError(
            f"granularity switch at {event.addr:#x} failed verification; "
            f"span quarantined"
        ) from exc

    def _apply_switch_functional(self, event: SwitchEvent) -> None:
        """Re-key counters and MACs for a granularity switch (Fig. 13).

        The switched span may contain sub-regions of *different* old
        (or new) granularities -- e.g. a 4KB group promoted from a mix
        of 512B stream partitions and fine partitions -- so both passes
        walk the span resolving each sub-region against its bitmap.
        Reads use the *old* bitmap's MAC addresses; writes use the new
        one, because compaction moves MACs when the bitmap changes.

        Counter values follow Fig. 13: scale-up seals under
        ``max(old counters) + 1`` (a never-used value, forcing
        re-encryption); scale-down retains the shared value, so the
        deterministic OTP reproduces the identical ciphertext.

        Compaction also shifts the MAC addresses of the chunk's
        regions *outside* the span (Eq. 1 indexes depend on the whole
        chunk bitmap), so their stored MACs are relocated from the
        old-bitmap addresses to the new ones.
        """
        span = max(event.old_granularity, event.new_granularity)
        span_base = align_down(event.addr, span)

        # Pass 1: open every sub-region under its old seal.
        plaintexts: List[bytes] = []
        max_counter = 0
        off = 0
        while off < span:
            sub = span_base + off
            sub_g = min(
                stream_part.resolve_granularity(event.old_bits, sub), span
            )
            counter = self.tree.read_counter(sub, level=granularity_level(sub_g))
            plaintexts.extend(
                self._open_region(sub, sub_g, counter, event.old_bits)
            )
            max_counter = max(max_counter, counter)
            off += sub_g

        # Stale fine/merged MACs of the old layout are garbage once the
        # region is resealed; collect their addresses for reclamation.
        stale_macs = set()
        off = 0
        while off < span:
            sub = span_base + off
            sub_g = min(
                stream_part.resolve_granularity(event.old_bits, sub), span
            )
            if sub_g == GRANULARITIES[0]:
                for line_off in range(0, sub_g, CACHELINE_BYTES):
                    stale_macs.add(
                        addressing.mac_addr(
                            self.geometry, event.old_bits, sub + line_off
                        )
                    )
            else:
                stale_macs.add(
                    addressing.mac_addr(self.geometry, event.old_bits, sub)
                )
            off += sub_g

        # Scale-up under an exhausted counter would exceed the legal
        # width: rotate the chunk's key epoch first (re-encrypting the
        # regions outside the span), then reseal the span at counter 1.
        shared = max_counter + 1 if event.scale_up else max_counter
        chunk_b = chunk_base(span_base)
        if shared > self.tree.counter_limit:
            self.events.bump("counter_overflows")
            if self.tracer:
                self.tracer.emit(
                    EventType.COUNTER_OVERFLOW,
                    self.cycle,
                    chunk=chunk_index(span_base),
                    addr=span_base,
                    mid_switch=True,
                )
            self._reencrypt_chunk(
                chunk_b, bits=event.old_bits, skip_base=span_base, skip_size=span
            )
            shared = 1

        # MACs of the chunk's other regions move when compaction
        # indices shift; pop them under the old layout now, re-insert
        # under the new layout after the span is resealed.
        outside = self._pop_chunk_macs(
            chunk_b, event.old_bits, skip_base=span_base, skip_size=span
        )

        # Pass 2: reseal every sub-region under its new granularity.
        fresh_macs = set()
        off = 0
        while off < span:
            sub = span_base + off
            sub_g = min(
                stream_part.resolve_granularity(event.new_bits, sub), span
            )
            level = granularity_level(sub_g)
            self.tree.set_counter(sub, level, shared, revive=True)
            if level > 0:
                self.tree.prune_subtree(sub, level)
            first_line = off // CACHELINE_BYTES
            lines = plaintexts[first_line : first_line + sub_g // CACHELINE_BYTES]
            self._seal_region(sub, sub_g, shared, lines, event.new_bits)
            fresh_macs.add(
                addressing.mac_addr(self.geometry, event.new_bits, sub)
            )
            off += sub_g

        # Reclaim obsolete MAC slots (compaction frees them, Fig. 9).
        for mac_addr in stale_macs - fresh_macs:
            self._macs.pop(mac_addr, None)

        self._reinsert_macs(outside, event.new_bits)

    # ------------------------------------------------------------------
    # Chunk-wide MAC relocation helpers
    # ------------------------------------------------------------------

    def _iter_subregions(
        self, base: int, span: int, bits: int
    ) -> Iterator[Tuple[int, int]]:
        """Yield (sub_base, granularity) regions of [base, base+span)."""
        off = 0
        while off < span:
            sub = base + off
            sub_g = min(stream_part.resolve_granularity(bits, sub), span)
            yield sub, sub_g
            off += sub_g

    def _pop_chunk_macs(
        self,
        chunk_b: int,
        bits: int,
        skip_base: Optional[int] = None,
        skip_size: int = 0,
    ) -> List[Tuple[int, bytes]]:
        """Remove and return (region base, MAC) pairs of a chunk's regions.

        Addresses are computed under ``bits``; regions inside the skip
        window (handled by the caller) and pristine regions (no stored
        MAC) are left alone.
        """
        entries: List[Tuple[int, bytes]] = []
        limit = min(CHUNK_BYTES, self.geometry.region_bytes - chunk_b)
        for sub, _ in self._iter_subregions(chunk_b, limit, bits):
            if skip_base is not None and skip_base <= sub < skip_base + skip_size:
                continue
            mac = self._macs.pop(
                addressing.mac_addr(self.geometry, bits, sub), None
            )
            if mac is not None:
                entries.append((sub, mac))
        return entries

    def _reinsert_macs(
        self, entries: List[Tuple[int, bytes]], bits: int
    ) -> None:
        """Store popped MACs back at their addresses under ``bits``."""
        for sub, mac in entries:
            self._macs[addressing.mac_addr(self.geometry, bits, sub)] = mac

    # ------------------------------------------------------------------
    # Seal / open helpers (the only code that touches MACs + ciphertext)
    # ------------------------------------------------------------------

    def _seal_line(self, line_addr: int, counter: int, payload: bytes, bits: int) -> None:
        keys = self._keys_for(line_addr)
        ciphertext = encrypt_line(keys.encryption_key, line_addr, counter, payload)
        self.dram.write_line(line_addr, ciphertext)
        mac_addr = addressing.mac_addr(self.geometry, bits, line_addr)
        self._macs[mac_addr] = compute_mac(
            keys.mac_key, line_addr, counter, ciphertext
        )

    def _open_line(self, line_addr: int, counter: int, bits: int) -> bytes:
        """Verify and decrypt one fine-grained line."""
        keys = self._keys_for(line_addr)
        ciphertext = self.dram.read_line(line_addr)
        stored = self._macs.get(addressing.mac_addr(self.geometry, bits, line_addr))
        if stored is None:
            if ciphertext == _ZERO_LINE and counter == 0:
                return _ZERO_LINE  # pristine, never written
            raise IntegrityError(f"missing MAC for line {line_addr:#x}")
        expected = compute_mac(keys.mac_key, line_addr, counter, ciphertext)
        if not macs_equal(stored, expected):
            self._raise_classified(line_addr, counter, ciphertext, stored)
        return decrypt_line(keys.encryption_key, line_addr, counter, ciphertext)

    def _seal_region(
        self,
        region_base: int,
        granularity: int,
        counter: int,
        plaintexts: List[bytes],
        bits: int,
    ) -> None:
        """Encrypt a region under ``counter`` and store its merged MAC."""
        keys = self._keys_for(region_base)
        fine_macs: List[bytes] = []
        for index, off in enumerate(range(0, granularity, CACHELINE_BYTES)):
            addr = region_base + off
            ciphertext = encrypt_line(
                keys.encryption_key, addr, counter, plaintexts[index]
            )
            self.dram.write_line(addr, ciphertext)
            fine_macs.append(
                compute_mac(keys.mac_key, addr, counter, ciphertext)
            )
        mac_addr = addressing.mac_addr(self.geometry, bits, region_base)
        if granularity == GRANULARITIES[0]:
            self._macs[mac_addr] = fine_macs[0]
        else:
            self._macs[mac_addr] = nested_mac(keys.mac_key, fine_macs)

    def _open_region(
        self, region_base: int, granularity: int, counter: int, bits: int
    ) -> List[bytes]:
        """Verify a whole region's merged MAC and decrypt every line."""
        if granularity == GRANULARITIES[0]:
            return [self._open_line(region_base, counter, bits)]

        keys = self._keys_for(region_base)
        ciphertexts = [
            self.dram.read_line(region_base + off)
            for off in range(0, granularity, CACHELINE_BYTES)
        ]
        stored = self._macs.get(
            addressing.mac_addr(self.geometry, bits, region_base)
        )
        if stored is None:
            if all(ct == _ZERO_LINE for ct in ciphertexts) and counter == 0:
                return [_ZERO_LINE] * len(ciphertexts)  # pristine region
            raise IntegrityError(
                f"missing merged MAC for region {region_base:#x}"
            )
        fine_macs = [
            compute_mac(keys.mac_key, region_base + off, counter, ct)
            for off, ct in zip(
                range(0, granularity, CACHELINE_BYTES), ciphertexts
            )
        ]
        merged = nested_mac(keys.mac_key, fine_macs)
        if not macs_equal(stored, merged):
            # Probe older counters to classify replay vs corruption.
            for old in range(max(0, counter - _REPLAY_PROBE_WINDOW), counter):
                old_fines = [
                    compute_mac(keys.mac_key, region_base + off, old, ct)
                    for off, ct in zip(
                        range(0, granularity, CACHELINE_BYTES), ciphertexts
                    )
                ]
                if macs_equal(
                    nested_mac(keys.mac_key, old_fines), stored
                ):
                    raise ReplayError(
                        f"replayed region detected at {region_base:#x}"
                    )
            raise IntegrityError(
                f"merged MAC mismatch on region {region_base:#x} "
                f"({granularity}B granularity)"
            )
        return [
            decrypt_line(keys.encryption_key, region_base + off, counter, ct)
            for off, ct in zip(range(0, granularity, CACHELINE_BYTES), ciphertexts)
        ]

    # ------------------------------------------------------------------
    # Small utilities
    # ------------------------------------------------------------------

    def _current_bits(self, addr: int) -> int:
        if self.policy == "fixed":
            return 0
        return self.table.entry(addr).current

    def _region_mac_addr(self, addr: int) -> int:
        """MAC address of the protection region containing ``addr``."""
        bits = self._current_bits(addr)
        granularity = self.granularity_of(addr)
        region_base = align_down(addr, granularity)
        return addressing.mac_addr(self.geometry, bits, region_base)

    def _raise_classified(
        self, addr: int, counter: int, ciphertext: bytes, stored: bytes
    ) -> None:
        """Raise ReplayError for stale-but-authentic data, else IntegrityError."""
        keys = self._keys_for(addr)
        for old in range(max(0, counter - _REPLAY_PROBE_WINDOW), counter):
            candidate = compute_mac(keys.mac_key, addr, old, ciphertext)
            if macs_equal(candidate, stored):
                raise ReplayError(f"replayed data detected at {addr:#x}")
        raise IntegrityError(f"MAC mismatch on data line {addr:#x}")

    def _check_aligned_access(self, addr: int, size: int) -> None:
        check_range(addr, size, self.geometry.region_bytes)
        if addr % CACHELINE_BYTES or size % CACHELINE_BYTES:
            raise AddressError(
                f"access [{addr:#x}, +{size}) not 64B-aligned; use "
                f"read_bytes/write_bytes for unaligned access"
            )

    # Introspection for external correctness harnesses ------------------

    def mac_addresses(self) -> List[int]:
        """Sorted addresses currently holding a stored MAC.

        Public, read-only view for differential checkers
        (:mod:`repro.check`): after a write, the compacted MAC of the
        written region must appear at exactly the Eq. 1 address.
        """
        return sorted(self._macs)

    def has_mac(self, mac_addr: int) -> bool:
        """True when a MAC is stored at metadata address ``mac_addr``."""
        return mac_addr in self._macs

    def table_bits(self, addr: int) -> Tuple[int, int]:
        """(current, next) stream-part bitmaps of ``addr``'s chunk."""
        if self.policy == "fixed":
            return 0, 0
        entry = self.table.entry(addr)
        return entry.current, entry.next

    def counter_value(self, addr: int, granularity: Optional[int] = None) -> int:
        """Counter of ``addr``'s protection region, without any access.

        ``granularity`` defaults to the currently sealed granularity;
        the counter is read at its promoted tree level (Eqs. 2-3).
        """
        granularity = granularity or self.granularity_of(addr)
        level = granularity_level(granularity)
        return self.tree.read_counter(align_down(addr, granularity), level)

    def metadata_footprint(self) -> dict:
        """Bytes of security metadata currently stored off-chip.

        The headline saving of the multi-granular design: promoted
        counters prune whole subtrees and merged MACs collapse 8-512
        fine MACs into one, so the same data needs less metadata.
        """
        mac_bytes = len(self._macs) * 8
        tree_nodes = len(self.tree._payloads)
        counter_bytes = tree_nodes * CACHELINE_BYTES
        granularity_hist = {}
        if self.policy == "multigranular":
            for _, entry in self.table.chunks():
                sizes = stream_part.granularity_histogram(entry.current)
                for granularity, covered in sizes.items():
                    if covered:
                        granularity_hist[granularity] = (
                            granularity_hist.get(granularity, 0) + covered
                        )
        return {
            "mac_bytes": mac_bytes,
            "tree_node_bytes": counter_bytes,
            "total_bytes": mac_bytes + counter_bytes,
            "coverage_by_granularity": granularity_hist,
        }

    # Unaligned convenience wrappers -----------------------------------

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Unaligned write via read-modify-write of the covering lines."""
        if not data:
            return
        start = align_down(addr, CACHELINE_BYTES)
        end = align_down(addr + len(data) - 1, CACHELINE_BYTES) + CACHELINE_BYTES
        merged = bytearray(self.read(start, end - start))
        merged[addr - start : addr - start + len(data)] = data
        self.write(start, bytes(merged))

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Unaligned read."""
        if size <= 0:
            return b""
        start = align_down(addr, CACHELINE_BYTES)
        end = align_down(addr + size - 1, CACHELINE_BYTES) + CACHELINE_BYTES
        whole = self.read(start, end - start)
        return whole[addr - start : addr - start + size]
