"""Addressable, snapshot-able engine sessions.

An :class:`EngineSession` owns everything one tenant's simulation run
used to borrow from the driver loop: the protection scheme, the memory
channel, the per-device issue states and the resumable
:class:`~repro.sim.soc.SessionCore` heap -- plus, optionally, a keyed
functional :class:`~repro.secure_memory.engine.SecureMemory` shard for
data put/get with quarantine and key-epoch state.  The daemon in
:mod:`repro.service` holds one session per tenant; the same class runs
in-process for parity comparison, so daemon-served observables are
byte-identical to a local run *by construction*.

``step(requests)`` advances the timing pipeline by a bounded number of
requests and returns their **observables**: one
``[seq, device, addr, "R"|"W", issue_cycle, completion]`` row per
issued request.  A running SHA-256 over the canonical JSON of those
rows (:meth:`observable_digest`) is the parity witness the load driver
and the CI daemon job compare.

Engine tiers: with ``SoCConfig(sim_engine="fast")`` and numpy
available, a *whole-run* ``step()`` (no limit, nothing issued yet) is
served by the vectorized :mod:`repro.engine_fast` loop; bounded windows
fall back to scalar incremental stepping.  Both tiers are bit-identical
(see docs/performance.md), so the digest does not depend on the tier.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List, Optional, Sequence

from repro.common.config import SoCConfig
from repro.crypto.keys import KeySet
from repro.devices.issue import DeviceIssueState, device_config_for
from repro.mem.dram import make_channel
from repro.obs import ObsContext
from repro.schemes.registry import build_scheme
from repro.secure_memory.engine import SecureMemory
from repro.sim.soc import RunResult, SessionCore, _run_loop, finalize_run
from repro.workloads.generator import Trace

SESSION_SCHEMA = "repro-session/v1"
ATTEST_SCHEMA = "repro-attest/v1"

#: Column order of one observable row.
OBSERVABLE_FIELDS = ("seq", "device", "addr", "op", "issue", "completion")


def canonical_json(obj) -> str:
    """Canonical JSON: sorted keys, no whitespace -- digest/tag input."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class EngineSession:
    """One tenant's addressable engine shard.

    Parameters mirror :func:`repro.sim.soc.simulate`; prefer
    :meth:`from_params` which rebuilds traces/scheme from a declarative
    request body exactly like :mod:`repro.sim.runner` would, so a
    session's final :meth:`result` is byte-identical to
    ``run_scenario(...)`` with the same knobs.
    """

    def __init__(
        self,
        traces: Sequence[Trace],
        scheme_name: str,
        config: Optional[SoCConfig] = None,
        footprint: Optional[int] = None,
        warmup: bool = False,
        tenant: str = "local",
        secret: bytes = b"",
        data_bytes: int = 0,
        params: Optional[Dict[str, object]] = None,
    ) -> None:
        config = config or SoCConfig()
        self.tenant = tenant
        self.scheme_name = scheme_name
        self.config = config
        self.traces = list(traces)
        self.params: Dict[str, object] = dict(params or {})
        self.total_requests = sum(len(t.entries) for t in self.traces)

        device_granularities = None
        if scheme_name == "static_device":
            from repro.sim.runner import best_static_granularities

            device_granularities = best_static_granularities(
                self.traces, config
            )
        if footprint is None:
            footprint = max(
                (t.max_addr for t in self.traces), default=0
            )
        self.scheme = build_scheme(
            scheme_name,
            config,
            footprint_bytes=footprint,
            device_granularities=device_granularities,
        )
        self.device_configs = [
            device_config_for(t.spec.kind, f"{t.spec.kind.value}{i}")
            for i, t in enumerate(self.traces)
        ]

        # Engine dispatch mirrors simulate(): the fast tier serves
        # whole-window steps, the scalar core serves bounded windows.
        self._fast_run = None
        if getattr(config, "sim_engine", "scalar") == "fast":
            from repro.engine_fast import core as fast_core

            self._fast_run = fast_core.prepare(
                self.traces, self.scheme, config, self.device_configs
            )
        self.engine = "fast" if self._fast_run is not None else "scalar"

        if warmup:
            warm_channel = make_channel(config.memory)
            warm_states = [
                DeviceIssueState(i, trace, cfg)
                for i, (trace, cfg) in enumerate(
                    zip(self.traces, self.device_configs)
                )
            ]
            run_loop = self._fast_run or _run_loop
            run_loop(warm_states, self.scheme, warm_channel)
            self.scheme.reset_stats()

        self.channel = make_channel(config.memory, tracer=self.scheme.tracer)
        self.channel.metrics_into(self.scheme.obs.registry, "channel")
        self.states = [
            DeviceIssueState(i, trace, cfg)
            for i, (trace, cfg) in enumerate(
                zip(self.traces, self.device_configs)
            )
        ]
        self._core: Optional[SessionCore] = SessionCore(
            self.states, self.scheme, self.channel
        )
        self.issued = 0
        self._digest = hashlib.sha256()
        self._result: Optional[RunResult] = None

        # Optional functional shard: per-tenant keys derived from the
        # tenant secret, its own obs registry so engine.events.* never
        # collides with the timing scheme's groups.
        self.memory: Optional[SecureMemory] = None
        self._data_obs: Optional[ObsContext] = None
        if data_bytes:
            self._data_obs = ObsContext.disabled()
            keys = KeySet.from_seed(
                b"repro-session:" + secret + b":" + tenant.encode()
            )
            self.memory = SecureMemory(
                data_bytes, keys=keys, obs=self._data_obs
            )

    # ------------------------------------------------------------------
    # Construction from a declarative request body (the daemon path)
    # ------------------------------------------------------------------

    @classmethod
    def from_params(
        cls,
        scenario: str = "cc1",
        scheme: str = "ours",
        engine: str = "scalar",
        duration: float = 2000.0,
        seed: int = 0,
        warmup: bool = False,
        tenant: str = "local",
        secret: bytes = b"",
        data_bytes: int = 0,
    ) -> "EngineSession":
        """Build a session exactly as ``run_scenario`` would.

        Traces come from :meth:`Scenario.build_traces` (deterministic in
        ``seed``), so two sessions built from equal params -- one in the
        daemon, one in-process -- replay identical request streams.
        """
        from repro.sim.scenario import selected_scenario

        scn = selected_scenario(scenario)
        traces, footprint = scn.build_traces(
            duration_cycles=float(duration), seed=int(seed)
        )
        config = SoCConfig(sim_engine=engine)
        return cls(
            traces,
            scheme,
            config=config,
            footprint=footprint,
            warmup=warmup,
            tenant=tenant,
            secret=secret,
            data_bytes=data_bytes,
            params={
                "scenario": scenario,
                "scheme": scheme,
                "engine": engine,
                "duration": float(duration),
                "seed": int(seed),
                "warmup": bool(warmup),
                "data_bytes": int(data_bytes),
            },
        )

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.issued >= self.total_requests

    def step(self, requests: Optional[int] = None) -> List[List[object]]:
        """Advance up to ``requests`` requests; return their observables.

        ``None`` (or any bound >= the remaining work) drains the
        session.  A whole-run step on a fast-tier session is served by
        one vectorized :mod:`repro.engine_fast` replay; bounded windows
        step the scalar :class:`SessionCore` incrementally.  Returns
        ``[]`` once the session is drained.
        """
        if self.done:
            return []
        sink: list = []
        if (
            self._fast_run is not None
            and self.issued == 0
            and (requests is None or requests >= self.total_requests)
        ):
            # Batched ingestion: the whole window replays through the
            # prebuilt arenas in one fused pass.
            self._fast_run(self.states, self.scheme, self.channel, sink=sink)
            self._core = None
        else:
            assert self._core is not None
            self._core.step(limit=requests, sink=sink)

        window: List[List[object]] = []
        for at, device, addr, is_write, completion in sink:
            row = [
                self.issued,
                int(device),
                int(addr),
                "W" if is_write else "R",
                float(at),
                float(completion),
            ]
            self.issued += 1
            self._digest.update(canonical_json(row).encode())
            self._digest.update(b"\n")
            window.append(row)
        return window

    def step_to(self, issued_target: int) -> List[List[object]]:
        """Advance until ``issued`` reaches ``issued_target``; return rows.

        The rehydration primitive: the daemon's tenant store records
        cumulative ``issued`` watermarks per committed window
        (``repro-tenant/v1``), and replaying a journal is exactly
        stepping a fresh session to each recorded watermark in order --
        byte-identical by determinism, verified against the recorded
        digest after every window.
        """
        if issued_target < self.issued:
            raise ValueError(
                f"cannot step back to {issued_target} "
                f"(already issued {self.issued})"
            )
        rows: List[List[object]] = []
        while self.issued < issued_target and not self.done:
            rows.extend(self.step(issued_target - self.issued))
        return rows

    def observable_digest(self) -> str:
        """SHA-256 over canonical JSON of every row issued so far."""
        return self._digest.hexdigest()

    # ------------------------------------------------------------------
    # Data-plane facet (functional shard)
    # ------------------------------------------------------------------

    def put(self, addr: int, data: bytes) -> None:
        if self.memory is None:
            raise ValueError("session opened without a data shard")
        self.memory.write(addr, data)

    def get(self, addr: int, size: int) -> bytes:
        if self.memory is None:
            raise ValueError("session opened without a data shard")
        return self.memory.read(addr, size)

    # ------------------------------------------------------------------
    # Results, snapshots, attestation
    # ------------------------------------------------------------------

    def result(self) -> RunResult:
        """Settle and assemble the RunResult (requires a drained session).

        Byte-identical to :func:`repro.sim.soc.simulate` of the same
        traces/scheme/config: the same :func:`finalize_run` runs over
        the same objects in the same order.
        """
        if not self.done:
            raise ValueError(
                f"session not drained: {self.issued}/{self.total_requests} "
                "requests issued"
            )
        if self._result is None:
            self._result = finalize_run(
                self.states, self.scheme, self.channel, engine=self.engine
            )
        return self._result

    def snapshot(self) -> Dict[str, object]:
        """Addressable point-in-time state (no side effects)."""
        snap: Dict[str, object] = {
            "schema": SESSION_SCHEMA,
            "tenant": self.tenant,
            "scheme": self.scheme_name,
            "engine": self.engine,
            "params": dict(self.params),
            "issued": self.issued,
            "total_requests": self.total_requests,
            "done": self.done,
            "cursors": [st.cursor for st in self.states],
            "observables_sha256": self.observable_digest(),
        }
        if self.memory is not None:
            snap["data"] = {
                "reads": self.memory.reads,
                "writes": self.memory.writes,
                "quarantined_lines": len(self.memory.quarantined_lines()),
                "key_epochs": {
                    str(chunk): epoch
                    for chunk, epoch in sorted(
                        self.memory._key_epochs.items()
                    )
                },
            }
        return snap

    def report(self) -> Dict[str, object]:
        """Unsigned attestation body (``repro-attest/v1``).

        Assembled from :mod:`repro.obs` metrics plus the functional
        shard's integrity state; the daemon signs it with the service
        key (see :func:`repro.service.protocol.sign_report`).  Works on
        a live session (metrics-so-far) and on a drained one (full
        device results included).
        """
        body: Dict[str, object] = {
            "schema": ATTEST_SCHEMA,
            "session": self.snapshot(),
            "observables": {
                "count": self.issued,
                "fields": list(OBSERVABLE_FIELDS),
                "sha256": self.observable_digest(),
            },
        }
        if self.done:
            result = self.result()
            body["devices"] = [d.to_dict() for d in result.devices]
            body["metrics"] = dict(result.metrics)
            body["finish_cycle"] = result.finish_cycle
        else:
            body["metrics"] = self.scheme.obs.registry.snapshot()
        if self.memory is not None:
            assert self._data_obs is not None
            body["integrity"] = {
                "quarantined_lines": self.memory.quarantined_lines(),
                "key_epochs": {
                    str(chunk): epoch
                    for chunk, epoch in sorted(
                        self.memory._key_epochs.items()
                    )
                },
                "events": [
                    dataclasses.asdict(event)
                    for event in self.memory.integrity_log.events
                ],
                "metrics": self._data_obs.registry.snapshot(),
            }
        return body

    def run(self) -> RunResult:
        """Drain and settle in one call (the in-process parity path)."""
        self.step(None)
        return self.result()
