"""Deterministic fault injection for the functional security layer.

``repro.faults`` attacks the engine the way the paper's adversary does
(Sec. 2.5): it mutates the attacker-visible surfaces -- ciphertext in
the :class:`~repro.mem.backing_store.BackingStore`, the compacted MAC
region, counter-tree nodes and the granularity table -- and checks
that every mutation is *detected* (the right ``SecurityError``), never
*silent* (wrong plaintext returned as if valid).

* :mod:`repro.faults.injector` -- the seeded attack catalog.
* :mod:`repro.faults.campaign` -- the sweep runner behind
  ``python -m repro faults``.
* :mod:`repro.faults.exec_chaos` -- seeded chaos against the *executor*
  (worker crashes, hangs, journal damage) behind
  ``python -m repro chaos``.
"""

from repro.faults.injector import ATTACKS, Attack, Victim, attack_by_name
from repro.faults.campaign import (
    CampaignConfig,
    CampaignResult,
    CellResult,
    run_campaign,
)
from repro.faults.exec_chaos import ChaosReport, ChaosSpec, run_chaos

__all__ = [
    "ATTACKS",
    "Attack",
    "Victim",
    "attack_by_name",
    "CampaignConfig",
    "CampaignResult",
    "CellResult",
    "run_campaign",
    "ChaosReport",
    "ChaosSpec",
    "run_chaos",
]
