"""Seeded attack catalog against the functional secure memory.

Every attack mutates only surfaces the paper's adversary physically
owns (Sec. 2.5): ciphertext lines in the backing store, the compacted
MAC region, counter-tree nodes, and the (nominally protected, here
deliberately attackable) granularity table.  Attacks are deterministic
given a :class:`random.Random`, so campaigns replay exactly from a
seed.

The victim data is always *sealed, non-zero* ciphertext: the engine
accepts missing metadata only for pristine all-zero lines, and the
injector must never let that acceptance path mask an attack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.address import align_down
from repro.common.constants import (
    CACHELINE_BYTES,
    CHUNK_BYTES,
    GRANULARITIES,
    granularity_level,
)
from repro.common.errors import IntegrityError, ReplayError
from repro.core.gran_table import GranularityTable
from repro.secure_memory.engine import SecureMemory


@dataclass
class Victim:
    """A sealed region of non-zero data the attacks target.

    ``span`` covers at least two lines even at 64B granularity so
    relocation attacks always have a second line to splice from.
    ``lines`` tracks the *logical* plaintext; attacks that perform
    legitimate writes (rollback staging) keep it current, so the
    campaign can tell a correct read from a silently corrupted one.
    """

    base: int
    granularity: int
    span: int
    lines: List[bytes]

    def line_addr(self, index: int) -> int:
        return self.base + index * CACHELINE_BYTES

    def pick_line(self, rng: random.Random) -> int:
        return self.line_addr(rng.randrange(len(self.lines)))

    def expected_bytes(self) -> bytes:
        return b"".join(self.lines)

    def region_of(self, line_addr: int) -> Tuple[int, int]:
        """(base, size) of the protection region containing the line."""
        base = align_down(line_addr, self.granularity)
        return base, self.granularity


InjectFn = Callable[[SecureMemory, random.Random, Victim], str]


@dataclass(frozen=True)
class Attack:
    """One entry of the fault-injection catalog.

    Attributes:
        name: stable identifier used by the CLI and reports.
        description: one-line human summary.
        expected: the ``SecurityError`` subclasses a correct engine
            raises for this attack (directly, or as the ``__cause__``
            of a :class:`~repro.common.errors.QuarantineError`).
        inject: performs the mutation; returns a detail string.
        multigranular_only: attack targets machinery the fixed
            baseline does not have (granularity table, lazy switch).
        recoverable: a retrying failure policy may legitimately serve
            correct data (transient faults); for every other attack a
            clean read is a detection miss.
    """

    name: str
    description: str
    expected: Tuple[type, ...]
    inject: InjectFn
    multigranular_only: bool = False
    recoverable: bool = False
    tree_attack: bool = False  # targets a counter-tree node whose blast
    # radius may legitimately cover other chunks (shared ancestors)

    def applies(self, policy: str) -> bool:
        return policy == "multigranular" or not self.multigranular_only


# ----------------------------------------------------------------------
# Data-surface attacks
# ----------------------------------------------------------------------

def _flip_mask(rng: random.Random) -> int:
    return 1 << rng.randrange(8)


def inject_data_bitflip(mem: SecureMemory, rng: random.Random, victim: Victim) -> str:
    addr = victim.pick_line(rng)
    offset = rng.randrange(CACHELINE_BYTES)
    mem.tamper_data(addr, flip_mask=_flip_mask(rng), offset=offset)
    return f"line {addr:#x} byte {offset}"


def inject_data_multiflip(mem: SecureMemory, rng: random.Random, victim: Victim) -> str:
    flips = rng.randrange(2, 9)
    for _ in range(flips):
        mem.tamper_data(
            victim.pick_line(rng),
            flip_mask=_flip_mask(rng),
            offset=rng.randrange(CACHELINE_BYTES),
        )
    return f"{flips} flips"


def inject_data_splice(mem: SecureMemory, rng: random.Random, victim: Victim) -> str:
    """Relocate one line's ciphertext over another (address swap)."""
    src = victim.pick_line(rng)
    dst = victim.pick_line(rng)
    while dst == src:
        dst = victim.pick_line(rng)
    mem.dram.replay_line(dst, mem.dram.snapshot_line(src))
    return f"{src:#x} -> {dst:#x}"


def inject_data_rollback(mem: SecureMemory, rng: random.Random, victim: Victim) -> str:
    """Replay a whole protection region to a stale-but-authentic state."""
    target = victim.pick_line(rng)
    base, size = victim.region_of(target)
    snapshots = [
        mem.snapshot(base + off) for off in range(0, size, CACHELINE_BYTES)
    ]
    fresh = bytes(rng.randrange(1, 256) for _ in range(CACHELINE_BYTES))
    mem.write(target, fresh)
    victim.lines[(target - victim.base) // CACHELINE_BYTES] = fresh
    for off, snap in zip(range(0, size, CACHELINE_BYTES), snapshots):
        mem.replay(base + off, snap)
    return f"region {base:#x}+{size}"


def inject_transient_flip(mem: SecureMemory, rng: random.Random, victim: Victim) -> str:
    addr = victim.pick_line(rng)
    mem.tamper_data_transient(
        addr, flip_mask=_flip_mask(rng), offset=rng.randrange(CACHELINE_BYTES)
    )
    return f"glitch on {addr:#x}"


# ----------------------------------------------------------------------
# MAC-surface attacks
# ----------------------------------------------------------------------

def inject_mac_bitflip(mem: SecureMemory, rng: random.Random, victim: Victim) -> str:
    addr = victim.pick_line(rng)
    mem.tamper_mac(addr)
    return f"MAC of {addr:#x}"


def inject_mac_delete(mem: SecureMemory, rng: random.Random, victim: Victim) -> str:
    addr = victim.pick_line(rng)
    mem.delete_mac(addr)
    return f"deleted MAC of {addr:#x}"


# ----------------------------------------------------------------------
# Counter-tree attacks
# ----------------------------------------------------------------------

def _victim_counter_site(victim: Victim, rng: random.Random) -> Tuple[int, int]:
    """(addr, level) of the live counter protecting a victim line."""
    target = victim.pick_line(rng)
    base, _ = victim.region_of(target)
    return base, granularity_level(victim.granularity)


def inject_counter_tamper(mem: SecureMemory, rng: random.Random, victim: Victim) -> str:
    addr, level = _victim_counter_site(victim, rng)
    mem.tree.tamper_counter(addr, level=level, delta=rng.randrange(1, 16))
    mem.tree.drop_trust_cache()
    return f"counter L{level} of {addr:#x}"


def inject_node_mac_flip(mem: SecureMemory, rng: random.Random, victim: Victim) -> str:
    addr, level = _victim_counter_site(victim, rng)
    mem.tree.tamper_node_mac(addr, level=level)
    mem.tree.drop_trust_cache()
    return f"node MAC L{level} of {addr:#x}"


def inject_node_rollback(mem: SecureMemory, rng: random.Random, victim: Victim) -> str:
    """Replay a counter node (and matching data) to a stale version."""
    target = victim.pick_line(rng)
    base, size = victim.region_of(target)
    level = granularity_level(victim.granularity)
    node_snap = mem.tree.snapshot_node(base, level=level)
    data_snaps = [
        mem.snapshot(base + off) for off in range(0, size, CACHELINE_BYTES)
    ]
    fresh = bytes(rng.randrange(1, 256) for _ in range(CACHELINE_BYTES))
    mem.write(target, fresh)
    victim.lines[(target - victim.base) // CACHELINE_BYTES] = fresh
    mem.tree.replay_node(base, node_snap, level=level)
    for off, snap in zip(range(0, size, CACHELINE_BYTES), data_snaps):
        mem.replay(base + off, snap)
    mem.tree.drop_trust_cache()
    return f"node L{level} of {base:#x}"


# ----------------------------------------------------------------------
# Granularity-metadata attacks (multigranular machinery only)
# ----------------------------------------------------------------------

def inject_table_tamper(mem: SecureMemory, rng: random.Random, victim: Victim) -> str:
    """Flip a sealed-bitmap bit of the victim chunk's table entry.

    Models an attacker reaching the granularity table: the engine now
    derives the wrong protection layout for the victim, so MAC lookups
    and the induced spurious lazy switch must fail verification rather
    than trust relocated metadata.
    """
    entry = mem.table.entry(victim.base)
    mask = GranularityTable.region_partition_mask(
        victim.base, max(victim.granularity, GRANULARITIES[1])
    )
    candidates = [bit for bit in range(64) if mask >> bit & 1]
    bit = 1 << rng.choice(candidates)
    entry.current ^= bit
    return f"current bitmap ^= {bit:#x}"


def inject_mid_switch_tamper(mem: SecureMemory, rng: random.Random, victim: Victim) -> str:
    """Tamper ciphertext *inside* the lazy-switching window.

    A granularity switch is staged (the detection bitmap disagrees
    with the sealed one) but not yet applied; the corruption must be
    caught by the switch's verification pass when the next access
    triggers the re-keying -- the paper's most delicate metadata
    window.
    """
    entry = mem.table.entry(victim.base)
    if victim.granularity >= CHUNK_BYTES:
        # Stage a demotion of the whole streamed chunk.
        entry.next = 0
        detail = "staged 32KB -> 64B demotion"
    else:
        target = GRANULARITIES[
            GRANULARITIES.index(victim.granularity) + 1
        ]
        entry.next |= GranularityTable.region_partition_mask(
            victim.base, target
        )
        detail = f"staged promotion to {target}B"
    addr = victim.pick_line(rng)
    mem.tamper_data(
        addr, flip_mask=_flip_mask(rng), offset=rng.randrange(CACHELINE_BYTES)
    )
    return f"{detail}; tampered {addr:#x}"


#: The attack catalog, in report order.
ATTACKS: Tuple[Attack, ...] = (
    Attack(
        "data_bitflip",
        "single bit-flip in stored ciphertext",
        (IntegrityError,),
        inject_data_bitflip,
    ),
    Attack(
        "data_multiflip",
        "2-8 bit-flips across the victim's lines",
        (IntegrityError,),
        inject_data_multiflip,
    ),
    Attack(
        "data_splice",
        "relocate one line's ciphertext over another",
        (IntegrityError,),
        inject_data_splice,
    ),
    Attack(
        "data_rollback",
        "replay a whole region to a stale authentic state",
        (ReplayError,),
        inject_data_rollback,
    ),
    Attack(
        "transient_flip",
        "one-shot bus glitch on a victim line",
        (IntegrityError,),
        inject_transient_flip,
        recoverable=True,
    ),
    Attack(
        "mac_bitflip",
        "bit-flip in the stored (merged) MAC",
        (IntegrityError,),
        inject_mac_bitflip,
    ),
    Attack(
        "mac_delete",
        "erase the stored MAC covering the victim",
        (IntegrityError,),
        inject_mac_delete,
    ),
    Attack(
        "counter_tamper",
        "bump a stored counter without resealing",
        (IntegrityError, ReplayError),
        inject_counter_tamper,
        tree_attack=True,
    ),
    Attack(
        "node_mac_flip",
        "bit-flip a counter-tree node seal",
        (IntegrityError, ReplayError),
        inject_node_mac_flip,
        tree_attack=True,
    ),
    Attack(
        "node_rollback",
        "replay a counter node + data to a stale version",
        (IntegrityError, ReplayError),
        inject_node_rollback,
        tree_attack=True,
    ),
    Attack(
        "table_tamper",
        "flip a sealed granularity-table bitmap bit",
        (IntegrityError, ReplayError),
        inject_table_tamper,
        multigranular_only=True,
    ),
    Attack(
        "mid_switch_tamper",
        "corrupt ciphertext inside the lazy-switch window",
        (IntegrityError, ReplayError),
        inject_mid_switch_tamper,
        multigranular_only=True,
    ),
)

_BY_NAME: Dict[str, Attack] = {attack.name: attack for attack in ATTACKS}


def attack_by_name(name: str) -> Attack:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown attack {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
