"""Fault-injection campaign: attack x granularity x policy sweep.

For every cell of the sweep the runner builds a fresh engine, seals a
non-zero victim region at the requested granularity, seeds a bystander
line in a different chunk, injects one attack from the catalog and
probes the victim.  Each trial is classified as:

* ``detected``          -- the engine raised one of the attack's
  expected ``SecurityError`` subclasses (directly or as the cause of a
  ``QuarantineError``);
* ``misclassified``     -- a violation was raised, but not the class
  the attack models (e.g. a replay reported as plain corruption);
* ``recovered``         -- a retrying policy legitimately served
  correct data (transient faults only);
* ``silent_corruption`` -- the probe read completed with wrong data,
  or a persistent attack went entirely unnoticed.  **Fatal**: a single
  such trial fails the campaign.

Under quarantining policies the runner additionally verifies
*containment*: after the detection, the bystander chunk must still
read back correctly, otherwise the cell records a containment
failure (also fatal).
"""

from __future__ import annotations

import hashlib
import json
import random
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.constants import (
    CACHELINE_BYTES,
    CHUNK_BYTES,
    GRANULARITIES,
    granularity_level,
)
from repro.common.errors import QuarantineError, SecurityError
from repro.crypto.keys import KeySet
from repro.faults.injector import ATTACKS, Attack, Victim, attack_by_name
from repro.secure_memory.engine import SecureMemory
from repro.secure_memory.failure import FAILURE_MODES

#: Trial outcome labels, in severity order.
OUTCOMES = ("detected", "misclassified", "recovered", "silent_corruption")

_VICTIM_CHUNK_BASE = CHUNK_BYTES  # chunk 1
_BYSTANDER_ADDR = 0               # chunk 0


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of one campaign sweep."""

    seed: int = 0
    trials: int = 3
    # 16 chunks keep the 32KB promoted counters *below* the on-chip
    # root, so tree attacks have a stored node seal to target.
    region_bytes: int = 16 * CHUNK_BYTES
    granularities: Tuple[int, ...] = GRANULARITIES
    policies: Tuple[str, ...] = ("fixed", "multigranular")
    failure_modes: Tuple[str, ...] = FAILURE_MODES
    attacks: Tuple[str, ...] = ()  # empty selects the full catalog

    def selected_attacks(self) -> List[Attack]:
        if not self.attacks:
            return list(ATTACKS)
        return [attack_by_name(name) for name in self.attacks]


@dataclass
class CellResult:
    """Aggregated outcomes of one (attack, policy, mode, granularity) cell."""

    attack: str
    policy: str
    failure_mode: str
    granularity: int
    trials: int = 0
    detected: int = 0
    misclassified: int = 0
    recovered: int = 0
    silent_corruption: int = 0
    containment_failures: int = 0
    details: List[str] = field(default_factory=list)
    #: ``"ok"`` or ``"error"`` -- an error cell is one whose trial
    #: machinery itself raised (an infrastructure/harness bug, not a
    #: security verdict).  Error cells never abort the sweep; they fail
    #: the campaign at the end with a summary.
    status: str = "ok"
    error: str = ""
    #: Exception class and traceback digest of an error cell's failure.
    #: Journaled with the payload so ``--resume`` (and the fabric's
    #: warm store) can tell a *deterministic* task error -- same class,
    #: same traceback digest: skip the cell -- from an infrastructure
    #: death, which journals nothing and is simply re-leased.
    error_class: str = ""
    traceback_digest: str = ""

    @property
    def fatal(self) -> bool:
        return self.silent_corruption > 0 or self.containment_failures > 0

    def as_dict(self) -> dict:
        return {
            "attack": self.attack,
            "policy": self.policy,
            "failure_mode": self.failure_mode,
            "granularity": self.granularity,
            "trials": self.trials,
            "detected": self.detected,
            "misclassified": self.misclassified,
            "recovered": self.recovered,
            "silent_corruption": self.silent_corruption,
            "containment_failures": self.containment_failures,
            "details": self.details,
            "status": self.status,
            "error": self.error,
            "error_class": self.error_class,
            "traceback_digest": self.traceback_digest,
        }


@dataclass
class CampaignResult:
    """All cells of one sweep plus its configuration."""

    config: CampaignConfig
    cells: List[CellResult]

    def fatal_cells(self) -> List[CellResult]:
        return [cell for cell in self.cells if cell.fatal]

    def error_cells(self) -> List[CellResult]:
        return [cell for cell in self.cells if cell.status == "error"]

    @property
    def clean(self) -> bool:
        return not self.fatal_cells() and not self.error_cells()

    def totals(self) -> Dict[str, int]:
        out = {key: 0 for key in OUTCOMES}
        out["trials"] = 0
        out["containment_failures"] = 0
        for cell in self.cells:
            out["trials"] += cell.trials
            out["detected"] += cell.detected
            out["misclassified"] += cell.misclassified
            out["recovered"] += cell.recovered
            out["silent_corruption"] += cell.silent_corruption
            out["containment_failures"] += cell.containment_failures
        return out

    def to_json(self) -> str:
        return json.dumps(
            {
                "config": {
                    "seed": self.config.seed,
                    "trials": self.config.trials,
                    "region_bytes": self.config.region_bytes,
                    "granularities": list(self.config.granularities),
                    "policies": list(self.config.policies),
                    "failure_modes": list(self.config.failure_modes),
                },
                "totals": self.totals(),
                "clean": self.clean,
                "cells": [cell.as_dict() for cell in self.cells],
            },
            indent=2,
        )

    def format_table(self) -> str:
        """ASCII detection-coverage matrix, one block per policy.

        Cells aggregate over failure modes; codes are ``D`` detected,
        ``M`` misclassified, ``R`` recovered, ``S!`` silent corruption,
        ``C!`` containment failure and ``E!`` cell errored out.
        """
        lines: List[str] = []
        for policy in self.config.policies:
            grans = [
                g
                for g in self.config.granularities
                if policy == "multigranular" or g == GRANULARITIES[0]
            ]
            lines.append(
                f"# policy={policy}  "
                f"(modes: {', '.join(self.config.failure_modes)}; "
                f"trials/cell: {self.config.trials})"
            )
            header = f"{'attack':18s}" + "".join(
                f"{g:>12d}" for g in grans
            )
            lines.append(header)
            by_key: Dict[Tuple[str, int], List[CellResult]] = {}
            for cell in self.cells:
                if cell.policy == policy:
                    by_key.setdefault(
                        (cell.attack, cell.granularity), []
                    ).append(cell)
            for attack in self.config.selected_attacks():
                row = f"{attack.name:18s}"
                any_cell = False
                for g in grans:
                    cells = by_key.get((attack.name, g))
                    if not cells:
                        row += f"{'-':>12s}"
                        continue
                    any_cell = True
                    code = ""
                    for label, key in (
                        ("D", "detected"),
                        ("M", "misclassified"),
                        ("R", "recovered"),
                        ("S!", "silent_corruption"),
                        ("C!", "containment_failures"),
                    ):
                        count = sum(getattr(c, key) for c in cells)
                        if count:
                            code += f"{count}{label}"
                    errored = sum(1 for c in cells if c.status == "error")
                    if errored:
                        code += f"{errored}E!"
                    row += f"{code or '0':>12s}"
                row += ""
                if any_cell:
                    lines.append(row)
            lines.append("")
        totals = self.totals()
        errors = self.error_cells()
        lines.append(
            f"trials={totals['trials']} detected={totals['detected']} "
            f"misclassified={totals['misclassified']} "
            f"recovered={totals['recovered']} "
            f"silent={totals['silent_corruption']} "
            f"containment_failures={totals['containment_failures']} "
            f"error_cells={len(errors)}"
        )
        for cell in errors:
            lines.append(
                f"ERROR cell {cell.attack}:{cell.policy}:"
                f"{cell.failure_mode}:{cell.granularity}: {cell.error}"
            )
        if self.clean:
            lines.append("campaign CLEAN (no silent corruption)")
        elif errors and not self.fatal_cells():
            lines.append(
                f"campaign FAILED: {len(errors)} cell(s) errored out"
            )
        else:
            lines.append(
                "campaign FAILED: silent corruption / broken containment"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Trial machinery
# ----------------------------------------------------------------------

def _trial_seed(*parts) -> int:
    """Stable (hash-seed independent) per-trial RNG seed."""
    digest = hashlib.blake2b(repr(parts).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def _random_line(rng: random.Random) -> bytes:
    """A 64B payload with no zero byte (never mistakable for pristine)."""
    return bytes(rng.randrange(1, 256) for _ in range(CACHELINE_BYTES))


def _seed_victim(
    mem: SecureMemory, rng: random.Random, granularity: int
) -> Victim:
    """Seal non-zero victim data at exactly ``granularity``."""
    span = max(granularity, GRANULARITIES[1])
    lines = [_random_line(rng) for _ in range(span // CACHELINE_BYTES)]
    mem.write(_VICTIM_CHUNK_BASE, b"".join(lines))
    if mem.policy == "multigranular":
        forced = mem.force_granularity(_VICTIM_CHUNK_BASE, granularity)
        if forced != granularity:
            raise RuntimeError(
                f"victim sealed at {forced}B, wanted {granularity}B"
            )
    return Victim(
        base=_VICTIM_CHUNK_BASE,
        granularity=granularity,
        span=span,
        lines=lines,
    )


def _probe(
    mem: SecureMemory, attack: Attack, victim: Victim
) -> Tuple[str, str]:
    """Read the victim back and classify the outcome."""
    try:
        got = mem.read(victim.base, victim.span)
    except QuarantineError as exc:
        cause = exc.__cause__
        name = type(cause).__name__ if cause is not None else "QuarantineError"
        if cause is not None and isinstance(cause, attack.expected):
            return "detected", name
        return "misclassified", name
    except attack.expected as exc:
        return "detected", type(exc).__name__
    except SecurityError as exc:
        return "misclassified", type(exc).__name__
    if got == victim.expected_bytes():
        if attack.recoverable:
            return "recovered", "retry served correct data"
        return "silent_corruption", "persistent attack went undetected"
    return "silent_corruption", "read returned wrong data"


def _run_trial(
    attack: Attack,
    policy: str,
    failure_mode: str,
    granularity: int,
    seed: int,
    region_bytes: int,
) -> Tuple[str, str, bool]:
    """One seeded trial; returns (outcome, detail, containment_ok)."""
    rng = random.Random(seed)
    keys = KeySet.from_seed(b"faults-%d" % seed)
    mem = SecureMemory(
        region_bytes,
        keys=keys,
        policy=policy,
        failure_policy=failure_mode,
    )
    bystander = _random_line(rng)
    mem.write(_BYSTANDER_ADDR, bystander)
    victim = _seed_victim(mem, rng, granularity)
    detail = attack.inject(mem, rng, victim)
    outcome, observed = _probe(mem, attack, victim)

    containment_ok = True
    if outcome in ("detected", "misclassified") and _containment_applies(
        mem, attack, victim
    ):
        # Graceful degradation: the untouched chunk must keep serving.
        # Under ``raise`` the engine makes no such promise, but this
        # reproduction's functional engine still satisfies it, so the
        # check runs everywhere the read does not hit the quarantine.
        try:
            containment_ok = mem.read(_BYSTANDER_ADDR, CACHELINE_BYTES) == bystander
        except SecurityError:
            containment_ok = False
    return outcome, f"{detail}; observed {observed}", containment_ok


def _containment_applies(
    mem: SecureMemory, attack: Attack, victim: Victim
) -> bool:
    """Whether the bystander chunk is outside the attack's blast radius.

    Tree attacks on a node that is a shared ancestor of victim *and*
    bystander (e.g. the node holding a 32KB promoted counter also
    seals neighbouring chunks' freshness) legitimately break the
    bystander's trust chain; containment is not a promise there.
    """
    if not attack.tree_attack:
        return True
    level = granularity_level(victim.granularity)
    victim_node, _ = mem.tree.geometry.counter_slot(victim.base, level)
    bystander_node, _ = mem.tree.geometry.counter_slot(_BYSTANDER_ADDR, level)
    return victim_node != bystander_node


def traced_fault_slice(obs, seed: int = 0) -> SecureMemory:
    """Exercise the engine's recovery paths under an observability context.

    The timing layer never corrupts anything, so switch/tree/cache
    events are all a scheme trace can show.  This helper drives the
    *functional* engine through one deterministic fault story --
    coarse promotion, counter exhaustion (epoch bump), a data tamper
    that quarantines the region, and heal-writes -- so a combined
    trace also contains SWITCH, COUNTER_OVERFLOW, EPOCH_BUMP,
    INTEGRITY_FAILURE, QUARANTINE and HEAL events.  Returns the engine
    (its ``events`` group lives in ``obs.registry``).
    """
    rng = random.Random(seed)
    keys = KeySet.from_seed(b"trace-slice-%d" % seed)
    mem = SecureMemory(
        4 * CHUNK_BYTES,
        keys=keys,
        policy="multigranular",
        failure_policy="quarantine",
        counter_bits=4,
        obs=obs,
    )
    span = GRANULARITIES[1]
    lines = [_random_line(rng) for _ in range(span // CACHELINE_BYTES)]
    mem.write(_VICTIM_CHUNK_BASE, b"".join(lines))
    mem.force_granularity(_VICTIM_CHUNK_BASE, span)
    # 4-bit counters exhaust after 15 increments: overflow + epoch bump.
    for _ in range(20):
        mem.write(_BYSTANDER_ADDR, _random_line(rng))
    mem.tamper_data(_VICTIM_CHUNK_BASE)
    try:
        mem.read(_VICTIM_CHUNK_BASE, span)
    except QuarantineError:
        pass
    for off in range(0, span, CACHELINE_BYTES):
        mem.write(_VICTIM_CHUNK_BASE + off, _random_line(rng))
    return mem


#: One campaign cell, fully described by picklable scalars: the worker
#: re-resolves the attack from the catalog by name.
_CellSpec = Tuple[CampaignConfig, str, str, str, int]


def _cell_specs(config: CampaignConfig) -> List[_CellSpec]:
    """Enumerate the sweep's cells in the canonical (reported) order."""
    specs: List[_CellSpec] = []
    for policy in config.policies:
        grans = [
            g
            for g in config.granularities
            if policy == "multigranular" or g == GRANULARITIES[0]
        ]
        for attack in config.selected_attacks():
            if not attack.applies(policy):
                continue
            for granularity in grans:
                for mode in config.failure_modes:
                    specs.append(
                        (config, attack.name, policy, mode, granularity)
                    )
    return specs


def _run_cell(spec: _CellSpec) -> CellResult:
    """Run every trial of one cell (the parallel worker body).

    Each trial builds its own engine from a seed derived only from the
    cell coordinates, so cells are independent and the campaign result
    does not depend on execution order or process placement.
    """
    config, attack_name, policy, mode, granularity = spec
    attack = attack_by_name(attack_name)
    cell = CellResult(
        attack=attack.name,
        policy=policy,
        failure_mode=mode,
        granularity=granularity,
    )
    for trial in range(config.trials):
        seed = _trial_seed(
            config.seed, attack.name, policy, mode, granularity, trial
        )
        try:
            outcome, detail, contained = _run_trial(
                attack, policy, mode, granularity, seed, config.region_bytes
            )
        except Exception as exc:  # harness bug: record, keep sweeping
            cell.status = "error"
            cell.error = f"trial {trial}: {type(exc).__name__}: {exc}"
            cell.error_class = type(exc).__name__
            cell.traceback_digest = hashlib.sha256(
                traceback.format_exc().encode("utf-8")
            ).hexdigest()
            cell.details.append(f"trial {trial}: error; {exc}")
            break
        cell.trials += 1
        if outcome == "detected":
            cell.detected += 1
        elif outcome == "misclassified":
            cell.misclassified += 1
        elif outcome == "recovered":
            cell.recovered += 1
        else:
            cell.silent_corruption += 1
        if not contained:
            cell.containment_failures += 1
        if outcome != "detected" or not contained:
            cell.details.append(f"trial {trial}: {outcome}; {detail}")
    return cell


def run_campaign(
    config: Optional[CampaignConfig] = None, jobs: Optional[int] = None
) -> CampaignResult:
    """Run the full sweep described by ``config``.

    ``jobs`` above 1 fans independent cells out over worker processes
    (``None`` consults ``REPRO_JOBS``, else serial); cells come back in
    canonical order either way, so the coverage matrix and JSON dump
    are byte-identical to a serial campaign.  An ambient supervisor
    (:func:`repro.sim.resilient.supervision`) adds per-cell timeouts,
    retries, and -- when journaling -- checkpoint/resume keyed by the
    cell coordinates.

    A cell whose trial machinery raises is recorded with
    ``status="error"`` instead of aborting the sweep; the campaign as a
    whole then reports ``clean == False`` with a per-cell summary.
    """
    from repro.sim.parallel import _execute_tasks

    config = config or CampaignConfig()
    specs = _cell_specs(config)
    keys = [
        f"{attack}:{policy}:{mode}:{granularity}"
        for (_, attack, policy, mode, granularity) in specs
    ]
    context = json.dumps(
        {
            "seed": config.seed,
            "trials": config.trials,
            "region_bytes": config.region_bytes,
            "granularities": list(config.granularities),
            "policies": list(config.policies),
            "failure_modes": list(config.failure_modes),
            "attacks": list(config.attacks),
        },
        sort_keys=True,
    )
    cells = _execute_tasks(_run_cell, specs, keys, "campaign", context, jobs)
    return CampaignResult(config=config, cells=cells)
