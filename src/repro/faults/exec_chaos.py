"""Execution-chaos harness: seeded failures aimed at the executor.

PR 4's differential oracle checks the *layout math*; this module is
its twin for the *execution layer*.  It injects worker crashes, hangs,
lost results, parent kills and journal damage at seeded rates into
supervised sweeps and campaign slices, then asserts the one property
the resilience layer promises: **final payloads are byte-identical to
a clean serial run**, no matter what the executor survived along the
way.

Driven by ``python -m repro chaos`` and the chaos CI job; the same
:class:`ChaosSpec` plugs into any :class:`repro.sim.resilient.Supervisor`
for targeted tests.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.resilient import (
    ExecutionAborted,
    JournalError,
    ResiliencePolicy,
    Supervisor,
    count_journal_entries,
    supervision,
)

#: Default wall-clock budget for one task before the supervisor kills
#: its pool (chaos hangs sleep well past this).
DEFAULT_TIMEOUT_SECONDS = 15.0


# ----------------------------------------------------------------------
# The injection spec
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ChaosSpec:
    """Seeded, picklable failure-injection plan for supervised maps.

    ``decide(key, attempt)`` is consulted *inside the worker* before
    the real task body runs and returns one of ``"crash"`` (hard
    ``os._exit``), ``"hang"`` (sleep past the supervision timeout),
    ``"lose"`` (raise a transient :class:`LostResultError`) or ``None``.
    Decisions are pure functions of ``(seed, key, attempt)`` so a chaos
    story replays identically, and no fault fires at or beyond
    ``fault_attempts`` -- every task is guaranteed to succeed within
    the retry budget, which is what lets the harness demand
    byte-identical output.

    ``abort_after`` is parent-side chaos: the supervised map raises
    :class:`ExecutionAborted` after that many *live* completions,
    simulating a killed run for checkpoint/resume tests.
    """

    seed: int = 0
    crash_rate: float = 0.0
    lost_rate: float = 0.0
    hang_keys: Tuple[str, ...] = ()
    hang_seconds: float = 60.0
    fault_attempts: int = 2
    abort_after: Optional[int] = None

    def _uniform(self, key: str, attempt: int) -> float:
        digest = hashlib.blake2b(
            f"{self.seed}:{key}:{attempt}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "little") / 2**64

    def decide(self, key: str, attempt: int) -> Optional[str]:
        if attempt >= self.fault_attempts:
            return None
        if key in self.hang_keys and attempt == 0:
            return "hang"
        roll = self._uniform(key, attempt)
        if roll < self.crash_rate:
            return "crash"
        if roll < self.crash_rate + self.lost_rate:
            return "lose"
        return None


@dataclass(frozen=True)
class FabricChaosSpec:
    """Seeded failure-injection plan for the distributed fabric.

    The fabric's failure surface is different from the pool's, so this
    spec speaks lease protocol, not executor protocol.
    ``decide_fabric(key, attempt)`` is consulted by a worker *after* it
    holds the lease and returns one of:

    * ``"die_after_claim"`` -- ``os._exit(9)`` with the lease held (a
      SIGKILL between claim and commit; the lease goes stale and must
      be reclaimed);
    * ``"stall"`` -- sleep past the lease TTL without heartbeating
      (the stale-heartbeat resurrection race: someone steals the lease
      and our late commit must lose the store race gracefully);
    * ``"tear_result"`` -- write a half blob at the *final* store path
      (a torn result the next claimant must detect and heal);
    * ``None`` -- run the task honestly.

    Fabric attempts are 1-based (attempt ``n`` means the ``n``-th claim
    of that lease), so no fault fires once ``attempt > fault_attempts``
    -- every task converges within the attempt budget and byte-parity
    stays assertable.  ``kill_worker_after`` is coordinator-side chaos:
    after that many observed claim events the coordinator SIGKILLs a
    live worker outright (see ``_run_workers``).  The spec is pickled
    into the queue manifest so detached ``repro fabric worker``
    processes replay the same story.
    """

    seed: int = 0
    die_rate: float = 0.0
    stall_rate: float = 0.0
    tear_rate: float = 0.0
    fault_attempts: int = 2
    kill_worker_after: Optional[int] = None

    def _uniform(self, key: str, attempt: int) -> float:
        digest = hashlib.blake2b(
            f"fabric:{self.seed}:{key}:{attempt}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "little") / 2**64

    def decide_fabric(self, key: str, attempt: int) -> Optional[str]:
        if attempt > self.fault_attempts:
            return None
        roll = self._uniform(key, attempt)
        if roll < self.die_rate:
            return "die_after_claim"
        if roll < self.die_rate + self.stall_rate:
            return "stall"
        if roll < self.die_rate + self.stall_rate + self.tear_rate:
            return "tear_result"
        return None


# ----------------------------------------------------------------------
# Journal damage helpers (tests + the harness's own sections)
# ----------------------------------------------------------------------

def corrupt_journal_entry(path: Path, entry_index: int = 0) -> str:
    """Flip one character inside entry ``entry_index``'s payload.

    Returns the corrupted line's original key.  The damaged entry must
    fail its digest check on replay and be re-executed.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    target = 1 + entry_index  # line 0 is the header
    if target >= len(lines):
        raise IndexError(f"journal has no entry {entry_index}")
    entry = json.loads(lines[target])
    payload = entry["payload"]
    pos = len(payload) // 2
    flipped = "A" if payload[pos] != "A" else "B"
    entry["payload"] = payload[:pos] + flipped + payload[pos + 1:]
    lines[target] = json.dumps(entry, sort_keys=True) + "\n"
    path.write_text("".join(lines), encoding="utf-8")
    return str(entry["key"])


def truncate_journal(path: Path, keep_entries: int, partial: bool = True) -> None:
    """Cut the journal down to ``keep_entries`` full entries.

    With ``partial`` the next entry is half-written (no newline) --
    the residue of a crash mid-append that replay must tolerate.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    kept = lines[: 1 + keep_entries]
    if partial and len(lines) > 1 + keep_entries:
        kept.append(lines[1 + keep_entries][: 40])  # unterminated tail
    path.write_text("".join(kept), encoding="utf-8")


def break_journal_schema(path: Path) -> None:
    """Stamp a wrong schema version into the header (must be rejected)."""
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    header = json.loads(lines[0])
    header["schema"] = "repro-journal/v0"
    lines[0] = json.dumps(header, sort_keys=True) + "\n"
    path.write_text("".join(lines), encoding="utf-8")


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------

@dataclass
class ChaosSection:
    """One pass/fail check of the chaos story."""

    name: str
    passed: bool
    detail: str


@dataclass
class ChaosReport:
    """All sections of one ``repro chaos`` run."""

    sections: List[ChaosSection] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(section.passed for section in self.sections)

    def add(self, name: str, passed: bool, detail: str) -> None:
        self.sections.append(ChaosSection(name, passed, detail))

    def format(self) -> str:
        lines = ["# execution chaos"]
        for section in self.sections:
            mark = "PASS" if section.passed else "FAIL"
            lines.append(f"[{mark}] {section.name}: {section.detail}")
        lines.append(
            "chaos CLEAN (all payloads byte-identical)"
            if self.passed
            else "chaos FAILED"
        )
        return "\n".join(lines)


def _sweep_payloads(
    sample: int,
    duration: float,
    seed: int,
    schemes: Sequence[str],
    jobs: int,
) -> List[str]:
    """Canonical JSON payloads of one sweep (the byte-parity currency)."""
    from repro.experiments.sweep import canonical_payloads
    from repro.sim.runner import clear_static_best_cache, run_many, sweep_scenarios
    from repro.sim.scenario import all_scenarios

    clear_static_best_cache()
    scenarios = sweep_scenarios(all_scenarios(), sample)
    results = run_many(
        scenarios, schemes, duration_cycles=duration, seed=seed, jobs=jobs
    )
    return canonical_payloads(results, schemes)


def _sweep_keys(sample: int, schemes: Sequence[str], jobs: int) -> List[str]:
    from repro.sim.parallel import sweep_task_keys
    from repro.sim.runner import sweep_scenarios
    from repro.sim.scenario import all_scenarios

    scenarios = sweep_scenarios(all_scenarios(), sample)
    return sweep_task_keys(scenarios, schemes, jobs)


def _campaign_json(config, jobs: int) -> str:
    from repro.faults.campaign import run_campaign

    return run_campaign(config, jobs=jobs).to_json()


def _journal_files(run_dir: Path) -> List[Path]:
    return sorted(Path(run_dir).glob("*.jsonl"))


def _probe_task(x: int) -> int:
    """Trivial picklable worker body for the hang-detection probe."""
    return x * x


def _hang_detection_section(
    report: ChaosReport,
    say: Callable[[str], None],
    seed: int,
) -> None:
    """Prove the timeout machinery bites, deterministically.

    The full chaos sweep cannot guarantee a timeout fires: a
    neighbour's crash can break the pool while the hang task is
    in-flight, charging it a transient retry before its deadline
    expires.  This probe injects exactly one hang with *no* crashes,
    so the only way the four tasks finish quickly is the supervisor
    killing the hung worker.
    """
    from repro.sim.resilient import SupervisionReport, supervised_map

    say("[chaos] hang-detection probe (1 hang, no crashes) ...")
    chaos = ChaosSpec(seed=seed, hang_keys=("probe-2",), hang_seconds=120.0)
    policy = ResiliencePolicy(timeout_seconds=2.0, seed=seed)
    stats = SupervisionReport()
    started = time.monotonic()
    out = supervised_map(
        _probe_task, [1, 2, 3, 4], jobs=2,
        keys=["probe-1", "probe-2", "probe-3", "probe-4"],
        policy=policy, chaos=chaos, report=stats,
    )
    wall = time.monotonic() - started
    ok = out == [1, 4, 9, 16] and stats.timeouts >= 1 and wall < 60.0
    report.add(
        "hang detection",
        ok,
        f"{stats.timeouts} timeouts, {stats.pool_breaks} pool breaks, "
        f"finished in {wall:.1f}s (hang slept 120s)",
    )


def run_chaos(
    sample: int = 6,
    duration: float = 800.0,
    seed: int = 0,
    crash_rate: float = 0.2,
    lost_rate: float = 0.0,
    timeout: float = DEFAULT_TIMEOUT_SECONDS,
    schemes: Sequence[str] = ("conventional", "ours"),
    jobs: int = 2,
    runs_dir: Optional[Path] = None,
    skip_sweep: bool = False,
    skip_campaign: bool = False,
    echo: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Run the full chaos story and return its pass/fail report.

    Sections (each asserting byte-parity against a clean serial run):

    1. **sweep under chaos** -- seeded worker crashes plus one injected
       hang; the supervised sweep must finish identical.
    2. **sweep kill + resume** -- abort the run after a few
       completions, then ``--resume``; only unfinished tasks may
       re-execute (verified via journal entry counts).
    3. **corrupted journal** -- flip a byte in one recorded payload and
       truncate another entry mid-line; resume must re-execute exactly
       the damaged tasks and still match.
    4. **schema rejection** -- a wrong-versioned journal header must
       raise :class:`JournalError`, never silently replay.
    5. **campaign under chaos** -- same crash story against the
       fault-campaign fan-out.
    """
    report = ChaosReport()
    say = echo or (lambda _line: None)
    schemes = list(schemes)
    cleanup = runs_dir is None
    runs_root = Path(
        runs_dir if runs_dir is not None
        else tempfile.mkdtemp(prefix="repro-chaos-")
    )

    policy = ResiliencePolicy(timeout_seconds=timeout, seed=seed)
    try:
        _hang_detection_section(report, say, seed)
        if not skip_sweep:
            _chaos_sweep_sections(
                report, say, runs_root, policy, sample, duration, seed,
                crash_rate, lost_rate, schemes, jobs, timeout,
            )
        if not skip_campaign:
            _chaos_campaign_section(
                report, say, runs_root, policy, seed, crash_rate, lost_rate,
                jobs,
            )
    finally:
        if cleanup:
            shutil.rmtree(runs_root, ignore_errors=True)
    return report


def _chaos_sweep_sections(
    report: ChaosReport,
    say: Callable[[str], None],
    runs_root: Path,
    policy: ResiliencePolicy,
    sample: int,
    duration: float,
    seed: int,
    crash_rate: float,
    lost_rate: float,
    schemes: Sequence[str],
    jobs: int,
    timeout: float,
) -> None:
    say(f"[chaos] clean serial sweep baseline (sample={sample}) ...")
    clean = _sweep_payloads(sample, duration, seed, schemes, jobs=1)
    keys = _sweep_keys(sample, schemes, jobs)

    # 1. crashes + one hang under supervision.
    say(
        f"[chaos] supervised sweep: crash_rate={crash_rate} "
        f"lost_rate={lost_rate} + 1 hang, jobs={jobs} ..."
    )
    chaos = ChaosSpec(
        seed=seed,
        crash_rate=crash_rate,
        lost_rate=lost_rate,
        hang_keys=(keys[len(keys) // 2],),
        hang_seconds=max(4 * timeout, 30.0),
    )
    supervisor = Supervisor(policy=policy, chaos=chaos)
    with supervision(supervisor):
        chaotic = _sweep_payloads(sample, duration, seed, schemes, jobs)
    stats = supervisor.report
    survived = (
        f"{stats.retries} retries, {stats.timeouts} timeouts, "
        f"{stats.pool_breaks} pool breaks, "
        f"{stats.serial_fallbacks} serial fallbacks"
    )
    # The hang may be pre-empted (a neighbour's crash breaks the pool
    # first, charging the hang task a retry) -- that is legitimate
    # supervision, so this section asserts parity plus *some* observed
    # turbulence; the dedicated hang-detection probe above proves the
    # timeout machinery itself.
    turbulent = stats.timeouts + stats.pool_breaks + stats.retries > 0
    report.add(
        "sweep under chaos",
        chaotic == clean and turbulent,
        f"payloads {'identical' if chaotic == clean else 'DIVERGED'} "
        f"after {survived}",
    )

    # 2. kill + resume: only unfinished tasks re-execute.
    say("[chaos] sweep kill + --resume cycle ...")
    run_id = "chaos-resume"
    abort_after = max(1, len(keys) // 3)
    killer = Supervisor(
        policy=policy, run_id=run_id, runs_dir=runs_root,
        chaos=ChaosSpec(seed=seed, abort_after=abort_after),
    )
    aborted = False
    try:
        with supervision(killer):
            _sweep_payloads(sample, duration, seed, schemes, jobs)
    except ExecutionAborted:
        aborted = True
    journals = _journal_files(runs_root / run_id)
    done_before = sum(count_journal_entries(path) for path in journals)
    resumer = Supervisor(
        policy=policy, run_id=run_id, runs_dir=runs_root, resume=True
    )
    with supervision(resumer):
        resumed = _sweep_payloads(sample, duration, seed, schemes, jobs)
    ok = (
        aborted
        and resumed == clean
        and resumer.report.resume_skips == done_before
        and resumer.report.completed == len(keys) - done_before
    )
    report.add(
        "sweep kill+resume",
        ok,
        f"aborted after {done_before}/{len(keys)} journaled tasks; resume "
        f"skipped {resumer.report.resume_skips}, re-executed "
        f"{resumer.report.completed}, payloads "
        f"{'identical' if resumed == clean else 'DIVERGED'}",
    )

    # 3. corrupted + truncated journal: damaged entries re-execute.
    say("[chaos] corrupting the finished journal, resuming again ...")
    journal_path = journals[0] if journals else None
    if journal_path is None:
        report.add("corrupt journal", False, "no journal file found")
    else:
        corrupt_journal_entry(journal_path, entry_index=0)
        truncate_journal(journal_path, keep_entries=max(1, done_before),
                         partial=True)
        repair = Supervisor(
            policy=policy, run_id=run_id, runs_dir=runs_root, resume=True
        )
        with supervision(repair):
            healed = _sweep_payloads(sample, duration, seed, schemes, jobs)
        report.add(
            "corrupt journal",
            healed == clean and repair.report.completed >= 1
            and repair.report.journal_corrupt_entries >= 1,
            f"replay skipped {repair.report.journal_corrupt_entries} corrupt "
            f"entries ({repair.report.journal_truncated_lines} truncated), "
            f"re-executed {repair.report.completed}, payloads "
            f"{'identical' if healed == clean else 'DIVERGED'}",
        )

        # 4. schema mismatch is rejected, never replayed.
        break_journal_schema(journal_path)
        rejecter = Supervisor(
            policy=policy, run_id=run_id, runs_dir=runs_root, resume=True
        )
        try:
            with supervision(rejecter):
                _sweep_payloads(sample, duration, seed, schemes, jobs)
        except JournalError as exc:
            report.add("schema rejection", True, f"rejected cleanly: {exc}")
        else:
            report.add(
                "schema rejection", False,
                "wrong-schema journal was silently accepted",
            )


def _chaos_campaign_section(
    report: ChaosReport,
    say: Callable[[str], None],
    runs_root: Path,
    policy: ResiliencePolicy,
    seed: int,
    crash_rate: float,
    lost_rate: float,
    jobs: int,
) -> None:
    from repro.faults.campaign import CampaignConfig

    config = CampaignConfig(
        seed=seed, trials=1,
        attacks=("data_bitflip", "counter_tamper", "mac_delete"),
    )
    say("[chaos] clean serial campaign slice ...")
    clean = _campaign_json(config, jobs=1)
    say(f"[chaos] supervised campaign: crash_rate={crash_rate} ...")
    chaos = ChaosSpec(seed=seed + 1, crash_rate=crash_rate,
                      lost_rate=lost_rate)
    supervisor = Supervisor(policy=policy, chaos=chaos)
    with supervision(supervisor):
        chaotic = _campaign_json(config, jobs=jobs)
    stats = supervisor.report
    report.add(
        "campaign under chaos",
        chaotic == clean,
        f"payloads {'identical' if chaotic == clean else 'DIVERGED'} after "
        f"{stats.retries} retries, {stats.pool_breaks} pool breaks",
    )


# ----------------------------------------------------------------------
# Fabric chaos: multi-claimant races against the lease protocol
# ----------------------------------------------------------------------

#: Lease TTL for chaos stories: short enough that a "stall" (sleeps
#: ``1.6 * ttl``) resolves in seconds, long enough that honest workers
#: never expire under load.
FABRIC_CHAOS_TTL = 6.0


def _campaign_config(seed: int):
    from repro.faults.campaign import CampaignConfig

    return CampaignConfig(
        seed=seed, trials=1,
        attacks=("data_bitflip", "counter_tamper", "mac_delete"),
    )


def _fabric_campaign(
    config,
    runs_dir: Path,
    workers: int,
    seed: int,
    chaos: Optional[FabricChaosSpec] = None,
    wall_timeout: float = 240.0,
) -> Tuple[str, "Supervisor"]:
    """One fabric-backed campaign; returns ``(json, supervisor)``."""
    supervisor = Supervisor(
        runs_dir=runs_dir,
        fabric_workers=workers,
        lease_ttl=FABRIC_CHAOS_TTL,
        fabric_wall_timeout=wall_timeout,
        chaos=chaos,
    )
    with supervision(supervisor):
        payload = _campaign_json(config, jobs=workers)
    return payload, supervisor


def run_fabric_chaos(
    seed: int = 0,
    crash_rate: float = 0.2,
    workers: int = 3,
    runs_dir: Optional[Path] = None,
    echo: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """The fabric chaos story: multi-claimant races, asserted byte-equal.

    Sections (all against the same shared store under ``runs_dir``):

    1. **fabric parity** -- an N-worker leased campaign must be
       byte-identical to the clean serial run, with every cell executed
       through a claimed lease.
    2. **multi-claimant races** -- seeded ``die_after_claim`` /
       ``stall`` / ``tear_result`` sabotage plus a coordinator-side
       SIGKILL of a live worker; parity must hold and at least one
       expired lease must be stolen by a surviving claimant.
    3. **stale-heartbeat resurrection** -- implied by the ``stall``
       faults of section 2: a stalled worker's late commit must lose
       the content-addressed store race without corrupting the blob
       (checked via torn-result and parity accounting).
    4. **warm-store reuse** -- an identical re-run (fresh run id, same
       store) must reuse >= 90% of cells without claiming leases.
    """
    report = ChaosReport()
    say = echo or (lambda _line: None)
    cleanup = runs_dir is None
    runs_root = Path(
        runs_dir if runs_dir is not None
        else tempfile.mkdtemp(prefix="repro-fabric-chaos-")
    )
    config = _campaign_config(seed)
    try:
        say("[chaos] clean serial campaign baseline ...")
        clean = _campaign_json(config, jobs=1)

        # 1. honest N-worker fabric run: byte parity, leased end to end.
        say(f"[chaos] fabric campaign: {workers} workers, no faults ...")
        payload, sup = _fabric_campaign(
            config, runs_root / "calm", workers, seed
        )
        stats = sup.report
        report.add(
            "fabric parity",
            payload == clean and stats.lease_claims > 0
            and stats.result_reuses == 0,
            f"payloads {'identical' if payload == clean else 'DIVERGED'}; "
            f"{stats.lease_claims} leases claimed across {workers} workers",
        )

        # 2. multi-claimant races: worker deaths, stalls past TTL, torn
        # blobs, plus one coordinator-side SIGKILL mid-run.
        say(
            f"[chaos] fabric races: die_rate={crash_rate} "
            f"stall/tear={crash_rate / 2:.2f} + 1 SIGKILL ..."
        )
        chaos = FabricChaosSpec(
            seed=seed,
            die_rate=crash_rate,
            stall_rate=crash_rate / 2,
            tear_rate=crash_rate / 2,
            kill_worker_after=2,
        )
        raced, rsup = _fabric_campaign(
            config, runs_root / "races", workers, seed, chaos=chaos
        )
        rstats = rsup.report
        turbulence = (
            rstats.lease_steals + rstats.worker_deaths + rstats.torn_results
        )
        report.add(
            "fabric multi-claimant races",
            raced == clean and rstats.lease_steals >= 1,
            f"payloads {'identical' if raced == clean else 'DIVERGED'} after "
            f"{rstats.lease_steals} lease steals, "
            f"{rstats.worker_deaths} worker deaths "
            f"({rstats.worker_respawns} respawns), "
            f"{rstats.torn_results} torn results healed",
        )
        report.add(
            "fabric turbulence observed",
            turbulence >= 2,
            f"{turbulence} injected faults survived "
            f"(steals+deaths+torn >= 2 expected at "
            f"crash_rate={crash_rate})",
        )

        # 4. warm store: identical re-run reuses instead of re-executing.
        say("[chaos] warm-store re-run (fresh run id, same store) ...")
        warm, wsup = _fabric_campaign(
            config, runs_root / "races", workers, seed
        )
        wstats = wsup.report
        total = wstats.result_reuses + wstats.completed
        reuse_frac = wstats.result_reuses / total if total else 0.0
        report.add(
            "fabric warm-store reuse",
            warm == clean and reuse_frac >= 0.9,
            f"reused {wstats.result_reuses}/{total} cells "
            f"({reuse_frac:.0%}); payloads "
            f"{'identical' if warm == clean else 'DIVERGED'}",
        )
    finally:
        if cleanup:
            shutil.rmtree(runs_root, ignore_errors=True)
    return report
