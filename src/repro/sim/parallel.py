"""Parallel fan-out of independent (scenario, scheme) simulations.

Every cell of a sweep -- one scenario replayed under one protection
scheme -- is completely independent of every other cell, so sweeps,
figure drivers and fault campaigns parallelize embarrassingly across
processes.  This module is the one place that knows how:

* **SlimRunResult** -- the picklable payload that crosses the worker
  pipe.  Live :class:`~repro.sim.soc.RunResult` objects carry the
  scheme itself (whose metrics registry binds closures and is therefore
  unpicklable); the slim twin captures the derived scalars instead and
  shares the whole read API through :class:`~repro.sim.soc.ResultView`,
  so serial and parallel callers render byte-identical output.
* **Shared-trace chunking** -- traces are built once per scenario in
  the parent and shipped to workers, never regenerated per scheme; a
  scenario's scheme list is split into contiguous chunks only when
  there are fewer scenarios than workers.
* **Ordered reduce** -- worker outputs are reassembled in submission
  order (scenario order, then scheme order), so results are
  byte-identical to a serial run regardless of completion order.
* **Graceful serial fallback** -- ``jobs<=1``, a single task, or *any*
  pool/pickling failure falls back to running the same pure functions
  in-process; results are identical either way.

``jobs`` semantics everywhere in the library: ``None`` means "consult
``REPRO_JOBS``, else stay serial" (back-compatible); the CLI layer
defaults to :func:`default_jobs` (``REPRO_JOBS`` else CPU count).
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar, Union

from repro.common.config import SoCConfig
from repro.mem.channel import ChannelStats
from repro.sim.runner import _run_schemes_over_traces, sim_duration
from repro.sim.scenario import Scenario
from repro.sim.soc import DeviceResult, ResultView, RunResult
from repro.workloads.generator import Trace

logger = logging.getLogger("repro.parallel")

T = TypeVar("T")
R = TypeVar("R")

#: Anything a caller may treat as "the result of one (scenario, scheme)
#: run": live when produced in-process, slim when it crossed a pipe.
AnyRunResult = Union[RunResult, "SlimRunResult"]


# ----------------------------------------------------------------------
# Job-count resolution
# ----------------------------------------------------------------------

def _env_jobs() -> Optional[int]:
    raw = os.environ.get("REPRO_JOBS")
    if raw is None or not raw.strip():
        return None
    return max(1, int(raw))


def resolve_jobs(jobs: Optional[int]) -> int:
    """Effective worker count for a library call.

    ``None`` (the default everywhere) resolves to ``REPRO_JOBS`` when
    set and to ``1`` otherwise, so existing callers keep their serial
    behaviour unless the environment opts in.
    """
    if jobs is not None:
        return max(1, int(jobs))
    return _env_jobs() or 1


def default_jobs() -> int:
    """CLI default: ``REPRO_JOBS`` if set, else the machine's CPU count."""
    env = _env_jobs()
    if env is not None:
        return env
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# The picklable result payload
# ----------------------------------------------------------------------

@dataclass
class SlimRunResult(ResultView):
    """Picklable twin of :class:`~repro.sim.soc.RunResult`.

    Carries per-device results, channel statistics, the metrics
    snapshot and the two scheme-derived scalars -- everything the
    figures, tables and ``--json`` payloads consume -- but *not* the
    live scheme/observability objects, which cannot cross a process
    boundary.  Callers that need ``result.scheme`` (switch accounting,
    granularity histograms) must run serially.
    """

    scheme_name: str
    devices: List[DeviceResult]
    channel: ChannelStats
    total_traffic_bytes: int
    security_cache_misses: int
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Execution tier that produced the run ("scalar" or "fast").
    engine: str = "scalar"


def slim_result(result: AnyRunResult) -> "SlimRunResult":
    """Capture a picklable snapshot of a run result (idempotent)."""
    if isinstance(result, SlimRunResult):
        return result
    return SlimRunResult(
        scheme_name=result.scheme_name,
        devices=list(result.devices),
        channel=result.channel,
        total_traffic_bytes=result.total_traffic_bytes,
        security_cache_misses=result.security_cache_misses,
        metrics=dict(result.metrics),
        engine=getattr(result, "engine", "scalar"),
    )


# ----------------------------------------------------------------------
# Ordered parallel map with serial fallback
# ----------------------------------------------------------------------

def _infrastructure_failure(exc: BaseException) -> bool:
    """Pool/pickling plumbing failures, as opposed to task logic errors.

    ``BrokenExecutor`` covers dead workers and fork refusal; pickling
    failures surface as :class:`pickle.PicklingError` or -- depending
    on what exactly refused to serialize -- as a ``TypeError`` or
    ``AttributeError`` whose message names pickling (a heuristic, but
    the cost of a miss is only a serial rerun of pure functions).
    """
    import pickle
    from concurrent.futures import BrokenExecutor

    if isinstance(exc, (BrokenExecutor, OSError, pickle.PicklingError)):
        return True
    return (
        isinstance(exc, (TypeError, AttributeError))
        and "pickle" in str(exc).lower()
    )


def map_ordered(
    fn: Callable[[T], R], items: Sequence[T], jobs: Optional[int] = None
) -> List[R]:
    """``[fn(x) for x in items]`` fanned out over processes.

    Results come back in input order no matter which worker finishes
    first.  ``fn`` must be a module-level *pure* function over
    picklable arguments returning picklable values.

    Failure semantics: only pool-infrastructure failures (broken
    workers, fork refusal, unpicklable payloads) fall back to rerunning
    the map serially in-process -- with a one-line warning, never
    silently.  An exception raised by ``fn`` itself is a task bug and
    re-raises immediately; replaying a deterministic error serially
    would re-execute every side effect and disguise the bug as a slow
    pass.  For per-task timeouts, retries and checkpoint/resume use
    :func:`repro.sim.resilient.supervised_map` instead.
    """
    items = list(items)
    workers = min(resolve_jobs(jobs), len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            chunksize = max(1, len(items) // (workers * 4))
            return list(pool.map(fn, items, chunksize=chunksize))
    except Exception as exc:
        if not _infrastructure_failure(exc):
            raise  # deterministic task error: fail fast, no serial replay
        logger.warning(
            "parallel map failed with %s: %s; rerunning %d tasks serially",
            type(exc).__name__, exc, len(items),
        )
        return [fn(item) for item in items]


# ----------------------------------------------------------------------
# Scenario/scheme fan-out
# ----------------------------------------------------------------------

#: One unit of worker work: schemes ``names`` replayed over the
#: already-built ``traces`` of one scenario.
_ChunkTask = Tuple[Tuple[Trace, ...], int, Tuple[str, ...], SoCConfig, bool]


def _run_chunk(task: _ChunkTask) -> List[Tuple[str, SlimRunResult]]:
    """Worker body: run one scheme chunk over shared traces."""
    traces, footprint, names, config, warmup = task
    results = _run_schemes_over_traces(
        list(traces), footprint, names, config, warmup
    )
    return [(name, slim_result(results[name])) for name in names]


def _scheme_chunks(
    names: Sequence[str], parts: int
) -> List[Tuple[str, ...]]:
    """Split a scheme list into ``parts`` contiguous near-equal chunks."""
    parts = max(1, min(parts, len(names)))
    size, extra = divmod(len(names), parts)
    chunks: List[Tuple[str, ...]] = []
    start = 0
    for i in range(parts):
        width = size + (1 if i < extra else 0)
        chunks.append(tuple(names[start:start + width]))
        start += width
    return chunks


def _chunks_per_scenario(n_scenarios: int, workers: int) -> int:
    if n_scenarios and workers > n_scenarios:
        return -(-workers // n_scenarios)  # ceil
    return 1


def _task_key(index: int, scenario_name: str, chunk: Sequence[str]) -> str:
    """Stable journal/event key of one (scenario, scheme-chunk) task."""
    return f"{index:03d}:{scenario_name}:{'+'.join(chunk)}"


def sweep_task_keys(
    scenarios: Sequence[Scenario],
    scheme_names: Sequence[str],
    jobs: Optional[int] = None,
) -> List[str]:
    """The task keys :func:`run_scenarios` will journal for this sweep.

    Exposed so the chaos harness can target specific tasks (e.g. hang
    exactly one) and tests can count journal entries without rerunning
    the key derivation by hand.  Keys depend on the chunking and hence
    on ``jobs``; a journal written at one worker count cannot be
    resumed at another (the journal header enforces this).
    """
    workers = resolve_jobs(jobs)
    per_scenario = _chunks_per_scenario(len(scenarios), workers)
    keys: List[str] = []
    for index, scenario in enumerate(scenarios):
        for chunk in _scheme_chunks(list(scheme_names), per_scenario):
            keys.append(_task_key(index, scenario.name, chunk))
    return keys


def _execute_tasks(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    keys: Sequence[str],
    kind: str,
    context: str,
    jobs: Optional[int],
) -> List[R]:
    """Route a fan-out through the ambient supervisor (or legacy map).

    The supervised engine is the default; ``REPRO_EXEC=plain`` opts
    back into the bare ``pool.map`` path (the CI overhead gate measures
    the two back to back).
    """
    from repro.sim import resilient  # lazy: resilient imports resolve_jobs

    supervisor = resilient.current_supervisor()
    if supervisor is None:
        return map_ordered(fn, tasks, jobs=jobs)
    return supervisor.map(
        fn, tasks, keys=keys, kind=kind, context=context, jobs=jobs
    )


def run_scenarios(
    scenarios: Sequence[Scenario],
    scheme_names: Sequence[str],
    config: Optional[SoCConfig] = None,
    duration_cycles: Optional[float] = None,
    seed: int = 0,
    warmup: bool = True,
    jobs: Optional[int] = None,
) -> List[Tuple[Scenario, Dict[str, AnyRunResult]]]:
    """Fan a scenario x scheme cross-product out over worker processes.

    Traces are built once per scenario *in the parent* (sharing them
    across that scenario's schemes, exactly like the serial runner) and
    shipped to workers.  When there are at least as many scenarios as
    workers each task is one whole scenario; otherwise each scenario's
    scheme list is split into contiguous chunks so all workers stay
    busy even for a single-scenario call.

    The reduce is ordered: the returned list follows ``scenarios`` and
    each result dict follows ``scheme_names``, so output is
    byte-identical to :func:`repro.sim.runner.run_many` -- the parity
    suite in ``tests/test_parallel_parity.py`` asserts this.
    """
    config = config or SoCConfig()
    duration = duration_cycles if duration_cycles is not None else sim_duration()
    workers = resolve_jobs(jobs)
    scheme_names = list(scheme_names)

    built = [scenario.build_traces(duration, seed) for scenario in scenarios]
    chunks_per_scenario = _chunks_per_scenario(len(scenarios), workers)
    tasks: List[_ChunkTask] = []
    keys: List[str] = []
    shape: List[int] = []  # chunks per scenario, for the reduce
    for index, ((traces, footprint), scenario) in enumerate(
        zip(built, scenarios)
    ):
        chunks = _scheme_chunks(scheme_names, chunks_per_scenario)
        shape.append(len(chunks))
        for chunk in chunks:
            tasks.append((tuple(traces), footprint, chunk, config, warmup))
            keys.append(_task_key(index, scenario.name, chunk))

    context = "|".join(
        [
            "sweep",
            ",".join(scenario.name for scenario in scenarios),
            ",".join(scheme_names),
            f"duration={duration}",
            f"seed={seed}",
            f"warmup={warmup}",
            f"config={config!r}",
        ]
    )
    chunk_results = _execute_tasks(
        _run_chunk, tasks, keys, "sweep", context, workers
    )

    out: List[Tuple[Scenario, Dict[str, AnyRunResult]]] = []
    cursor = 0
    for scenario, count in zip(scenarios, shape):
        merged: Dict[str, AnyRunResult] = {}
        for chunk_result in chunk_results[cursor:cursor + count]:
            merged.update(chunk_result)
        cursor += count
        # Reassemble in scheme_names order regardless of chunking.
        out.append((scenario, {name: merged[name] for name in scheme_names}))
    return out


def run_schemes_parallel(
    traces: Sequence[Trace],
    footprint: int,
    scheme_names: Sequence[str],
    config: SoCConfig,
    warmup: bool,
    jobs: int,
) -> Dict[str, AnyRunResult]:
    """Single-scenario fan-out used by ``run_scenario(jobs=N)``."""
    scheme_names = list(scheme_names)
    chunks = _scheme_chunks(scheme_names, jobs)
    tasks: List[_ChunkTask] = [
        (tuple(traces), footprint, chunk, config, warmup) for chunk in chunks
    ]
    keys = [_task_key(0, "scenario", chunk) for chunk in chunks]
    context = "|".join(
        [
            "scenario",
            ",".join(scheme_names),
            f"traces={len(traces)}",
            f"footprint={footprint}",
            f"warmup={warmup}",
            f"config={config!r}",
        ]
    )
    merged: Dict[str, AnyRunResult] = {}
    for chunk_result in _execute_tasks(
        _run_chunk, tasks, keys, "scenario", context, jobs
    ):
        merged.update(chunk_result)
    return {name: merged[name] for name in scheme_names}
