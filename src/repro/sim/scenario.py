"""Scenario assembly: the paper's 250 Orin scenarios and Sec.-5.5 pipelines.

A scenario is one CPU workload + one GPU workload + two NPU workloads
running concurrently (5 x 5 x C(4+2-1, 2) = 250 combinations).  Each
device gets its own chunk-aligned slice of the protected address space;
pipeline scenarios (Table 6) deliberately overlap producer/consumer
slices to model staged data movement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.address import align_up
from repro.common.constants import CHUNK_BYTES
from repro.common.errors import ConfigError
from repro.workloads.generator import Trace, generate_trace
from repro.workloads.registry import (
    CPU_WORKLOADS,
    GPU_WORKLOADS,
    NPU_WORKLOADS,
    get_workload,
)

#: Default per-device compute duration of one simulation (reference cycles).
DEFAULT_DURATION_CYCLES = 40_000.0


@dataclass(frozen=True)
class Scenario:
    """One heterogeneous workload combination.

    ``overlaps`` lists (producer_index, consumer_index, bytes) triples:
    the consumer's slice is placed to share ``bytes`` with the
    producer's, modeling pipeline buffers (Sec. 5.5).
    """

    name: str
    workload_names: Tuple[str, ...]
    overlaps: Tuple[Tuple[int, int, int], ...] = ()

    def specs(self):
        """Workload specs of this scenario, in device order."""
        return [get_workload(name) for name in self.workload_names]

    def build_traces(
        self,
        duration_cycles: float = DEFAULT_DURATION_CYCLES,
        seed: int = 0,
    ) -> Tuple[List[Trace], int]:
        """Generate all device traces; return (traces, footprint span)."""
        specs = self.specs()
        bases = self._allocate(specs)
        traces = [
            generate_trace(spec, duration_cycles, base_addr=base, seed=seed + i)
            for i, (spec, base) in enumerate(zip(specs, bases))
        ]
        footprint = max(trace.max_addr for trace in traces)
        return traces, footprint

    def _allocate(self, specs) -> List[int]:
        overlap_of: Dict[int, Tuple[int, int]] = {
            consumer: (producer, amount)
            for producer, consumer, amount in self.overlaps
        }
        bases: List[Optional[int]] = [None] * len(specs)
        cursor = 0
        for index, spec in enumerate(specs):
            if index in overlap_of:
                producer, amount = overlap_of[index]
                if bases[producer] is None:
                    raise ConfigError(
                        f"{self.name}: overlap consumer {index} precedes "
                        f"producer {producer}"
                    )
                producer_end = bases[producer] + specs[producer].footprint_bytes
                base = align_up(max(0, producer_end - amount), CHUNK_BYTES)
            else:
                base = cursor
            bases[index] = base
            cursor = max(cursor, align_up(base + spec.footprint_bytes, CHUNK_BYTES))
        return [b for b in bases if b is not None]


def make_scenario(
    name: str, cpu: str, gpu: str, npu0: str, npu1: str
) -> Scenario:
    """Standard 4-device Orin scenario (1 CPU, 1 GPU, 2 NPUs)."""
    return Scenario(name=name, workload_names=(cpu, gpu, npu0, npu1))


def all_scenarios() -> List[Scenario]:
    """The full 250-scenario sweep of Sec. 5.1."""
    scenarios = []
    npu_pairs = list(itertools.combinations_with_replacement(NPU_WORKLOADS, 2))
    for cpu in CPU_WORKLOADS:
        for gpu in GPU_WORKLOADS:
            for npu0, npu1 in npu_pairs:
                scenarios.append(
                    make_scenario(
                        f"{cpu}+{gpu}+{npu0}+{npu1}", cpu, gpu, npu0, npu1
                    )
                )
    return scenarios


#: The 11 hand-picked scenarios of Table 4 (Sec. 5.4 analysis).
SELECTED_SCENARIOS: Tuple[Scenario, ...] = (
    make_scenario("ff1", "bw", "syr2k", "ncf", "dlrm"),
    make_scenario("ff2", "mcf", "syr2k", "sfrnn", "dlrm"),
    make_scenario("ff3", "gcc", "floyd", "sfrnn", "ncf"),
    make_scenario("f1", "xal", "pr", "sfrnn", "ncf"),
    make_scenario("f2", "xal", "pr", "ncf", "ncf"),
    make_scenario("c1", "gcc", "sten", "alex", "dlrm"),
    make_scenario("c2", "bw", "sten", "ncf", "ncf"),
    make_scenario("c3", "mcf", "sten", "sfrnn", "sfrnn"),
    make_scenario("cc1", "xal", "mm", "alex", "dlrm"),
    make_scenario("cc2", "ray", "mm", "alex", "alex"),
    make_scenario("cc3", "ray", "floyd", "alex", "alex"),
)

#: Scenario groups used by Fig. 19/20 (order matters for the figures).
SELECTED_GROUPS: Dict[str, Tuple[str, ...]] = {
    "ff": ("ff1", "ff2", "ff3"),
    "f": ("f1", "f2"),
    "c": ("c1", "c2", "c3"),
    "cc": ("cc1", "cc2", "cc3"),
}

_MB = 1024 * 1024

#: Real-world pipelines of Table 6 (Sec. 5.5).  Device order is the
#: pipeline order; each consumer overlaps its producer's slice by 4MB
#: (the inter-stage buffer).
REALWORLD_SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(
        name="finance",
        workload_names=("pr", "mcf", "dlrm"),
        overlaps=((0, 1, 4 * _MB), (1, 2, 4 * _MB)),
    ),
    Scenario(
        name="autodrive",
        workload_names=("sten", "yt", "sc"),
        overlaps=((0, 1, 4 * _MB), (1, 2, 4 * _MB)),
    ),
)


def selected_scenario(name: str) -> Scenario:
    """Look up one of the 11 Table-4 scenarios by name (e.g. "cc1")."""
    for scenario in SELECTED_SCENARIOS:
        if scenario.name == name:
            return scenario
    raise ConfigError(f"unknown selected scenario {name!r}")
