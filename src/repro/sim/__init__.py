"""Heterogeneous SoC simulation: scenarios, event loop, runners, metrics."""

from repro.sim import metrics

from repro.sim.parallel import (
    SlimRunResult,
    default_jobs,
    map_ordered,
    resolve_jobs,
    run_scenarios,
    slim_result,
)
from repro.sim.runner import (
    best_static_granularities,
    best_static_granularity,
    run_many,
    run_scenario,
    sim_duration,
    sweep_scenarios,
)
from repro.sim.scenario import (
    DEFAULT_DURATION_CYCLES,
    REALWORLD_SCENARIOS,
    SELECTED_GROUPS,
    SELECTED_SCENARIOS,
    Scenario,
    all_scenarios,
    make_scenario,
    selected_scenario,
)
from repro.sim.soc import (
    DeviceResult,
    ResultView,
    RunResult,
    device_config_for,
    simulate,
)

__all__ = [
    "metrics",
    "SlimRunResult",
    "default_jobs",
    "map_ordered",
    "resolve_jobs",
    "run_scenarios",
    "slim_result",
    "best_static_granularities",
    "best_static_granularity",
    "run_many",
    "run_scenario",
    "sim_duration",
    "sweep_scenarios",
    "DEFAULT_DURATION_CYCLES",
    "REALWORLD_SCENARIOS",
    "SELECTED_GROUPS",
    "SELECTED_SCENARIOS",
    "Scenario",
    "all_scenarios",
    "make_scenario",
    "selected_scenario",
    "DeviceResult",
    "ResultView",
    "RunResult",
    "device_config_for",
    "simulate",
]
