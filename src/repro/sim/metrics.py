"""Result aggregation: the quantities the paper's figures report.

Helpers for turning ``{scheme: RunResult}`` maps and scenario sweeps
into the normalized series of Figs. 15-21: per-scheme means, per-group
gains, per-device-class aggregation, and paired scheme comparisons.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.common.stats import geomean, mean
from repro.common.types import DeviceKind
from repro.sim.scenario import SELECTED_GROUPS, Scenario
from repro.sim.soc import RunResult


def normalized(runs: Mapping[str, RunResult], scheme: str) -> float:
    """Mean normalized execution time of one scheme vs ``unsecure``."""
    return runs[scheme].mean_normalized_exec_time(runs["unsecure"])


def overhead(runs: Mapping[str, RunResult], scheme: str) -> float:
    """Protection overhead (normalized time minus one)."""
    return normalized(runs, scheme) - 1.0


def gain(runs: Mapping[str, RunResult], scheme: str, over: str) -> float:
    """Relative execution-time reduction of ``scheme`` vs ``over``."""
    reference = normalized(runs, over)
    if reference <= 0:
        return 0.0
    return (reference - normalized(runs, scheme)) / reference


def scenario_group(scenario: Scenario) -> str:
    """ff/f/c/cc group of a selected scenario ('-' if not selected)."""
    for group, names in SELECTED_GROUPS.items():
        if scenario.name in names:
            return group
    return "-"


def group_gains(
    results: Iterable[Tuple[Scenario, Mapping[str, RunResult]]],
    scheme: str = "ours",
    over: str = "conventional",
) -> Dict[str, float]:
    """Mean gain per selected-scenario group (Fig. 19's gradient)."""
    per_group: Dict[str, List[float]] = {}
    for scenario, runs in results:
        per_group.setdefault(scenario_group(scenario), []).append(
            gain(runs, scheme, over)
        )
    return {group: mean(values) for group, values in per_group.items()}


def device_class_normalized(
    runs: Mapping[str, RunResult], scheme: str
) -> Dict[DeviceKind, float]:
    """Mean normalized execution time per device class (Fig. 19 (c))."""
    base = runs["unsecure"]
    times = runs[scheme].normalized_exec_times(base)
    per_kind: Dict[DeviceKind, List[float]] = {}
    for device, value in zip(base.devices, times):
        per_kind.setdefault(device.kind, []).append(value)
    return {kind: mean(values) for kind, values in per_kind.items()}


def sweep_summary(
    results: Sequence[Tuple[Scenario, Mapping[str, RunResult]]],
    schemes: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """Mean/geomean normalized time and traffic share per scheme."""
    summary: Dict[str, Dict[str, float]] = {}
    for scheme in schemes:
        norms = [normalized(runs, scheme) for _, runs in results]
        traffic = [
            runs[scheme].total_traffic_bytes
            / max(1, runs["unsecure"].total_traffic_bytes)
            for _, runs in results
        ]
        summary[scheme] = {
            "mean": mean(norms),
            "geomean": geomean(norms),
            "traffic_vs_unsecure": mean(traffic),
        }
    return summary
