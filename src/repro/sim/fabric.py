"""Distributed campaign fabric: leased work-queue + result store.

:mod:`repro.sim.resilient` supervises a fan-out from *one* parent over
*one* process pool -- a single point of failure and a single host's
worth of throughput.  This module generalizes that executor into a
small fabric suitable for million-cell campaigns:

* **Task spool** -- every task of a fan-out is serialized once into
  ``<run-dir>/fabric/<queue-id>/queue/`` as a self-describing
  ``repro-task/v1`` file, so any Python process with this tree on its
  path (``python -m repro fabric worker``) can execute it.
* **Lease protocol** (``repro-lease/v1``) -- workers claim a task by
  atomically creating ``leases/<digest>.json`` (``O_CREAT|O_EXCL``),
  heartbeat it while executing, and release it on commit.  A lease
  whose deadline passed is *expired*: any worker may steal it with an
  atomic replace-and-verify, so a worker SIGKILLed mid-lease costs one
  lease TTL, never the run.
* **Content-addressed result store** -- results commit by atomic
  ``link`` into ``<runs-dir>/store/<digest[:2]>/<digest>.json`` keyed
  by the *task payload digest* (kind, context, key, function), so the
  first committed result wins (at-most-once commit), duplicate
  executions after a steal are harmless, torn files fail their
  embedded digest and self-heal, and an identical re-run -- even under
  a different run id -- reuses finished cells instead of recomputing
  them.
* **Idempotent replay** -- the coordinator's reduce loads blobs in
  task order, so a fabric run is byte-identical to a clean serial run
  no matter which worker finished which cell, how many died, or how
  many runs warmed the store first.

Every lease transition is appended to the queue's shared journal
(single ``O_APPEND`` line writes) and surfaces through
:mod:`repro.obs` as ``LEASE_CLAIM`` / ``LEASE_EXPIRE`` /
``LEASE_STEAL`` / ``RESULT_REUSE`` events and ``resilience`` counters.
``docs/fabric.md`` documents the lease lifecycle, the store layout and
the failure matrix; ``repro.faults.exec_chaos`` drives the
multi-claimant races (double claim, kill between claim and commit,
stale-heartbeat resurrection, torn results) that prove the
byte-parity contract.
"""

from __future__ import annotations

import base64
import hashlib
import json
import logging
import os
import pickle
import signal
import threading
import time
import traceback
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs import EventType

logger = logging.getLogger("repro.fabric")

#: Lease-protocol schema; bump on any incompatible change.
LEASE_SCHEMA = "repro-lease/v1"
#: Spooled-task schema.
TASK_SCHEMA = "repro-task/v1"
#: Committed-result schema.
RESULT_SCHEMA = "repro-result/v1"

#: Seconds a claimed lease stays valid without a heartbeat.
DEFAULT_LEASE_TTL = 30.0
#: Idle-poll interval of a worker waiting for claimable work.
_POLL_SECONDS = 0.05
#: Fabric counters pre-declared at zero in the ``resilience`` group.
FABRIC_COUNTERS = (
    "lease_claim",
    "lease_expire",
    "lease_steal",
    "result_reuse",
)


class FabricError(RuntimeError):
    """The fabric run cannot proceed (bad queue, unfinishable tasks)."""


class TaskFailed(FabricError):
    """A task failed deterministically on every claimant."""


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _fn_ref(fn: Callable) -> str:
    return f"{fn.__module__}:{fn.__qualname__}"


def task_digest(kind: str, context: str, key: str, fn: Callable) -> str:
    """Content address of one task: what it runs, on what, under what.

    Deliberately independent of the run id and the worker count for
    kinds whose keys are (campaign cells), so a warm store serves any
    later run of the same cells.
    """
    return _digest(
        "|".join([TASK_SCHEMA, kind, _digest(context), key, _fn_ref(fn)])
    )


def _atomic_write(path: Path, data: str) -> None:
    """Write-then-rename so readers never observe a partial file."""
    tmp = path.with_name(f".{path.name}.{uuid.uuid4().hex[:8]}.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# Content-addressed result store
# ----------------------------------------------------------------------

class ResultStore:
    """Immutable blobs keyed by task digest, committed at-most-once.

    A blob is one JSON envelope::

        {"schema": "repro-result/v1", "task": <digest>, "key": ...,
         "payload": <b64 pickle>, "digest": <sha256 of payload>,
         "worker": ..., "error": null | {...}}

    Commit writes a private temp file, fsyncs it, then ``os.link``\\ s
    it to the final path -- an atomic create-if-absent, so exactly one
    claimant's bytes land no matter how many raced.  A blob that fails
    validation (torn write, flipped bytes) reads as *absent*; the next
    committer unlinks it and retries the link once, so damage heals on
    the next execution instead of wedging the queue.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)

    def path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def _envelope(
        self,
        digest: str,
        key: str,
        value: object,
        worker: str,
        error: Optional[Dict[str, str]],
    ) -> str:
        payload = base64.b64encode(
            pickle.dumps(value, protocol=4)
        ).decode("ascii")
        return json.dumps(
            {
                "schema": RESULT_SCHEMA,
                "task": digest,
                "key": key,
                "payload": payload,
                "digest": _digest(payload),
                "worker": worker,
                "error": error,
            },
            sort_keys=True,
        )

    def commit(
        self,
        digest: str,
        key: str,
        value: object,
        worker: str = "",
        error: Optional[Dict[str, str]] = None,
    ) -> bool:
        """Durably publish one result; ``True`` iff this call won.

        Losing the race (the blob already exists and validates) is the
        expected fate of a duplicate execution after a lease steal --
        the loser's bytes are discarded unread.
        """
        final = self.path(digest)
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = final.with_name(f".{digest}.{uuid.uuid4().hex[:8]}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(self._envelope(digest, key, value, worker, error))
            handle.flush()
            os.fsync(handle.fileno())
        try:
            for _attempt in (0, 1):
                try:
                    os.link(tmp, final)
                    return True
                except FileExistsError:
                    if self.read_envelope(digest) is not None:
                        return False  # a valid result beat us; defer to it
                    # Torn/corrupt occupant: heal by unlinking and
                    # retrying the link exactly once.
                    try:
                        final.unlink()
                    except FileNotFoundError:
                        pass
            return self.read_envelope(digest) is not None
        finally:
            try:
                tmp.unlink()
            except FileNotFoundError:
                pass

    def read_envelope(self, digest: str) -> Optional[Dict[str, object]]:
        """The validated envelope of ``digest``, or ``None`` if absent,
        torn, or corrupt (an invalid blob is *never* returned)."""
        path = self.path(digest)
        try:
            raw = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return None
        try:
            env = json.loads(raw)
        except json.JSONDecodeError:
            return None
        if not isinstance(env, dict) or env.get("schema") != RESULT_SCHEMA:
            return None
        if env.get("task") != digest:
            return None
        payload = env.get("payload")
        if not isinstance(payload, str) or _digest(payload) != env.get("digest"):
            return None
        return env

    def has(self, digest: str) -> bool:
        return self.read_envelope(digest) is not None

    def load(self, digest: str) -> Tuple[object, Optional[Dict[str, str]]]:
        """``(value, error)`` of a committed blob (raises if absent)."""
        env = self.read_envelope(digest)
        if env is None:
            raise FabricError(f"store has no valid blob for {digest}")
        value = pickle.loads(base64.b64decode(str(env["payload"])))
        error = env.get("error")
        return value, error if isinstance(error, dict) else None

    def discard_invalid(self, digest: str) -> bool:
        """Delete a present-but-invalid blob; ``True`` if one was removed."""
        path = self.path(digest)
        if path.exists() and self.read_envelope(digest) is None:
            try:
                path.unlink()
                return True
            except FileNotFoundError:
                pass
        return False

    def blobs(self) -> Iterator[Path]:
        if not self.root.exists():
            return iter(())
        return iter(sorted(self.root.glob("*/*.json")))


def default_store_dir(runs_dir: os.PathLike) -> Path:
    """The store shared by every run under one runs directory."""
    return Path(runs_dir) / "store"


# ----------------------------------------------------------------------
# Task spool and lease queue
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SpooledTask:
    """One executable unit as read back from the spool."""

    key: str
    digest: str
    fn: Callable
    item: object


@dataclass
class LeaseView:
    """Decoded state of one lease file (for status/steal decisions)."""

    worker: str
    token: str
    attempt: int
    deadline: float

    @property
    def expired(self) -> bool:
        return time.time() > self.deadline


class LeaseQueue:
    """One fan-out's spooled tasks plus their lease files and journal.

    Directory layout (all under ``<run-dir>/fabric/<queue-id>/``)::

        manifest.json      repro-lease/v1 header: kind, context digest,
                           task count, lease TTL, chaos spec
        queue/<digest>.task   spooled repro-task/v1 payloads
        leases/<digest>.json  live leases (absent = unclaimed/released)
        journal.jsonl      append-only lease-event log (O_APPEND lines)

    Claim is ``open(..., 'x')`` -- atomic on a local filesystem.  Steal
    replaces the lease file and *re-reads* it to confirm ownership, so
    two simultaneous stealers resolve to exactly one believing winner;
    the loser's eventual commit is defused by the store's at-most-once
    link.
    """

    def __init__(self, root: os.PathLike, ttl: float = DEFAULT_LEASE_TTL) -> None:
        self.root = Path(root)
        self.ttl = ttl
        self.queue_dir = self.root / "queue"
        self.lease_dir = self.root / "leases"
        self.journal_path = self.root / "journal.jsonl"

    # -- spooling ------------------------------------------------------

    @classmethod
    def create(
        cls,
        root: os.PathLike,
        kind: str,
        context: str,
        tasks: Sequence[Tuple[str, str, Callable, object]],
        ttl: float = DEFAULT_LEASE_TTL,
        chaos=None,
    ) -> "LeaseQueue":
        """Spool ``(key, digest, fn, item)`` tasks under ``root``.

        Re-creating an existing queue is idempotent: already-spooled
        tasks are left in place (their content is digest-addressed), so
        a coordinator restarted after a crash attaches to its own
        spool.
        """
        queue = cls(root, ttl=ttl)
        queue.queue_dir.mkdir(parents=True, exist_ok=True)
        queue.lease_dir.mkdir(parents=True, exist_ok=True)
        for key, digest, fn, item in tasks:
            path = queue.queue_dir / f"{digest}.task"
            if path.exists():
                continue
            body = base64.b64encode(
                pickle.dumps((fn, item), protocol=4)
            ).decode("ascii")
            _atomic_write(
                path,
                json.dumps(
                    {
                        "schema": TASK_SCHEMA,
                        "key": key,
                        "digest": digest,
                        "fn": _fn_ref(fn),
                        "body": body,
                    },
                    sort_keys=True,
                ),
            )
        manifest = {
            "schema": LEASE_SCHEMA,
            "kind": kind,
            "context": _digest(context),
            "total": len(tasks),
            "ttl": ttl,
            "chaos": (
                base64.b64encode(pickle.dumps(chaos, protocol=4)).decode("ascii")
                if chaos is not None
                else None
            ),
        }
        _atomic_write(
            queue.root / "manifest.json", json.dumps(manifest, sort_keys=True)
        )
        return queue

    @classmethod
    def attach(cls, root: os.PathLike) -> "LeaseQueue":
        """Open an existing queue (CLI workers joining a live run)."""
        root = Path(root)
        manifest_path = root / "manifest.json"
        if not manifest_path.exists():
            raise FabricError(f"no fabric queue at {root}")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("schema") != LEASE_SCHEMA:
            raise FabricError(
                f"queue {root} has schema {manifest.get('schema')!r}, "
                f"expected {LEASE_SCHEMA!r}"
            )
        return cls(root, ttl=float(manifest.get("ttl", DEFAULT_LEASE_TTL)))

    def manifest(self) -> Dict[str, object]:
        return json.loads(
            (self.root / "manifest.json").read_text(encoding="utf-8")
        )

    def chaos_spec(self):
        raw = self.manifest().get("chaos")
        if not raw:
            return None
        return pickle.loads(base64.b64decode(str(raw)))

    def tasks(self) -> List[SpooledTask]:
        """Decode every spooled task (deterministic digest order)."""
        out: List[SpooledTask] = []
        for path in sorted(self.queue_dir.glob("*.task")):
            entry = json.loads(path.read_text(encoding="utf-8"))
            fn, item = pickle.loads(base64.b64decode(entry["body"]))
            out.append(
                SpooledTask(
                    key=str(entry["key"]),
                    digest=str(entry["digest"]),
                    fn=fn,
                    item=item,
                )
            )
        return out

    # -- the journal ---------------------------------------------------

    def journal(self, worker: str, event: str, **detail: object) -> None:
        """Append one lease event (atomic single-line O_APPEND write)."""
        line = json.dumps(
            {"ts": time.time(), "worker": worker, "event": event, **detail},
            sort_keys=True,
        )
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def journal_events(self) -> List[Dict[str, object]]:
        if not self.journal_path.exists():
            return []
        events = []
        with open(self.journal_path, encoding="utf-8") as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    events.append(json.loads(raw))
                except json.JSONDecodeError:
                    continue  # torn tail of a killed writer
        return events

    # -- leases --------------------------------------------------------

    def _lease_path(self, digest: str) -> Path:
        return self.lease_dir / f"{digest}.json"

    def _write_lease(
        self, path: Path, worker: str, token: str, attempt: int
    ) -> None:
        _atomic_write(
            path,
            json.dumps(
                {
                    "schema": LEASE_SCHEMA,
                    "worker": worker,
                    "token": token,
                    "attempt": attempt,
                    "deadline": time.time() + self.ttl,
                },
                sort_keys=True,
            ),
        )

    def read_lease(self, digest: str) -> Optional[LeaseView]:
        try:
            raw = self._lease_path(digest).read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return None
        try:
            entry = json.loads(raw)
            return LeaseView(
                worker=str(entry["worker"]),
                token=str(entry["token"]),
                attempt=int(entry["attempt"]),
                deadline=float(entry["deadline"]),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            # A torn lease (killed mid-replace) counts as expired: it
            # can never be heartbeated again.
            return LeaseView(worker="?", token="?", attempt=0, deadline=0.0)

    def claim(
        self, digest: str, worker: str
    ) -> Optional[Tuple[str, int, bool]]:
        """Try to lease ``digest``; ``(token, attempt, stolen)`` on win.

        Fresh claims create the lease file exclusively; an *expired*
        lease is stolen by atomic replace followed by a read-back check
        so racing stealers converge on one winner.
        """
        path = self._lease_path(digest)
        token = uuid.uuid4().hex
        try:
            with open(path, "x", encoding="utf-8") as handle:
                handle.write(
                    json.dumps(
                        {
                            "schema": LEASE_SCHEMA,
                            "worker": worker,
                            "token": token,
                            "attempt": 1,
                            "deadline": time.time() + self.ttl,
                        },
                        sort_keys=True,
                    )
                )
                handle.flush()
                os.fsync(handle.fileno())
            return token, 1, False
        except FileExistsError:
            pass
        current = self.read_lease(digest)
        if current is None:
            # Released between our create attempt and the read: retry
            # next poll rather than looping here.
            return None
        if not current.expired:
            return None
        attempt = current.attempt + 1
        self._write_lease(path, worker, token, attempt)
        confirmed = self.read_lease(digest)
        if confirmed is None or confirmed.token != token:
            return None  # another stealer overwrote us; they own it
        return token, attempt, True

    def heartbeat(self, digest: str, worker: str, token: str, attempt: int) -> bool:
        """Extend a held lease; ``False`` if it was stolen meanwhile."""
        current = self.read_lease(digest)
        if current is None or current.token != token:
            return False
        self._write_lease(self._lease_path(digest), worker, token, attempt)
        confirmed = self.read_lease(digest)
        return confirmed is not None and confirmed.worker == worker

    def release(self, digest: str, token: str) -> None:
        """Drop a lease we hold (the task committed; claim state resets)."""
        current = self.read_lease(digest)
        if current is not None and current.token == token:
            try:
                self._lease_path(digest).unlink()
            except FileNotFoundError:
                pass

    def requeue(self, digest: str, token: str, attempt: int) -> None:
        """Give a held lease back *preserving its attempt count*.

        Used on failure paths (task error, chaos sabotage): the lease
        is rewritten already-expired, so the next claimant steals it
        immediately at ``attempt + 1`` instead of restarting the
        attempt history -- which is what lets seeded chaos guarantee
        convergence within ``fault_attempts``.
        """
        current = self.read_lease(digest)
        if current is None or current.token != token:
            return  # stolen meanwhile; the thief owns the history now
        path = self._lease_path(digest)
        _atomic_write(
            path,
            json.dumps(
                {
                    "schema": LEASE_SCHEMA,
                    "worker": "requeued",
                    "token": token,
                    "attempt": attempt,
                    "deadline": 0.0,
                },
                sort_keys=True,
            ),
        )

    def drain_expired(self, worker: str = "drain") -> List[str]:
        """Remove every expired lease; returns the freed task digests."""
        freed: List[str] = []
        for path in sorted(self.lease_dir.glob("*.json")):
            digest = path.stem
            lease = self.read_lease(digest)
            if lease is not None and lease.expired:
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue
                self.journal(
                    worker, "lease_expire", digest=digest,
                    stale_worker=lease.worker,
                )
                freed.append(digest)
        return freed


# ----------------------------------------------------------------------
# Worker loop
# ----------------------------------------------------------------------

def _heartbeat_loop(
    queue: LeaseQueue,
    digest: str,
    worker: str,
    token: str,
    attempt: int,
    stop: threading.Event,
) -> None:
    interval = max(0.05, queue.ttl / 3.0)
    while not stop.wait(interval):
        if not queue.heartbeat(digest, worker, token, attempt):
            return  # lease stolen; commit will be defused by the store


def _error_info(exc: BaseException) -> Dict[str, str]:
    """Exception class + traceback digest, journaled and committed so
    a resumed run can tell a deterministic task error (skip it) from
    an infrastructure death (re-lease it)."""
    tb = traceback.format_exc()
    return {
        "class": type(exc).__name__,
        "message": str(exc)[:500],
        "traceback_digest": _digest(tb),
    }


def run_worker(
    queue: LeaseQueue,
    store: ResultStore,
    worker_id: str,
    chaos=None,
    task_error_retries: int = 1,
    poll_seconds: float = _POLL_SECONDS,
    max_passes: Optional[int] = None,
) -> int:
    """Claim-execute-commit until every spooled task has a valid blob.

    Returns the number of results this worker committed.  ``chaos``
    (see :class:`repro.faults.exec_chaos.FabricChaosSpec`) may direct
    the worker to die between claim and commit, stall past its lease
    TTL, or tear its committed blob -- the protocol must absorb all
    three.
    """
    if chaos is None:
        chaos = queue.chaos_spec()
    tasks = queue.tasks()
    committed = 0
    passes = 0
    queue.journal(worker_id, "worker_start", tasks=len(tasks))
    while True:
        passes += 1
        open_tasks = [task for task in tasks if not store.has(task.digest)]
        if not open_tasks:
            break
        if max_passes is not None and passes > max_passes:
            break
        progressed = False
        for task in open_tasks:
            if store.has(task.digest):
                continue
            # Self-heal: a torn blob occupying the slot must be removed
            # before the commit link can succeed.
            store.discard_invalid(task.digest)
            won = queue.claim(task.digest, worker_id)
            if won is None:
                continue
            token, attempt, stolen = won
            progressed = True
            queue.journal(
                worker_id,
                "lease_steal" if stolen else "lease_claim",
                digest=task.digest, key=task.key, attempt=attempt,
            )
            committed += _execute_leased(
                queue, store, task, worker_id, token, attempt,
                chaos=chaos, task_error_retries=task_error_retries,
            )
        if not progressed:
            time.sleep(poll_seconds)
    queue.journal(worker_id, "worker_exit", committed=committed)
    return committed


def _execute_leased(
    queue: LeaseQueue,
    store: ResultStore,
    task: SpooledTask,
    worker_id: str,
    token: str,
    attempt: int,
    chaos,
    task_error_retries: int,
) -> int:
    """Run one held lease to commit (or journaled failure); 1 if committed."""
    action = None
    if chaos is not None and hasattr(chaos, "decide_fabric"):
        action = chaos.decide_fabric(task.key, attempt)
    if action == "die_after_claim":
        # A SIGKILL between claim and commit: no cleanup, no release --
        # the lease goes stale and must be reclaimed by a survivor.
        queue.journal(worker_id, "chaos_die", digest=task.digest, key=task.key)
        os._exit(9)
    if action == "stall":
        # Sleep past our own TTL *without heartbeating*: the lease
        # expires under us, someone steals it, and our late commit
        # must lose the store race gracefully (resurrection test).
        queue.journal(worker_id, "chaos_stall", digest=task.digest, key=task.key)
        time.sleep(queue.ttl * 1.6)

    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(queue, task.digest, worker_id, token, attempt, stop),
        daemon=True,
    )
    beat.start()
    try:
        try:
            value = task.fn(task.item)
        except Exception as exc:
            info = _error_info(exc)
            queue.journal(
                worker_id, "task_error", digest=task.digest, key=task.key,
                attempt=attempt, **info,
            )
            if attempt > task_error_retries:
                # Deterministic failure: commit the error envelope so
                # the coordinator raises it and a resume skips the cell
                # instead of re-leasing it forever.
                store.commit(
                    task.digest, task.key, None, worker=worker_id, error=info
                )
                queue.release(task.digest, token)
            else:
                queue.requeue(task.digest, token, attempt)
            return 0
        if action == "tear_result":
            # Byte-level sabotage: a non-atomic half-written blob at
            # the final path.  Validation must treat it as absent and
            # the next committer must heal it.
            final = store.path(task.digest)
            final.parent.mkdir(parents=True, exist_ok=True)
            envelope = store._envelope(
                task.digest, task.key, value, worker_id, None
            )
            final.write_text(envelope[: len(envelope) // 2], encoding="utf-8")
            queue.journal(
                worker_id, "chaos_tear", digest=task.digest, key=task.key
            )
            queue.requeue(task.digest, token, attempt)
            return 0
        won_commit = store.commit(task.digest, task.key, value, worker=worker_id)
        queue.journal(
            worker_id,
            "result_commit" if won_commit else "result_duplicate",
            digest=task.digest, key=task.key, attempt=attempt,
        )
        queue.release(task.digest, token)
        return 1 if won_commit else 0
    finally:
        stop.set()
        beat.join(timeout=1.0)


def _worker_main(
    queue_root: str, store_root: str, worker_id: str, ttl: float
) -> None:
    """Entry point of a spawned fabric worker process."""
    queue = LeaseQueue(queue_root, ttl=ttl)
    store = ResultStore(store_root)
    # A worker killed by the coordinator's chaos assassin must die
    # without cleanup, exactly like an OOM kill.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    run_worker(queue, store, worker_id)


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------

def _emit(obs, etype: EventType, **payload: object) -> None:
    if obs is None:
        return
    tracer = getattr(obs, "tracer", None)
    if tracer:
        tracer.emit(etype, cycle=time.monotonic(), **payload)
    registry = getattr(obs, "registry", None)
    if registry is not None:
        registry.group("resilience").bump(etype.value)


_JOURNAL_EVENTS = {
    "lease_claim": EventType.LEASE_CLAIM,
    "lease_expire": EventType.LEASE_EXPIRE,
    "lease_steal": EventType.LEASE_STEAL,
}


@dataclass
class FabricReport:
    """Counters of one fabric fan-out (folded into SupervisionReport)."""

    tasks: int = 0
    reused: int = 0
    committed: int = 0
    lease_claims: int = 0
    lease_steals: int = 0
    lease_expires: int = 0
    torn_results: int = 0
    worker_deaths: int = 0
    respawns: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "tasks": self.tasks,
            "reused": self.reused,
            "committed": self.committed,
            "lease_claims": self.lease_claims,
            "lease_steals": self.lease_steals,
            "lease_expires": self.lease_expires,
            "torn_results": self.torn_results,
            "worker_deaths": self.worker_deaths,
            "respawns": self.respawns,
        }

    def summary(self) -> str:
        return (
            f"fabric: {self.tasks} tasks, {self.reused} reused, "
            f"{self.committed} committed, {self.lease_claims} claims, "
            f"{self.lease_steals} steals, {self.worker_deaths} worker "
            f"deaths, {self.respawns} respawns"
        )


def queue_id(kind: str, context: str) -> str:
    return f"{kind}-{_digest(f'{kind}:{context}')[:12]}"


def fabric_map(
    fn: Callable,
    items: Sequence,
    *,
    keys: Sequence[str],
    kind: str,
    context: str,
    run_dir: os.PathLike,
    store_dir: os.PathLike,
    workers: int = 2,
    ttl: float = DEFAULT_LEASE_TTL,
    chaos=None,
    obs=None,
    report: Optional[FabricReport] = None,
    wall_timeout: Optional[float] = None,
    task_error_retries: int = 1,
) -> List[object]:
    """``[fn(x) for x in items]`` executed by N leased worker processes.

    The coordinator spools the tasks, launches ``workers`` independent
    worker processes (the same loop ``python -m repro fabric worker``
    runs), respawns dead ones while claimable work remains, and reduces
    committed blobs back in input order -- byte-identical to a serial
    run.  Tasks already present in the content-addressed store are
    reused without executing anything (``RESULT_REUSE``).
    """
    import multiprocessing as mp

    items = list(items)
    keys = [str(key) for key in keys]
    if len(keys) != len(items):
        raise ValueError("keys must match items one-to-one")
    if len(set(keys)) != len(keys):
        raise ValueError("task keys must be unique")
    report = report if report is not None else FabricReport()
    store = ResultStore(store_dir)
    digests = [task_digest(kind, context, key, fn) for key in keys]
    report.tasks += len(digests)

    # Warm-store pass: valid blobs are reused, invalid ones healed.
    open_indices: List[int] = []
    for index, digest in enumerate(digests):
        if store.discard_invalid(digest):
            report.torn_results += 1
        if store.has(digest):
            report.reused += 1
            try:
                # LRU signal for `repro gc`: a reused blob is live.
                os.utime(store.path(digest))
            except OSError:
                pass
            _emit(obs, EventType.RESULT_REUSE, key=keys[index])
        else:
            open_indices.append(index)

    queue_root = Path(run_dir) / "fabric" / queue_id(kind, context)
    if open_indices:
        queue = LeaseQueue.create(
            queue_root,
            kind,
            context,
            [
                (keys[i], digests[i], fn, items[i])
                for i in open_indices
            ],
            ttl=ttl,
            chaos=chaos,
        )
        _run_workers(
            queue, store, [digests[i] for i in open_indices], workers,
            report, chaos=chaos, wall_timeout=wall_timeout,
            task_error_retries=task_error_retries, mp=mp,
        )
        _fold_journal(queue, report, obs)

    out: List[object] = []
    for index, digest in enumerate(digests):
        value, error = store.load(digest)
        if error is not None:
            raise TaskFailed(
                f"task {keys[index]!r} failed deterministically on every "
                f"claimant ({error.get('class')}: {error.get('message')}; "
                f"traceback digest {error.get('traceback_digest')})"
            )
        out.append(value)
    report.committed += len(digests) - report.reused
    return out


def _run_workers(
    queue: LeaseQueue,
    store: ResultStore,
    open_digests: Sequence[str],
    workers: int,
    report: FabricReport,
    chaos,
    wall_timeout: Optional[float],
    task_error_retries: int,
    mp,
) -> None:
    """Launch, babysit, respawn, and join the worker fleet."""
    workers = max(1, workers)
    kill_after = getattr(chaos, "kill_worker_after", None)
    assassin_done = kill_after is None
    # Each (re)spawned worker gets a fresh id; a generous respawn budget
    # bounds a pathological chaos story without ever biting a real run.
    respawn_budget = max(4, 2 * len(open_digests)) + workers
    serial = 0
    procs: List = []

    def spawn() -> None:
        nonlocal serial
        serial += 1
        worker_id = f"w{serial:02d}-{os.getpid()}"
        proc = mp.Process(
            target=_worker_main,
            args=(str(queue.root), str(store.root), worker_id, queue.ttl),
            daemon=True,
        )
        proc.start()
        procs.append(proc)

    for _ in range(workers):
        spawn()

    deadline = (
        time.monotonic() + wall_timeout if wall_timeout is not None else None
    )
    try:
        while True:
            remaining = [d for d in open_digests if not store.has(d)]
            if not remaining:
                break
            if deadline is not None and time.monotonic() > deadline:
                raise FabricError(
                    f"fabric wall timeout: {len(remaining)} tasks "
                    f"unfinished after {wall_timeout}s"
                )
            if not assassin_done:
                claims = sum(
                    1
                    for event in queue.journal_events()
                    if event.get("event") in ("lease_claim", "lease_steal")
                )
                if claims >= kill_after:
                    victim = next((p for p in procs if p.is_alive()), None)
                    if victim is not None:
                        os.kill(victim.pid, signal.SIGKILL)
                        queue.journal(
                            "coordinator", "chaos_sigkill", pid=victim.pid
                        )
                    assassin_done = True
            dead = [proc for proc in procs if not proc.is_alive()]
            for proc in dead:
                procs.remove(proc)
                if proc.exitcode not in (0, None):
                    report.worker_deaths += 1
            alive = len(procs)
            if alive < workers and respawn_budget > 0:
                # Keep the fleet at strength while work remains; stale
                # leases of the dead expire and are stolen by the new.
                for _ in range(workers - alive):
                    if respawn_budget <= 0:
                        break
                    respawn_budget -= 1
                    report.respawns += 1
                    spawn()
            elif alive == 0:
                # Budget exhausted and everyone is dead: last resort,
                # the coordinator drains the queue itself.
                queue.drain_expired("coordinator")
                run_worker(
                    queue, store, "coordinator-serial", chaos=None,
                    task_error_retries=task_error_retries,
                )
                break
            time.sleep(_POLL_SECONDS)
    finally:
        for proc in procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)


def _fold_journal(queue: LeaseQueue, report: FabricReport, obs) -> None:
    """Roll the queue's lease journal into the report and obs layer."""
    for event in queue.journal_events():
        name = str(event.get("event"))
        if name == "lease_claim":
            report.lease_claims += 1
        elif name == "lease_steal":
            report.lease_steals += 1
            report.lease_claims += 1
        elif name == "lease_expire":
            report.lease_expires += 1
        elif name == "chaos_tear":
            report.torn_results += 1
        etype = _JOURNAL_EVENTS.get(name)
        if etype is not None:
            _emit(
                obs, etype,
                key=event.get("key"), worker=event.get("worker"),
            )


# ----------------------------------------------------------------------
# Status / drain (CLI support)
# ----------------------------------------------------------------------

def fabric_queues(run_dir: os.PathLike) -> List[LeaseQueue]:
    """Every fabric queue spooled under one run directory."""
    fabric_root = Path(run_dir) / "fabric"
    if not fabric_root.exists():
        return []
    queues = []
    for manifest in sorted(fabric_root.glob("*/manifest.json")):
        queues.append(LeaseQueue.attach(manifest.parent))
    return queues


def queue_status(
    queue: LeaseQueue, store: ResultStore
) -> Dict[str, object]:
    """Machine-readable snapshot of one queue's progress."""
    tasks = queue.tasks()
    done = sum(1 for task in tasks if store.has(task.digest))
    leases = []
    for path in sorted(queue.lease_dir.glob("*.json")):
        lease = queue.read_lease(path.stem)
        if lease is not None:
            leases.append(
                {
                    "digest": path.stem,
                    "worker": lease.worker,
                    "attempt": lease.attempt,
                    "expired": lease.expired,
                }
            )
    manifest = queue.manifest()
    return {
        "queue": queue.root.name,
        "kind": manifest.get("kind"),
        "total": len(tasks),
        "done": done,
        "open": len(tasks) - done,
        "leases": leases,
        "journal_events": len(queue.journal_events()),
    }


def format_status(statuses: Sequence[Dict[str, object]]) -> str:
    lines = ["# fabric status"]
    if not statuses:
        lines.append("(no fabric queues)")
    for status in statuses:
        lines.append(
            f"{status['queue']}: {status['done']}/{status['total']} done, "
            f"{status['open']} open, {len(status['leases'])} leased "  # type: ignore[arg-type]
            f"({sum(1 for l in status['leases'] if l['expired'])} expired), "  # type: ignore[union-attr]
            f"{status['journal_events']} journal events"
        )
        for lease in status["leases"]:  # type: ignore[union-attr]
            mark = "EXPIRED" if lease["expired"] else "live"
            lines.append(
                f"  lease {lease['digest'][:12]} worker={lease['worker']} "
                f"attempt={lease['attempt']} [{mark}]"
            )
    return "\n".join(lines)
