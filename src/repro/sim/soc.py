"""Event-driven heterogeneous SoC simulation.

Each device replays its trace: a request becomes eligible ``gap``
cycles after the previous one was issued, but a device with a full
memory-level-parallelism window stalls until an outstanding read
completes.  Requests from all devices are processed in global issue
order through one protection scheme and one shared memory channel, so
a bursty NPU naturally delays CPU/GPU requests (the contention effect
of Sec. 3.2 / 5.4).

Execution time of a device = completion cycle of its last request; the
figures normalize this against the unsecured run of the same trace.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.config import DeviceConfig, SoCConfig
from repro.common.types import AccessType, DeviceKind, MemoryRequest
from repro.devices.issue import DeviceIssueState, device_config_for
from repro.mem.channel import ChannelStats, MemoryChannel
from repro.mem.dram import make_channel
from repro.obs import EventType, TraceEvent
from repro.schemes.base import ProtectionScheme
from repro.workloads.generator import Trace


@dataclass
class DeviceResult:
    """Per-device outcome of one simulation."""

    name: str
    workload: str
    kind: DeviceKind
    requests: int
    finish_cycle: float
    compute_cycles: float
    #: Integrity-engine work attributed to this device (MAC
    #: verifications, serialized tree levels walked, ...).
    integrity_events: Dict[str, int] = field(default_factory=dict)

    @property
    def stall_cycles(self) -> float:
        return max(0.0, self.finish_cycle - self.compute_cycles)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "workload": self.workload,
            "kind": self.kind.value,
            "requests": self.requests,
            "finish_cycle": self.finish_cycle,
            "compute_cycles": self.compute_cycles,
            "stall_cycles": self.stall_cycles,
            "integrity_events": dict(self.integrity_events),
        }


class ResultView:
    """Shared read API of one (scenario, scheme) simulation result.

    Implemented by :class:`RunResult` (live objects attached) and by
    :class:`repro.sim.parallel.SlimRunResult` (the picklable payload
    that crosses the worker pipe).  Everything here only touches the
    attributes both carry -- ``scheme_name``, ``devices``, ``channel``,
    ``metrics``, ``total_traffic_bytes``, ``security_cache_misses`` --
    so serial and parallel results render byte-identically.
    """

    @property
    def finish_cycle(self) -> float:
        return max((d.finish_cycle for d in self.devices), default=0.0)

    def normalized_exec_times(self, baseline: "ResultView") -> List[float]:
        """Per-device execution time relative to ``baseline`` (same traces)."""
        if len(self.devices) != len(baseline.devices):
            raise ValueError("cannot normalize against a different scenario")
        out = []
        for mine, base in zip(self.devices, baseline.devices):
            if base.finish_cycle <= 0:
                out.append(1.0)
            else:
                out.append(mine.finish_cycle / base.finish_cycle)
        return out

    def mean_normalized_exec_time(self, baseline: "ResultView") -> float:
        times = self.normalized_exec_times(baseline)
        return sum(times) / len(times) if times else 1.0

    def to_dict(self, baseline: Optional["ResultView"] = None) -> Dict[str, object]:
        """JSON-friendly view of the run (the ``--json`` payload)."""
        out: Dict[str, object] = {
            "scheme": self.scheme_name,
            "finish_cycle": self.finish_cycle,
            "total_traffic_bytes": self.total_traffic_bytes,
            "security_cache_misses": self.security_cache_misses,
            "channel": {
                "transactions": self.channel.transactions,
                "bytes_transferred": self.channel.bytes_transferred,
                "busy_cycles": self.channel.busy_cycles,
                "queue_cycles": self.channel.queue_cycles,
            },
            "devices": [device.to_dict() for device in self.devices],
            "metrics": dict(self.metrics),
        }
        if baseline is not None and baseline is not self:
            out["normalized_exec_times"] = self.normalized_exec_times(baseline)
            out["mean_normalized_exec_time"] = self.mean_normalized_exec_time(
                baseline
            )
        return out


@dataclass
class RunResult(ResultView):
    """Everything one (scenario, scheme) simulation produced."""

    scheme_name: str
    devices: List[DeviceResult]
    channel: ChannelStats
    scheme: ProtectionScheme
    #: Uniform metrics snapshot (hierarchical names -> values) taken at
    #: the end of the measured run; {} when no registry was attached.
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Recorded trace events (empty unless tracing was enabled).
    trace: List[TraceEvent] = field(default_factory=list)
    #: Execution tier that actually ran ("scalar" or "fast").  Not part
    #: of :meth:`ResultView.to_dict` -- both tiers are bit-identical,
    #: so the payload must not depend on which one produced it.
    engine: str = "scalar"

    @property
    def total_traffic_bytes(self) -> int:
        return self.scheme.stats.traffic.total_bytes

    @property
    def security_cache_misses(self) -> int:
        return self.scheme.metadata_cache.misses + self.scheme.mac_cache.misses


def simulate(
    traces: Sequence[Trace],
    scheme: ProtectionScheme,
    soc_config: Optional[SoCConfig] = None,
    device_configs: Optional[Sequence[DeviceConfig]] = None,
    warmup: bool = False,
) -> RunResult:
    """Run one scheme over a set of concurrent device traces.

    With ``warmup=True`` the traces are replayed once to train the
    scheme's persistent state (granularity table, tracker, metadata
    caches, subtree roots), statistics are reset, and the *second*
    replay is measured -- the steady state the paper's long simulations
    report, without the cold-start transient of short traces.
    """
    soc_config = soc_config or SoCConfig()
    if device_configs is None:
        device_configs = [
            device_config_for(trace.spec.kind, f"{trace.spec.kind.value}{i}")
            for i, trace in enumerate(traces)
        ]
    if len(device_configs) != len(traces):
        raise ValueError("one device config per trace required")

    # Engine dispatch: the fast tier returns a drop-in for _run_loop
    # (or None, falling back to the scalar loop -- results are
    # bit-identical either way, see docs/performance.md).
    fast_run = None
    if getattr(soc_config, "sim_engine", "scalar") == "fast":
        from repro.engine_fast import core as fast_core

        fast_run = fast_core.prepare(
            traces, scheme, soc_config, device_configs
        )
    run_loop = fast_run if fast_run is not None else _run_loop

    if warmup:
        # Warmup replays untraced: its events would only pollute the
        # steady-state trace reset_stats() is about to clear anyway.
        warm_channel = make_channel(soc_config.memory)
        warm_states = [
            DeviceIssueState(i, trace, cfg)
            for i, (trace, cfg) in enumerate(zip(traces, device_configs))
        ]
        run_loop(warm_states, scheme, warm_channel)
        scheme.reset_stats()

    channel = make_channel(soc_config.memory, tracer=scheme.tracer)
    channel.metrics_into(scheme.obs.registry, "channel")
    states = [
        DeviceIssueState(i, trace, cfg)
        for i, (trace, cfg) in enumerate(zip(traces, device_configs))
    ]
    run_loop(states, scheme, channel)
    return finalize_run(
        states, scheme, channel,
        engine="fast" if fast_run is not None else "scalar",
    )


def finalize_run(
    states: Sequence[DeviceIssueState],
    scheme: ProtectionScheme,
    channel: MemoryChannel,
    engine: str = "scalar",
) -> RunResult:
    """Settle a drained run and assemble its :class:`RunResult`.

    Shared by :func:`simulate` and by incrementally driven
    :class:`~repro.secure_memory.session.EngineSession` objects, so a
    stepped session and a one-shot simulation of the same traces
    produce byte-identical payloads.
    """
    scheme.finish(channel)
    registry = scheme.obs.registry
    devices = [
        DeviceResult(
            name=st.config.name,
            workload=st.trace.spec.name,
            kind=st.kind,
            requests=len(st.trace.entries),
            finish_cycle=st.finish,
            compute_cycles=st.compute,
            integrity_events=(
                dict(scheme.stats.device(st.index).as_dict())
                if st.index in scheme.stats.per_device
                else {}
            ),
        )
        for st in states
    ]
    total_stall = 0.0
    for device in devices:
        registry.gauge(f"sched.device.{device.name}.stall_cycles").set(
            device.stall_cycles
        )
        registry.gauge(f"sched.device.{device.name}.finish_cycle").set(
            device.finish_cycle
        )
        total_stall += device.stall_cycles
    registry.gauge("sched.stall_cycles").set(total_stall)
    return RunResult(
        scheme_name=scheme.name,
        devices=devices,
        channel=channel.stats,
        scheme=scheme,
        metrics=registry.snapshot(),
        trace=list(scheme.tracer.events()),
        engine=engine,
    )


class SessionCore:
    """Resumable run-loop state: the driver decoupled from the loop.

    The former monolithic ``_run_loop`` body, owned by an object: the
    issue heap, device states, scheme and channel persist between
    calls, and :meth:`step` advances by a bounded number of requests.
    One full drain is byte-identical to the old one-shot loop (it *is*
    the old loop); a sequence of bounded steps is byte-identical to one
    full drain because every piece of inter-request state lives on the
    scheme/channel/state objects, never on the stack.

    Devices are kept in an index-heap ordered by next-issue time.  A
    device's issue time only changes when *it* issues (issue-window and
    dependency state are private), so each heap entry stays valid until
    its device is popped -- one ``next_issue_time`` evaluation per
    issued request instead of one per active device per request.  Ties
    break on device index, matching the original list-scan order.
    """

    __slots__ = ("states", "scheme", "channel", "issued", "_heap")

    def __init__(
        self,
        states: Sequence[DeviceIssueState],
        scheme: ProtectionScheme,
        channel: MemoryChannel,
    ) -> None:
        self.states = states
        self.scheme = scheme
        self.channel = channel
        self.issued = 0
        self._heap = [
            (st.next_issue_time(), st.index, st) for st in states if not st.done
        ]
        heapq.heapify(self._heap)

    @property
    def done(self) -> bool:
        return not self._heap

    def step(self, limit: Optional[int] = None, sink: Optional[list] = None) -> int:
        """Issue up to ``limit`` requests (all remaining when ``None``).

        ``sink``, when given, receives one
        ``(issue_cycle, device, addr, is_write, completion)`` tuple per
        issued request -- the per-request observables served to daemon
        tenants.  Returns the number of requests issued.
        """
        heap = self._heap
        scheme = self.scheme
        channel = self.channel
        tracer = scheme.tracer
        process = scheme.process
        heappush, heappop = heapq.heappush, heapq.heappop
        write_access, read_access = AccessType.WRITE, AccessType.READ
        issued = 0

        while heap and (limit is None or issued < limit):
            issue_at, index, best = heappop(heap)
            entry = best.trace.entries[best.cursor]
            gap, addr, is_write = entry
            req = MemoryRequest(
                cycle=int(issue_at),
                addr=addr,
                size=64,
                access=write_access if is_write else read_access,
                device=index,
                kind=best.kind,
            )
            completion = process(req, issue_at, channel)
            if tracer:
                tracer.emit(
                    EventType.REQUEST,
                    issue_at,
                    device=index,
                    latency=completion - issue_at,
                    write=is_write,
                    stalled=issue_at > best.clock + gap,
                )
            if sink is not None:
                sink.append((issue_at, index, addr, is_write, completion))
            best.issue(issue_at, completion, is_write)
            if not best.done:
                heappush(heap, (best.next_issue_time(), index, best))
            issued += 1
        self.issued += issued
        return issued


def _run_loop(
    states: Sequence[DeviceIssueState],
    scheme: ProtectionScheme,
    channel: MemoryChannel,
    sink: Optional[list] = None,
) -> None:
    """Drive every device trace to completion (one-shot SessionCore)."""
    SessionCore(states, scheme, channel).step(sink=sink)
