"""Garbage collection for run journals and the fabric result store.

The fabric (``docs/fabric.md``) makes unbounded growth a real problem:
every run leaves a ``runs/<id>/`` directory of checkpoint journals and
lease spools, and the shared content-addressed store accretes one blob
per distinct task forever.  ``python -m repro gc`` prunes both:

* **Run directories** -- everything under ``--runs-dir`` except the
  store, newest ``--keep`` kept (by directory mtime), the rest
  deleted.  A resumable run older than the keep window is assumed
  abandoned.
* **Store blobs** -- three classes go:

  - *invalid* blobs (torn writes, digest mismatches) -- always
    removed; they read as absent anyway and only waste a claimant's
    heal step;
  - *temp litter* -- ``.*.tmp`` files orphaned by killed committers;
  - *orphaned* blobs -- older than the oldest *kept* run directory
    (or ``--store-max-age``, when given).  ``fabric_map`` touches a
    blob's mtime on every warm reuse, so this is an LRU discipline:
    a blob no surviving run has needed since before the keep window
    opened cannot be referenced again except by recomputation, which
    the store absorbs.

Deletion order is runs first, then blobs, so an interrupted gc never
leaves a kept run pointing at a pruned blob it would still have used.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.sim.fabric import ResultStore, default_store_dir


@dataclass
class GcReport:
    """What one ``repro gc`` pass removed (or would, under dry-run)."""

    runs_kept: List[str] = field(default_factory=list)
    runs_removed: List[str] = field(default_factory=list)
    blobs_removed: int = 0
    invalid_blobs_removed: int = 0
    tmp_removed: int = 0
    bytes_freed: int = 0
    dry_run: bool = False

    def format(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        lines = [
            f"# gc ({'dry run' if self.dry_run else 'live'})",
            f"runs kept: {len(self.runs_kept)} "
            f"({', '.join(self.runs_kept) or 'none'})",
            f"runs {verb}: {len(self.runs_removed)} "
            f"({', '.join(self.runs_removed) or 'none'})",
            f"store blobs {verb}: {self.blobs_removed} orphaned, "
            f"{self.invalid_blobs_removed} invalid, "
            f"{self.tmp_removed} temp files",
            f"bytes freed: {self.bytes_freed}",
        ]
        return "\n".join(lines)


def _tree_bytes(path: Path) -> int:
    total = 0
    for sub in path.rglob("*"):
        try:
            if sub.is_file():
                total += sub.stat().st_size
        except OSError:
            continue
    return total


def collect_garbage(
    runs_dir: os.PathLike,
    keep: int = 5,
    store_max_age_seconds: Optional[float] = None,
    dry_run: bool = False,
) -> GcReport:
    """Prune old run directories and orphaned/invalid store blobs.

    ``keep`` newest run directories survive; the store's orphan cutoff
    is the oldest kept run's mtime unless ``store_max_age_seconds``
    pins it explicitly.  ``dry_run`` reports without deleting.
    """
    report = GcReport(dry_run=dry_run)
    runs_root = Path(runs_dir)
    store_root = default_store_dir(runs_root)
    if not runs_root.exists():
        return report

    run_dirs = sorted(
        (
            path
            for path in runs_root.iterdir()
            if path.is_dir() and path != store_root
        ),
        key=lambda path: path.stat().st_mtime,
        reverse=True,
    )
    kept, dropped = run_dirs[: max(0, keep)], run_dirs[max(0, keep):]
    report.runs_kept = [path.name for path in kept]
    for path in dropped:
        report.runs_removed.append(path.name)
        report.bytes_freed += _tree_bytes(path)
        if not dry_run:
            shutil.rmtree(path, ignore_errors=True)

    if store_max_age_seconds is not None:
        cutoff: Optional[float] = time.time() - store_max_age_seconds
    elif kept:
        cutoff = min(path.stat().st_mtime for path in kept)
    else:
        cutoff = None  # nothing to anchor age against; invalid-only pass

    store = ResultStore(store_root)
    if store_root.exists():
        for tmp in sorted(store_root.glob("*/.*.tmp")):
            report.tmp_removed += 1
            report.bytes_freed += tmp.stat().st_size
            if not dry_run:
                tmp.unlink(missing_ok=True)
        for blob in store.blobs():
            digest = blob.stem
            size = blob.stat().st_size
            if store.read_envelope(digest) is None:
                report.invalid_blobs_removed += 1
                report.bytes_freed += size
                if not dry_run:
                    blob.unlink(missing_ok=True)
            elif cutoff is not None and blob.stat().st_mtime < cutoff:
                report.blobs_removed += 1
                report.bytes_freed += size
                if not dry_run:
                    blob.unlink(missing_ok=True)
    return report
