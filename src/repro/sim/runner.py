"""Scenario runners: simulate scheme sets over shared traces.

Traces are generated once per scenario and replayed through every
scheme, so scheme comparisons are paired.  ``static_device`` needs the
per-device exhaustive granularity search of Sec. 5.3
(``Static-device-best``); the search results are memoized per workload
because the paper's search is likewise an offline warmup.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SoCConfig
from repro.common.constants import GRANULARITIES
from repro.schemes.registry import build_scheme
from repro.schemes.static import StaticGranularScheme
from repro.sim.scenario import DEFAULT_DURATION_CYCLES, Scenario
from repro.sim.soc import RunResult, simulate
from repro.workloads.generator import Trace

# LRU-bounded memo of the per-device exhaustive search: long sweeps
# and duration scans would otherwise grow it without limit (one entry
# per distinct workload/duration/trace-length/config quadruple).  The
# key includes the SoCConfig itself (frozen, hence hashable): the best
# static granularity of a workload depends on channel bandwidth, cache
# sizes and engine latencies, so a result found under one config must
# never be served under another.
_STATIC_BEST_CACHE_MAX = 512
_static_best_cache: "OrderedDict[Tuple[str, float, int, SoCConfig], int]" = (
    OrderedDict()
)


def clear_static_best_cache() -> None:
    """Drop all memoized static-best search results (tests, sweeps)."""
    _static_best_cache.clear()


def sim_duration(default: float = DEFAULT_DURATION_CYCLES) -> float:
    """Per-device compute duration; override with REPRO_SIM_DURATION."""
    raw = os.environ.get("REPRO_SIM_DURATION")
    if raw is None:
        return default
    return float(raw)


def best_static_granularity(
    trace: Trace, config: Optional[SoCConfig] = None
) -> int:
    """Exhaustively pick the best fixed granularity for one device.

    Runs the device's trace in isolation under each of the four
    granularities and returns the fastest -- the paper's per-device
    exhaustive search (Sec. 3.3), memoized per workload/trace shape.
    """
    config = config or SoCConfig()
    key = (trace.spec.name, trace.compute_cycles, len(trace.entries), config)
    cached = _static_best_cache.get(key)
    if cached is not None:
        _static_best_cache.move_to_end(key)
        return cached

    best_granularity = GRANULARITIES[0]
    best_cost = float("inf")
    for granularity in GRANULARITIES:
        scheme = StaticGranularScheme(
            config, {0: granularity}, config.memory.protected_bytes
        )
        result = simulate([trace], scheme, config, warmup=True)
        # Isolated runs hide bandwidth pressure (one device cannot
        # saturate the channel), so score latency *plus* the channel
        # time its traffic would occupy under contention -- otherwise
        # the search blindly prefers coarse granularities whose
        # coverage debt settles after the last request.
        cost = (
            result.devices[0].finish_cycle
            + result.total_traffic_bytes / config.memory.bytes_per_cycle
        )
        if cost < best_cost:
            best_cost = cost
            best_granularity = granularity
    _static_best_cache[key] = best_granularity
    while len(_static_best_cache) > _STATIC_BEST_CACHE_MAX:
        _static_best_cache.popitem(last=False)
    return best_granularity


def best_static_granularities(
    traces: Sequence[Trace], config: Optional[SoCConfig] = None
) -> Dict[int, int]:
    """Per-device granularities for the ``Static-device-best`` scheme.

    The paper's exhaustive per-device search (Sec. 5.3): each device's
    trace is scored in isolation under every granularity and the best
    is kept (memoized per workload -- the paper treats this as an
    offline warmup).
    """
    return {
        index: best_static_granularity(trace, config)
        for index, trace in enumerate(traces)
    }


def _run_schemes_over_traces(
    traces: Sequence[Trace],
    footprint: int,
    scheme_names: Sequence[str],
    config: SoCConfig,
    warmup: bool,
    obs_factory=None,
) -> Dict[str, RunResult]:
    """Replay already-built traces under each scheme (the serial core).

    Shared by the serial path below and by the worker bodies in
    :mod:`repro.sim.parallel`, so both produce identical results.
    """
    results: Dict[str, RunResult] = {}
    for name in scheme_names:
        device_granularities = None
        if name == "static_device":
            device_granularities = best_static_granularities(traces, config)
        scheme = build_scheme(
            name, config, footprint_bytes=footprint,
            device_granularities=device_granularities,
            obs=obs_factory() if obs_factory is not None else None,
        )
        results[name] = simulate(traces, scheme, config, warmup=warmup)
    return results


def run_scenario(
    scenario: Scenario,
    scheme_names: Sequence[str],
    config: Optional[SoCConfig] = None,
    duration_cycles: Optional[float] = None,
    seed: int = 0,
    warmup: bool = True,
    obs_factory=None,
    jobs: Optional[int] = None,
) -> Dict[str, RunResult]:
    """Simulate one scenario under several schemes over shared traces.

    ``warmup`` (default on) replays each trace once before measuring,
    so dynamic schemes are evaluated in their trained steady state --
    the regime the paper's long simulations report.

    ``obs_factory``, when given, is called once per scheme (it takes no
    arguments) and must return an :class:`~repro.obs.ObsContext`; each
    scheme gets its own context so traces and metrics stay per-run.

    ``jobs`` above 1 fans the scheme list out over worker processes
    (``None`` consults ``REPRO_JOBS``, else stays serial).  Parallel
    results are :class:`~repro.sim.parallel.SlimRunResult` payloads --
    numerically identical, but without the live ``.scheme`` object.
    Live tracing (``obs_factory``) always forces the serial path, since
    per-run observability objects cannot cross a process boundary.
    """
    config = config or SoCConfig()
    duration = duration_cycles if duration_cycles is not None else sim_duration()
    traces, footprint = scenario.build_traces(duration, seed)

    from repro.sim import parallel, resilient  # runner is imported by parallel

    supervisor = resilient.current_supervisor()
    journaling = supervisor is not None and supervisor.journaling
    workers = parallel.resolve_jobs(jobs)
    # A journaling supervisor routes even serial runs through the
    # fan-out, so checkpoints exist at the same task granularity
    # whatever the worker count.
    if (workers > 1 or journaling) and obs_factory is None and len(
        scheme_names
    ) > 1:
        return parallel.run_schemes_parallel(
            traces, footprint, scheme_names, config, warmup, workers
        )
    return _run_schemes_over_traces(
        traces, footprint, scheme_names, config, warmup, obs_factory
    )


def run_many(
    scenarios: Sequence[Scenario],
    scheme_names: Sequence[str],
    config: Optional[SoCConfig] = None,
    duration_cycles: Optional[float] = None,
    seed: int = 0,
    warmup: bool = True,
    jobs: Optional[int] = None,
) -> List[Tuple[Scenario, Dict[str, RunResult]]]:
    """Run a list of scenarios; returns (scenario, results) pairs.

    ``jobs`` above 1 dispatches the whole cross-product to
    :func:`repro.sim.parallel.run_scenarios` (slim, picklable results);
    ``None`` consults ``REPRO_JOBS`` and otherwise stays serial.  A
    journaling supervisor (``--run-id``/``--resume``) also routes the
    serial case through the fan-out so checkpoints are written and
    replayed at the same task granularity regardless of ``jobs``.
    """
    from repro.sim import parallel, resilient  # runner is imported by parallel

    supervisor = resilient.current_supervisor()
    workers = parallel.resolve_jobs(jobs)
    if workers > 1 or (supervisor is not None and supervisor.journaling):
        return parallel.run_scenarios(
            scenarios, scheme_names, config, duration_cycles, seed, warmup,
            jobs=workers,
        )
    return [
        (
            scenario,
            run_scenario(
                scenario, scheme_names, config, duration_cycles, seed, warmup
            ),
        )
        for scenario in scenarios
    ]


def sweep_scenarios(
    scenarios: Sequence[Scenario], sample: Optional[int] = None
) -> List[Scenario]:
    """Deterministically subsample a scenario list for sweep experiments.

    The full 250-scenario sweep is exact but slow in pure Python; the
    default subsample keeps every k-th scenario (uniform over the
    cross-product ordering).  Set ``REPRO_FULL_SWEEP=1`` to force the
    complete sweep.
    """
    if os.environ.get("REPRO_FULL_SWEEP") == "1" or sample is None:
        return list(scenarios)
    if sample >= len(scenarios):
        return list(scenarios)
    stride = len(scenarios) / sample
    return [scenarios[int(i * stride)] for i in range(sample)]
