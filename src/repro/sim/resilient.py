"""Supervised resilient execution: timeouts, retries, checkpoint/resume.

The parallel fan-out of :mod:`repro.sim.parallel` treats worker
processes as infallible: a bare ``pool.map`` has no per-task timeout,
cannot tell a dead worker from a buggy task, and throws away every
finished cell when the parent dies at cell 200/216 of a campaign.
This module supplies the supervision discipline of real fleets:

* **Future-based dispatch with hang detection** -- every task is
  submitted individually and watched against a wall-clock deadline;
  a hung worker is killed (the whole pool is recycled, the victim's
  innocent neighbours are requeued uncharged) instead of stalling the
  run forever.
* **Bounded retries with jittered exponential backoff** -- transient
  failures (``BrokenProcessPool``, timeouts, exceptions whose class
  sets ``transient = True``) are retried up to
  :attr:`ResiliencePolicy.max_retries` times; *deterministic* task
  errors are retried once and then re-raised -- never silently
  replayed serially, which would re-execute side effects and mask
  real bugs as slow passes.
* **Graceful degradation** -- repeated pool breakage shrinks the
  worker count stepwise down to :attr:`ResiliencePolicy.min_workers`;
  a task that exhausts its transient retries falls back to running
  serially *in the parent*, for that task only.
* **Checkpoint journal** -- an append-only, fsync'd, schema-versioned
  JSONL file under ``runs/<run-id>/`` records every completed task's
  payload, so ``--resume <run-id>`` skips finished work and the
  resumed output is byte-identical to an uninterrupted run.

Every supervision event (retry, timeout, degrade, resume-skip) is
emitted through :mod:`repro.obs` as a trace event and counted in the
``resilience`` metrics group.  ``docs/resilience.md`` documents the
model, the journal format and the CLI flags.
"""

from __future__ import annotations

import base64
import hashlib
import json
import logging
import os
import pickle
import time
import uuid
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.obs import EventType

logger = logging.getLogger("repro.resilient")

T = TypeVar("T")
R = TypeVar("R")

#: Journal schema identifier; bump on any incompatible format change.
JOURNAL_SCHEMA = "repro-journal/v1"

#: Upper bound on one supervision-loop wait, so deadlines and backoff
#: expiries are re-checked promptly even when nothing completes.
_TICK_SECONDS = 0.25

#: Supervision counters pre-declared at zero so a clean run's summary
#: *shows* ``retries=0`` instead of omitting the group entirely.
RESILIENCE_COUNTERS = (
    "exec_retry",
    "exec_timeout",
    "exec_degrade",
    "exec_resume_skip",
    "journal_dropped",
    "lease_claim",
    "lease_expire",
    "lease_steal",
    "result_reuse",
)


class JournalError(ValueError):
    """The checkpoint journal is unusable (schema/identity/digest)."""


class ExecutionAborted(RuntimeError):
    """The supervised run was interrupted before finishing all tasks."""


class LostResultError(RuntimeError):
    """A worker computed a result that never reached the parent.

    Marked ``transient``: the supervisor retries it like a worker
    death rather than raising it as a task bug.
    """

    transient = True


# ----------------------------------------------------------------------
# Policy and accounting
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the supervised executor (all per-task unless noted)."""

    #: Wall-clock seconds one task may run before its pool is killed
    #: and the task retried as a transient failure.  ``None`` disables
    #: hang detection.
    timeout_seconds: Optional[float] = None
    #: Max retries of *transient* failures (worker death, timeout,
    #: lost result) before the task falls back to serial in the parent.
    max_retries: int = 3
    #: Retries granted to a *deterministic* task exception before it is
    #: re-raised to the caller.
    task_error_retries: int = 1
    #: First backoff delay; doubles per attempt up to the cap.
    backoff_base_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0
    #: Pool breakages tolerated before the worker count is halved.
    degrade_after_breaks: int = 2
    min_workers: int = 1
    #: Folded into the deterministic backoff jitter.
    seed: int = 0

    def backoff(self, key: str, attempt: int) -> float:
        """Jittered exponential backoff for retry ``attempt`` (1-based).

        The jitter is derived from ``(seed, key, attempt)`` so reruns
        of the same supervision story sleep the same amounts --
        supervision must never introduce nondeterminism of its own.
        """
        base = min(
            self.backoff_cap_seconds,
            self.backoff_base_seconds * (2 ** max(0, attempt - 1)),
        )
        digest = hashlib.blake2b(
            f"{self.seed}:{key}:{attempt}".encode(), digest_size=8
        ).digest()
        jitter = int.from_bytes(digest, "little") / 2**64  # [0, 1)
        return base * (0.5 + jitter)


@dataclass
class SupervisionReport:
    """Counters of everything the supervisor did across one run."""

    attempts: int = 0
    completed: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_breaks: int = 0
    degrades: int = 0
    serial_fallbacks: int = 0
    resume_skips: int = 0
    journal_corrupt_entries: int = 0
    journal_truncated_lines: int = 0
    # Fabric (leased work-queue) counters; zero outside fabric runs.
    result_reuses: int = 0
    lease_claims: int = 0
    lease_steals: int = 0
    lease_expires: int = 0
    torn_results: int = 0
    worker_deaths: int = 0
    worker_respawns: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "attempts": self.attempts,
            "completed": self.completed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_breaks": self.pool_breaks,
            "degrades": self.degrades,
            "serial_fallbacks": self.serial_fallbacks,
            "resume_skips": self.resume_skips,
            "journal_corrupt_entries": self.journal_corrupt_entries,
            "journal_truncated_lines": self.journal_truncated_lines,
            "result_reuses": self.result_reuses,
            "lease_claims": self.lease_claims,
            "lease_steals": self.lease_steals,
            "lease_expires": self.lease_expires,
            "torn_results": self.torn_results,
            "worker_deaths": self.worker_deaths,
            "worker_respawns": self.worker_respawns,
        }

    def fold_fabric(self, fabric: "object") -> None:
        """Merge one fabric fan-out's counters into this run report."""
        self.completed += getattr(fabric, "committed", 0)
        self.attempts += getattr(fabric, "lease_claims", 0)
        self.result_reuses += getattr(fabric, "reused", 0)
        self.lease_claims += getattr(fabric, "lease_claims", 0)
        self.lease_steals += getattr(fabric, "lease_steals", 0)
        self.lease_expires += getattr(fabric, "lease_expires", 0)
        self.torn_results += getattr(fabric, "torn_results", 0)
        self.worker_deaths += getattr(fabric, "worker_deaths", 0)
        self.worker_respawns += getattr(fabric, "respawns", 0)

    def summary(self) -> str:
        line = (
            f"supervision: {self.completed} completed "
            f"({self.resume_skips} resumed), {self.attempts} attempts, "
            f"{self.retries} retries, {self.timeouts} timeouts, "
            f"{self.pool_breaks} pool breaks, {self.degrades} degrades, "
            f"{self.serial_fallbacks} serial fallbacks"
        )
        if self.lease_claims or self.result_reuses:
            line += (
                f"; fabric: {self.lease_claims} leases "
                f"({self.lease_steals} stolen), {self.result_reuses} store "
                f"reuses, {self.worker_deaths} worker deaths"
            )
        return line


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------

def digest_text(text: str) -> str:
    """SHA-256 hex of UTF-8 text.

    The one digest discipline every journal schema in this repo shares:
    ``repro-journal/v1`` entries here, ``repro-tenant/v1`` entries in
    :mod:`repro.service.store`, and the fabric result store all bind
    payloads with this function so damage detection is uniform.
    """
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


_digest = digest_text


def _keys_digest(keys: Sequence[str]) -> str:
    return _digest("\n".join(keys))


class Journal:
    """Append-only, fsync'd checkpoint journal (``repro-journal/v1``).

    Line 1 is a header binding the file to one (kind, context, task
    set); every further line is one completed task::

        {"schema": "repro-journal/v1", "kind": ..., "context": <sha256>,
         "tasks": <sha256 of the key list>, "run_id": ..., "total": N}
        {"key": "...", "digest": <sha256 of payload>, "payload": <b64 pickle>}

    Entries are independent: a corrupted line invalidates only itself
    (the task is simply re-executed on resume), an unterminated tail
    line is the expected residue of a crash mid-append, and duplicate
    keys resolve latest-wins so replay is idempotent.  Header
    mismatches -- wrong schema version, or a journal recorded for a
    different task set (changed ``--jobs``, schemes or seed) -- always
    raise :class:`JournalError`.

    Payloads are pickles produced by this repository's own runs; do
    not resume journals from untrusted sources.
    """

    def __init__(
        self,
        path: os.PathLike,
        kind: str,
        context: str,
        keys: Sequence[str],
        run_id: str = "",
    ) -> None:
        self.path = Path(path)
        self.kind = kind
        self.context_digest = _digest(context)
        self.keys_digest = _keys_digest(list(keys))
        self.run_id = run_id
        self.total = len(keys)
        self._fh = None
        #: Populated by :meth:`load`.
        self.corrupt_entries = 0
        self.truncated_lines = 0

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def open(
        cls,
        path: os.PathLike,
        kind: str,
        context: str,
        keys: Sequence[str],
        run_id: str = "",
        resume: bool = False,
    ) -> "Journal":
        """Create a fresh journal, or attach to an existing one.

        An existing file is only reopened when ``resume`` is set (so a
        forgotten ``--run-id`` cannot silently mix two runs) and only
        when its header matches this run's identity.
        """
        journal = cls(path, kind, context, keys, run_id=run_id)
        if journal.path.exists():
            if not resume:
                raise JournalError(
                    f"journal {journal.path} already exists; pass --resume "
                    "to continue that run or pick a fresh --run-id"
                )
            journal._check_header(journal._read_header())
        else:
            journal.path.parent.mkdir(parents=True, exist_ok=True)
            journal._append_line(json.dumps(journal._header(), sort_keys=True))
        return journal

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- header --------------------------------------------------------

    def _header(self) -> Dict[str, object]:
        return {
            "schema": JOURNAL_SCHEMA,
            "kind": self.kind,
            "context": self.context_digest,
            "tasks": self.keys_digest,
            "run_id": self.run_id,
            "total": self.total,
        }

    def _read_header(self) -> Dict[str, object]:
        with open(self.path, encoding="utf-8") as handle:
            first = handle.readline()
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise JournalError(
                f"journal {self.path} has an unreadable header: {exc}"
            ) from exc
        if not isinstance(header, dict):
            raise JournalError(f"journal {self.path} header is not an object")
        return header

    def _check_header(self, header: Dict[str, object]) -> None:
        schema = header.get("schema")
        if schema != JOURNAL_SCHEMA:
            raise JournalError(
                f"journal {self.path} has schema {schema!r}, "
                f"expected {JOURNAL_SCHEMA!r}"
            )
        for field_name, expected in (
            ("kind", self.kind),
            ("context", self.context_digest),
            ("tasks", self.keys_digest),
        ):
            if header.get(field_name) != expected:
                raise JournalError(
                    f"journal {self.path} was recorded for a different run "
                    f"({field_name} mismatch) -- did --jobs, the scheme "
                    "list, the seed or the config change?"
                )

    # -- writing -------------------------------------------------------

    def _append_line(self, line: str) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record(self, key: str, value: object) -> None:
        """Durably append one completed task (atomic: flush + fsync)."""
        payload = base64.b64encode(
            pickle.dumps(value, protocol=4)
        ).decode("ascii")
        entry = {"key": key, "digest": _digest(payload), "payload": payload}
        self._append_line(json.dumps(entry, sort_keys=True))

    # -- reading -------------------------------------------------------

    def load(self, strict: bool = False) -> Dict[str, object]:
        """Replay the journal into ``{key: payload}`` (latest wins).

        With ``strict=False`` (the default used on resume) corrupt
        entries are *skipped* -- counted in :attr:`corrupt_entries` and
        re-executed by the caller -- so a damaged journal degrades to
        re-running work, never to wrong results.  ``strict=True`` turns
        any corruption into a :class:`JournalError`.  Header mismatches
        raise either way.
        """
        self.corrupt_entries = 0
        self.truncated_lines = 0
        out: Dict[str, object] = {}
        if not self.path.exists():
            return out
        with open(self.path, encoding="utf-8") as handle:
            lines = handle.readlines()
        if not lines:
            return out
        self._check_header(self._read_header())
        for raw in lines[1:]:
            if not raw.endswith("\n"):
                # Crash mid-append: an unterminated tail is the one
                # kind of damage the append-only discipline expects.
                self.truncated_lines += 1
                continue
            line = raw.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
                payload = entry["payload"]
                digest = entry["digest"]
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                self._reject(strict, f"malformed entry: {exc}")
                continue
            if _digest(payload) != digest:
                self._reject(strict, f"digest mismatch for key {key!r}")
                continue
            try:
                out[key] = pickle.loads(base64.b64decode(payload))
            except Exception as exc:  # unpicklable payload = corrupt
                self._reject(strict, f"unreadable payload for {key!r}: {exc}")
        return out

    def _reject(self, strict: bool, why: str) -> None:
        if strict:
            raise JournalError(f"journal {self.path}: {why}")
        self.corrupt_entries += 1
        logger.warning(
            "journal %s: skipping corrupt entry (%s); the task will be "
            "re-executed", self.path, why,
        )

    def entry_count(self) -> int:
        """Number of valid (replayable) entries currently on disk."""
        return len(self.load())


def count_journal_entries(path: os.PathLike) -> int:
    """Valid (latest-wins) entry count of a journal file on disk.

    Unlike :meth:`Journal.load` this does not check the run identity --
    it is the tool tests and the chaos harness use to ask "how much of
    that run finished?" without reconstructing its key set.
    """
    path = Path(path)
    if not path.exists():
        return 0
    seen = set()
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    for raw in lines[1:]:
        if not raw.endswith("\n"):
            continue
        line = raw.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
            key = entry["key"]
            payload = entry["payload"]
            digest = entry["digest"]
        except (json.JSONDecodeError, KeyError, TypeError):
            continue
        if _digest(payload) == digest:
            seen.add(key)
    return len(seen)


# ----------------------------------------------------------------------
# The supervised map
# ----------------------------------------------------------------------

def _emit(obs, etype: EventType, count: int = 1, **payload: object) -> None:
    """Trace + count one supervision event through an ObsContext."""
    if obs is None:
        return
    tracer = getattr(obs, "tracer", None)
    if tracer:
        tracer.emit(etype, cycle=time.monotonic(), **payload)
    registry = getattr(obs, "registry", None)
    if registry is not None:
        registry.group("resilience").bump(etype.value, count)


def _infrastructure_failure(exc: BaseException) -> bool:
    """Pool/pickling plumbing failures, as opposed to task logic errors."""
    if isinstance(exc, (BrokenProcessPool, OSError, pickle.PicklingError)):
        return True
    return isinstance(exc, TypeError) and "pickle" in str(exc).lower()


def _chaos_invoke(fn, item, chaos, key: str, attempt: int):
    """Worker body under chaos: consult the spec, then run the task.

    Top-level (picklable) on purpose; ``chaos`` is any picklable object
    with a ``decide(key, attempt) -> Optional[str]`` method (see
    :class:`repro.faults.exec_chaos.ChaosSpec`).
    """
    action = chaos.decide(key, attempt)
    if action == "crash":
        os._exit(17)  # simulate a hard worker death (OOM-kill, segfault)
    if action == "hang":
        # Sleep long enough for the timeout to fire, but bounded so a
        # chaos run without hang detection still terminates.
        time.sleep(chaos.hang_seconds)
    elif action == "lose":
        raise LostResultError(f"chaos dropped the result of {key!r}")
    return fn(item)


def _submit(pool, fn, item, chaos, key: str, attempt: int) -> Future:
    if chaos is not None and hasattr(chaos, "decide"):
        return pool.submit(_chaos_invoke, fn, item, chaos, key, attempt)
    return pool.submit(fn, item)


def _terminate_pool(pool: Optional[ProcessPoolExecutor]) -> None:
    """Tear a pool down hard, killing hung or runaway workers."""
    if pool is None:
        return
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        proc.terminate()
    for proc in processes:
        proc.join(timeout=5.0)


def _wait_timeout(
    policy: ResiliencePolicy, inflight: Dict[Future, Tuple[int, float]]
) -> float:
    if policy.timeout_seconds is None:
        return _TICK_SECONDS
    now = time.monotonic()
    nearest = min(
        started + policy.timeout_seconds - now
        for _, started in inflight.values()
    )
    return max(0.01, min(_TICK_SECONDS, nearest))


def supervised_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: Optional[int] = None,
    *,
    keys: Optional[Sequence[str]] = None,
    policy: Optional[ResiliencePolicy] = None,
    journal: Optional[Journal] = None,
    obs=None,
    chaos=None,
    report: Optional[SupervisionReport] = None,
) -> List[R]:
    """``[fn(x) for x in items]`` under full supervision.

    Results come back in input order.  ``fn`` must be a module-level
    pure function over picklable arguments; unlike
    :func:`repro.sim.parallel.map_ordered` a deterministic task error
    is retried once and then **raised** -- the whole map is never
    silently replayed serially.

    ``keys`` (stable, unique, one per item) name tasks in journal
    entries and supervision events; ``journal`` enables
    checkpoint/resume; ``chaos`` injects seeded failures (tests/CI);
    ``obs`` receives trace events and ``resilience`` counters;
    ``report`` accumulates counters across calls.
    """
    from repro.sim.parallel import resolve_jobs  # parallel imports us lazily

    items = list(items)
    policy = policy or ResiliencePolicy()
    report = report if report is not None else SupervisionReport()
    if keys is None:
        keys = [f"task-{i:04d}" for i in range(len(items))]
    keys = [str(key) for key in keys]
    if len(keys) != len(items):
        raise ValueError("keys must match items one-to-one")
    if len(set(keys)) != len(keys):
        raise ValueError("task keys must be unique")

    results: Dict[int, R] = {}
    if journal is not None:
        recorded = journal.load()
        report.journal_corrupt_entries += journal.corrupt_entries
        report.journal_truncated_lines += journal.truncated_lines
        dropped = journal.corrupt_entries + journal.truncated_lines
        if dropped:
            # Damage tolerance must be observable, not invisible: every
            # dropped entry is a task silently re-executed on resume.
            _emit(
                obs, EventType.JOURNAL_DROPPED, count=dropped,
                journal=str(journal.path),
                corrupt=journal.corrupt_entries,
                truncated=journal.truncated_lines,
            )
            logger.warning(
                "journal %s: dropped %d damaged entries (%d corrupt, %d "
                "truncated); those tasks will re-execute",
                journal.path, dropped, journal.corrupt_entries,
                journal.truncated_lines,
            )
        for index, key in enumerate(keys):
            if key in recorded:
                results[index] = recorded[key]  # type: ignore[assignment]
                report.resume_skips += 1
                _emit(obs, EventType.EXEC_RESUME_SKIP, key=key)

    pending = [index for index in range(len(items)) if index not in results]
    abort_after = getattr(chaos, "abort_after", None)
    live_done = 0

    def finish(index: int, value: R) -> None:
        nonlocal live_done
        results[index] = value
        report.completed += 1
        if journal is not None:
            journal.record(keys[index], value)
        live_done += 1
        if abort_after is not None and live_done >= abort_after:
            raise ExecutionAborted(
                f"aborted after {live_done} completed tasks (chaos)"
            )

    workers = min(resolve_jobs(jobs), max(1, len(pending)))
    if pending and workers > 1:
        _supervise(
            fn, items, keys, pending, workers, policy, obs, chaos, report,
            finish,
        )
    else:
        for index in pending:
            report.attempts += 1
            finish(index, fn(items[index]))
    return [results[index] for index in range(len(items))]


def _supervise(
    fn,
    items: Sequence,
    keys: Sequence[str],
    pending: Sequence[int],
    workers: int,
    policy: ResiliencePolicy,
    obs,
    chaos,
    report: SupervisionReport,
    finish: Callable[[int, object], None],
) -> None:
    """The parallel supervision loop (see module docstring)."""
    queue = deque(pending)
    ready_at: Dict[int, float] = {}
    transient: Dict[int, int] = {}
    errors: Dict[int, int] = {}
    inflight: Dict[Future, Tuple[int, float]] = {}
    pool: Optional[ProcessPoolExecutor] = None
    breaks_since_degrade = 0

    def serial_fallback(index: int, why: str) -> None:
        report.serial_fallbacks += 1
        _emit(obs, EventType.EXEC_DEGRADE, scope="task", key=keys[index],
              why=why)
        logger.warning(
            "task %s: %s; running it serially in the parent", keys[index], why
        )
        report.attempts += 1
        finish(index, fn(items[index]))

    def transient_failure(index: int, why: str) -> None:
        transient[index] = transient.get(index, 0) + 1
        if transient[index] > policy.max_retries:
            serial_fallback(
                index, f"exhausted {policy.max_retries} transient retries"
            )
            return
        report.retries += 1
        delay = policy.backoff(keys[index], transient[index])
        ready_at[index] = time.monotonic() + delay
        _emit(obs, EventType.EXEC_RETRY, key=keys[index],
              attempt=transient[index], delay_seconds=round(delay, 4),
              why=why)
        queue.append(index)

    def task_failure(index: int, exc: BaseException) -> None:
        errors[index] = errors.get(index, 0) + 1
        if errors[index] > policy.task_error_retries:
            logger.error(
                "task %s failed deterministically (%s: %s); raising",
                keys[index], type(exc).__name__, exc,
            )
            raise exc
        report.retries += 1
        delay = policy.backoff(keys[index], errors[index])
        ready_at[index] = time.monotonic() + delay
        _emit(obs, EventType.EXEC_RETRY, key=keys[index],
              attempt=errors[index], delay_seconds=round(delay, 4),
              why=f"task error {type(exc).__name__}")
        queue.append(index)

    def recycle_pool() -> None:
        nonlocal pool, breaks_since_degrade, workers
        _terminate_pool(pool)
        pool = None
        report.pool_breaks += 1
        breaks_since_degrade += 1
        if (
            breaks_since_degrade >= policy.degrade_after_breaks
            and workers > policy.min_workers
        ):
            workers = max(policy.min_workers, workers // 2)
            breaks_since_degrade = 0
            report.degrades += 1
            _emit(obs, EventType.EXEC_DEGRADE, scope="pool", workers=workers)
            logger.warning(
                "repeated worker loss: degrading the pool to %d workers",
                workers,
            )

    def drain_inflight_uncharged() -> None:
        # A broken/killed pool poisons every in-flight future; the
        # innocents go back to the queue without a retry charge.
        while inflight:
            _future, (index, _started) = inflight.popitem()
            queue.append(index)

    try:
        while queue or inflight:
            now = time.monotonic()
            for _ in range(len(queue)):
                if len(inflight) >= workers:
                    break
                index = queue.popleft()
                if ready_at.get(index, 0.0) > now:
                    queue.append(index)  # still backing off
                    continue
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=workers)
                attempt = transient.get(index, 0) + errors.get(index, 0)
                report.attempts += 1
                try:
                    future = _submit(
                        pool, fn, items[index], chaos, keys[index], attempt
                    )
                except BrokenProcessPool:
                    queue.append(index)
                    drain_inflight_uncharged()
                    recycle_pool()
                    break
                inflight[future] = (index, time.monotonic())

            if not inflight:
                # Everything queued is backing off; sleep until the
                # soonest task becomes ready again.
                wake = min(
                    (ready_at.get(index, now) for index in queue),
                    default=now,
                )
                time.sleep(max(0.005, min(wake - now, _TICK_SECONDS)))
                continue

            done, _ = wait(
                set(inflight),
                timeout=_wait_timeout(policy, inflight),
                return_when=FIRST_COMPLETED,
            )
            broken = False
            for future in done:
                index, _started = inflight.pop(future)
                try:
                    value = future.result()
                except BrokenProcessPool:
                    broken = True
                    transient_failure(index, "worker died")
                except Exception as exc:
                    if getattr(exc, "transient", False):
                        transient_failure(index, type(exc).__name__)
                    elif _infrastructure_failure(exc):
                        # e.g. an unpicklable payload: not a task bug,
                        # but retrying in a worker cannot help either.
                        serial_fallback(
                            index,
                            f"infrastructure failure "
                            f"({type(exc).__name__}: {exc})",
                        )
                    else:
                        task_failure(index, exc)
                else:
                    finish(index, value)
            if broken:
                drain_inflight_uncharged()
                recycle_pool()
                continue

            if policy.timeout_seconds is not None and inflight:
                now = time.monotonic()
                overdue = [
                    (future, started_pair)
                    for future, started_pair in inflight.items()
                    if now - started_pair[1] > policy.timeout_seconds
                ]
                if overdue:
                    for future, (index, started) in overdue:
                        del inflight[future]
                        report.timeouts += 1
                        _emit(obs, EventType.EXEC_TIMEOUT, key=keys[index],
                              seconds=round(now - started, 3))
                        logger.warning(
                            "task %s exceeded its %.1fs timeout; killing "
                            "its worker pool", keys[index],
                            policy.timeout_seconds,
                        )
                        transient_failure(index, "timeout")
                    drain_inflight_uncharged()
                    recycle_pool()
    finally:
        _terminate_pool(pool)


# ----------------------------------------------------------------------
# Supervisor: policy + journal + chaos bundled for the fan-out callers
# ----------------------------------------------------------------------

def default_runs_dir() -> Path:
    return Path(os.environ.get("REPRO_RUNS_DIR") or "runs")


def new_run_id() -> str:
    """A fresh collision-resistant run identifier."""
    return uuid.uuid4().hex[:12]


class Supervisor:
    """One run's supervision state: policy, journal root, chaos, obs.

    The scenario/scheme and campaign fan-outs call :meth:`map` instead
    of a bare pool map; each call journals (when ``run_id`` is set)
    into its own file ``runs/<run-id>/<kind>-<digest>.jsonl``, so a
    multi-experiment report resumes per fan-out.

    With ``fabric_workers`` set the map is executed by the distributed
    campaign fabric instead (:mod:`repro.sim.fabric`): ``N``
    independent worker processes claim task leases from a spooled
    work-queue and commit results into the content-addressed store
    shared by every run under ``runs_dir`` -- see ``docs/fabric.md``.
    """

    def __init__(
        self,
        policy: Optional[ResiliencePolicy] = None,
        run_id: Optional[str] = None,
        resume: bool = False,
        runs_dir: Optional[os.PathLike] = None,
        chaos=None,
        obs=None,
        fabric_workers: Optional[int] = None,
        lease_ttl: Optional[float] = None,
        fabric_wall_timeout: Optional[float] = None,
    ) -> None:
        self.policy = policy or ResiliencePolicy()
        self.fabric_workers = fabric_workers
        if run_id is None and fabric_workers is not None:
            run_id = new_run_id()  # the fabric spool needs a run dir
        self.run_id = run_id
        self.resume = resume
        self.runs_dir = Path(runs_dir) if runs_dir is not None else (
            default_runs_dir()
        )
        self.lease_ttl = lease_ttl
        self.fabric_wall_timeout = fabric_wall_timeout
        self.chaos = chaos
        self.obs = obs
        self.report = SupervisionReport()
        self._opened: set = set()
        if obs is not None:
            registry = getattr(obs, "registry", None)
            if registry is not None:
                registry.group("resilience").declare(*RESILIENCE_COUNTERS)

    @property
    def journaling(self) -> bool:
        return self.run_id is not None

    def run_dir(self) -> Path:
        if self.run_id is None:
            raise ValueError("supervisor has no run_id")
        return self.runs_dir / self.run_id

    def journal_path(self, kind: str, context: str) -> Path:
        return self.run_dir() / f"{kind}-{_digest(f'{kind}:{context}')[:12]}.jsonl"

    def store_dir(self) -> Path:
        """The content-addressed result store shared across runs."""
        from repro.sim.fabric import default_store_dir

        return default_store_dir(self.runs_dir)

    def _fabric_map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        keys: Optional[Sequence[str]],
        kind: str,
        context: str,
    ) -> List[R]:
        from repro.sim import fabric

        if keys is None:
            raise ValueError("the fabric requires stable task keys")
        freport = fabric.FabricReport()
        ttl = (
            self.lease_ttl
            if self.lease_ttl is not None
            else fabric.DEFAULT_LEASE_TTL
        )
        try:
            return fabric.fabric_map(
                fn,
                items,
                keys=keys,
                kind=kind,
                context=context,
                run_dir=self.run_dir(),
                store_dir=self.store_dir(),
                workers=self.fabric_workers or 2,
                ttl=ttl,
                chaos=self.chaos,
                obs=self.obs,
                report=freport,
                wall_timeout=self.fabric_wall_timeout,
                task_error_retries=self.policy.task_error_retries,
            )
        finally:
            self.report.fold_fabric(freport)

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        *,
        keys: Optional[Sequence[str]] = None,
        kind: str = "map",
        context: str = "",
        jobs: Optional[int] = None,
    ) -> List[R]:
        """Supervised ordered map, journaled when ``run_id`` is set."""
        if self.fabric_workers is not None:
            return self._fabric_map(fn, items, keys, kind, context)
        journal = None
        if self.journaling:
            if keys is None:
                raise ValueError("journaling requires stable task keys")
            path = self.journal_path(kind, context)
            # A repeated identical fan-out within the same process run
            # (memo cleared, bench repetition) continues its own file.
            resume = self.resume or str(path) in self._opened
            journal = Journal.open(
                path, kind, context, keys, run_id=self.run_id or "",
                resume=resume,
            )
            self._opened.add(str(path))
        try:
            return supervised_map(
                fn, items, jobs,
                keys=keys, policy=self.policy, journal=journal,
                obs=self.obs, chaos=self.chaos, report=self.report,
            )
        finally:
            if journal is not None:
                journal.close()


# ----------------------------------------------------------------------
# Ambient supervision: the fan-outs consult this instead of plumbing a
# supervisor argument through every experiment signature.
# ----------------------------------------------------------------------

_ACTIVE: List[Supervisor] = []


@contextmanager
def supervision(supervisor: Optional[Supervisor]) -> Iterator[Optional[Supervisor]]:
    """Make ``supervisor`` the ambient executor for the enclosed calls.

    ``supervision(None)`` is a no-op context, so CLI plumbing can pass
    through unconditionally.
    """
    if supervisor is None:
        yield None
        return
    _ACTIVE.append(supervisor)
    try:
        yield supervisor
    finally:
        _ACTIVE.pop()


def current_supervisor() -> Optional[Supervisor]:
    """The supervisor the fan-outs should use right now.

    An explicitly activated supervisor wins; otherwise the default
    execution mode applies: supervised (a fresh stateless
    :class:`Supervisor`) unless ``REPRO_EXEC=plain`` opts back into
    the legacy bare ``pool.map`` path (the performance-overhead gate
    in CI measures exactly this pair).
    """
    if _ACTIVE:
        return _ACTIVE[-1]
    if os.environ.get("REPRO_EXEC", "").strip().lower() == "plain":
        return None
    return Supervisor()
