"""repro: Unified Memory Protection with Multi-granular MAC and Integrity Tree.

A Python reproduction of Lee et al., ISCA 2025: a trace-driven
heterogeneous-SoC simulator plus a functional (real-crypto) secure
memory implementing the paper's multi-granular MAC & integrity-tree
mechanism, its baselines, and every evaluation experiment.

Typical entry points:

* :class:`repro.secure_memory.SecureMemory` -- working encrypted +
  integrity- + replay-protected memory (functional layer).
* :func:`repro.sim.run_scenario` -- simulate a heterogeneous scenario
  under any scheme of the paper's Table 5 (timing layer).
* :mod:`repro.experiments` -- regenerate each paper table and figure.
"""

from repro.common.config import SoCConfig
from repro.schemes import SCHEME_NAMES, build_scheme
from repro.secure_memory import SecureMemory
from repro.sim import (
    REALWORLD_SCENARIOS,
    SELECTED_SCENARIOS,
    Scenario,
    all_scenarios,
    make_scenario,
    run_scenario,
    simulate,
)
from repro.workloads import WORKLOADS, generate_trace, get_workload

__version__ = "1.0.0"

__all__ = [
    "SoCConfig",
    "SCHEME_NAMES",
    "build_scheme",
    "SecureMemory",
    "REALWORLD_SCENARIOS",
    "SELECTED_SCENARIOS",
    "Scenario",
    "all_scenarios",
    "make_scenario",
    "run_scenario",
    "simulate",
    "WORKLOADS",
    "generate_trace",
    "get_workload",
    "__version__",
]
